"""Warmup study: cold start vs MRU replay vs perfect warmup.

Reproduces the section IV / VI-B comparison on one benchmark: how much of
the sampling error is selection (perfect warmup), and how much the
checkpoint-free MRU replay technique recovers relative to cold caches.

Run:  python examples/warmup_study.py   (REPRO_SCALE overrides the scale)
"""

import os

from repro import BarrierPointPipeline, get_workload, scaled, table1_8core

SCALE = float(os.environ.get("REPRO_SCALE", "0.5"))
BENCHMARK = "npb-cg"


def main() -> None:
    pipeline = BarrierPointPipeline(scaled(table1_8core()))
    workload = get_workload(BENCHMARK, 8, scale=SCALE)

    selection = pipeline.select(workload)
    full = pipeline.full_run(workload)
    print(f"{BENCHMARK}: {selection.num_barrierpoints} barrierpoints, "
          f"reference time {full.app.time_seconds * 1e3:.3f} ms\n")

    perfect = pipeline.evaluate_perfect(selection, full)
    mru = pipeline.evaluate_with_warmup(selection, workload, full, "mru")
    cold = pipeline.evaluate_with_warmup(selection, workload, full, "cold")

    print(f"{'warmup':<10} {'est. time (ms)':>15} {'error %':>9} "
          f"{'APKI diff':>10}")
    for result in (perfect, mru, cold):
        print(f"{result.warmup_name:<10} "
              f"{result.estimate.time_seconds * 1e3:>15.3f} "
              f"{result.runtime_error_pct:>9.2f} "
              f"{result.apki_difference:>10.3f}")

    lines = sum(mru.warmup_lines.values())
    points = selection.num_barrierpoints
    print(f"\nMRU warmup replayed {lines} cache lines total "
          f"({lines // max(points, 1)} per barrierpoint on average) — "
          f"state size bounded by the LLC, not by program history "
          f"(paper section IV).")


if __name__ == "__main__":
    main()
