"""Define your own barrier-synchronized workload and sample it.

BarrierPoint is not tied to the built-in NPB/PARSEC analogues: any
program expressible as phases between global barriers can be driven
through the pipeline.  This example models a small iterative
graph-processing app (gather -> apply -> scatter per superstep, with a
shrinking frontier) using the declarative :class:`SyntheticSpec` builder.

Run:  python examples/custom_workload.py   (REPRO_SCALE overrides the scale)
"""

import os

from repro import BarrierPointPipeline, scaled, table1_8core
from repro.core.speedup import speedup_report
from repro.workloads import PhaseSpec, SyntheticSpec, SyntheticWorkload

SCALE = float(os.environ.get("REPRO_SCALE", "0.5"))
SUPERSTEPS = 12


def build_spec() -> SyntheticSpec:
    phases = (
        PhaseSpec(
            name="init",
            pattern="stream",
            footprint_lines=4096,
            refs_per_thread=512,
            instructions_per_ref=6,
            write_fraction=1.0,
        ),
        PhaseSpec(
            name="gather",
            pattern="gather",
            footprint_lines=8192,
            refs_per_thread=900,
            instructions_per_ref=9,
            mlp=1.5,
            mispredict_rate=0.03,
            shared=True,
            length_jitter=0.15,  # frontier size varies per superstep
        ),
        PhaseSpec(
            name="apply",
            pattern="rmw",
            footprint_lines=4096,
            refs_per_thread=600,
            instructions_per_ref=12,
        ),
        PhaseSpec(
            name="scatter",
            pattern="scatter",
            footprint_lines=2048,
            refs_per_thread=700,
            instructions_per_ref=8,
            mlp=1.5,
            shared=True,
            length_jitter=0.15,
        ),
    )
    schedule = [("init", 0)]
    for step in range(SUPERSTEPS):
        schedule += [("gather", step), ("apply", step), ("scatter", step)]
    return SyntheticSpec(
        name="example-graph-app",
        phases=phases,
        schedule=tuple(schedule),
    )


def main() -> None:
    workload = SyntheticWorkload(build_spec(), num_threads=8, scale=SCALE)
    print(f"{workload.name}: {workload.barrier_count} barriers, "
          f"{workload.num_static_blocks} static blocks")

    pipeline = BarrierPointPipeline(scaled(table1_8core()))
    selection = pipeline.select(workload)
    full = pipeline.full_run(workload)
    result = pipeline.evaluate_with_warmup(selection, workload, full, "mru")

    print(f"\n{selection.num_barrierpoints} barrierpoints out of "
          f"{selection.num_regions} regions")
    for point in selection.points:
        phase = workload.phase_of(point.region_index)
        print(f"  region {point.region_index:2d} ({phase.phase}@"
              f"{phase.iteration})  multiplier {point.multiplier:5.2f}")

    report = speedup_report(selection)
    print(f"\nestimate error vs full simulation: "
          f"{result.runtime_error_pct:.2f}%")
    print(f"serial speedup {report.serial_speedup:.1f}x, "
          f"parallel speedup {report.parallel_speedup:.1f}x")


if __name__ == "__main__":
    main()
