"""Cross-architecture study: barrierpoints as fixed units of work.

The headline property of BarrierPoint (paper section VI-A3 / Fig. 6):
barrierpoints selected from one machine's profile transfer to another,
because barrier-delimited regions are microarchitecture-independent units
of work.  This example selects barrierpoints at 8 threads, applies them to
a 32-core machine, and predicts the 8->32 scaling speedup from samples
alone (Fig. 8's use case).

Run:  python examples/cross_architecture.py   (REPRO_SCALE overrides the scale)
"""

import os

from repro import BarrierPointPipeline, get_workload, scaled, table1_8core, table1_32core
from repro.core.crossarch import apply_selection_across

SCALE = float(os.environ.get("REPRO_SCALE", "0.5"))
BENCHMARK = "npb-cg"  # the paper's super-linear-scaling example


def main() -> None:
    pipe8 = BarrierPointPipeline(scaled(table1_8core()))
    pipe32 = BarrierPointPipeline(scaled(table1_32core()))
    w8 = get_workload(BENCHMARK, 8, scale=SCALE)
    w32 = get_workload(BENCHMARK, 32, scale=SCALE)
    assert w8.barrier_count == w32.barrier_count  # thread-invariant

    # Select once, on the 8-thread profile.
    selection = pipe8.select(w8)
    print(f"{BENCHMARK}: {selection.num_barrierpoints} barrierpoints "
          f"selected from the 8-thread profile")

    # References at both design points.
    full8 = pipe8.full_run(w8)
    full32 = pipe32.full_run(w32)

    # Native evaluation at 8 cores; transferred evaluation at 32 cores.
    native = pipe8.evaluate_perfect(selection, full8)
    transferred = apply_selection_across(selection, full32, pipe32)
    print(f"\n8-core estimate error (native SVs):       "
          f"{native.runtime_error_pct:.2f}%")
    print(f"32-core estimate error (transferred SVs): "
          f"{transferred.runtime_error_pct:.2f}%")

    actual = full8.app.time_seconds / full32.app.time_seconds
    predicted = (native.estimate.time_seconds
                 / transferred.estimate.time_seconds)
    print(f"\n8 -> 32 core speedup: actual {actual:.2f}x, "
          f"predicted from barrierpoints {predicted:.2f}x")
    if actual > 4.0:
        print("super-linear scaling (LLC capacity effect), "
              "as the paper reports for npb-cg")


if __name__ == "__main__":
    main()
