"""Quickstart: sample one benchmark with BarrierPoint, end to end.

Runs the complete methodology on the synthetic npb-ft at 8 threads:
profile -> cluster -> select barrierpoints -> capture + replay warmup ->
simulate only the barrierpoints -> reconstruct total execution time, and
compares the estimate against the full detailed simulation.

Run:  python examples/quickstart.py   (REPRO_SCALE overrides the scale)
"""

import os

from repro import BarrierPointPipeline, get_workload, scaled, table1_8core
from repro.core.speedup import speedup_report

#: Workload scale; 1.0 reproduces the reported numbers.  The smoke test
#: (tests/test_examples.py) runs every example tiny via REPRO_SCALE.
SCALE = float(os.environ.get("REPRO_SCALE", "0.5"))


def main() -> None:
    workload = get_workload("npb-ft", num_threads=8, scale=SCALE)
    print(f"workload: {workload.name}, {workload.barrier_count} barriers, "
          f"{workload.num_threads} threads")

    pipeline = BarrierPointPipeline(scaled(table1_8core()))

    # Stage 1+2: one functional profiling pass, then clustering.
    selection = pipeline.select(workload)
    print(f"\nselected {selection.num_barrierpoints} barrierpoints "
          f"({len(selection.significant_points)} significant) "
          f"out of {selection.num_regions} regions:")
    for point in selection.points:
        marker = "" if point.significant else "  (insignificant)"
        print(f"  region {point.region_index:3d}  "
              f"multiplier {point.multiplier:6.2f}  "
              f"weight {point.weight:6.2%}{marker}")

    # Reference: detailed simulation of the complete benchmark.
    full = pipeline.full_run(workload)
    print(f"\nfull detailed simulation: "
          f"{full.app.time_seconds * 1e3:.3f} ms simulated time, "
          f"aggregate IPC {full.app.aggregate_ipc:.2f}, "
          f"DRAM APKI {full.app.dram_apki:.2f}")

    # The methodology: simulate only barrierpoints (after MRU warmup).
    result = pipeline.evaluate_with_warmup(selection, workload, full, "mru")
    print(f"BarrierPoint estimate:    "
          f"{result.estimate.time_seconds * 1e3:.3f} ms "
          f"(error {result.runtime_error_pct:.2f}%, "
          f"APKI difference {result.apki_difference:.3f})")

    report = speedup_report(selection, warmup_lines=result.warmup_lines)
    print(f"\nsimulation speedups (instruction-count proxy):")
    print(f"  serial   {report.serial_speedup:6.1f}x  "
          f"(resource reduction {report.resource_reduction:.1f}x)")
    print(f"  parallel {report.parallel_speedup:6.1f}x")


if __name__ == "__main__":
    main()
