"""Black-box battery for the ``repro serve`` experiment service.

Every test here drives a real server — booted in-process on an
ephemeral port and spoken to over HTTP with ``urllib`` (or, for the
signal test, a real subprocess killed with ``SIGTERM``) — and asserts
the service's externally visible contracts:

* artifacts fetched over HTTP are byte-identical to a direct
  :func:`~repro.experiments.common.compute_pair` run;
* N concurrent identical submissions coalesce to exactly one
  computation (proved by supervisor stats *and* the store's put
  counter);
* a drained server's journaled backlog completes bit-identically under
  ``--resume``;
* injected ``serve.request`` / ``runner.task`` faults surface as
  structured 5xx/failed-job responses, never hangs or torn bodies;
* malformed dynamic workload names are loud 400s with the CLI's
  message contract.
"""

from __future__ import annotations

import json
import os
import pathlib
import pickle
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from tests.conftest import assert_bit_identical
from repro.errors import ConfigError
from repro.experiments.common import compute_pair, pair_key
from repro.faults import FaultPlan, install_plan, uninstall_plan
from repro.serve import JobSpec, JobSupervisor, ReproService
from repro.serve.supervisor import ServiceDrainingError
from repro.store import ArtifactStore, put_count

SCALE = 0.05
BENCH = "npb-is"
THREADS = 8

#: The battery's canonical cheap submission.
SPEC = {"kind": "profile", "workload": BENCH, "threads": THREADS,
        "scale": SCALE}

DEADLINE = 120.0


@pytest.fixture(autouse=True)
def _no_fault_plan():
    """Keep fault plans test-local (and out of the environment)."""
    uninstall_plan()
    yield
    uninstall_plan()


class Client:
    """Tiny urllib driver for one served endpoint."""

    def __init__(self, address: tuple[str, int]) -> None:
        host, port = address
        self.base = f"http://{host}:{port}"

    def get(self, path: str):
        """GET; returns ``(status, decoded JSON)``."""
        try:
            with urllib.request.urlopen(self.base + path, timeout=30) as r:
                return r.status, json.loads(r.read())
        except urllib.error.HTTPError as e:
            return e.code, json.loads(e.read())

    def get_bytes(self, path: str):
        """GET; returns ``(status, raw body bytes)``."""
        try:
            with urllib.request.urlopen(self.base + path, timeout=30) as r:
                return r.status, r.read()
        except urllib.error.HTTPError as e:
            return e.code, e.read()

    def post(self, path: str, payload) -> tuple[int, dict]:
        """POST JSON; returns ``(status, decoded JSON)``."""
        req = urllib.request.Request(
            self.base + path,
            data=json.dumps(payload).encode(),
            method="POST",
        )
        try:
            with urllib.request.urlopen(req, timeout=30) as r:
                return r.status, json.loads(r.read())
        except urllib.error.HTTPError as e:
            return e.code, json.loads(e.read())

    def wait(self, job_id: str, deadline: float = DEADLINE) -> dict:
        """Poll one job to a terminal state."""
        end = time.monotonic() + deadline
        while time.monotonic() < end:
            status, record = self.get(f"/jobs/{job_id}")
            assert status == 200
            if record["state"] in ("done", "failed"):
                return record
            time.sleep(0.02)
        raise AssertionError(f"job {job_id} not terminal within {deadline}s")


@pytest.fixture
def service(tmp_path):
    """One in-process server on an ephemeral port, torn down after."""
    svc = ReproService(
        port=0, workers=2, store=ArtifactStore(root=tmp_path / "served")
    )
    svc.start()
    yield svc, Client(svc.address)
    svc.stop()


def direct_payload_bytes(tmp_path, want_profiles=True) -> tuple[str, bytes]:
    """Compute the battery spec directly (no server); return (key, body).

    The reference leg of the byte-identity assertions: the exact
    validated payload bytes the serial CLI path persists.
    """
    root = tmp_path / "direct"
    compute_pair((
        BENCH, THREADS, SCALE, str(root),
        want_profiles, not want_profiles, None,
    ))
    store = ArtifactStore(root=root)
    kind = "profiles" if want_profiles else "full"
    key = pair_key(SCALE, BENCH, THREADS, None)
    body = store.payload_bytes(kind, key)
    assert body is not None
    return key, body


class TestServeLifecycle:
    def test_healthz_stats_and_unknowns(self, service):
        from repro.util import jit

        svc, client = service
        status, health = client.get("/healthz")
        assert status == 200
        assert health == {"status": "ok", "jit_tier": jit.active_tier()}
        status, stats = client.get("/stats")
        assert status == 200
        assert stats["workers"] == 2 and not stats["draining"]
        assert stats["jit"] == jit.jit_status()
        assert stats["jit"]["tier"] in jit.TIERS
        assert client.get("/nope")[0] == 404
        assert client.get("/jobs/job-999")[0] == 404
        assert client.post("/nope", {})[0] == 404
        status, body = client.post("/jobs", None)
        assert status == 400 and "JSON object" in body["error"]

    def test_draining_rejects_submissions(self, service):
        svc, client = service
        svc.supervisor.begin_drain()
        status, body = client.post("/jobs", SPEC)
        assert status == 503
        assert "draining" in body["error"]
        assert client.get("/healthz")[1]["status"] == "draining"


class TestByteIdentity:
    def test_submit_poll_fetch_matches_direct_run(self, service, tmp_path):
        svc, client = service
        status, record = client.post("/jobs", SPEC)
        assert status == 202 and record["state"] in ("queued", "running")
        done = client.wait(record["id"])
        assert done["state"] == "done" and not done["coalesced"]
        [(kind, key)] = done["artifacts"]
        assert kind == "profiles"

        fetch_status, body = client.get_bytes(f"/artifacts/{kind}/{key}")
        assert fetch_status == 200

        direct_key, direct_body = direct_payload_bytes(tmp_path)
        assert key == direct_key  # same inputs -> same store key
        assert body == direct_body  # served payload bytes == CLI payload bytes
        (served,) = pickle.loads(body)
        (direct,) = pickle.loads(direct_body)
        assert_bit_identical(served, direct)

    def test_full_run_artifact_matches_direct_run(self, service, tmp_path):
        svc, client = service
        status, record = client.post("/jobs", dict(SPEC, kind="full"))
        done = client.wait(record["id"])
        assert done["state"] == "done"
        [(kind, key)] = done["artifacts"]
        assert kind == "full"
        _, body = client.get_bytes(f"/artifacts/{kind}/{key}")
        direct_key, direct_body = direct_payload_bytes(
            tmp_path, want_profiles=False
        )
        assert (key, body) == (direct_key, direct_body)


class TestCoalescing:
    def test_concurrent_identical_submissions_compute_once(self, tmp_path):
        # One worker + injected latency on the pass keeps the first
        # computation in flight while the other submissions arrive, so
        # every one of them must coalesce (not merely hit a warm store).
        install_plan(FaultPlan.parse(
            f"runner.task:latency:seconds=1.5,max_attempts=99,match={BENCH}"
        ), export=False)
        svc = ReproService(
            port=0, workers=1, store=ArtifactStore(root=tmp_path / "served")
        )
        svc.start()
        client = Client(svc.address)
        try:
            puts_before = put_count()
            results: list[tuple[int, dict]] = []
            lock = threading.Lock()

            def _submit():
                response = client.post("/jobs", SPEC)
                with lock:
                    results.append(response)

            threads = [
                threading.Thread(target=_submit) for _ in range(50)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            assert len(results) == 50
            records = [client.wait(r["id"]) for _, r in results]
            # N submissions, N completions ...
            assert all(r["state"] == "done" for r in records)
            artifact_sets = {tuple(map(tuple, r["artifacts"]))
                             for r in records}
            assert len(artifact_sets) == 1  # every completion, same artifact
            # ... and exactly one computation, by both proofs:
            stats = client.get("/stats")[1]
            assert stats["jobs"]["submitted"] == 50
            assert stats["jobs"]["computations"] == 1
            assert stats["jobs"]["coalesced"] == 49
            assert stats["jobs"]["cache_hits"] == 0
            assert put_count() - puts_before == 1  # one store write
            assert stats["store"]["puts"] == 1
        finally:
            svc.stop()


class TestDrainAndResume:
    def test_resume_completes_journaled_backlog_bit_identically(
        self, tmp_path
    ):
        store_root = tmp_path / "served"
        # First life: accept submissions but never start the workers —
        # the journal now holds a queued backlog, exactly as if the
        # process died between accept and execution.
        first = JobSupervisor(store=ArtifactStore(root=store_root))
        queued = first.submit(JobSpec.from_dict(SPEC))
        also = first.submit(JobSpec.from_dict(SPEC))  # coalesces
        other = first.submit(
            JobSpec.from_dict(dict(SPEC, kind="full"))
        )
        assert queued.state == "queued" and also.coalesced
        del first

        # Second life: --resume restores and completes the backlog.
        revived = JobSupervisor(
            store=ArtifactStore(root=store_root), workers=2, resume=True
        )
        revived.start()
        assert revived.counters.resumed == 3
        end = time.monotonic() + DEADLINE
        while time.monotonic() < end:
            records = revived.jobs()
            assert {r.id for r in records} == {queued.id, also.id, other.id}
            if all(r.state in ("done", "failed") for r in records):
                break
            time.sleep(0.02)
        states = {r.id: r for r in revived.jobs()}
        assert all(r.state == "done" for r in states.values())
        assert all(r.resumed for r in states.values())
        revived.drain()

        # The recovered artifacts are bit-identical to a direct run.
        for want_profiles, record in (
            (True, states[queued.id]), (False, states[other.id]),
        ):
            [(kind, key)] = record.artifacts
            body = ArtifactStore(root=store_root).payload_bytes(kind, key)
            direct_key, direct_body = direct_payload_bytes(
                tmp_path, want_profiles=want_profiles
            )
            assert (key, body) == (direct_key, direct_body)

    def test_resume_trusts_only_store_for_lost_done_events(self, tmp_path):
        # A job whose artifacts landed but whose "done" journal event was
        # lost with the process resumes as an instant warm completion.
        store_root = tmp_path / "served"
        first = JobSupervisor(store=ArtifactStore(root=store_root))
        record = first.submit(JobSpec.from_dict(SPEC))
        compute_pair((
            BENCH, THREADS, SCALE, str(store_root), True, False, None,
        ))
        revived = JobSupervisor(
            store=ArtifactStore(root=store_root), resume=True
        )
        revived.start()
        restored = revived.job(record.id)
        assert restored.state == "done" and restored.cached
        revived.drain()

    def test_sigterm_drains_gracefully_and_resume_finishes(self, tmp_path):
        store_root = tmp_path / "served"
        ready = tmp_path / "ready.json"
        repo_root = pathlib.Path(__file__).resolve().parent.parent
        env = dict(
            os.environ,
            PYTHONPATH=str(repo_root / "src"),
            REPRO_STORE_DIR=str(store_root),
            # Every pass sleeps, so the backlog outlives the SIGTERM.
            REPRO_FAULTS="runner.task:latency:seconds=2,max_attempts=99",
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--workers", "1", "--quiet", "--ready-file", str(ready)],
            env=env, cwd=str(repo_root),
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )
        try:
            end = time.monotonic() + 60
            while not ready.is_file() and time.monotonic() < end:
                assert proc.poll() is None, proc.stderr.read().decode()
                time.sleep(0.05)
            info = json.loads(ready.read_text())
            client = Client((info["host"], info["port"]))
            ids = []
            for scale in (SCALE, SCALE * 2):
                status, record = client.post(
                    "/jobs", dict(SPEC, scale=scale)
                )
                assert status == 202
                ids.append(record["id"])
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0  # graceful drain exits 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

        journal = store_root / "serve" / "journal.jsonl"
        assert journal.is_file()
        revived = JobSupervisor(
            store=ArtifactStore(root=store_root), workers=2, resume=True
        )
        revived.start()
        end = time.monotonic() + DEADLINE
        while time.monotonic() < end:
            if all(r.state in ("done", "failed") for r in revived.jobs()):
                break
            time.sleep(0.05)
        states = {r.id: r.state for r in revived.jobs()}
        assert states == {job_id: "done" for job_id in ids}
        revived.drain()
        # The resumed half-scale artifact is bit-identical to direct.
        record = revived.job(ids[0])
        [(kind, key)] = record.artifacts
        body = ArtifactStore(root=store_root).payload_bytes(kind, key)
        direct_key, direct_body = direct_payload_bytes(tmp_path)
        assert (key, body) == (direct_key, direct_body)


class TestFaultSurface:
    def test_injected_request_fault_is_structured_5xx(self, service):
        svc, client = service
        install_plan(FaultPlan.parse(
            "serve.request:exception:match=GET /stats"
        ), export=False)
        status, body = client.get("/stats")
        assert status == 503
        assert "injected" in body["error"]
        # Unmatched routes are untouched, and the service stays alive.
        status, health = client.get("/healthz")
        assert (status, health["status"]) == (200, "ok")
        uninstall_plan()
        assert client.get("/stats")[0] == 200

    def test_injected_request_io_error_is_structured_5xx(self, service):
        svc, client = service
        install_plan(FaultPlan.parse(
            "serve.request:io_error:match=GET /jobs"
        ), export=False)
        status, body = client.get("/jobs")
        assert status == 503 and "injected" in body["error"]

    def test_transient_runner_fault_retries_to_success(self, service):
        svc, client = service
        # Default max_attempts=1: the first attempt faults, the retry
        # succeeds — the served job inherits the batch retry budget.
        install_plan(
            FaultPlan.parse(f"runner.task:exception:match={BENCH}"),
            export=False,
        )
        status, record = client.post("/jobs", SPEC)
        done = client.wait(record["id"])
        assert done["state"] == "done"
        assert done["attempts"] == 2
        assert any("injected" in e for e in done["errors"])

    def test_persistent_runner_fault_fails_structured(self, service):
        svc, client = service
        install_plan(FaultPlan.parse(
            f"runner.task:exception:max_attempts=99,match={BENCH}"
        ), export=False)
        status, record = client.post("/jobs", SPEC)
        failed = client.wait(record["id"])
        assert failed["state"] == "failed"
        assert "injected" in failed["error"]
        assert failed["artifacts"] == []
        # The predicted artifact was never written: fetch is a 404 miss.
        [(kind, key)] = JobSpec.from_dict(SPEC).artifacts()
        assert client.get(f"/artifacts/{kind}/{key}")[0] == 404

    def test_draining_submission_raises_for_library_callers(self, tmp_path):
        supervisor = JobSupervisor(store=ArtifactStore(root=tmp_path / "s"))
        supervisor.begin_drain()
        with pytest.raises(ServiceDrainingError):
            supervisor.submit(JobSpec.from_dict(SPEC))


class TestSubmissionSchema:
    def test_malformed_fuzz_name_is_a_loud_400(self, service):
        svc, client = service
        status, body = client.post(
            "/jobs", dict(SPEC, workload="fuzz-007")
        )
        assert status == 400
        assert "fuzz-7" in body["error"]  # points at the canonical name

    def test_pathless_trace_name_is_a_loud_400(self, service):
        svc, client = service
        status, body = client.post("/jobs", dict(SPEC, workload="trace:"))
        assert status == 400
        assert "trace:<path" in body["error"]

    def test_unknown_fields_and_kinds_are_loud_400s(self, service):
        svc, client = service
        assert client.post("/jobs", dict(SPEC, nope=1))[0] == 400
        assert client.post("/jobs", {"kind": "dance"})[0] == 400
        assert client.post("/jobs", {"kind": "figure"})[0] == 400
        assert client.post(
            "/jobs", {"kind": "figure", "figure": "fig1", "threads": 4}
        )[0] == 400
        status, body = client.post("/jobs", dict(SPEC, scale=-1))
        assert status == 400 and "scale" in body["error"]

    def test_dynamic_names_round_trip_the_json_schema(self, tmp_path):
        # The regression this PR fixes: fuzz-<seed> and trace:<path>
        # names must survive spec -> JSON -> spec bit-identically.
        for payload in (
            dict(SPEC, workload="fuzz-7"),
            dict(SPEC, workload=f"trace:{tmp_path}/t.rpt"),
            {"kind": "figure", "figure": "fig1", "scale": 0.25,
             "benchmarks": ["npb-is", "fuzz-3"]},
            {"kind": "sweep", "scale": 0.25,
             "machines": ["table1-8core"]},
        ):
            spec = JobSpec.from_dict(payload)
            again = JobSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
            assert again == spec
            assert again.fingerprint() == spec.fingerprint()

    def test_non_canonical_names_rejected_in_benchmarks_too(self):
        with pytest.raises(Exception, match="fuzz-12"):
            JobSpec.from_dict({
                "kind": "figure", "figure": "fig1",
                "benchmarks": ["fuzz-012"],
            })


class TestArtifactFetch:
    def test_corrupt_artifact_is_a_structured_404_not_a_500(self, service):
        svc, client = service
        _, record = client.post("/jobs", SPEC)
        done = client.wait(record["id"])
        [(kind, key)] = done["artifacts"]
        path = svc.store.path_for(kind, key)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF  # bit-flip mid-body
        path.write_bytes(bytes(blob))

        status, body = client.get(f"/artifacts/{kind}/{key}")
        assert status == 404  # miss semantics, not an internal error
        assert key in body["error"]
        assert not path.exists()  # corrupt artifact unlinked (heals)
        assert client.get(f"/artifacts/{kind}/{key}")[0] == 404

    def test_unknown_artifact_is_404(self, service):
        svc, client = service
        assert client.get("/artifacts/profiles/deadbeef")[0] == 404
