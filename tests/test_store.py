"""Tests for the persistent artifact store and its runner integration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import BarrierPointPipeline
from repro.experiments import common
from repro.experiments.common import ExperimentRunner, _pair_key
from repro.store import ArtifactStore, config_fingerprint, code_fingerprint
from repro.store import fingerprint as fingerprint_mod

SCALE = 0.1
BENCH = "npb-is"


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(root=tmp_path / "store")


def make_runner(tmp_path, **kwargs):
    kwargs.setdefault("scale", SCALE)
    kwargs.setdefault("benchmarks", (BENCH,))
    kwargs.setdefault("store", ArtifactStore(root=tmp_path / "store"))
    return ExperimentRunner(**kwargs)


def forbid_compute(monkeypatch):
    """Make recomputation an error, so only store/memo hits can succeed."""

    def _boom(self, workload):
        raise AssertionError("expensive pass recomputed despite store hit")

    monkeypatch.setattr(BarrierPointPipeline, "profile", _boom)
    monkeypatch.setattr(BarrierPointPipeline, "full_run", _boom)


class TestArtifactStore:
    def test_round_trip(self, store):
        key = store.derive_key(kind="demo", x=1)
        payload = {"arr": np.arange(5), "s": "text"}
        assert store.get("demo", key) is None
        store.put("demo", key, payload)
        loaded = store.get("demo", key)
        assert loaded["s"] == "text"
        assert np.array_equal(loaded["arr"], payload["arr"])
        assert store.hits == 1 and store.misses == 1

    def test_key_changes_with_parts(self):
        base = ArtifactStore.derive_key(workload="a", scale=0.1)
        assert base != ArtifactStore.derive_key(workload="a", scale=0.2)
        assert base != ArtifactStore.derive_key(workload="b", scale=0.1)
        assert base == ArtifactStore.derive_key(scale=0.1, workload="a")

    def test_disabled_store_is_inert(self, tmp_path):
        store = ArtifactStore(root=tmp_path / "s", enabled=False)
        key = store.derive_key(x=1)
        assert store.put("demo", key, "payload") is None
        assert store.get("demo", key) is None
        assert not (tmp_path / "s").exists()

    def test_truncated_file_is_a_miss(self, store):
        key = store.derive_key(x="trunc")
        path = store.put("demo", key, list(range(1000)))
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        assert store.get("demo", key) is None
        assert not path.exists()  # corrupt file unlinked
        # ... and get_or_compute heals it.
        assert store.get_or_compute("demo", key, lambda: "fresh") == "fresh"
        assert store.get("demo", key) == "fresh"

    def test_garbage_file_is_a_miss(self, store):
        key = store.derive_key(x="garbage")
        path = store.put("demo", key, "payload")
        path.write_bytes(b"\x80\x04not a valid artifact at all")
        assert store.get("demo", key) is None

    def test_tampered_body_is_a_miss(self, store):
        key = store.derive_key(x="tamper")
        path = store.put("demo", key, "payload")
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        assert store.get("demo", key) is None

    def test_get_or_compute_caches_none_payload(self, store):
        key = store.derive_key(x="none")
        calls = []

        def compute():
            calls.append(1)
            return None

        assert store.get_or_compute("demo", key, compute) is None
        assert store.get_or_compute("demo", key, compute) is None
        assert calls == [1]  # stored None is a hit, not a recompute

    def test_clear_and_size(self, store):
        store.put("demo", store.derive_key(x=1), "a")
        store.put("other", store.derive_key(x=2), "b")
        assert store.size_bytes() > 0
        freed = store.clear()
        assert freed > 0
        assert store.size_bytes() == 0
        assert store.clear() == 0


class TestFingerprints:
    def test_config_fingerprint_stability(self):
        from repro.config import simpoint_defaults, table1_8core

        assert table1_8core().fingerprint() == table1_8core().fingerprint()
        assert table1_8core().fingerprint() != simpoint_defaults().fingerprint()
        assert config_fingerprint({"a": 1, "b": 2}) == config_fingerprint(
            {"b": 2, "a": 1}
        )

    def test_config_fingerprint_rejects_opaque_objects(self):
        with pytest.raises(TypeError):
            config_fingerprint(object())

    def test_code_fingerprint_cached_and_stable(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 16


class TestRunnerIntegration:
    def test_cross_runner_reuse(self, tmp_path, monkeypatch):
        writer = make_runner(tmp_path)
        profiles = writer.profiles(BENCH, 8)
        full = writer.full(BENCH, 8)

        # A fresh runner (same config, same store) must not recompute.
        forbid_compute(monkeypatch)
        reader = make_runner(tmp_path)
        reloaded_profiles = reader.profiles(BENCH, 8)
        reloaded_full = reader.full(BENCH, 8)

        assert len(reloaded_profiles) == len(profiles)
        for a, b in zip(reloaded_profiles, profiles):
            assert np.array_equal(a.bbv, b.bbv)
            assert np.array_equal(a.ldv, b.ldv)
            assert a.per_thread_instructions == b.per_thread_instructions
        assert reloaded_full.app.cycles == full.app.cycles
        assert [r.to_state() for r in reloaded_full.regions] == [
            r.to_state() for r in full.regions
        ]

    def test_miss_on_scale_change(self, tmp_path, monkeypatch):
        make_runner(tmp_path).profiles(BENCH, 8)
        forbid_compute(monkeypatch)
        other = make_runner(tmp_path, scale=0.12)
        with pytest.raises(AssertionError, match="recomputed"):
            other.profiles(BENCH, 8)

    def test_miss_on_code_change(self, tmp_path, monkeypatch):
        make_runner(tmp_path).profiles(BENCH, 8)
        monkeypatch.setattr(
            fingerprint_mod, "_code_fingerprint_cache", "0" * 16
        )
        forbid_compute(monkeypatch)
        with pytest.raises(AssertionError, match="recomputed"):
            make_runner(tmp_path).profiles(BENCH, 8)

    def test_corrupt_artifact_recomputes(self, tmp_path):
        writer = make_runner(tmp_path)
        baseline = writer.full(BENCH, 8)
        key = _pair_key(SCALE, BENCH, 8)
        path = writer.store.path_for("full", key)
        path.write_bytes(path.read_bytes()[:40])

        recovered = make_runner(tmp_path).full(BENCH, 8)
        assert recovered.to_state() == baseline.to_state()
        # The recompute healed the store for the next reader.
        assert make_runner(tmp_path).store.get("full", key) is not None

    def test_runner_without_store(self, tmp_path):
        runner = make_runner(tmp_path, store=None)
        assert runner.profiles(BENCH, 8)
        assert not (tmp_path / "store").exists()


class TestParallelPrefetch:
    def test_prefetch_populates_store_and_memo(self, tmp_path, monkeypatch):
        runner = make_runner(tmp_path, workers=2)
        computed = runner.prefetch(pairs=[(BENCH, 8)])
        assert computed == 2  # profiles + full

        # Memoized in the parent without further compute...
        forbid_compute(monkeypatch)
        assert runner.profiles(BENCH, 8)
        assert runner.full(BENCH, 8)

        # ...and persisted by the *worker process* for other processes.
        reader = make_runner(tmp_path)
        assert reader.profiles(BENCH, 8)
        assert reader.full(BENCH, 8)
        assert reader.store.hits == 2

    def test_prefetch_skips_available_work(self, tmp_path):
        runner = make_runner(tmp_path, workers=2)
        assert runner.prefetch(pairs=[(BENCH, 8)]) == 2
        assert runner.prefetch(pairs=[(BENCH, 8)]) == 0
        # A fresh runner sees the store and also does nothing.
        assert make_runner(tmp_path, workers=2).prefetch(
            pairs=[(BENCH, 8)]
        ) == 0

    def test_prefetch_serial_runner_is_noop(self, tmp_path):
        runner = make_runner(tmp_path, workers=0)
        assert runner.prefetch(pairs=[(BENCH, 8)]) == 0

    def test_parallel_results_match_serial(self, tmp_path):
        serial = make_runner(tmp_path, store=None)
        parallel = make_runner(tmp_path, workers=2)
        parallel.prefetch(pairs=[(BENCH, 8)])

        sp, pp = serial.profiles(BENCH, 8), parallel.profiles(BENCH, 8)
        assert len(sp) == len(pp)
        for a, b in zip(sp, pp):
            assert np.array_equal(a.bbv, b.bbv)
            assert np.array_equal(a.ldv, b.ldv)
        assert (
            serial.full(BENCH, 8).to_state()
            == parallel.full(BENCH, 8).to_state()
        )
