"""Tests for the persistent artifact store and its runner integration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import BarrierPointPipeline
from repro.experiments import common
from repro.experiments.common import ExperimentRunner, _pair_key
from repro.store import ArtifactStore, config_fingerprint, code_fingerprint
from repro.store import fingerprint as fingerprint_mod

SCALE = 0.1
BENCH = "npb-is"


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(root=tmp_path / "store")


def make_runner(tmp_path, **kwargs):
    kwargs.setdefault("scale", SCALE)
    kwargs.setdefault("benchmarks", (BENCH,))
    kwargs.setdefault("store", ArtifactStore(root=tmp_path / "store"))
    return ExperimentRunner(**kwargs)


def forbid_compute(monkeypatch):
    """Make recomputation an error, so only store/memo hits can succeed."""

    def _boom(self, workload):
        raise AssertionError("expensive pass recomputed despite store hit")

    monkeypatch.setattr(BarrierPointPipeline, "profile", _boom)
    monkeypatch.setattr(BarrierPointPipeline, "full_run", _boom)


class TestArtifactStore:
    def test_round_trip(self, store):
        key = store.derive_key(kind="demo", x=1)
        payload = {"arr": np.arange(5), "s": "text"}
        assert store.get("demo", key) is None
        store.put("demo", key, payload)
        loaded = store.get("demo", key)
        assert loaded["s"] == "text"
        assert np.array_equal(loaded["arr"], payload["arr"])
        assert store.hits == 1 and store.misses == 1

    def test_key_changes_with_parts(self):
        base = ArtifactStore.derive_key(workload="a", scale=0.1)
        assert base != ArtifactStore.derive_key(workload="a", scale=0.2)
        assert base != ArtifactStore.derive_key(workload="b", scale=0.1)
        assert base == ArtifactStore.derive_key(scale=0.1, workload="a")

    def test_disabled_store_is_inert(self, tmp_path):
        store = ArtifactStore(root=tmp_path / "s", enabled=False)
        key = store.derive_key(x=1)
        assert store.put("demo", key, "payload") is None
        assert store.get("demo", key) is None
        assert not (tmp_path / "s").exists()

    def test_truncated_file_is_a_miss(self, store):
        key = store.derive_key(x="trunc")
        path = store.put("demo", key, list(range(1000)))
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        assert store.get("demo", key) is None
        assert not path.exists()  # corrupt file unlinked
        # ... and get_or_compute heals it.
        assert store.get_or_compute("demo", key, lambda: "fresh") == "fresh"
        assert store.get("demo", key) == "fresh"

    def test_garbage_file_is_a_miss(self, store):
        key = store.derive_key(x="garbage")
        path = store.put("demo", key, "payload")
        path.write_bytes(b"\x80\x04not a valid artifact at all")
        assert store.get("demo", key) is None

    def test_tampered_body_is_a_miss(self, store):
        key = store.derive_key(x="tamper")
        path = store.put("demo", key, "payload")
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        assert store.get("demo", key) is None

    def test_get_or_compute_caches_none_payload(self, store):
        key = store.derive_key(x="none")
        calls = []

        def compute():
            calls.append(1)
            return None

        assert store.get_or_compute("demo", key, compute) is None
        assert store.get_or_compute("demo", key, compute) is None
        assert calls == [1]  # stored None is a hit, not a recompute

    def test_clear_and_size(self, store):
        store.put("demo", store.derive_key(x=1), "a")
        store.put("other", store.derive_key(x=2), "b")
        assert store.size_bytes() > 0
        freed = store.clear()
        assert freed > 0
        assert store.size_bytes() == 0
        assert store.clear() == 0


class TestFingerprints:
    def test_config_fingerprint_stability(self):
        from repro.config import simpoint_defaults, table1_8core

        assert table1_8core().fingerprint() == table1_8core().fingerprint()
        assert table1_8core().fingerprint() != simpoint_defaults().fingerprint()
        assert config_fingerprint({"a": 1, "b": 2}) == config_fingerprint(
            {"b": 2, "a": 1}
        )

    def test_config_fingerprint_rejects_opaque_objects(self):
        with pytest.raises(TypeError):
            config_fingerprint(object())

    def test_code_fingerprint_cached_and_stable(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 16


class TestRunnerIntegration:
    def test_cross_runner_reuse(self, tmp_path, monkeypatch):
        writer = make_runner(tmp_path)
        profiles = writer.profiles(BENCH, 8)
        full = writer.full(BENCH, 8)

        # A fresh runner (same config, same store) must not recompute.
        forbid_compute(monkeypatch)
        reader = make_runner(tmp_path)
        reloaded_profiles = reader.profiles(BENCH, 8)
        reloaded_full = reader.full(BENCH, 8)

        assert len(reloaded_profiles) == len(profiles)
        for a, b in zip(reloaded_profiles, profiles):
            assert np.array_equal(a.bbv, b.bbv)
            assert np.array_equal(a.ldv, b.ldv)
            assert a.per_thread_instructions == b.per_thread_instructions
        assert reloaded_full.app.cycles == full.app.cycles
        assert [r.to_state() for r in reloaded_full.regions] == [
            r.to_state() for r in full.regions
        ]

    def test_miss_on_scale_change(self, tmp_path, monkeypatch):
        make_runner(tmp_path).profiles(BENCH, 8)
        forbid_compute(monkeypatch)
        other = make_runner(tmp_path, scale=0.12)
        with pytest.raises(AssertionError, match="recomputed"):
            other.profiles(BENCH, 8)

    def test_miss_on_code_change(self, tmp_path, monkeypatch):
        make_runner(tmp_path).profiles(BENCH, 8)
        monkeypatch.setattr(
            fingerprint_mod, "_code_fingerprint_cache", "0" * 16
        )
        forbid_compute(monkeypatch)
        with pytest.raises(AssertionError, match="recomputed"):
            make_runner(tmp_path).profiles(BENCH, 8)

    def test_corrupt_artifact_recomputes(self, tmp_path):
        writer = make_runner(tmp_path)
        baseline = writer.full(BENCH, 8)
        key = _pair_key(SCALE, BENCH, 8)
        path = writer.store.path_for("full", key)
        path.write_bytes(path.read_bytes()[:40])

        recovered = make_runner(tmp_path).full(BENCH, 8)
        assert recovered.to_state() == baseline.to_state()
        # The recompute healed the store for the next reader.
        assert make_runner(tmp_path).store.get("full", key) is not None

    def test_runner_without_store(self, tmp_path):
        runner = make_runner(tmp_path, store=None)
        assert runner.profiles(BENCH, 8)
        assert not (tmp_path / "store").exists()


class TestParallelPrefetch:
    def test_prefetch_populates_store_and_memo(self, tmp_path, monkeypatch):
        runner = make_runner(tmp_path, workers=2)
        computed = runner.prefetch(pairs=[(BENCH, 8)])
        assert computed == 2  # profiles + full

        # Memoized in the parent without further compute...
        forbid_compute(monkeypatch)
        assert runner.profiles(BENCH, 8)
        assert runner.full(BENCH, 8)

        # ...and persisted by the *worker process* for other processes.
        reader = make_runner(tmp_path)
        assert reader.profiles(BENCH, 8)
        assert reader.full(BENCH, 8)
        assert reader.store.hits == 2

    def test_prefetch_skips_available_work(self, tmp_path):
        runner = make_runner(tmp_path, workers=2)
        assert runner.prefetch(pairs=[(BENCH, 8)]) == 2
        assert runner.prefetch(pairs=[(BENCH, 8)]) == 0
        # A fresh runner sees the store and also does nothing.
        assert make_runner(tmp_path, workers=2).prefetch(
            pairs=[(BENCH, 8)]
        ) == 0

    def test_prefetch_serial_runner_is_noop(self, tmp_path):
        runner = make_runner(tmp_path, workers=0)
        assert runner.prefetch(pairs=[(BENCH, 8)]) == 0

    def test_parallel_results_match_serial(self, tmp_path):
        serial = make_runner(tmp_path, store=None)
        parallel = make_runner(tmp_path, workers=2)
        parallel.prefetch(pairs=[(BENCH, 8)])

        sp, pp = serial.profiles(BENCH, 8), parallel.profiles(BENCH, 8)
        assert len(sp) == len(pp)
        for a, b in zip(sp, pp):
            assert np.array_equal(a.bbv, b.bbv)
            assert np.array_equal(a.ldv, b.ldv)
        assert (
            serial.full(BENCH, 8).to_state()
            == parallel.full(BENCH, 8).to_state()
        )


class TestJanitor:
    """GC sweeps: orphan reaping, TTL expiry, LRU quota eviction."""

    def _fill(self, store, n=4, pad=1000):
        """Store ``n`` artifacts and return their keys in insert order."""
        keys = []
        for i in range(n):
            key = store.derive_key(i=i)
            store.put("demo", key, {"i": i, "pad": "x" * pad})
            keys.append(key)
        return keys

    def test_parse_size(self):
        from repro.store.janitor import parse_size

        assert parse_size("1024") == 1024
        assert parse_size("2K") == 2048
        assert parse_size("1.5kb") == 1536
        assert parse_size("3M") == 3 * 1024**2
        assert parse_size(" 2G ") == 2 * 1024**3
        for bad in ("", "12Q", "-5", "big"):
            with pytest.raises(common.ConfigError):
                parse_size(bad)

    def test_parse_duration(self):
        from repro.store.janitor import parse_duration

        assert parse_duration("3600") == 3600.0
        assert parse_duration("90m") == 5400.0
        assert parse_duration("12h") == 43200.0
        assert parse_duration("7d") == 604800.0
        assert parse_duration("1w") == 604800.0
        for bad in ("", "7y", "-1", "soon"):
            with pytest.raises(common.ConfigError):
                parse_duration(bad)

    def test_reaps_orphan_tmp_past_grace(self, store):
        import os
        import time

        from repro.store.janitor import collect_garbage

        self._fill(store, n=1)
        young = store.root / "demo" / "young.tmp"
        young.write_bytes(b"in flight")
        old = store.root / "demo" / "old.tmp"
        old.write_bytes(b"stranded")
        stamp = time.time() - 7200
        os.utime(old, (stamp, stamp))

        stats = collect_garbage(store, tmp_grace_seconds=3600)
        assert stats.reaped_tmp == 1
        assert young.exists() and not old.exists()
        assert stats.kept_files == 1  # the artifact; .tmp never counts

    def test_ttl_expires_old_artifacts(self, store):
        import os
        import time

        from repro.store.janitor import collect_garbage

        keys = self._fill(store, n=3)
        stale = store.path_for("demo", keys[0])
        stamp = time.time() - 7200
        os.utime(stale, (stamp, stamp))

        stats = collect_garbage(store, ttl_seconds=3600)
        assert stats.expired == 1 and stats.kept_files == 2
        assert store.get("demo", keys[0]) is None
        assert store.get("demo", keys[1]) is not None

    def test_quota_evicts_lru_and_read_hits_refresh(self, store):
        import os
        import time

        from repro.store.janitor import collect_garbage

        keys = self._fill(store, n=3)
        # Age everything, then *read* the oldest: the hit's mtime touch
        # must promote it past the untouched middle artifact.
        for i, key in enumerate(keys):
            stamp = time.time() - 1000 * (len(keys) - i)
            os.utime(store.path_for("demo", key), (stamp, stamp))
        assert store.get("demo", keys[0]) is not None

        one = store.path_for("demo", keys[0]).stat().st_size
        stats = collect_garbage(store, max_bytes=2 * one)
        assert stats.evicted == 1
        assert store.has("demo", keys[0])      # recently read: kept
        assert not store.has("demo", keys[1])  # LRU: evicted
        assert store.has("demo", keys[2])
        assert stats.kept_bytes <= 2 * one

    def test_dry_run_deletes_nothing(self, store):
        from repro.store.janitor import collect_garbage

        keys = self._fill(store, n=2)
        stats = collect_garbage(store, max_bytes=0, dry_run=True)
        assert stats.evicted == 2 and stats.dry_run
        assert "would remove" in stats.render(store.root)
        assert all(store.has("demo", k) for k in keys)

    def test_prunes_empty_kind_directories(self, store):
        from repro.store.janitor import collect_garbage

        self._fill(store, n=2)
        assert (store.root / "demo").is_dir()
        collect_garbage(store, max_bytes=0)
        assert not (store.root / "demo").exists()

    def test_missing_root_is_empty_sweep(self, tmp_path):
        from repro.store.janitor import collect_garbage

        store = ArtifactStore(root=tmp_path / "never-created")
        stats = collect_garbage(store)
        assert stats.kept_files == 0 and stats.freed_bytes == 0

    def test_gc_from_env_gating(self, store):
        from repro.store.janitor import gc_from_env

        self._fill(store, n=2)
        assert gc_from_env(store, {}) is None
        assert gc_from_env(store, {"REPRO_STORE_GC": "0"}) is None
        disabled = ArtifactStore(root=store.root, enabled=False)
        assert gc_from_env(disabled, {"REPRO_STORE_GC": "1"}) is None

        stats = gc_from_env(store, {
            "REPRO_STORE_GC": "1", "REPRO_STORE_MAX_BYTES": "0",
        })
        assert stats is not None and stats.evicted == 2

    def test_runner_exit_hook_sweeps(self, tmp_path, monkeypatch):
        """REPRO_STORE_GC=1 makes every battery invocation end in a sweep."""
        from repro.experiments import battery

        monkeypatch.setenv("REPRO_STORE_GC", "1")
        monkeypatch.setenv("REPRO_STORE_MAX_BYTES", "0")
        runner = make_runner(tmp_path, workers=0)
        battery.run_experiments(runner, ["fig1"])
        assert runner.store.size_bytes() == 0


class TestPayloadBytes:
    """The artifact-by-key raw read path behind ``GET /artifacts/...``."""

    def test_returns_exact_on_disk_body(self, store):
        key = store.derive_key(x="body")
        payload = {"arr": np.arange(16), "s": "text"}
        path = store.put("demo", key, payload)
        body = store.payload_bytes("demo", key)
        assert body is not None
        assert path.read_bytes().endswith(body)  # the bytes after the header
        import pickle

        (loaded,) = pickle.loads(body)
        assert loaded["s"] == "text"
        assert np.array_equal(loaded["arr"], payload["arr"])

    def test_miss_and_disabled_are_none(self, store, tmp_path):
        assert store.payload_bytes("demo", store.derive_key(x="no")) is None
        disabled = ArtifactStore(root=tmp_path / "off", enabled=False)
        assert disabled.payload_bytes("demo", "any") is None

    def test_bit_flip_is_a_miss_and_heals(self, store):
        key = store.derive_key(x="flip")
        path = store.put("demo", key, list(range(500)))
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x01
        path.write_bytes(bytes(blob))
        assert store.payload_bytes("demo", key) is None
        assert not path.exists()  # corrupt file unlinked, next put heals
        store.put("demo", key, list(range(500)))
        assert store.payload_bytes("demo", key) is not None

    def test_truncated_header_is_a_miss(self, store):
        key = store.derive_key(x="short")
        path = store.put("demo", key, "payload")
        path.write_bytes(path.read_bytes()[:8])
        assert store.payload_bytes("demo", key) is None


class TestPutCount:
    """The process-wide write counter behind the coalescing proof."""

    def test_counts_successful_puts_across_stores(self, store, tmp_path):
        from repro.store import put_count

        before = put_count()
        store.put("demo", store.derive_key(x=1), "a")
        other = ArtifactStore(root=tmp_path / "other")
        other.put("demo", other.derive_key(x=2), "b")
        assert put_count() - before == 2

    def test_disabled_store_does_not_count(self, tmp_path):
        from repro.store import put_count

        before = put_count()
        disabled = ArtifactStore(root=tmp_path / "off", enabled=False)
        disabled.put("demo", "k", "payload")
        assert put_count() == before
