"""Tests for the core timing model, barrier cost and machine simulator."""

import math

import numpy as np
import pytest

from repro.config import CoreConfig
from repro.cpu.branch import BranchPredictor
from repro.cpu.interval import IntervalCore
from repro.errors import SimulationError
from repro.sim.barrier import barrier_cost_cycles
from repro.sim.machine import Machine
from repro.sim.results import AppMetrics, RegionMetrics
from repro.sim.warmup import ColdWarmup
from repro.trace.program import BasicBlock, BlockExec, RegionTrace, ThreadTrace
from repro.workloads import get_workload
from tests.conftest import tiny_machine


def _block(instructions=40, mispredict=0.0, mlp=1.0):
    return BasicBlock(bb_id=0, name="k", instructions=instructions,
                      mispredict_rate=mispredict, mlp=mlp,
                      code_lines=((1 << 41),))


class TestBranchPredictor:
    def test_expected_penalty(self):
        predictor = BranchPredictor(CoreConfig())
        penalty = predictor.penalty_cycles(_block(mispredict=0.1), 100)
        assert penalty == pytest.approx(0.1 * 100 * 8)
        assert predictor.mispredictions == pytest.approx(10.0)

    def test_zero_rate(self):
        predictor = BranchPredictor(CoreConfig())
        assert predictor.penalty_cycles(_block(), 1000) == 0.0


class TestIntervalCore:
    def test_dispatch_bound(self):
        core = IntervalCore(CoreConfig())
        exec_ = BlockExec(_block(instructions=40), count=2)
        cycles = core.block_cycles(exec_, mem_stall=0.0, fetch_stall=0.0)
        assert cycles == pytest.approx(80 / 4)
        assert core.instructions_retired == 80

    def test_stalls_added(self):
        core = IntervalCore(CoreConfig())
        exec_ = BlockExec(_block(), count=1)
        cycles = core.block_cycles(exec_, mem_stall=100.0, fetch_stall=8.0)
        assert cycles == pytest.approx(40 / 4 + 108)

    def test_reset(self):
        core = IntervalCore(CoreConfig())
        core.block_cycles(BlockExec(_block(), count=1), 0.0, 0.0)
        core.reset()
        assert core.instructions_retired == 0
        assert core.cycles_busy == 0.0


class TestBarrierCost:
    def test_single_thread_free(self):
        assert barrier_cost_cycles(tiny_machine(), 1) == 0.0

    def test_log_scaling(self):
        machine = tiny_machine()
        c4 = barrier_cost_cycles(machine, 4)
        c8 = barrier_cost_cycles(machine, 8)
        assert c4 == machine.barrier_hop_cycles * 2
        assert c8 == machine.barrier_hop_cycles * 3

    def test_multi_socket_surcharge(self):
        single = barrier_cost_cycles(tiny_machine(), 4)
        multi = barrier_cost_cycles(tiny_machine(num_sockets=2), 8)
        assert multi > single


class TestRegionMetrics:
    def _metrics(self, **kwargs):
        from repro.mem.hierarchy import AccessCounters
        defaults = dict(
            region_index=0, phase="p", instructions=1000, cycles=500.0,
            per_thread_cycles=(500.0,), counters=AccessCounters(),
            barrier_cycles=0.0, bandwidth_limited=False, frequency_ghz=2.66,
        )
        defaults.update(kwargs)
        return RegionMetrics(**defaults)

    def test_derived_metrics(self):
        metrics = self._metrics()
        assert metrics.aggregate_ipc == pytest.approx(2.0)
        assert metrics.cpi == pytest.approx(0.5)
        assert metrics.time_seconds == pytest.approx(500 / 2.66e9)

    def test_dram_apki(self):
        from repro.mem.hierarchy import AccessCounters
        metrics = self._metrics(
            counters=AccessCounters(l3_misses=5, writebacks=5))
        assert metrics.dram_apki == pytest.approx(10.0)

    def test_invalid_rejected(self):
        with pytest.raises(SimulationError):
            self._metrics(instructions=0)
        with pytest.raises(SimulationError):
            self._metrics(cycles=0.0)


class TestAppMetrics:
    def test_from_regions(self):
        machine = Machine(tiny_machine())
        workload = get_workload("npb-is", 4, scale=0.1)
        full = machine.run_full(workload)
        app = full.app
        assert app.num_regions == workload.num_regions
        assert app.instructions == sum(r.instructions for r in full.regions)
        assert app.cycles == pytest.approx(
            sum(r.cycles for r in full.regions))

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            AppMetrics.from_regions([])


class TestMachine:
    def test_full_run_deterministic(self):
        workload = get_workload("npb-is", 4, scale=0.1)
        a = Machine(tiny_machine()).run_full(workload)
        b = Machine(tiny_machine()).run_full(workload)
        assert a.app.cycles == pytest.approx(b.app.cycles)
        assert a.app.dram_accesses == b.app.dram_accesses

    def test_region_indices_in_order(self):
        workload = get_workload("npb-is", 4, scale=0.1)
        full = Machine(tiny_machine()).run_full(workload)
        assert [r.region_index for r in full.regions] == list(
            range(workload.num_regions))

    def test_too_many_threads_rejected(self):
        workload = get_workload("npb-is", 8, scale=0.1)
        machine = Machine(tiny_machine())  # 4 cores
        with pytest.raises(SimulationError):
            machine.run_full(workload)

    def test_duration_is_slowest_thread_plus_barrier(self):
        # One thread does 10x the work of the others.
        blocks_heavy = (BlockExec(_block(instructions=4000), count=1),)
        blocks_light = (BlockExec(_block(instructions=40), count=1),)
        trace = RegionTrace(
            region_index=0, phase="t",
            threads=(
                ThreadTrace(0, blocks_heavy),
                ThreadTrace(1, blocks_light),
            ),
        )
        machine = Machine(tiny_machine())
        metrics = machine.simulate_region(trace)
        heavy_cycles = max(metrics.per_thread_cycles)
        assert metrics.cycles == pytest.approx(
            heavy_cycles + metrics.barrier_cycles)

    def test_bandwidth_limit_stretches_region(self):
        workload = get_workload("npb-cg", 4, scale=0.3)
        machine = Machine(tiny_machine())
        full = machine.run_full(workload)
        spmv = [r for r in full.regions if r.phase == "spmv"]
        assert any(r.bandwidth_limited for r in spmv)
        for r in spmv:
            if r.bandwidth_limited:
                floor = machine.hierarchy.dram.min_cycles_for_traffic(
                    list(r.counters.dram_reads_per_socket),
                    list(r.counters.dram_writebacks_per_socket),
                )
                assert r.cycles == pytest.approx(floor + r.barrier_cycles)

    def test_reset_restores_cold_state(self):
        workload = get_workload("npb-is", 4, scale=0.1)
        machine = Machine(tiny_machine())
        first = machine.run_full(workload)
        second = machine.run_full(workload)  # run_full resets internally
        assert first.app.cycles == pytest.approx(second.app.cycles)

    def test_simulate_barrierpoint_cold(self):
        workload = get_workload("npb-is", 4, scale=0.1)
        machine = Machine(tiny_machine())
        metrics = machine.simulate_barrierpoint(workload, 3, ColdWarmup())
        assert metrics.region_index == 3
        assert metrics.instructions == workload.region_trace(3).instructions

    def test_cold_barrierpoint_slower_than_warm_full_run(self):
        workload = get_workload("npb-lu", 4, scale=0.2)
        machine = Machine(tiny_machine())
        full = machine.run_full(workload)
        idx = workload.num_regions - 2
        cold = Machine(tiny_machine()).simulate_barrierpoint(
            workload, idx, ColdWarmup())
        assert cold.cycles >= full.region(idx).cycles
