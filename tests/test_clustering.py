"""Tests for the SimPoint-equivalent clustering stack."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.bic import weighted_bic
from repro.clustering.kmeans import weighted_kmeans
from repro.clustering.normalize import normalize_l1, normalize_rows
from repro.clustering.projection import random_projection
from repro.clustering.simpoint import SimPointClusterer
from repro.config import SimPointConfig
from repro.errors import ClusteringError


class TestNormalize:
    def test_l1(self):
        out = normalize_l1(np.array([1.0, 3.0]))
        assert out.tolist() == [0.25, 0.75]

    def test_zero_vector_unchanged(self):
        assert normalize_l1(np.zeros(3)).tolist() == [0, 0, 0]

    def test_negative_rejected(self):
        with pytest.raises(ClusteringError):
            normalize_l1(np.array([-1.0, 2.0]))

    def test_wrong_ndim(self):
        with pytest.raises(ClusteringError):
            normalize_l1(np.ones((2, 2)))

    def test_rows(self):
        out = normalize_rows(np.array([[2.0, 2.0], [0.0, 0.0]]))
        assert out[0].tolist() == [0.5, 0.5]
        assert out[1].tolist() == [0.0, 0.0]

    @settings(max_examples=25)
    @given(st.lists(st.floats(0, 100, allow_nan=False), min_size=1,
                    max_size=20))
    def test_l1_sums_to_one_or_zero(self, values):
        out = normalize_l1(np.asarray(values))
        total = out.sum()
        assert total == pytest.approx(1.0) or total == 0.0


class TestProjection:
    def test_reduces_dimensionality(self):
        mat = np.random.default_rng(0).random((10, 100))
        out = random_projection(mat, 15, seed=1)
        assert out.shape == (10, 15)

    def test_low_dim_passthrough(self):
        mat = np.random.default_rng(0).random((5, 10))
        out = random_projection(mat, 15, seed=1)
        assert np.array_equal(out, mat)

    def test_deterministic_in_seed(self):
        mat = np.random.default_rng(0).random((6, 50))
        assert np.array_equal(random_projection(mat, 4, 7),
                              random_projection(mat, 4, 7))
        assert not np.array_equal(random_projection(mat, 4, 7),
                                  random_projection(mat, 4, 8))

    def test_preserves_relative_distances(self):
        rng = np.random.default_rng(3)
        # Two tight clusters far apart survive projection.
        a = rng.normal(0, 0.01, (20, 200))
        b = rng.normal(5, 0.01, (20, 200))
        out = random_projection(np.vstack([a, b]), 15, seed=2)
        within = np.linalg.norm(out[0] - out[10])
        across = np.linalg.norm(out[0] - out[30])
        assert across > 5 * within

    def test_nonfinite_rejected(self):
        mat = np.full((3, 30), np.nan)
        with pytest.raises(ClusteringError):
            random_projection(mat, 4, 0)

    def test_bad_dims(self):
        with pytest.raises(ClusteringError):
            random_projection(np.ones((2, 30)), 0, 0)


class TestWeightedKMeans:
    def _two_blobs(self, n=20):
        rng = np.random.default_rng(0)
        a = rng.normal(0.0, 0.05, (n, 3))
        b = rng.normal(4.0, 0.05, (n, 3))
        return np.vstack([a, b])

    def test_separates_blobs(self):
        points = self._two_blobs()
        weights = np.ones(points.shape[0])
        result = weighted_kmeans(points, weights, 2, seed=1)
        labels = result.labels
        assert len(set(labels[:20].tolist())) == 1
        assert len(set(labels[20:].tolist())) == 1
        assert labels[0] != labels[-1]

    def test_k1_center_is_weighted_mean(self):
        points = np.array([[0.0], [10.0]])
        weights = np.array([3.0, 1.0])
        result = weighted_kmeans(points, weights, 1, seed=0)
        assert result.centers[0, 0] == pytest.approx(2.5)

    def test_weights_shift_boundaries(self):
        points = np.array([[0.0], [1.0], [10.0]])
        heavy_left = weighted_kmeans(points, np.array([100.0, 1.0, 1.0]),
                                     1, seed=0)
        heavy_right = weighted_kmeans(points, np.array([1.0, 1.0, 100.0]),
                                      1, seed=0)
        assert heavy_left.centers[0, 0] < heavy_right.centers[0, 0]

    def test_distortion_non_increasing_in_k(self):
        points = self._two_blobs()
        weights = np.ones(points.shape[0])
        distortions = [
            weighted_kmeans(points, weights, k, seed=3).distortion
            for k in (1, 2, 4)
        ]
        assert distortions[0] >= distortions[1] >= distortions[2]

    def test_duplicate_points_handled(self):
        points = np.zeros((10, 2))
        weights = np.ones(10)
        result = weighted_kmeans(points, weights, 4, seed=0)
        assert result.distortion == pytest.approx(0.0)
        assert np.isfinite(result.centers).all()

    def test_invalid_k(self):
        points = np.ones((3, 2))
        with pytest.raises(ClusteringError):
            weighted_kmeans(points, np.ones(3), 4, seed=0)
        with pytest.raises(ClusteringError):
            weighted_kmeans(points, np.ones(3), 0, seed=0)

    def test_non_positive_weights_rejected(self):
        with pytest.raises(ClusteringError):
            weighted_kmeans(np.ones((3, 2)), np.array([1.0, 0.0, 1.0]),
                            1, seed=0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 5), st.integers(0, 1000))
    def test_labels_always_valid(self, k, seed):
        rng = np.random.default_rng(seed)
        points = rng.random((12, 4))
        weights = rng.random(12) + 0.1
        result = weighted_kmeans(points, weights, k, seed=seed)
        assert result.labels.shape == (12,)
        assert set(result.labels.tolist()) <= set(range(k))
        assert np.isfinite(result.centers).all()


class TestWeightedBic:
    def test_better_fit_higher_bic(self):
        rng = np.random.default_rng(1)
        a = rng.normal(0, 0.05, (15, 3))
        b = rng.normal(3, 0.05, (15, 3))
        points = np.vstack([a, b])
        weights = np.ones(30)
        good = weighted_kmeans(points, weights, 2, seed=0)
        bad = weighted_kmeans(points, weights, 1, seed=0)
        bic_good = weighted_bic(points, weights, good.labels, good.centers)
        bic_bad = weighted_bic(points, weights, bad.labels, bad.centers)
        assert bic_good > bic_bad

    def test_overfitting_penalized_on_duplicates(self):
        # Two distinct values only: k=2 is perfect, k>2 pays the parameter
        # penalty with no likelihood gain (thanks to the variance floor).
        points = np.array([[0.0, 0.0]] * 10 + [[5.0, 5.0]] * 10)
        weights = np.ones(20)
        fits = {
            k: weighted_kmeans(points, weights, k, seed=0) for k in (2, 6)
        }
        bics = {
            k: weighted_bic(points, weights, fit.labels, fit.centers)
            for k, fit in fits.items()
        }
        assert bics[2] >= bics[6]

    def test_shape_mismatch(self):
        with pytest.raises(ClusteringError):
            weighted_bic(np.ones((4, 2)), np.ones(3),
                         np.zeros(4, dtype=int), np.ones((1, 2)))


class TestSimPointClusterer:
    def _clusterer(self, max_k=8):
        return SimPointClusterer(SimPointConfig(max_k=max_k,
                                                kmeans_restarts=2))

    def test_finds_phase_structure(self):
        rng = np.random.default_rng(5)
        phases = [rng.random(40) for _ in range(3)]
        signatures = np.vstack([
            phases[i % 3] + rng.normal(0, 1e-3, 40) for i in range(24)
        ])
        weights = np.ones(24) * 100
        result = self._clusterer().fit(signatures, weights)
        assert result.chosen_k == 3
        # regions of the same phase share labels
        for i in range(0, 24, 3):
            assert result.labels[i] == result.labels[0]

    def test_representative_is_member(self):
        rng = np.random.default_rng(6)
        signatures = rng.random((12, 20))
        weights = rng.random(12) + 1.0
        result = self._clusterer(max_k=4).fit(signatures, weights)
        for cluster, rep in enumerate(result.representatives):
            assert result.labels[rep] == cluster

    def test_single_region(self):
        result = self._clusterer().fit(np.ones((1, 5)), np.array([10.0]))
        assert result.chosen_k == 1
        assert result.representatives == (0,)

    def test_max_k_respected(self):
        rng = np.random.default_rng(7)
        signatures = rng.random((30, 10))
        result = self._clusterer(max_k=5).fit(signatures, np.ones(30))
        assert result.chosen_k <= 5

    def test_ties_prefer_heavier_representative(self):
        signatures = np.vstack([np.ones(5), np.ones(5), np.zeros(5)])
        weights = np.array([1.0, 50.0, 10.0])
        result = self._clusterer(max_k=2).fit(signatures, weights)
        cluster_of_dup = result.labels[0]
        rep = result.representatives[cluster_of_dup]
        assert rep == 1  # the heavier of the two identical regions

    def test_bad_inputs(self):
        with pytest.raises(ClusteringError):
            self._clusterer().fit(np.ones((0, 3)), np.ones(0))
        with pytest.raises(ClusteringError):
            self._clusterer().fit(np.ones((3, 3)), np.ones(4))

    def test_duplicate_heavy_signatures_keep_diagnostics_consistent(self):
        """Regression: with duplicate-heavy data the reported diagnostics
        must stay self-consistent — ``chosen_k`` keys ``bic_by_k`` while
        ``num_clusters`` counts the compacted clusters."""
        signatures = np.vstack([
            np.zeros(6) if i % 2 else np.ones(6) for i in range(12)
        ])
        result = self._clusterer(max_k=6).fit(signatures, np.ones(12))
        assert result.chosen_k in result.bic_by_k
        assert result.num_clusters == len(result.representatives)
        assert result.num_clusters <= result.chosen_k
        assert int(result.labels.max()) + 1 == result.num_clusters
        covered = sorted(
            i
            for cluster in range(result.num_clusters)
            for i in result.members_of(cluster).tolist()
        )
        assert covered == list(range(12))

    def test_empty_cluster_drop_records_selected_k(self, monkeypatch):
        """Regression: when compaction drops an empty cluster, the result
        must still report the *selected* pre-compaction k (a ``bic_by_k``
        key), with the compacted count in ``num_clusters``."""
        from types import SimpleNamespace

        from repro.clustering import simpoint as sp

        def fake_kmeans(points, weights, k, seed, max_iterations, restarts):
            if k == 3:  # cluster 1 comes back empty
                labels = np.array([0, 0, 2, 2, 0, 2])
            else:
                labels = np.arange(points.shape[0]) % k
            centers = np.vstack([
                points[labels == j].mean(axis=0)
                if np.any(labels == j) else np.zeros(points.shape[1])
                for j in range(k)
            ])
            return SimpleNamespace(labels=labels, centers=centers)

        monkeypatch.setattr(sp, "weighted_kmeans", fake_kmeans)
        # Monotone scores make the BIC rule select the largest k (3).
        monkeypatch.setattr(
            sp, "weighted_bic", lambda p, w, labels, c: float(c.shape[0])
        )
        signatures = np.arange(24, dtype=float).reshape(6, 4)
        result = SimPointClusterer(
            SimPointConfig(max_k=3, kmeans_restarts=1)
        ).fit(signatures, np.ones(6))
        assert result.chosen_k == 3
        assert result.chosen_k in result.bic_by_k
        assert result.num_clusters == 2
        assert len(result.representatives) == 2
        assert set(result.labels.tolist()) == {0, 1}  # renumbered densely

    def test_members_of(self):
        rng = np.random.default_rng(8)
        signatures = rng.random((10, 8))
        result = self._clusterer(max_k=3).fit(signatures, np.ones(10))
        seen = []
        for cluster in range(result.num_clusters):
            seen.extend(result.members_of(cluster).tolist())
        assert sorted(seen) == list(range(10))
