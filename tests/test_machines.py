"""Tests for the data-driven machine registry (repro.machines)."""

import pytest

from repro.config import MachineConfig, scaled
from repro.errors import ConfigError
from repro.machines import (
    DRAM_TIERS,
    FABRIC_TIERS,
    MACHINE_SPECS,
    build_machine,
    get_machine,
    machine_names,
    machine_summary,
    register_machine,
    resolved_spec,
    unregister_machine,
)


class TestBuiltins:
    def test_all_specs_validate(self):
        for name in machine_names():
            cfg = get_machine(name)
            assert isinstance(cfg, MachineConfig)
            assert cfg.name == name

    def test_table1_8core_matches_paper(self):
        cfg = get_machine("table1-8core")
        assert cfg.num_sockets == 1
        assert cfg.cores_per_socket == 8
        assert cfg.core.frequency_ghz == 2.66
        assert cfg.l3.size_bytes == 8 * 1024 * 1024
        assert cfg.mem.bandwidth_gbps_per_socket == DRAM_TIERS["ddr3-1066"]
        assert cfg.hierarchy == "inclusive"

    def test_wrappers_delegate_to_registry(self):
        from repro.config import table1_8core, table1_32core

        assert table1_8core() == get_machine("table1-8core")
        assert table1_32core() == get_machine("table1-32core")
        # Identical to what the seed's hard-coded constructors built.
        assert table1_8core() == MachineConfig(
            name="table1-8core", num_sockets=1, cores_per_socket=8
        )

    def test_base_inheritance(self):
        base = get_machine("table1-8core")
        wide = get_machine("table1-32core")
        assert wide.num_sockets == 4
        assert wide.l3 == base.l3
        assert wide.core == base.core
        prefetch = get_machine("table1-8core-prefetch")
        assert prefetch.hierarchy == "prefetch-nl"
        assert prefetch.l3 == base.l3

    def test_deep_merge_keeps_sibling_levels(self):
        big = get_machine("bigl3-8core")
        base = get_machine("table1-8core")
        assert big.l3.size_bytes == 2 * base.l3.size_bytes
        assert big.l1d == base.l1d  # untouched sibling cache level
        assert big.mem.bandwidth_gbps_per_socket == DRAM_TIERS["ddr3-1866"]

    def test_fingerprints_distinct_per_machine(self):
        prints = {get_machine(n).fingerprint() for n in machine_names()}
        assert len(prints) == len(machine_names())

    def test_hierarchy_participates_in_fingerprint(self):
        assert (
            get_machine("table1-8core").fingerprint()
            != get_machine("table1-8core-noninclusive").fingerprint()
        )

    def test_scaled_preserves_hierarchy_backend(self):
        cfg = scaled(get_machine("table1-8core-prefetch"))
        assert cfg.hierarchy == "prefetch-nl"

    def test_unknown_machine(self):
        with pytest.raises(ConfigError, match="unknown machine"):
            get_machine("table1-9core")

    def test_summary_covers_registry(self):
        rows = machine_summary()
        assert [r["name"] for r in rows] == list(machine_names())
        by_name = {r["name"]: r for r in rows}
        assert by_name["table1-32core"]["cores"] == 32
        assert by_name["table1-8core-prefetch"]["hierarchy"] == "prefetch-nl"
        assert by_name["table1-16core"]["description"]


class TestValidation:
    def test_unknown_top_key(self):
        with pytest.raises(ConfigError, match="unknown machine key"):
            build_machine("m", {"base": "table1-8core", "socktes": 2})

    def test_unknown_cache_key(self):
        spec = {"base": "table1-8core", "caches": {"l3": {"kb": 8192, "ways": 16, "latency": 30, "sets": 4}}}
        with pytest.raises(ConfigError, match="unknown l3 key"):
            build_machine("m", spec)

    def test_missing_cache_field(self):
        spec = {"base": "table1-8core", "caches": {"l3": {"ways": 16, "latency": 30}}}
        # Deep-merge keeps the base's `kb`; a from-scratch spec must fail.
        build_machine("m", spec)
        bare = {
            "sockets": 1, "cores_per_socket": 2,
            "caches": {
                "l1i": {"ways": 4, "latency": 4},
                "l1d": {"kb": 32, "ways": 8, "latency": 4},
                "l2": {"kb": 256, "ways": 8, "latency": 8},
                "l3": {"kb": 8192, "ways": 16, "latency": 30},
            },
            "dram": {"latency_ns": 65.0, "tier": "ddr3-1066"},
        }
        with pytest.raises(ConfigError, match="l1i spec missing 'kb'"):
            build_machine("m", bare)

    def test_missing_required_section(self):
        with pytest.raises(ConfigError, match="missing 'caches'"):
            build_machine("m", {"sockets": 1, "cores_per_socket": 2,
                                "dram": {"tier": "ddr3-1066"}})

    def test_unknown_dram_tier(self):
        spec = {"base": "table1-8core", "dram": {"latency_ns": 65.0, "tier": "ddr9"}}
        with pytest.raises(ConfigError, match="unknown DRAM tier"):
            build_machine("m", spec)

    def test_dram_tier_xor_bandwidth(self):
        spec = {"base": "table1-8core",
                "dram": {"tier": "ddr3-1066", "bandwidth_gbps": 8.0}}
        with pytest.raises(ConfigError, match="exactly one"):
            build_machine("m", spec)

    def test_explicit_bandwidth_accepted(self):
        cfg = build_machine(
            "m", {"base": "table1-8core",
                  "dram": {"latency_ns": 50.0, "bandwidth_gbps": 12.5}}
        )
        assert cfg.mem.bandwidth_gbps_per_socket == 12.5
        assert cfg.mem.latency_ns == 50.0

    def test_unknown_hierarchy_backend(self):
        spec = {"base": "table1-8core", "hierarchy": "exclusive"}
        with pytest.raises(ConfigError, match="unknown hierarchy backend"):
            build_machine("m", spec)

    def test_unknown_base(self):
        with pytest.raises(ConfigError, match="unknown base"):
            build_machine("m", {"base": "no-such-machine"})

    def test_bad_cache_geometry_propagates(self):
        spec = {"base": "table1-8core",
                "caches": {"l3": {"kb": 100, "ways": 16, "latency": 30}}}
        with pytest.raises(ConfigError):
            build_machine("m", spec)


class TestRuntimeRegistration:
    def test_register_and_lookup(self):
        try:
            cfg = register_machine(
                "test-12core",
                {"base": "table1-8core", "cores_per_socket": 12,
                 "description": "runtime-registered"},
            )
            assert cfg.num_cores == 12
            assert get_machine("test-12core") is cfg
            assert "test-12core" in machine_names()
        finally:
            unregister_machine("test-12core")
        assert "test-12core" not in machine_names()

    def test_duplicate_rejected(self):
        with pytest.raises(ConfigError, match="already registered"):
            register_machine("table1-8core", {"base": "table1-8core"})

    def test_bad_spec_rejected_eagerly(self):
        with pytest.raises(ConfigError):
            register_machine("test-bad", {"base": "table1-8core", "bogus": 1})
        assert "test-bad" not in machine_names()

    def test_builtin_unregister_rejected(self):
        with pytest.raises(ConfigError, match="built in"):
            unregister_machine("table1-8core")

    def test_unregister_refuses_while_dependents_exist(self):
        """Removing a runtime base another spec inherits from would leave
        the registry unresolvable; it must refuse until dependents go."""
        try:
            register_machine("test-dep-base", {"base": "table1-8core",
                                               "sockets": 2})
            register_machine("test-dep-leaf", {"base": "test-dep-base",
                                               "cores_per_socket": 4})
            with pytest.raises(ConfigError, match="is the base of"):
                unregister_machine("test-dep-base")
            # Registry stays fully resolvable after the refusal.
            assert machine_summary()
            unregister_machine("test-dep-leaf")
            unregister_machine("test-dep-base")
        finally:
            for name in ("test-dep-leaf", "test-dep-base"):
                if name not in MACHINE_SPECS and name in machine_names():
                    unregister_machine(name)
        assert "test-dep-base" not in machine_names()

    def test_builtin_specs_not_mutated_by_build(self):
        before = repr(MACHINE_SPECS)
        build_machine("m", {"base": "table1-32core", "sockets": 8})
        get_machine("table1-32core")
        assert repr(MACHINE_SPECS) == before


class TestTopology:
    def test_epyc_spec_builds_topology(self):
        cfg = get_machine("epyc-4x8")
        assert cfg.topology.cores_per_complex == (8, 8, 8, 8)
        assert cfg.topology.cross_complex_extra_cycles == 40
        assert cfg.topology.interconnect_gbps == FABRIC_TIERS["fabric-gen1"]
        assert cfg.complexes_per_socket == 4
        assert cfg.hierarchy == "complex"
        assert cfg.topology_label() == "1s x 4x8"

    def test_biglittle_imbalanced_complexes(self):
        cfg = get_machine("biglittle-6core")
        assert cfg.topology.cores_per_complex == (4, 2)
        assert cfg.topology.interconnect_gbps == 25.0
        assert cfg.topology_label() == "1s x (4+2)"

    def test_flat_machines_stay_flat(self):
        cfg = get_machine("table1-32core")
        assert cfg.topology.cores_per_complex == ()
        assert cfg.topology.is_flat
        assert cfg.topology.interconnect_gbps is None
        assert cfg.topology_label() == "flat"

    def test_unknown_topology_key_names_keys_and_machine(self):
        """Satellite: a typo'd topology key must name the offending
        machine and enumerate the valid keys."""
        spec = {"base": "epyc-4x8",
                "topology": {"cores_per_compelx": [16, 16]}}
        with pytest.raises(ConfigError) as err:
            build_machine("my-chiplet", spec)
        message = str(err.value)
        assert "unknown topology key" in message
        assert "'my-chiplet'" in message
        assert "cores_per_compelx" in message
        for valid in ("cores_per_complex", "cross_complex_extra_cycles",
                      "interconnect"):
            assert valid in message

    def test_unknown_fabric_tier(self):
        spec = {"base": "epyc-4x8",
                "topology": {"interconnect": {"tier": "warp-drive"}}}
        with pytest.raises(ConfigError, match="unknown fabric tier"):
            build_machine("m", spec)

    def test_interconnect_tier_xor_bandwidth(self):
        spec = {"base": "biglittle-6core",
                "topology": {"interconnect": {
                    "tier": "fabric-gen1", "bandwidth_gbps": 25.0}}}
        with pytest.raises(ConfigError, match="exactly one"):
            build_machine("m", spec)

    def test_interconnect_replaces_instead_of_merging(self):
        """Overriding an inherited tiered interconnect with an explicit
        bandwidth must not merge into an ambiguous tier+bandwidth dict."""
        cfg = build_machine(
            "m", {"base": "epyc-4x8",
                  "topology": {"interconnect": {"bandwidth_gbps": 99.0}}}
        )
        assert cfg.topology.interconnect_gbps == 99.0
        # Sibling topology keys still deep-merge from the base.
        assert cfg.topology.cores_per_complex == (8, 8, 8, 8)
        assert cfg.topology.cross_complex_extra_cycles == 40

    def test_topology_inherited_through_base(self):
        cfg = build_machine("m", {"base": "epyc-4x8", "sockets": 2})
        assert cfg.num_sockets == 2
        assert cfg.topology == get_machine("epyc-4x8").topology

    def test_complex_sum_must_match_socket(self):
        spec = {"base": "epyc-4x8",
                "topology": {"cores_per_complex": [8, 8, 8]}}
        with pytest.raises(ConfigError, match="socket has"):
            build_machine("m", spec)

    def test_bad_cores_per_complex_type(self):
        spec = {"base": "epyc-4x8",
                "topology": {"cores_per_complex": 32}}
        with pytest.raises(ConfigError, match="list of core counts"):
            build_machine("m", spec)

    def test_topology_participates_in_fingerprint(self):
        base = get_machine("epyc-4x8")
        tweaked = build_machine(
            "epyc-4x8",
            {"base": "epyc-4x8",
             "topology": {"cross_complex_extra_cycles": 41}},
        )
        assert base.fingerprint() != tweaked.fingerprint()

    def test_scaled_preserves_topology(self):
        cfg = scaled(get_machine("epyc-4x8"))
        assert cfg.topology == get_machine("epyc-4x8").topology
        assert cfg.hierarchy == "complex"

    def test_summary_topology_column(self):
        by_name = {r["name"]: r for r in machine_summary()}
        assert by_name["epyc-4x8"]["topology"] == "1s x 4x8"
        assert by_name["biglittle-6core"]["topology"] == "1s x (4+2)"
        assert by_name["table1-8core"]["topology"] == "flat"


class TestResolvedSpec:
    def test_flattens_base_chain(self):
        spec = resolved_spec("epyc-4x8")
        assert "base" not in spec
        # Inherited from table1-8core.
        assert spec["core"]["frequency_ghz"] == 2.66
        assert spec["caches"]["l1d"] == {"kb": 32, "ways": 8, "latency": 4}
        # Own overrides.
        assert spec["caches"]["l3"]["kb"] == 32768
        assert spec["topology"]["cores_per_complex"] == [8, 8, 8, 8]

    def test_matches_what_get_machine_builds(self):
        for name in machine_names():
            assert build_machine(name, resolved_spec(name)) == get_machine(name)

    def test_returns_a_safe_copy(self):
        resolved_spec("epyc-4x8")["caches"]["l3"]["kb"] = 1
        assert resolved_spec("epyc-4x8")["caches"]["l3"]["kb"] == 32768
        assert get_machine("epyc-4x8").l3.size_bytes == 32768 * 1024

    def test_unknown_machine(self):
        with pytest.raises(ConfigError, match="unknown machine"):
            resolved_spec("table1-9core")
