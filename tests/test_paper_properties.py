"""Shape-level properties from the paper, checked at small scale.

These encode the *qualitative* claims of the evaluation — the ones that
must hold at any workload scale — as fast regression tests: redundancy
compression for highly repetitive workloads, LDVs separating cold-start
iterations, combined signatures handling code-identical phases, and the
warmup ordering perfect <= mru << cold.
"""

import numpy as np
import pytest

from repro.config import SimPointConfig
from repro.core.pipeline import BarrierPointPipeline
from repro.core.signatures import SignatureConfig
from repro.core.speedup import speedup_report
from repro.profiling.ldv import COLD_BUCKET
from repro.profiling.profiler import FunctionalProfiler
from repro.workloads import get_workload
from tests.conftest import tiny_machine

SP_FAST = SimPointConfig(max_k=20, kmeans_restarts=2)


class TestRedundancyCompression:
    def test_sp_needs_tiny_fraction_of_regions(self):
        """3601 sp regions collapse into <= 20 barrierpoints."""
        workload = get_workload("npb-sp", 4, scale=0.1)
        pipe = BarrierPointPipeline(tiny_machine(), simpoint=SP_FAST)
        selection = pipe.select(workload)
        assert selection.num_barrierpoints <= 20
        report = speedup_report(selection)
        assert report.resource_reduction > 100
        assert report.parallel_speedup > 100

    def test_is_has_no_redundancy(self):
        """npb-is ranking iterations are all distinct: ~1x serial speedup."""
        workload = get_workload("npb-is", 4, scale=0.2)
        pipe = BarrierPointPipeline(tiny_machine(), simpoint=SP_FAST)
        selection = pipe.select(workload)
        assert selection.num_barrierpoints >= workload.num_regions - 3
        report = speedup_report(selection)
        assert report.serial_speedup < 2.0


class TestColdStartSeparation:
    def test_first_iteration_ldv_differs(self):
        """LDVs (persistent stack) distinguish a phase's first iteration."""
        workload = get_workload("npb-cg", 4, scale=0.15)
        profiles = FunctionalProfiler(workload).profile()
        spmv = [p for p in profiles if workload.phase_of(
            p.region_index).phase == "spmv"]
        cold0 = spmv[0].ldv[:, COLD_BUCKET].sum() / spmv[0].ldv.sum()
        cold3 = spmv[3].ldv[:, COLD_BUCKET].sum() / spmv[3].ldv.sum()
        assert cold0 > 2 * cold3 + 0.01

    def test_bbvs_identical_across_iterations(self):
        """Same-phase BBVs are near-identical once normalized — BBV alone
        cannot see cold start (the paper's motivation for LDVs)."""
        workload = get_workload("npb-ft", 4, scale=0.15)
        profiles = FunctionalProfiler(workload).profile()
        evolve = [p for p in profiles if workload.phase_of(
            p.region_index).phase == "evolve"]
        a = evolve[0].bbv.ravel() / evolve[0].bbv.sum()
        b = evolve[3].bbv.ravel() / evolve[3].bbv.sum()
        assert np.allclose(a, b, atol=1e-9)


class TestCodeIdenticalPhases:
    def test_mg_levels_share_normalized_bbv_but_not_ldv(self):
        """Multigrid levels run the same code over different footprints:
        BBVs agree, LDVs differ (section VI-A1's failure mode for BBVs)."""
        workload = get_workload("npb-mg", 4, scale=0.5)
        profiles = FunctionalProfiler(workload).profile()
        smooth = [
            p for p in profiles
            if workload.phase_of(p.region_index).phase == "smooth"
        ]
        fine = next(p for p in smooth
                    if workload.phase_of(p.region_index).param == 7)
        coarse = next(p for p in smooth
                      if workload.phase_of(p.region_index).param == 6)
        bbv_f = fine.bbv.sum(axis=0) / fine.bbv.sum()
        bbv_c = coarse.bbv.sum(axis=0) / coarse.bbv.sum()
        assert np.allclose(bbv_f, bbv_c, atol=0.02)
        ldv_f = fine.ldv.sum(axis=0) / fine.ldv.sum()
        ldv_c = coarse.ldv.sum(axis=0) / coarse.ldv.sum()
        assert np.abs(ldv_f - ldv_c).sum() > 0.2


class TestWarmupOrdering:
    def test_perfect_le_mru_lt_cold(self):
        workload = get_workload("npb-cg", 4, scale=0.25)
        pipe = BarrierPointPipeline(tiny_machine(), simpoint=SP_FAST)
        selection = pipe.select(workload)
        full = pipe.full_run(workload)
        perfect = pipe.evaluate_perfect(selection, full)
        mru = pipe.evaluate_with_warmup(selection, workload, full, "mru")
        cold = pipe.evaluate_with_warmup(selection, workload, full, "cold")
        assert perfect.runtime_error_pct <= mru.runtime_error_pct + 1.0
        assert mru.runtime_error_pct < cold.runtime_error_pct + 5.0

    def test_warmup_state_bounded_by_llc(self):
        """Replay size is bounded by cache capacity, not program history
        (the paper's key advantage over functional warming)."""
        workload = get_workload("npb-sp", 4, scale=0.1)
        machine = tiny_machine()
        capacity = machine.l3.num_lines
        late_region = workload.num_regions - 10
        snaps = FunctionalProfiler(workload).capture_warmup(
            {late_region}, capacity)
        data = snaps[late_region]
        assert data.total_lines <= capacity * workload.num_threads
        # thousands of regions of history compressed into <= LLC-bound state
        history_refs = 100 * late_region  # gross lower bound on refs seen
        assert data.total_lines < history_refs


class TestFixedUnitsOfWork:
    def test_region_instruction_counts_transfer(self):
        """Global instruction counts per region are ~invariant in thread
        count, so multipliers transfer across machines (Fig. 6's basis)."""
        w4 = get_workload("npb-ft", 4, scale=0.15)
        w8 = get_workload("npb-ft", 8, scale=0.15)
        for idx in (0, 10, 20, 33):
            i4 = w4.region_trace(idx).instructions
            i8 = w8.region_trace(idx).instructions
            assert i4 / i8 == pytest.approx(1.0, rel=0.35)

    def test_selection_transfer_identity(self):
        """Cluster labels survive a round trip across thread counts."""
        from repro.core.selection import reassign_multipliers

        workload = get_workload("npb-ft", 4, scale=0.15)
        pipe = BarrierPointPipeline(tiny_machine(), simpoint=SP_FAST)
        selection = pipe.select(workload)
        target = np.array(
            [float(workload.region_trace(i).instructions)
             for i in range(workload.num_regions)])
        moved = reassign_multipliers(selection, target, 8)
        assert np.array_equal(moved.labels, selection.labels)
        back = reassign_multipliers(moved, target, 4)
        for a, b in zip(moved.points, back.points):
            assert a.multiplier == pytest.approx(b.multiplier)


class TestSignatureMethodOrdering:
    def test_combined_not_worse_than_bbv_on_mg(self):
        """mg is the workload where BBV-only merges levels; combined must
        do at least as well (Fig. 5's headline comparison)."""
        workload = get_workload("npb-mg", 4, scale=0.3)
        errors = {}
        full = None
        for kind in ("bbv", "combined"):
            pipe = BarrierPointPipeline(
                tiny_machine(), signature=SignatureConfig(kind=kind),
                simpoint=SP_FAST)
            selection = pipe.select(workload)
            if full is None:
                full = pipe.full_run(workload)
            errors[kind] = pipe.evaluate_perfect(
                selection, full).runtime_error_pct
        assert errors["combined"] <= errors["bbv"] + 2.0
