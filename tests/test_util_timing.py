"""Tests for the micro-benchmark timing helpers."""

import json

import pytest

from repro.util.timing import BenchmarkReport, PhaseTiming, time_call


class TestTimeCall:
    def test_returns_value_and_positive_time(self):
        result = time_call(lambda: sum(range(1000)))
        assert result.value == sum(range(1000))
        assert result.seconds > 0.0

    def test_best_of_repeats(self):
        calls = []

        def fn():
            calls.append(1)
            return len(calls)

        result = time_call(fn, repeat=3)
        assert len(calls) == 3
        assert result.value == 3  # last call's value


class TestPhaseTiming:
    def test_speedup(self):
        record = PhaseTiming("w", "p", fast_seconds=0.5, reference_seconds=2.0)
        assert record.speedup == pytest.approx(4.0)

    def test_zero_fast_time_is_inf(self):
        record = PhaseTiming("w", "p", fast_seconds=0.0, reference_seconds=1.0)
        assert record.speedup == float("inf")


class TestBenchmarkReport:
    def _report(self):
        report = BenchmarkReport(scale=0.5)
        report.add("a", "profile", 1.0, 4.0)
        report.add("a", "full_run", 2.0, 4.0)
        report.add("b", "profile", 1.0, 2.0)
        report.add("b", "barrierpoint_replay", 1.0, 1.0)
        return report

    def test_combined_speedup_pools_seconds(self):
        report = self._report()
        # (4+4+2) / (1+2+1) over profile+full_run
        assert report.combined_speedup(("profile", "full_run")) == \
            pytest.approx(2.5)

    def test_combined_speedup_subset(self):
        report = self._report()
        assert report.combined_speedup(("barrierpoint_replay",)) == \
            pytest.approx(1.0)

    def test_write_report(self, tmp_path):
        report = self._report()
        path = tmp_path / "BENCH_perf.json"
        payload = report.write(path)
        on_disk = json.loads(path.read_text())
        assert on_disk == payload
        assert on_disk["scale"] == 0.5
        assert len(on_disk["records"]) == 4
        assert on_disk["combined"]["profile+full_run"] == pytest.approx(2.5)
        for record in on_disk["records"]:
            assert {"workload", "phase", "fast_seconds",
                    "reference_seconds", "speedup"} <= set(record)
