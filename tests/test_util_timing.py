"""Tests for the micro-benchmark timing helpers."""

import json

import pytest

from repro.util.timing import BenchmarkReport, PhaseTiming, time_call


class TestTimeCall:
    def test_returns_value_and_positive_time(self):
        result = time_call(lambda: sum(range(1000)))
        assert result.value == sum(range(1000))
        assert result.seconds > 0.0

    def test_best_of_repeats(self):
        calls = []

        def fn():
            calls.append(1)
            return len(calls)

        result = time_call(fn, repeat=3)
        assert len(calls) == 3
        assert result.value == 3  # last call's value

    def test_warmup_calls_run_before_timing(self):
        calls = []

        def fn():
            calls.append(1)
            return len(calls)

        result = time_call(fn, repeat=2, warmup=3)
        assert len(calls) == 5
        assert result.value == 5  # last *timed* call's value

    def test_warmup_excluded_from_timed_region(self):
        # A one-time cost (JIT compilation stand-in) on the first call
        # must not leak into fast_seconds when warmup >= 1.
        import time as _time

        state = {"first": True}

        def fn():
            if state["first"]:
                state["first"] = False
                _time.sleep(0.05)

        result = time_call(fn, repeat=1, warmup=1)
        assert result.seconds < 0.05


class TestPhaseTiming:
    def test_speedup(self):
        record = PhaseTiming("w", "p", fast_seconds=0.5, reference_seconds=2.0)
        assert record.speedup == pytest.approx(4.0)

    def test_zero_fast_time_is_inf(self):
        record = PhaseTiming("w", "p", fast_seconds=0.0, reference_seconds=1.0)
        assert record.speedup == float("inf")

    def test_default_tier_is_py(self):
        record = PhaseTiming("w", "p", 1.0, 1.0)
        assert record.tier == "py"


class TestBenchmarkReport:
    def _report(self):
        report = BenchmarkReport(scale=0.5)
        report.add("a", "profile", 1.0, 4.0)
        report.add("a", "full_run", 2.0, 4.0)
        report.add("b", "profile", 1.0, 2.0)
        report.add("b", "barrierpoint_replay", 1.0, 1.0)
        return report

    def test_combined_speedup_pools_seconds(self):
        report = self._report()
        # (4+4+2) / (1+2+1) over profile+full_run
        assert report.combined_speedup(("profile", "full_run")) == \
            pytest.approx(2.5)

    def test_combined_speedup_subset(self):
        report = self._report()
        assert report.combined_speedup(("barrierpoint_replay",)) == \
            pytest.approx(1.0)

    def test_write_report(self, tmp_path):
        report = self._report()
        path = tmp_path / "BENCH_perf.json"
        payload = report.write(path)
        on_disk = json.loads(path.read_text())
        assert on_disk == payload
        assert on_disk["scale"] == 0.5
        assert len(on_disk["records"]) == 4
        assert on_disk["combined"]["py"]["profile+full_run"] == \
            pytest.approx(2.5)
        for record in on_disk["records"]:
            assert {"workload", "phase", "tier", "fast_seconds",
                    "reference_seconds", "speedup"} <= set(record)

    def test_records_deterministically_ordered(self, tmp_path):
        # Same measurements, different insertion orders -> identical files.
        a = BenchmarkReport(scale=0.5)
        a.add("w2", "profile", 1.0, 2.0)
        a.add("w1", "full_run", 1.0, 2.0)
        a.add("w1", "full_run", 0.5, 2.0, tier="nb")
        a.add("w1", "profile", 1.0, 2.0)
        b = BenchmarkReport(scale=0.5)
        b.add("w1", "profile", 1.0, 2.0)
        b.add("w1", "full_run", 0.5, 2.0, tier="nb")
        b.add("w1", "full_run", 1.0, 2.0)
        b.add("w2", "profile", 1.0, 2.0)
        a.write(tmp_path / "a.json")
        b.write(tmp_path / "b.json")
        assert (tmp_path / "a.json").read_text() == \
            (tmp_path / "b.json").read_text()
        keys = [
            (r["workload"], r["phase"], r["tier"])
            for r in json.loads((tmp_path / "a.json").read_text())["records"]
        ]
        assert keys == sorted(keys)

    def test_per_tier_combined_and_vs_py(self):
        report = self._report()
        report.add("a", "profile", 0.25, 4.0, tier="nb")
        report.add("a", "full_run", 0.5, 4.0, tier="nb")
        assert report.tiers() == ("nb", "py")
        payload = report.to_dict()
        assert payload["combined"]["py"]["profile+full_run"] == \
            pytest.approx(2.5)
        # nb pooled: refs (4+4) / nb (0.25+0.5), rounded to 3 places
        assert payload["combined"]["nb"]["profile+full_run"] == \
            pytest.approx(8 / 0.75, abs=5e-4)
        # additional over py on matching rows: (1+2) / (0.25+0.5)
        assert payload["combined"]["nb"]["vs_py"] == pytest.approx(4.0)
        assert "vs_py" not in payload["combined"]["py"]

    def test_write_appends_trajectory(self, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        first = self._report().write(path)
        assert len(first["trajectory"]) == 1
        second = self._report().write(path)
        assert len(second["trajectory"]) == 2
        on_disk = json.loads(path.read_text())
        assert on_disk["trajectory"][0]["combined"] == \
            first["trajectory"][0]["combined"]

    def test_write_survives_corrupt_previous_file(self, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        path.write_text("{not json")
        payload = self._report().write(path)
        assert len(payload["trajectory"]) == 1
