"""Tests for the ``repro`` CLI and the battery driver.

Includes the PR's acceptance property: the ``--quick`` battery with 4
workers is byte-identical to the serial run, and a second invocation over
a warm store is at least 5x faster.
"""

from __future__ import annotations

import argparse
import time

import pytest

from repro import cli
from repro.experiments import battery
from repro.experiments.common import ExperimentRunner
from repro.store import ArtifactStore


def quick_runner(store_dir, workers=0):
    """The runner ``python -m repro.experiments --quick`` constructs."""
    parser = argparse.ArgumentParser()
    battery.add_runner_options(parser)
    args = parser.parse_args(["--quick", "--workers", str(workers)])
    runner = battery.runner_from_args(args)
    assert runner.scale == battery.QUICK_SCALE
    runner.store = ArtifactStore(root=store_dir)
    return runner


def test_quick_battery_parallel_identity_and_store_speedup(tmp_path):
    """Acceptance: 4-worker == serial byte-for-byte; warm rerun >= 5x."""
    t0 = time.perf_counter()
    serial = battery.run_experiments(quick_runner(tmp_path / "serial"))
    serial_seconds = time.perf_counter() - t0

    parallel = battery.run_experiments(quick_runner(tmp_path / "par", 4))
    assert parallel == serial  # byte-identical figure outputs

    t0 = time.perf_counter()
    rerun = battery.run_experiments(quick_runner(tmp_path / "par"))
    rerun_seconds = time.perf_counter() - t0
    assert rerun == serial
    assert serial_seconds >= 5 * rerun_seconds, (
        f"store-hit rerun took {rerun_seconds:.2f}s vs "
        f"{serial_seconds:.2f}s cold"
    )


def test_figure_store_invalidates_per_module(tmp_path, monkeypatch):
    """A figure-only change recomputes exactly that figure."""
    runner = quick_runner(tmp_path)
    runner.benchmarks = ("npb-is",)
    names = ["fig1", "table3"]
    battery.run_experiments(runner, names)

    fresh = quick_runner(tmp_path)
    fresh.benchmarks = ("npb-is",)
    seen: list[tuple[str, bool]] = []
    monkeypatch.setattr(
        battery, "module_fingerprint",
        lambda mod: "edited" if mod is battery.EXPERIMENTS["table3"]
        else "unchanged",
    )
    battery.run_experiments(
        fresh, names,
        on_result=lambda name, out, sec, cached: seen.append((name, cached)),
    )
    assert dict(seen) == {"fig1": False, "table3": False}

    # Without the edit, both come from the store.
    monkeypatch.undo()
    seen.clear()
    again = quick_runner(tmp_path)
    again.benchmarks = ("npb-is",)
    battery.run_experiments(
        again, names,
        on_result=lambda name, out, sec, cached: seen.append((name, cached)),
    )
    assert dict(seen) == {"fig1": True, "table3": True}


def test_battery_main_smoke(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "store"))
    assert battery.main(["--quick", "--only", "fig1"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out and "Fig. 1" in out and "(computed)" in out
    # Second run serves the figure from the store.
    assert battery.main(["--quick", "--only", "fig1"]) == 0
    assert "(store)" in capsys.readouterr().out


def test_battery_rejects_unknown_experiment(capsys):
    with pytest.raises(SystemExit):
        battery.main(["--quick", "--only", "fig2"])
    assert "unknown experiments" in capsys.readouterr().err


def test_cli_run_smoke(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "store"))
    assert cli.main(["run", "--quick", "--only", "fig1"]) == 0
    assert "Fig. 1" in capsys.readouterr().out


def test_cli_figures_writes_files(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "store"))
    out_dir = tmp_path / "artifacts"
    assert cli.main([
        "figures", "--quick", "--only", "fig1,table3", "--out", str(out_dir),
    ]) == 0
    fig1 = (out_dir / "fig1.txt").read_text()
    assert "Fig. 1" in fig1 and fig1.endswith("\n")
    assert "Table III" in (out_dir / "table3.txt").read_text()


def test_cli_no_store_bypasses_store(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "store"))
    parser = argparse.ArgumentParser()
    battery.add_runner_options(parser)
    runner = battery.runner_from_args(
        parser.parse_args(["--quick", "--no-store"])
    )
    assert runner.store is None


def test_cli_clean(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "store"))
    store = ArtifactStore()
    store.put("demo", store.derive_key(x=1), "payload")

    assert cli.main(["clean", "--dry-run"]) == 0
    assert "bytes" in capsys.readouterr().out
    assert store.size_bytes() > 0

    assert cli.main(["clean"]) == 0
    assert store.size_bytes() == 0


def test_cli_bench_rejects_unknown_target(capsys):
    with pytest.raises(SystemExit):
        cli.main(["bench", "not-a-target"])
    err = capsys.readouterr().err
    assert "unknown bench targets" in err


BENCH_ENV = (
    "REPRO_BENCH_SCALE",
    "REPRO_BENCH_WORKLOADS",
    "REPRO_BENCH_MIN_SPEEDUP",
    "REPRO_BENCH_REPEAT",
)


@pytest.fixture
def bench_sandbox(monkeypatch):
    """Run ``repro bench`` against a stubbed pytest from the repo root.

    Clears the harness env knobs first (monkeypatch restores the caller's
    values afterwards, including any that ``cmd_bench`` itself sets) and
    records the pytest invocation plus the env it would have seen.
    """
    import os
    import pathlib

    import pytest as pytest_module

    repo_root = pathlib.Path(cli.__file__).resolve().parents[2]
    monkeypatch.chdir(repo_root)
    for name in BENCH_ENV:
        # setenv-then-delenv (not bare delenv) so monkeypatch records an
        # undo even for initially-absent variables: whatever cmd_bench
        # writes into os.environ is rolled back after the test.
        monkeypatch.setenv(name, "sentinel")
        monkeypatch.delenv(name)
    calls: list[dict] = []
    monkeypatch.setattr(
        pytest_module, "main",
        lambda args: calls.append(
            {"args": args,
             "env": {n: os.environ.get(n) for n in BENCH_ENV}}
        ) or 0,
    )
    return calls


def test_bench_unset_flags_do_not_leak_into_env(bench_sandbox):
    """Satellite acceptance: omitted optional flags must leave the child
    environment untouched — no literal "None" strings."""
    assert cli.main(["bench", "perf"]) == 0
    (call,) = bench_sandbox
    assert call["env"] == {name: None for name in BENCH_ENV}
    assert call["args"] == ["benchmarks/test_perf.py", "-x", "-q"]


def test_bench_flags_round_trip_to_env(bench_sandbox):
    assert cli.main([
        "bench", "--scale", "0.1", "--workloads", "npb-is,npb-cg",
        "--min-speedup", "1.5", "--repeat", "3", "perf", "fig1",
    ]) == 0
    (call,) = bench_sandbox
    assert call["env"] == {
        "REPRO_BENCH_SCALE": "0.1",
        "REPRO_BENCH_WORKLOADS": "npb-is,npb-cg",
        "REPRO_BENCH_MIN_SPEEDUP": "1.5",
        "REPRO_BENCH_REPEAT": "3",
    }
    assert "None" not in "".join(v for v in call["env"].values())
    assert call["args"] == [
        "benchmarks/test_perf.py", "benchmarks/test_fig1.py", "-x", "-q",
    ]


def test_bench_workloads_subset_only(bench_sandbox):
    """A ``--workloads`` subset must round-trip without dragging the other
    unset knobs along."""
    assert cli.main(["bench", "--workloads", "npb-is", "fig1"]) == 0
    (call,) = bench_sandbox
    assert call["env"]["REPRO_BENCH_WORKLOADS"] == "npb-is"
    for name in BENCH_ENV:
        if name != "REPRO_BENCH_WORKLOADS":
            assert call["env"][name] is None


def test_bench_default_targets_whole_directory(bench_sandbox):
    assert cli.main(["bench"]) == 0
    (call,) = bench_sandbox
    assert call["args"] == ["benchmarks", "-x", "-q"]


# ---------------------------------------------------------------------------
# CLI sweep: --help and exit codes for every subcommand
# ---------------------------------------------------------------------------

HELP_INVOCATIONS = (
    [],
    ["run"],
    ["figures"],
    ["sweep"],
    ["machines"],
    ["bench"],
    ["clean"],
    ["trace"],
    ["trace", "record"],
    ["trace", "replay"],
    ["trace", "inspect"],
    ["trace", "fuzz"],
)


@pytest.mark.parametrize(
    "argv", HELP_INVOCATIONS, ids=[" ".join(a) or "root" for a in HELP_INVOCATIONS]
)
def test_help_smoke_every_subcommand(argv, capsys):
    """``--help`` exits 0 and prints usage for every (sub)command."""
    with pytest.raises(SystemExit) as excinfo:
        cli.main([*argv, "--help"])
    assert excinfo.value.code == 0
    assert "usage:" in capsys.readouterr().out


@pytest.mark.parametrize(
    "argv",
    [
        [],                              # missing command
        ["not-a-command"],
        ["trace"],                       # missing trace subcommand
        ["trace", "not-a-subcommand"],
        ["run", "--only", "figX"],
        ["sweep", "--workloads", "not-a-workload"],
        ["sweep", "--machines", "not-a-machine"],
        ["bench", "not-a-target"],
        ["trace", "fuzz"],               # missing seed
        ["trace", "record"],             # missing workload
        ["trace", "replay"],             # missing path
    ],
    ids=lambda argv: " ".join(argv) or "no-command",
)
def test_usage_errors_exit_2(argv, capsys):
    """Argparse-level misuse exits with the conventional code 2."""
    with pytest.raises(SystemExit) as excinfo:
        cli.main(argv)
    assert excinfo.value.code == 2
    assert capsys.readouterr().err


def test_machines_exit_zero(capsys):
    assert cli.main(["machines"]) == 0
    out = capsys.readouterr().out
    assert "table1-8core" in out
    # The listing carries the topology column for chiplet machines.
    assert "topology" in out
    assert "1s x 4x8" in out


def test_machines_show_dumps_resolved_spec(capsys):
    import json

    assert cli.main(["machines", "--show", "epyc-4x8"]) == 0
    spec = json.loads(capsys.readouterr().out)
    # Inheritance-flattened: base keys present, no 'base' marker left.
    assert "base" not in spec
    assert spec["core"]["frequency_ghz"] == 2.66
    assert spec["topology"]["cores_per_complex"] == [8, 8, 8, 8]
    assert spec["hierarchy"] == "complex"


def test_machines_show_unknown_name_is_clean_error(capsys):
    assert cli.main(["machines", "--show", "not-a-machine"]) == 1
    captured = capsys.readouterr()
    assert "unknown machine" in captured.err
    assert "Traceback" not in captured.err


# ---------------------------------------------------------------------------
# The trace subcommand group
# ---------------------------------------------------------------------------


@pytest.fixture
def trace_cwd(tmp_path, monkeypatch):
    """An isolated working directory with its own store."""
    monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "store"))
    monkeypatch.chdir(tmp_path)
    return tmp_path


def test_trace_record_replay_inspect_round_trip(trace_cwd, capsys):
    out = trace_cwd / "is.rpt"
    assert cli.main([
        "trace", "record", "npb-is", "--threads", "4", "--scale", "0.1",
        "--out", str(out),
    ]) == 0
    assert "recorded npb-is" in capsys.readouterr().out
    assert out.is_file()

    assert cli.main(["trace", "inspect", str(out), "--chunks"]) == 0
    text = capsys.readouterr().out
    assert "checksums verified" in text and "npb-is" in text

    assert cli.main([
        "trace", "replay", str(out), "--machine", "table1-8core", "--verify",
    ]) == 0
    text = capsys.readouterr().out
    assert "verify OK" in text and "profile digest" in text


def test_trace_record_default_filename_and_store(trace_cwd, capsys):
    assert cli.main([
        "trace", "record", "npb-is", "--threads", "2", "--scale", "0.1",
        "--store",
    ]) == 0
    text = capsys.readouterr().out
    assert (trace_cwd / "npb-is-2t-0.1.rpt").is_file()
    assert "stored as" in text

    from repro.store import ArtifactStore
    from repro.trace.capture import stored_trace

    assert stored_trace(ArtifactStore(), "npb-is", 2, 0.1) is not None


def test_trace_fuzz_records_scenario(trace_cwd, capsys):
    assert cli.main([
        "trace", "fuzz", "3", "--threads", "2", "--scale", "0.1",
    ]) == 0
    text = capsys.readouterr().out
    assert "scenario fuzz-3" in text
    assert (trace_cwd / "fuzz-3-2t-0.1.rpt").is_file()


def test_trace_unknown_path_exits_one_with_message(trace_cwd, capsys):
    for sub in (["replay"], ["inspect"]):
        assert cli.main(["trace", *sub, "missing.rpt"]) == 1
        err = capsys.readouterr().err
        assert "repro: error:" in err and "cannot open trace" in err


def test_trace_version_mismatch_exits_one_with_message(trace_cwd, capsys):
    import struct

    from repro.trace.capture import FORMAT_VERSION, MAGIC

    out = trace_cwd / "small.rpt"
    assert cli.main([
        "trace", "record", "npb-is", "--threads", "2", "--scale", "0.1",
        "--out", str(out),
    ]) == 0
    capsys.readouterr()
    data = bytearray(out.read_bytes())
    struct.pack_into("<H", data, len(MAGIC), FORMAT_VERSION + 1)
    bad = trace_cwd / "future.rpt"
    bad.write_bytes(bytes(data))
    for sub in ("replay", "inspect"):
        assert cli.main(["trace", sub, str(bad)]) == 1
        err = capsys.readouterr().err
        assert f"version {FORMAT_VERSION + 1} is not supported" in err
        assert "re-record" in err


def test_trace_record_unknown_workload_exits_one(trace_cwd, capsys):
    assert cli.main(["trace", "record", "not-a-workload"]) == 1
    err = capsys.readouterr().err
    assert "unknown workload" in err and "fuzz-<seed>" in err


def test_trace_replay_machine_errors(trace_cwd, capsys):
    out = trace_cwd / "w.rpt"
    assert cli.main([
        "trace", "record", "npb-is", "--threads", "32", "--scale", "0.1",
        "--out", str(out),
    ]) == 0
    capsys.readouterr()
    # An 8-core machine cannot replay a 32-thread trace: loud, actionable.
    assert cli.main([
        "trace", "replay", str(out), "--machine", "table1-8core",
    ]) == 1
    err = capsys.readouterr().err
    assert "has 8 cores" in err and "32 threads" in err
    assert "at least 32 cores" in err
    # Unregistered machine names are rejected before any simulation.
    assert cli.main([
        "trace", "replay", str(out), "--machine", "table1-2core",
    ]) == 1
    assert "unknown machine" in capsys.readouterr().err


def test_sweep_accepts_dynamic_workload_names(trace_cwd):
    """`repro sweep --workloads trace:...` passes name validation."""
    out = trace_cwd / "w8.rpt"
    assert cli.main([
        "trace", "record", "npb-is", "--threads", "8", "--scale", "0.1",
        "--out", str(out),
    ]) == 0
    parser = argparse.ArgumentParser()
    battery.add_runner_options(parser)
    runner = battery.runner_from_args(parser.parse_args(["--scale", "0.1"]))
    runner.benchmarks = (f"trace:{out}",)
    profiles = runner.profiles(f"trace:{out}", 8)
    assert len(profiles) == 11


def test_workers_default_env(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "3")
    assert ExperimentRunner(scale=0.1).workers == 3


def test_experiment_needs_covers_registry():
    assert set(battery.EXPERIMENT_NEEDS) == set(battery.EXPERIMENTS)


def test_prefetch_scoped_to_selected_experiments(tmp_path, monkeypatch):
    """``--only fig1`` must not fan out the expensive passes at all."""
    runner = quick_runner(tmp_path)
    runner.workers = 4
    calls: list[tuple] = []
    monkeypatch.setattr(
        type(runner), "prefetch",
        lambda self, pairs=None, kinds=("profiles", "full"):
        calls.append((pairs, kinds)) or 0,
    )
    battery.run_experiments(runner, ["fig1"])
    assert calls == []  # fig1 needs neither profiles nor full runs
    battery.run_experiments(runner, ["table3"])
    assert calls == [(None, ("profiles",))]  # selection-only figure


class TestFaultToleranceCLI:
    """Exit-code contract and recovery flags of the hardened CLI."""

    @pytest.fixture(autouse=True)
    def clean_fault_plan(self):
        """``--faults`` installs a global plan; never leak it."""
        from repro.faults import uninstall_plan

        yield
        uninstall_plan()

    def test_keyboard_interrupt_exits_130(self, monkeypatch, capsys):
        """Ctrl-C exits 130 with a one-line message, no traceback."""

        def _interrupt(args, parser):
            raise KeyboardInterrupt

        monkeypatch.setitem(cli.COMMANDS, "machines", _interrupt)
        assert cli.main(["machines"]) == 130
        captured = capsys.readouterr()
        assert captured.err == "repro: interrupted\n"
        assert "Traceback" not in captured.err

    def test_retry_exhaustion_maps_to_error_exit_one(
        self, tmp_path, monkeypatch, capsys
    ):
        """A task that exhausts its retries is a clean CLI error."""
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "store"))
        code = cli.main([
            "run", "--quick", "--only", "table3", "--workers", "2",
            "--faults", "runner.task:exception:max_attempts=99",
            "--max-retries", "0",
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert captured.err.startswith("repro: error: gave up on")
        assert "Traceback" not in captured.err

    def test_resume_finishes_a_partially_failed_run(
        self, tmp_path, monkeypatch, capsys
    ):
        """Failed run (32t passes fault) + ``--resume`` rerun completes,
        skipping the checkpointed 8t passes."""
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "store"))
        assert cli.main([
            "run", "--quick", "--only", "table3", "--workers", "2",
            "--faults", "runner.task:exception:max_attempts=99,match=32t",
            "--max-retries", "0",
        ]) == 1
        capsys.readouterr()

        from repro.faults import uninstall_plan

        uninstall_plan()
        assert cli.main([
            "run", "--quick", "--only", "table3", "--workers", "2",
            "--resume",
        ]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out
        assert "run report:" in out and " resumed" in out

    def test_clean_gc_sweeps_instead_of_deleting(
        self, tmp_path, monkeypatch, capsys
    ):
        """``repro clean --gc`` evicts by quota but keeps the store dir."""
        import os
        import time

        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "store"))
        store = ArtifactStore()
        for i in range(3):
            store.put("demo", store.derive_key(i=i), "x" * 500)
        orphan = store.root / "demo" / "dead.tmp"
        orphan.write_bytes(b"junk")
        stamp = time.time() - 7200
        os.utime(orphan, (stamp, stamp))

        assert cli.main([
            "clean", "--gc", "--max-bytes", "0", "--tmp-grace", "1h",
        ]) == 0
        out = capsys.readouterr().out
        assert "removed 1 orphan temp file(s)" in out
        assert "3 evicted" in out
        assert store.size_bytes() == 0

    def test_clean_gc_flags_require_gc(self, capsys):
        """TTL/quota flags without --gc are a usage error (exit 2)."""
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["clean", "--ttl", "1h"])
        assert excinfo.value.code == 2
        assert "need --gc" in capsys.readouterr().err
