"""Tests for the functional profiler: BBV, LDV, MRU capture."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.profiling.bbv import collect_region_bbv
from repro.profiling.ldv import (
    COLD_BUCKET,
    NUM_LDV_BUCKETS,
    LruStackProfiler,
    bucket_of,
    naive_stack_distances,
)
from repro.profiling.mru import MRUTracker
from repro.profiling.profiler import FunctionalProfiler
from repro.workloads import get_workload

line_streams = st.lists(st.integers(0, 120), min_size=1, max_size=400)


class TestBBV:
    def test_counts_instructions_per_block(self, small_is):
        trace = small_is.region_trace(1)
        bbv = collect_region_bbv(trace, small_is.num_static_blocks)
        assert bbv.shape == (4, small_is.num_static_blocks)
        for thread in trace.threads:
            row = bbv[thread.thread_id]
            assert row.sum() == thread.instructions

    def test_rejects_foreign_block(self, small_is):
        trace = small_is.region_trace(0)
        with pytest.raises(WorkloadError):
            collect_region_bbv(trace, 1)


class TestLruStack:
    def test_cold_accesses(self):
        profiler = LruStackProfiler()
        profiler.observe(np.array([1, 2, 3], dtype=np.int64))
        hist = profiler.take_histogram()
        assert hist[COLD_BUCKET] == 3
        assert hist.sum() == 3

    def test_immediate_reuse_distance_zero(self):
        profiler = LruStackProfiler()
        profiler.observe(np.array([7, 7], dtype=np.int64))
        hist = profiler.take_histogram()
        assert hist[0] == 1

    def test_known_distances(self):
        profiler = LruStackProfiler()
        # access a, b, c, a: distance of final a is 2 -> bucket_of(2) == 1
        profiler.observe(np.array([1, 2, 3, 1], dtype=np.int64))
        hist = profiler.take_histogram()
        assert hist[bucket_of(2)] == 1

    def test_histogram_resets_but_stack_persists(self):
        profiler = LruStackProfiler()
        profiler.observe(np.array([5], dtype=np.int64))
        profiler.take_histogram()
        profiler.observe(np.array([5], dtype=np.int64))
        hist = profiler.take_histogram()
        assert hist[COLD_BUCKET] == 0  # seen before the region boundary
        assert hist[0] == 1

    def test_reset_clears_stack(self):
        profiler = LruStackProfiler()
        profiler.observe(np.array([5], dtype=np.int64))
        profiler.reset()
        profiler.observe(np.array([5], dtype=np.int64))
        assert profiler.take_histogram()[COLD_BUCKET] == 1

    def test_unique_lines(self):
        profiler = LruStackProfiler()
        profiler.observe(np.array([1, 2, 1, 3], dtype=np.int64))
        assert profiler.unique_lines == 3

    @settings(max_examples=40)
    @given(line_streams)
    def test_matches_naive_mattson_bucketing(self, stream):
        arr = np.asarray(stream, dtype=np.int64)
        profiler = LruStackProfiler()
        profiler.observe(arr)
        hist = profiler.take_histogram()
        expected = np.zeros(NUM_LDV_BUCKETS)
        for distance in naive_stack_distances(arr):
            expected[bucket_of(distance)] += 1
        assert np.array_equal(hist, expected)

    @settings(max_examples=25)
    @given(line_streams)
    def test_total_counts_accesses(self, stream):
        profiler = LruStackProfiler()
        profiler.observe(np.asarray(stream, dtype=np.int64))
        assert profiler.take_histogram().sum() == len(stream)


class TestBucketOf:
    def test_cold(self):
        assert bucket_of(-1) == COLD_BUCKET

    def test_boundaries(self):
        assert bucket_of(0) == 0
        assert bucket_of(1) == 1
        assert bucket_of(2) == 1
        assert bucket_of(3) == 2
        assert bucket_of(6) == 2
        assert bucket_of(7) == 3

    def test_clamped(self):
        assert bucket_of(1 << 40) == COLD_BUCKET - 1

    @given(st.integers(0, 1 << 30))
    def test_monotone(self, distance):
        assert bucket_of(distance) <= bucket_of(distance + 1)


class TestMRUTracker:
    def test_capacity_bound(self):
        tracker = MRUTracker(num_cores=1, capacity_lines=4)
        lines = np.arange(10, dtype=np.int64)
        tracker.observe(0, lines, np.zeros(10, dtype=bool))
        assert tracker.occupancy(0) == 4
        snap = tracker.snapshot(0)
        kept = [line for line, _ in snap.per_core[0]]
        assert kept == [6, 7, 8, 9]  # most recent, oldest first

    def test_reaccess_refreshes_recency(self):
        tracker = MRUTracker(num_cores=1, capacity_lines=3)
        tracker.observe(0, np.array([1, 2, 3, 1], dtype=np.int64),
                        np.zeros(4, dtype=bool))
        kept = [line for line, _ in tracker.snapshot(0).per_core[0]]
        assert kept == [2, 3, 1]

    def test_dirty_flag_sticky(self):
        tracker = MRUTracker(num_cores=1, capacity_lines=8)
        tracker.observe(0, np.array([5], dtype=np.int64),
                        np.array([True]))
        tracker.observe(0, np.array([5], dtype=np.int64),
                        np.array([False]))
        snap = tracker.snapshot(0)
        assert dict(snap.per_core[0])[5] is True

    def test_per_core_isolation(self):
        tracker = MRUTracker(num_cores=2, capacity_lines=8)
        tracker.observe(0, np.array([1], dtype=np.int64), np.array([False]))
        assert tracker.occupancy(0) == 1
        assert tracker.occupancy(1) == 0

    def test_invalid_args(self):
        with pytest.raises(WorkloadError):
            MRUTracker(num_cores=0, capacity_lines=4)
        with pytest.raises(WorkloadError):
            MRUTracker(num_cores=1, capacity_lines=0)

    @settings(max_examples=25)
    @given(st.lists(st.integers(0, 40), min_size=1, max_size=200),
           st.integers(1, 16))
    def test_tracks_exactly_the_most_recent_distinct(self, stream, cap):
        tracker = MRUTracker(num_cores=1, capacity_lines=cap)
        arr = np.asarray(stream, dtype=np.int64)
        tracker.observe(0, arr, np.zeros(arr.size, dtype=bool))
        kept = [line for line, _ in tracker.snapshot(0).per_core[0]]
        expected = []
        for line in reversed(stream):
            if line not in expected:
                expected.append(line)
            if len(expected) == cap:
                break
        assert kept == list(reversed(expected))


class TestFunctionalProfiler:
    def test_profiles_every_region(self, small_is):
        profiles = FunctionalProfiler(small_is).profile()
        assert len(profiles) == small_is.num_regions
        for idx, profile in enumerate(profiles):
            assert profile.region_index == idx
            assert profile.instructions > 0
            assert profile.bbv.shape[0] == 4
            assert profile.ldv.shape == (4, NUM_LDV_BUCKETS)

    def test_ldv_counts_refs(self, small_is):
        profiles = FunctionalProfiler(small_is).profile()
        for profile in profiles:
            trace = small_is.region_trace(profile.region_index)
            assert profile.ldv.sum() == trace.num_refs

    def test_first_region_is_cold(self, small_is):
        profiles = FunctionalProfiler(small_is).profile()
        ldv0 = profiles[0].ldv
        # Every first-region access is a first touch.
        assert ldv0[:, COLD_BUCKET].sum() > 0.5 * ldv0.sum()

    def test_repeated_phases_less_cold(self, small_cg):
        profiles = FunctionalProfiler(small_cg).profile()
        # spmv regions: 1, 4, 7, ... The 5th spmv touches mostly-seen data.
        late = profiles[13]
        cold_fraction = late.ldv[:, COLD_BUCKET].sum() / late.ldv.sum()
        assert cold_fraction < 0.5

    def test_deterministic(self, small_is):
        p1 = FunctionalProfiler(small_is).profile()
        p2 = FunctionalProfiler(small_is).profile()
        for a, b in zip(p1, p2):
            assert np.array_equal(a.bbv, b.bbv)
            assert np.array_equal(a.ldv, b.ldv)

    def test_capture_warmup_at_selected_regions(self, small_is):
        profiler = FunctionalProfiler(small_is)
        snaps = profiler.capture_warmup({0, 3, 7}, llc_capacity_lines=64)
        assert set(snaps) == {0, 3, 7}
        assert snaps[0].total_lines == 0  # nothing before region 0
        assert snaps[3].total_lines > 0
        assert snaps[7].total_lines >= snaps[3].total_lines * 0.5

    def test_capture_warmup_empty(self, small_is):
        assert FunctionalProfiler(small_is).capture_warmup(set(), 64) == {}

    def test_capture_warmup_rejects_bad_region(self, small_is):
        with pytest.raises(WorkloadError):
            FunctionalProfiler(small_is).capture_warmup({999}, 64)
