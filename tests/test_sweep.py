"""Tests for the cross-architecture sweep subsystem (repro sweep).

Includes the PR's acceptance property: a 3-machine × 4-workload matrix
runs through the artifact store, and a warm rerun is pure store hits.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import cli
from repro.core.crossarch import TransferCell
from repro.experiments import battery, sweep
from repro.experiments.common import (
    DEFAULT_SWEEP_MACHINES,
    ExperimentRunner,
    experiment_machine,
    sweep_machine,
)
from repro.errors import ConfigError
from repro.machines import get_machine, machine_names
from repro.store import ArtifactStore

SWEEP_MACHINES = (
    "table1-8core", "table1-8core-noninclusive", "table1-8core-prefetch",
)
SWEEP_WORKLOADS = ("npb-is", "npb-ft", "npb-cg", "parsec-bodytrack")


def sweep_runner(store_dir, workers=0) -> ExperimentRunner:
    """A small-scale runner over the acceptance matrix."""
    return ExperimentRunner(
        scale=0.1,
        benchmarks=SWEEP_WORKLOADS,
        sweep_machines=SWEEP_MACHINES,
        workers=workers,
        store=ArtifactStore(root=store_dir),
    )


class TestSweepMachines:
    def test_sweep_machine_matches_experiment_machine(self):
        assert sweep_machine("table1-8core") == experiment_machine(8)
        assert sweep_machine("table1-32core") == experiment_machine(32)

    def test_default_machine_set(self):
        assert len(DEFAULT_SWEEP_MACHINES) >= 3
        assert set(DEFAULT_SWEEP_MACHINES) <= set(machine_names())
        backends = {get_machine(m).hierarchy for m in DEFAULT_SWEEP_MACHINES}
        assert {"inclusive", "noninclusive", "prefetch-nl"} <= backends


class TestSweepCompute:
    def test_acceptance_matrix_and_warm_store(self, tmp_path):
        """3 machines x 4 workloads; a fresh runner reruns on store hits."""
        cold = sweep_runner(tmp_path)
        cells = sweep.compute(cold)
        assert len(cells) == len(SWEEP_MACHINES) ** 2 * len(SWEEP_WORKLOADS)
        keys = {(c.workload, c.source_machine, c.target_machine) for c in cells}
        assert len(keys) == len(cells)  # full cross product, no dupes
        for cell in cells:
            assert np.isfinite(cell.error_pct) and cell.error_pct >= 0
            assert cell.source_threads == cell.target_threads == 8
            assert cell.num_barrierpoints >= 1
            assert cell.native == (
                cell.source_machine == cell.target_machine
            )

        warm = sweep_runner(tmp_path)
        warm_cells = sweep.compute(warm)
        assert warm_cells == cells
        assert warm.store.hits > 0
        assert warm.store.misses == 0  # every expensive pass came from disk

    def test_parallel_identical_to_serial(self, tmp_path):
        serial = sweep.compute(sweep_runner(tmp_path / "serial"))
        parallel = sweep.compute(sweep_runner(tmp_path / "par", workers=4))
        assert parallel == serial

    def test_cross_core_count_transfer(self, tmp_path):
        """Selections transfer across machines with different core counts."""
        runner = ExperimentRunner(
            scale=0.1,
            benchmarks=("npb-is",),
            sweep_machines=("table1-8core", "table1-16core"),
            store=ArtifactStore(root=tmp_path),
        )
        cells = sweep.compute(runner)
        by_pair = {(c.source_machine, c.target_machine): c for c in cells}
        crossed = by_pair[("table1-8core", "table1-16core")]
        assert crossed.source_threads == 8
        assert crossed.target_threads == 16
        assert np.isfinite(crossed.error_pct)

    def test_topology_machines_sweep_end_to_end(self, tmp_path):
        """ISSUE acceptance: the new topology entries run through the
        store-cached sweep path at their own core counts, and a warm
        rerun is pure store hits."""
        machines = ("epyc-4x8", "biglittle-6core", "table1-8core")

        def runner(workers=0):
            return ExperimentRunner(
                scale=0.1, benchmarks=("npb-is", "npb-cg"),
                sweep_machines=machines, workers=workers,
                store=ArtifactStore(root=tmp_path),
            )

        cells = sweep.compute(runner())
        assert len(cells) == len(machines) ** 2 * 2
        threads = {c.source_machine: c.source_threads for c in cells}
        assert threads == {"epyc-4x8": 32, "biglittle-6core": 6,
                           "table1-8core": 8}
        for cell in cells:
            assert np.isfinite(cell.error_pct) and cell.error_pct >= 0

        warm = runner()
        assert sweep.compute(warm) == cells
        assert warm.store.hits > 0 and warm.store.misses == 0

    def test_hierarchy_backends_change_reference_timing(self, tmp_path):
        """The sweep machines genuinely differ: full runs disagree."""
        runner = sweep_runner(tmp_path)
        fulls = {
            m: runner.full("npb-ft", 8, machine=m) for m in SWEEP_MACHINES
        }
        cycles = {m: f.app.cycles for m, f in fulls.items()}
        assert len(set(cycles.values())) == len(SWEEP_MACHINES)


class TestSweepRender:
    def test_render_structure(self, tmp_path):
        runner = ExperimentRunner(
            scale=0.1,
            benchmarks=("npb-is", "npb-ft"),
            sweep_machines=("table1-8core", "table1-8core-prefetch"),
            store=ArtifactStore(root=tmp_path),
        )
        out = sweep.run(runner)
        assert "cross-architecture transfer" in out
        assert "matrix: 2 machines x 2 workloads (8 cells)" in out
        assert "avg error, native selections" in out
        assert "avg error, transferred selections" in out
        assert "8core-prefetch" in out
        assert "prefetch-nl" in out

    def test_run_rejects_unknown_machine(self, tmp_path):
        runner = ExperimentRunner(
            scale=0.1, benchmarks=("npb-is",),
            sweep_machines=("no-such-machine",),
            store=ArtifactStore(root=tmp_path),
        )
        with pytest.raises(ConfigError, match="unknown machine"):
            sweep.run(runner)


class TestBatteryIntegration:
    def test_sweep_registered_but_not_default(self):
        assert "sweep" in battery.EXPERIMENTS
        assert "sweep" in battery.EXPERIMENT_NEEDS
        assert "sweep" not in battery.DEFAULT_BATTERY
        assert set(battery.DEFAULT_BATTERY) == set(battery.EXPERIMENTS) - {
            "sweep"
        }

    def test_select_experiments_defaults_exclude_sweep(self):
        import argparse

        parser = argparse.ArgumentParser()
        assert battery.select_experiments(parser, "") == list(
            battery.DEFAULT_BATTERY
        )
        assert battery.select_experiments(parser, "sweep") == ["sweep"]

    def test_runner_from_args_validates_machines(self):
        import argparse

        parser = argparse.ArgumentParser()
        battery.add_runner_options(parser)
        args = parser.parse_args(["--machines", "table1-8core,bogus"])
        with pytest.raises(ConfigError, match="unknown machines"):
            battery.runner_from_args(args)
        args = parser.parse_args(
            ["--machines", "table1-8core,table1-16core"]
        )
        runner = battery.runner_from_args(args)
        assert runner.sweep_machines == ("table1-8core", "table1-16core")

    def test_machines_scope_only_the_sweep_figure_key(self):
        """A --machines change must recompute the sweep and nothing else."""
        a = ExperimentRunner(scale=0.1, store=None)
        b = ExperimentRunner(
            scale=0.1, store=None, sweep_machines=("table1-8core",)
        )
        assert battery.figure_key(a, "sweep") != battery.figure_key(b, "sweep")
        for name in battery.DEFAULT_BATTERY:
            assert battery.figure_key(a, name) == battery.figure_key(b, name)

    def test_parallel_prefetch_rejects_runtime_machines(self, tmp_path):
        """Runtime registrations are per-process: a parallel sweep over
        one must fail fast, not crash inside the worker pool."""
        from repro.machines import register_machine, unregister_machine

        try:
            register_machine("test-sweep-custom", {"base": "table1-8core"})
            runner = ExperimentRunner(
                scale=0.1, benchmarks=("npb-is",), workers=2,
                sweep_machines=("test-sweep-custom",),
                store=ArtifactStore(root=tmp_path),
            )
            with pytest.raises(ConfigError, match="runtime-registered"):
                runner.prefetch(runner.sweep_pairs())
            # Serial computation of the same sweep works fine.
            runner.workers = 0
            cells = sweep.compute(runner)
            assert len(cells) == 1
        finally:
            unregister_machine("test-sweep-custom")


class TestSweepCli:
    def test_cli_sweep_computes_then_serves_from_store(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "store"))
        argv = [
            "sweep", "--scale", "0.1",
            "--machines", "table1-8core,table1-8core-prefetch",
            "--workloads", "npb-is,npb-cg",
            "--out", str(tmp_path / "sweep.txt"),
        ]
        assert cli.main(argv) == 0
        out = capsys.readouterr().out
        assert "matrix: 2 machines x 2 workloads" in out
        assert "(computed)" in out
        assert "cross-architecture transfer" in (
            tmp_path / "sweep.txt"
        ).read_text()

        assert cli.main(argv) == 0
        assert "(store)" in capsys.readouterr().out

    def test_cli_sweep_rejects_unknown_workload(self, capsys):
        with pytest.raises(SystemExit):
            cli.main(["sweep", "--workloads", "npb-zz"])
        assert "unknown workloads" in capsys.readouterr().err

    def test_cli_sweep_accepts_extension_workloads(self, monkeypatch):
        """npb-ua is registered and runnable; the sweep must not reject
        it just because the paper's figures exclude it."""
        seen = {}

        def fake_run(runner, names, on_result=None):
            seen["benchmarks"] = runner.benchmarks
            return {}

        monkeypatch.setattr(battery, "run_experiments", fake_run)
        assert cli.main(["sweep", "--workloads", "npb-ua,npb-is"]) == 0
        assert seen["benchmarks"] == ("npb-ua", "npb-is")

    def test_cli_sweep_rejects_unknown_machine_cleanly(self, capsys):
        """A bad --machines value is a usage error, not a traceback."""
        with pytest.raises(SystemExit) as exc:
            cli.main(["sweep", "--machines", "table1-9core"])
        assert exc.value.code == 2
        assert "unknown machines" in capsys.readouterr().err

    def test_cli_machines_lists_registry(self, capsys):
        assert cli.main(["machines"]) == 0
        out = capsys.readouterr().out
        for name in machine_names():
            assert name in out
        assert "noninclusive" in out

    def test_cli_machines_fingerprints(self, capsys):
        assert cli.main(["machines", "--fingerprints"]) == 0
        out = capsys.readouterr().out
        assert get_machine("table1-8core").fingerprint() in out


class TestTransferCell:
    def test_frozen_dataclass_equality(self):
        cell = TransferCell(
            workload="npb-is", source_machine="a", target_machine="b",
            source_threads=8, target_threads=8, error_pct=1.0,
            apki_difference=0.1, num_barrierpoints=3,
        )
        assert not cell.native
        assert cell == TransferCell(
            workload="npb-is", source_machine="a", target_machine="b",
            source_threads=8, target_threads=8, error_pct=1.0,
            apki_difference=0.1, num_barrierpoints=3,
        )
