"""Property suite for MSI directory bookkeeping (repro.mem.directory).

Standalone of any hierarchy: drives :class:`Directory` and
:class:`DistributedDirectory` directly through their per-line API and
checks the sharer-mask/owner algebra — idempotent membership, upgrade
semantics on a single sharer, eviction of the last sharer — plus the
distributed organisation's delegation and stats aggregation.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.mem.directory import Directory, DirectoryStats, DistributedDirectory

CORES = 8
lines = st.integers(min_value=0, max_value=255)
cores = st.integers(min_value=0, max_value=CORES - 1)


def popcount(mask: int) -> int:
    return bin(mask).count("1")


@st.composite
def event_streams(draw):
    """Random (op, line, core) streams over a small line/core space."""
    ops = st.sampled_from(["read", "write", "drop"])
    n = draw(st.integers(min_value=0, max_value=60))
    return [(draw(ops), draw(lines), draw(cores)) for _ in range(n)]


def apply_stream(directory, stream):
    for op, line, core in stream:
        if op == "read":
            directory.note_read(line, core)
        elif op == "write":
            directory.note_write(line, core)
        else:
            directory.drop(line)


class TestSharerMaskAlgebra:
    @given(line=lines, core=cores, repeats=st.integers(1, 5))
    def test_repeated_reads_idempotent(self, line, core, repeats):
        """Re-adding a sharer never grows the mask past the first add."""
        d = Directory(num_cores=CORES)
        d.note_read(line, core)
        mask = d.sharers(line)
        for _ in range(repeats):
            d.note_read(line, core)
        assert d.sharers(line) == mask == (1 << core)

    @given(line=lines, readers=st.sets(cores, min_size=1, max_size=CORES))
    def test_mask_is_union_of_readers(self, line, readers):
        d = Directory(num_cores=CORES)
        for core in readers:
            d.note_read(line, core)
        expected = 0
        for core in readers:
            expected |= 1 << core
        assert d.sharers(line) == expected
        assert d.owner(line) == -1

    @given(line=lines, core=cores, repeats=st.integers(1, 5))
    def test_repeated_drop_idempotent(self, line, core, repeats):
        """Dropping a line (last-sharer eviction) forgets it; dropping an
        unknown line is a no-op rather than an error."""
        d = Directory(num_cores=CORES)
        d.note_write(line, core)
        for _ in range(repeats):
            d.drop(line)
        assert d.sharers(line) == 0
        assert d.owner(line) == -1
        assert not d.is_modified(line)

    @given(line=lines, writer=cores,
           readers=st.sets(cores, min_size=1, max_size=CORES))
    def test_write_invalidate_collapses_mask(self, line, writer, readers):
        """A write leaves exactly the writer in the mask; the returned
        invalidation mask is everyone else, counted in the stats."""
        d = Directory(num_cores=CORES)
        for core in readers:
            d.note_read(line, core)
        before = d.sharers(line)
        mask = d.note_write(line, writer)
        assert mask == before & ~(1 << writer)
        assert d.sharers(line) == 1 << writer
        assert d.owner(line) == writer
        assert d.stats.invalidations_sent == popcount(mask)


class TestUpgradeAndDowngrade:
    @given(line=lines, core=cores)
    def test_single_sharer_upgrade_sends_no_invalidations(self, line, core):
        """Read-then-write by the same core: silent S->M upgrade."""
        d = Directory(num_cores=CORES)
        d.note_read(line, core)
        mask = d.note_write(line, core)
        assert mask == 0
        assert d.stats.invalidations_sent == 0
        assert d.owner(line) == core
        assert d.is_modified(line)

    @given(line=lines, owner=cores, reader=cores)
    def test_remote_read_downgrades_owner(self, line, owner, reader):
        d = Directory(num_cores=CORES)
        d.note_write(line, owner)
        prev = d.note_read(line, reader)
        if reader == owner:
            # Own read: stays Modified, no transfer reported.
            assert prev == -1
            assert d.is_modified(line)
            assert d.stats.downgrades == 0
        else:
            assert prev == owner
            assert not d.is_modified(line)
            assert d.stats.downgrades == 1
            assert d.stats.cache_to_cache == 1
            assert d.sharers(line) & (1 << reader)

    @given(line=lines, first=cores, second=cores)
    def test_ownership_moves_to_latest_writer(self, line, first, second):
        d = Directory(num_cores=CORES)
        d.note_write(line, first)
        d.note_write(line, second)
        assert d.owner(line) == second
        assert d.sharers(line) == 1 << second

    @given(line=lines, core=cores)
    def test_last_sharer_eviction_clears_modified(self, line, core):
        """Evicting the last (owning) sharer leaves no stale M state, so
        a later read misses to memory instead of a dead owner."""
        d = Directory(num_cores=CORES)
        d.note_write(line, core)
        d.drop(line)
        other = (core + 1) % CORES
        assert d.note_read(line, other) == -1
        assert d.stats.cache_to_cache == 0


class TestDistributedDirectory:
    @given(stream=event_streams(),
           num_homes=st.integers(min_value=1, max_value=4))
    @settings(max_examples=50)
    def test_matches_monolithic_directory(self, stream, num_homes):
        """Per-line observables are identical to one monolithic directory
        regardless of how many homes the lines interleave across."""
        mono = Directory(num_cores=CORES)
        dist = DistributedDirectory(num_cores=CORES, num_homes=num_homes)
        apply_stream(mono, stream)
        apply_stream(dist, stream)
        for line in {line for _, line, _ in stream}:
            assert dist.sharers(line) == mono.sharers(line)
            assert dist.owner(line) == mono.owner(line)
            assert dist.is_modified(line) == mono.is_modified(line)
        assert dist._sharers == mono._sharers
        assert dist._owner == mono._owner
        assert dist.stats == mono.stats

    @given(stream=event_streams())
    @settings(max_examples=50)
    def test_lines_live_only_at_their_home(self, stream):
        dist = DistributedDirectory(num_cores=CORES, num_homes=4)
        apply_stream(dist, stream)
        for idx, home in enumerate(dist.homes):
            for line in set(home._sharers) | set(home._owner):
                assert dist.home_of(line) == idx

    def test_stats_aggregate_across_homes(self):
        dist = DistributedDirectory(num_cores=CORES, num_homes=2)
        dist.note_read(0, 1)      # home 0
        dist.note_write(0, 2)     # invalidates core 1 at home 0
        dist.note_write(1, 3)     # home 1
        dist.note_read(1, 4)      # downgrade + c2c at home 1
        stats = dist.stats
        assert stats == DirectoryStats(
            invalidations_sent=1, downgrades=1, cache_to_cache=1
        )

    def test_flush_clears_every_home_but_keeps_stats(self):
        dist = DistributedDirectory(num_cores=CORES, num_homes=3)
        for line in range(9):
            dist.note_write(line, line % CORES)
        dist.note_read(0, 5)
        before = dist.stats
        dist.flush()
        assert dist._sharers == {} and dist._owner == {}
        assert dist.stats == before

    def test_rejects_nonpositive_home_count(self):
        with pytest.raises(ValueError, match="num_homes"):
            DistributedDirectory(num_cores=CORES, num_homes=0)
