"""Tests for the pluggable hierarchy backends (repro.mem.backends).

The acceptance property: with their distinguishing features disabled,
the non-inclusive and prefetching backends are *behaviorally identical*
to the reference inclusive hierarchy — same stall cycles, same counters,
same resident lines, same directory state — on a randomized coherent
access mix.  With the features on, each backend shows its signature
behavior.
"""

import random

import pytest

from repro.errors import ConfigError
from repro.mem import (
    HIERARCHY_BACKENDS,
    MemoryHierarchy,
    NextLinePrefetchHierarchy,
    NonInclusiveHierarchy,
    backend_names,
    hierarchy_backend,
)
from repro.mem.hierarchy import AccessCounters
from repro.sim.machine import Machine
from tests.conftest import tiny_machine


def drive(hierarchy, seed=1234, accesses=6000, lines=4000, write_frac=0.3):
    """Replay a deterministic random access mix; returns summed stalls."""
    rng = random.Random(seed)
    num_cores = hierarchy.machine.num_cores
    stalls = 0.0
    for _ in range(accesses):
        core = rng.randrange(num_cores)
        line = rng.randrange(lines)
        stalls += hierarchy.access(core, line, rng.random() < write_frac)
    return stalls


def full_state(hierarchy):
    """Every observable: caches, dirtiness, directory, counters."""
    return (
        [dict(s) for cache in (*hierarchy.l1i, *hierarchy.l1d,
                               *hierarchy.l2, *hierarchy.l3)
         for s in cache._sets],
        [set(cache._dirty) for cache in (*hierarchy.l1d, *hierarchy.l2,
                                         *hierarchy.l3)],
        dict(hierarchy.directory._sharers),
        dict(hierarchy.directory._owner),
        hierarchy.snapshot().to_state(),
    )


class TestRegistry:
    def test_names(self):
        assert backend_names() == ("inclusive", "noninclusive", "prefetch-nl")

    def test_lookup(self):
        assert hierarchy_backend("inclusive") is MemoryHierarchy
        assert hierarchy_backend("noninclusive") is NonInclusiveHierarchy
        assert hierarchy_backend("prefetch-nl") is NextLinePrefetchHierarchy

    def test_unknown_backend(self):
        with pytest.raises(ConfigError, match="unknown hierarchy backend"):
            hierarchy_backend("exclusive")

    def test_every_backend_constructible_from_config(self):
        machine = tiny_machine()
        for cls in HIERARCHY_BACKENDS.values():
            hierarchy = cls(machine)
            assert isinstance(hierarchy, MemoryHierarchy)

    def test_machine_resolves_backend_from_config(self):
        from dataclasses import replace

        base = tiny_machine()
        assert type(Machine(base).hierarchy) is MemoryHierarchy
        for name, cls in HIERARCHY_BACKENDS.items():
            machine = Machine(replace(base, hierarchy=name))
            assert type(machine.hierarchy) is cls
            machine.reset()
            assert type(machine.hierarchy) is cls

    def test_machine_rejects_unknown_backend(self):
        from dataclasses import replace

        with pytest.raises(ConfigError, match="unknown hierarchy backend"):
            Machine(replace(tiny_machine(), hierarchy="bogus"))


class TestFeatureDisabledParity:
    """Acceptance: features off => identical to the reference hierarchy."""

    @pytest.mark.parametrize("sockets", [1, 2])
    def test_noninclusive_disabled_matches_reference(self, sockets):
        machine = tiny_machine(num_sockets=sockets)
        ref = MemoryHierarchy(machine)
        twin = NonInclusiveHierarchy(machine, inclusive=True)
        assert drive(ref) == drive(twin)
        assert full_state(ref) == full_state(twin)

    @pytest.mark.parametrize("sockets", [1, 2])
    def test_prefetch_disabled_matches_reference(self, sockets):
        machine = tiny_machine(num_sockets=sockets)
        ref = MemoryHierarchy(machine)
        twin = NextLinePrefetchHierarchy(machine, degree=0)
        assert drive(ref) == drive(twin)
        assert full_state(ref) == full_state(twin)

    def test_features_enabled_diverge(self):
        machine = tiny_machine()
        ref_state = full_state(
            (lambda h: (drive(h), h)[1])(MemoryHierarchy(machine))
        )
        for hierarchy in (
            NonInclusiveHierarchy(machine),
            NextLinePrefetchHierarchy(machine),
        ):
            drive(hierarchy)
            assert full_state(hierarchy) != ref_state


class TestNonInclusive:
    def test_l3_eviction_leaves_private_copies(self):
        machine = tiny_machine()
        h = NonInclusiveHierarchy(machine)
        l3 = h.l3[0]
        target = 0  # maps to L3 set 0 and L2 set 0 of this geometry
        h.access(0, target, False)
        # Evict set 0 of the L3 with assoc-many conflicting fills from
        # another core (L3 sets = 32: stride by 32 keeps one L3 set hot;
        # L2 of core 1 has 16 sets so its pressure stays on core 1).
        stride = l3.config.num_sets
        for i in range(1, l3.config.associativity + 1):
            h.access(1, target + i * stride, False)
        assert not l3.contains(target)
        # Non-inclusive: core 0 keeps its private copies and the sharer bit.
        assert h.l1d[0].contains(target)
        assert h.l2[0].contains(target)
        assert h.directory.sharers(target) & 1

    def test_inclusive_reference_purges_private_copies(self):
        machine = tiny_machine()
        h = MemoryHierarchy(machine)
        l3 = h.l3[0]
        target = 0
        h.access(0, target, False)
        stride = l3.config.num_sets
        for i in range(1, l3.config.associativity + 1):
            h.access(1, target + i * stride, False)
        assert not l3.contains(target)
        assert not h.l1d[0].contains(target)
        assert not h.l2[0].contains(target)

    def test_modified_line_survives_l3_eviction(self):
        machine = tiny_machine()
        h = NonInclusiveHierarchy(machine)
        l3 = h.l3[0]
        target = 0
        h.access(0, target, True)
        assert h.directory.owner(target) == 0
        stride = l3.config.num_sets
        for i in range(1, l3.config.associativity + 1):
            h.access(1, target + i * stride, False)
        assert not l3.contains(target)
        # Ownership survives; the writeback happens later, on downgrade.
        assert h.directory.owner(target) == 0
        before = h.snapshot()
        h.access(1, target, False)  # remote read downgrades and writes back
        delta = h.snapshot().delta(before)
        assert delta.writebacks == 1
        assert h.directory.owner(target) == -1


class TestNextLinePrefetch:
    def test_l2_miss_prefetches_next_line(self):
        h = NextLinePrefetchHierarchy(tiny_machine())
        h.access(0, 100, False)
        assert h.l2[0].contains(101)  # prefetched
        assert h.l3[0].contains(101)  # filled through the shared L3
        assert not h.l1d[0].contains(101)  # prefetch stops at L2
        assert h.snapshot().prefetches == 1

    def test_degree_widens_the_window(self):
        h = NextLinePrefetchHierarchy(tiny_machine(), degree=3)
        h.access(0, 100, False)
        for line in (101, 102, 103):
            assert h.l2[0].contains(line)
        assert h.snapshot().prefetches == 3

    def test_prefetch_hit_avoids_demand_stall(self):
        machine = tiny_machine()
        plain = MemoryHierarchy(machine)
        pf = NextLinePrefetchHierarchy(machine)
        cold_plain = plain.access(0, 100, False)
        cold_pf = pf.access(0, 100, False)
        assert cold_pf == cold_plain  # prefetch latency is hidden
        # The next line is an L2 hit instead of a DRAM miss.
        assert pf.access(0, 101, False) < plain.access(0, 101, False)

    def test_prefetch_charges_dram_bandwidth(self):
        h = NextLinePrefetchHierarchy(tiny_machine())
        h.access(0, 100, False)
        # One demand fill + one prefetch fill on the DRAM bus.
        assert h.snapshot().dram_reads_per_socket == (2,)

    def test_resident_next_line_not_reissued(self):
        h = NextLinePrefetchHierarchy(tiny_machine())
        h.access(0, 100, False)   # prefetches 101
        before = h.snapshot().prefetches
        h.access(0, 200, False)   # prefetches 201
        h.access(0, 200 + 1, False)  # L2 hit: no new prefetch
        assert h.snapshot().prefetches == before + 1

    def test_remote_modified_line_not_prefetched(self):
        h = NextLinePrefetchHierarchy(tiny_machine())
        h.access(1, 101, True)    # core 1 owns 101 in M state
        owner_before = h.directory.owner(101)
        h.access(0, 100, False)   # would prefetch 101
        assert h.directory.owner(101) == owner_before == 1
        assert not h.l2[0].contains(101)

    def test_negative_degree_rejected(self):
        with pytest.raises(ConfigError):
            NextLinePrefetchHierarchy(tiny_machine(), degree=-1)

    def test_streaming_reduces_stalls(self):
        machine = tiny_machine()
        plain = MemoryHierarchy(machine)
        pf = NextLinePrefetchHierarchy(machine)
        lines = list(range(5000, 5000 + 256))
        writes = [False] * len(lines)
        stall_plain = plain.access_block(0, lines, writes, mlp=1.0)
        stall_pf = pf.access_block(0, lines, writes, mlp=1.0)
        assert stall_pf < 0.7 * stall_plain


class TestCounters:
    def test_access_counters_roundtrip_includes_prefetches(self):
        c = AccessCounters(loads=2, prefetches=5,
                           dram_reads_per_socket=(1,),
                           dram_writebacks_per_socket=(0,))
        back = AccessCounters.from_state(c.to_state())
        assert back.prefetches == 5
        delta = back.delta(AccessCounters(
            prefetches=2, dram_reads_per_socket=(0,),
            dram_writebacks_per_socket=(0,)))
        assert delta.prefetches == 3

    def test_region_counters_flow_through_machine(self):
        """Prefetch counters reach RegionMetrics via the machine layer."""
        from dataclasses import replace

        from repro.workloads import get_workload

        config = replace(tiny_machine(), hierarchy="prefetch-nl")
        workload = get_workload("npb-is", 4, scale=0.1)
        machine = Machine(config)
        result = machine.run_full(workload)
        assert sum(r.counters.prefetches for r in result.regions) > 0
