"""Tests for the pluggable hierarchy backends (repro.mem.backends).

The acceptance property: with their distinguishing features disabled,
the non-inclusive and prefetching backends are *behaviorally identical*
to the reference inclusive hierarchy — same stall cycles, same counters,
same resident lines, same directory state — on a randomized coherent
access mix.  With the features on, each backend shows its signature
behavior.
"""

import random
from dataclasses import replace

import pytest

from repro.config import TopologyConfig
from repro.errors import ConfigError
from repro.mem import (
    HIERARCHY_BACKENDS,
    ComplexHierarchy,
    MemoryHierarchy,
    NextLinePrefetchHierarchy,
    NonInclusiveHierarchy,
    backend_names,
    hierarchy_backend,
)
from repro.mem.hierarchy import AccessCounters
from repro.sim.machine import Machine
from tests.conftest import tiny_machine


def drive(hierarchy, seed=1234, accesses=6000, lines=4000, write_frac=0.3):
    """Replay a deterministic random access mix; returns summed stalls."""
    rng = random.Random(seed)
    num_cores = hierarchy.machine.num_cores
    stalls = 0.0
    for _ in range(accesses):
        core = rng.randrange(num_cores)
        line = rng.randrange(lines)
        stalls += hierarchy.access(core, line, rng.random() < write_frac)
    return stalls


def full_state(hierarchy):
    """Every observable: caches, dirtiness, directory, counters."""
    return (
        [dict(s) for cache in (*hierarchy.l1i, *hierarchy.l1d,
                               *hierarchy.l2, *hierarchy.l3)
         for s in cache._sets],
        [set(cache._dirty) for cache in (*hierarchy.l1d, *hierarchy.l2,
                                         *hierarchy.l3)],
        dict(hierarchy.directory._sharers),
        dict(hierarchy.directory._owner),
        hierarchy.snapshot().to_state(),
    )


class TestRegistry:
    def test_names(self):
        assert backend_names() == (
            "complex", "inclusive", "noninclusive", "prefetch-nl"
        )

    def test_lookup(self):
        assert hierarchy_backend("inclusive") is MemoryHierarchy
        assert hierarchy_backend("noninclusive") is NonInclusiveHierarchy
        assert hierarchy_backend("prefetch-nl") is NextLinePrefetchHierarchy
        assert hierarchy_backend("complex") is ComplexHierarchy

    def test_unknown_backend(self):
        with pytest.raises(ConfigError, match="unknown hierarchy backend"):
            hierarchy_backend("exclusive")

    def test_every_backend_constructible_from_config(self):
        machine = tiny_machine()
        for cls in HIERARCHY_BACKENDS.values():
            hierarchy = cls(machine)
            assert isinstance(hierarchy, MemoryHierarchy)

    def test_machine_resolves_backend_from_config(self):
        from dataclasses import replace

        base = tiny_machine()
        assert type(Machine(base).hierarchy) is MemoryHierarchy
        for name, cls in HIERARCHY_BACKENDS.items():
            machine = Machine(replace(base, hierarchy=name))
            assert type(machine.hierarchy) is cls
            machine.reset()
            assert type(machine.hierarchy) is cls

    def test_machine_rejects_unknown_backend(self):
        from dataclasses import replace

        with pytest.raises(ConfigError, match="unknown hierarchy backend"):
            Machine(replace(tiny_machine(), hierarchy="bogus"))


class TestFeatureDisabledParity:
    """Acceptance: features off => identical to the reference hierarchy."""

    @pytest.mark.parametrize("sockets", [1, 2])
    def test_noninclusive_disabled_matches_reference(self, sockets):
        machine = tiny_machine(num_sockets=sockets)
        ref = MemoryHierarchy(machine)
        twin = NonInclusiveHierarchy(machine, inclusive=True)
        assert drive(ref) == drive(twin)
        assert full_state(ref) == full_state(twin)

    @pytest.mark.parametrize("sockets", [1, 2])
    def test_prefetch_disabled_matches_reference(self, sockets):
        machine = tiny_machine(num_sockets=sockets)
        ref = MemoryHierarchy(machine)
        twin = NextLinePrefetchHierarchy(machine, degree=0)
        assert drive(ref) == drive(twin)
        assert full_state(ref) == full_state(twin)

    def test_features_enabled_diverge(self):
        machine = tiny_machine()
        ref_state = full_state(
            (lambda h: (drive(h), h)[1])(MemoryHierarchy(machine))
        )
        for hierarchy in (
            NonInclusiveHierarchy(machine),
            NextLinePrefetchHierarchy(machine),
        ):
            drive(hierarchy)
            assert full_state(hierarchy) != ref_state


class TestNonInclusive:
    def test_l3_eviction_leaves_private_copies(self):
        machine = tiny_machine()
        h = NonInclusiveHierarchy(machine)
        l3 = h.l3[0]
        target = 0  # maps to L3 set 0 and L2 set 0 of this geometry
        h.access(0, target, False)
        # Evict set 0 of the L3 with assoc-many conflicting fills from
        # another core (L3 sets = 32: stride by 32 keeps one L3 set hot;
        # L2 of core 1 has 16 sets so its pressure stays on core 1).
        stride = l3.config.num_sets
        for i in range(1, l3.config.associativity + 1):
            h.access(1, target + i * stride, False)
        assert not l3.contains(target)
        # Non-inclusive: core 0 keeps its private copies and the sharer bit.
        assert h.l1d[0].contains(target)
        assert h.l2[0].contains(target)
        assert h.directory.sharers(target) & 1

    def test_inclusive_reference_purges_private_copies(self):
        machine = tiny_machine()
        h = MemoryHierarchy(machine)
        l3 = h.l3[0]
        target = 0
        h.access(0, target, False)
        stride = l3.config.num_sets
        for i in range(1, l3.config.associativity + 1):
            h.access(1, target + i * stride, False)
        assert not l3.contains(target)
        assert not h.l1d[0].contains(target)
        assert not h.l2[0].contains(target)

    def test_modified_line_survives_l3_eviction(self):
        machine = tiny_machine()
        h = NonInclusiveHierarchy(machine)
        l3 = h.l3[0]
        target = 0
        h.access(0, target, True)
        assert h.directory.owner(target) == 0
        stride = l3.config.num_sets
        for i in range(1, l3.config.associativity + 1):
            h.access(1, target + i * stride, False)
        assert not l3.contains(target)
        # Ownership survives; the writeback happens later, on downgrade.
        assert h.directory.owner(target) == 0
        before = h.snapshot()
        h.access(1, target, False)  # remote read downgrades and writes back
        delta = h.snapshot().delta(before)
        assert delta.writebacks == 1
        assert h.directory.owner(target) == -1


class TestNextLinePrefetch:
    def test_l2_miss_prefetches_next_line(self):
        h = NextLinePrefetchHierarchy(tiny_machine())
        h.access(0, 100, False)
        assert h.l2[0].contains(101)  # prefetched
        assert h.l3[0].contains(101)  # filled through the shared L3
        assert not h.l1d[0].contains(101)  # prefetch stops at L2
        assert h.snapshot().prefetches == 1

    def test_degree_widens_the_window(self):
        h = NextLinePrefetchHierarchy(tiny_machine(), degree=3)
        h.access(0, 100, False)
        for line in (101, 102, 103):
            assert h.l2[0].contains(line)
        assert h.snapshot().prefetches == 3

    def test_prefetch_hit_avoids_demand_stall(self):
        machine = tiny_machine()
        plain = MemoryHierarchy(machine)
        pf = NextLinePrefetchHierarchy(machine)
        cold_plain = plain.access(0, 100, False)
        cold_pf = pf.access(0, 100, False)
        assert cold_pf == cold_plain  # prefetch latency is hidden
        # The next line is an L2 hit instead of a DRAM miss.
        assert pf.access(0, 101, False) < plain.access(0, 101, False)

    def test_prefetch_charges_dram_bandwidth(self):
        h = NextLinePrefetchHierarchy(tiny_machine())
        h.access(0, 100, False)
        # One demand fill + one prefetch fill on the DRAM bus.
        assert h.snapshot().dram_reads_per_socket == (2,)

    def test_resident_next_line_not_reissued(self):
        h = NextLinePrefetchHierarchy(tiny_machine())
        h.access(0, 100, False)   # prefetches 101
        before = h.snapshot().prefetches
        h.access(0, 200, False)   # prefetches 201
        h.access(0, 200 + 1, False)  # L2 hit: no new prefetch
        assert h.snapshot().prefetches == before + 1

    def test_remote_modified_line_not_prefetched(self):
        h = NextLinePrefetchHierarchy(tiny_machine())
        h.access(1, 101, True)    # core 1 owns 101 in M state
        owner_before = h.directory.owner(101)
        h.access(0, 100, False)   # would prefetch 101
        assert h.directory.owner(101) == owner_before == 1
        assert not h.l2[0].contains(101)

    def test_negative_degree_rejected(self):
        with pytest.raises(ConfigError):
            NextLinePrefetchHierarchy(tiny_machine(), degree=-1)

    def test_streaming_reduces_stalls(self):
        machine = tiny_machine()
        plain = MemoryHierarchy(machine)
        pf = NextLinePrefetchHierarchy(machine)
        lines = list(range(5000, 5000 + 256))
        writes = [False] * len(lines)
        stall_plain = plain.access_block(0, lines, writes, mlp=1.0)
        stall_pf = pf.access_block(0, lines, writes, mlp=1.0)
        assert stall_pf < 0.7 * stall_plain


def complex_machine(num_sockets=1, cores_per_complex=(2, 2), extra=12):
    """A tiny machine running the ``complex`` backend."""
    return replace(
        tiny_machine(num_sockets=num_sockets,
                     cores_per_socket=sum(cores_per_complex)),
        hierarchy="complex",
        topology=TopologyConfig(cores_per_complex=cores_per_complex,
                                cross_complex_extra_cycles=extra),
    )


class TestComplexBackend:
    """Acceptance battery for the core-complex hierarchy backend."""

    @pytest.mark.parametrize("sockets", [1, 2])
    def test_one_complex_per_socket_degenerates_to_flat(self, sockets):
        """ISSUE acceptance: at 1 complex/socket the backend is
        bit-identical to the flat inclusive hierarchy — same stalls,
        caches, dirtiness, directory state, and counters."""
        machine = complex_machine(num_sockets=sockets,
                                  cores_per_complex=(4,), extra=99)
        ref = MemoryHierarchy(replace(machine, hierarchy="inclusive"))
        twin = ComplexHierarchy(machine)
        assert drive(ref) == drive(twin)
        assert full_state(ref) == full_state(twin)

    @pytest.mark.parametrize("sockets", [1, 2])
    def test_flat_topology_degenerates_too(self, sockets):
        """A machine with no topology section (flat) behaves identically
        under the complex backend: domains collapse to the sockets."""
        machine = tiny_machine(num_sockets=sockets)
        ref = MemoryHierarchy(machine)
        twin = ComplexHierarchy(machine)
        assert drive(ref) == drive(twin)
        assert full_state(ref) == full_state(twin)

    @pytest.mark.parametrize(
        "make",
        [lambda: ComplexHierarchy(complex_machine()),
         lambda: ComplexHierarchy(complex_machine(num_sockets=2)),
         lambda: MemoryHierarchy(tiny_machine(num_sockets=2)),
         lambda: NonInclusiveHierarchy(tiny_machine(num_sockets=2)),
         lambda: NextLinePrefetchHierarchy(tiny_machine(num_sockets=2))],
        ids=["complex-1s", "complex-2s", "inclusive", "noninclusive",
             "prefetch-nl"],
    )
    def test_traffic_conservation(self, make):
        """Per-latency-class transfer counters partition cache_to_cache."""
        hierarchy = make()
        drive(hierarchy)
        c = hierarchy.snapshot()
        assert c.cache_to_cache > 0
        assert (c.intra_complex_transfers + c.cross_complex_transfers
                + c.cross_socket_transfers) == c.cache_to_cache

    def test_hop_classes_populated(self):
        """A 2-socket 2-complex machine exercises all three classes."""
        h = ComplexHierarchy(complex_machine(num_sockets=2))
        drive(h)
        c = h.snapshot()
        assert c.intra_complex_transfers > 0
        assert c.cross_complex_transfers > 0
        assert c.cross_socket_transfers > 0

    def test_single_socket_has_no_cross_socket_traffic(self):
        h = ComplexHierarchy(complex_machine())
        drive(h)
        c = h.snapshot()
        assert c.cross_complex_transfers > 0
        assert c.cross_socket_transfers == 0

    def test_slices_and_directory_homes_per_complex(self):
        machine = complex_machine(num_sockets=2)  # 2 sockets x 2 complexes
        h = ComplexHierarchy(machine)
        assert len(h.l3) == 4
        assert h.directory.num_homes == 4
        assert len(h.directory.homes) == 4
        # Equal split of the socket capacity across its complexes.
        assert h.l3[0].config.size_bytes == machine.l3.size_bytes // 2

    def test_cross_complex_hop_costs_more(self):
        """The same remote-owner transfer is dearer across complexes."""

        def owner_read_stall(machine, reader):
            h = ComplexHierarchy(machine)
            h.access(0, 7, True)       # core 0 owns line 7 in M
            return h.access(reader, 7, False)

        near = owner_read_stall(complex_machine(extra=12), reader=1)
        far = owner_read_stall(complex_machine(extra=12), reader=2)
        farther = owner_read_stall(complex_machine(extra=40), reader=2)
        assert near < far < farther

    def test_indivisible_l3_rejected(self):
        # tiny L3 is 32 KiB: not divisible by 3 complexes.
        machine = complex_machine(cores_per_complex=(2, 1, 1))
        with pytest.raises(ConfigError, match="complex slices"):
            ComplexHierarchy(machine)

    def test_registry_machines_run_under_machine_layer(self):
        """The built-in topology machines simulate a workload end to end
        and report class-partitioned transfers."""
        from repro.config import scaled
        from repro.machines import get_machine
        from repro.workloads import get_workload

        config = scaled(get_machine("biglittle-6core"))
        workload = get_workload("npb-is", config.num_cores, scale=0.1)
        result = Machine(config).run_full(workload)
        c2c = sum(r.counters.cache_to_cache for r in result.regions)
        classed = sum(
            r.counters.intra_complex_transfers
            + r.counters.cross_complex_transfers
            + r.counters.cross_socket_transfers
            for r in result.regions
        )
        assert c2c > 0 and classed == c2c


class TestCounters:
    def test_access_counters_roundtrip_includes_prefetches(self):
        c = AccessCounters(loads=2, prefetches=5,
                           dram_reads_per_socket=(1,),
                           dram_writebacks_per_socket=(0,))
        back = AccessCounters.from_state(c.to_state())
        assert back.prefetches == 5
        delta = back.delta(AccessCounters(
            prefetches=2, dram_reads_per_socket=(0,),
            dram_writebacks_per_socket=(0,)))
        assert delta.prefetches == 3

    def test_pre_topology_state_dict_decodes_with_zero_transfers(self):
        """Regression pin: an exact PR-7-era ``to_state`` payload (no
        per-latency-class transfer keys) must still decode — missing
        counters default to zero so pre-topology store artifacts replay."""
        pr7_state = {
            "loads": 4200, "stores": 1800, "l1d_misses": 310,
            "l2_misses": 120, "l3_misses": 45, "cache_to_cache": 17,
            "writebacks": 9, "l1i_misses": 3, "prefetches": 0,
            "dram_reads_per_socket": [30, 15],
            "dram_writebacks_per_socket": [6, 3],
        }
        c = AccessCounters.from_state(pr7_state)
        assert c.loads == 4200 and c.cache_to_cache == 17
        assert c.dram_reads_per_socket == (30, 15)
        assert c.intra_complex_transfers == 0
        assert c.cross_complex_transfers == 0
        assert c.cross_socket_transfers == 0
        # Round-trips through the modern schema, and deltas mix eras.
        assert AccessCounters.from_state(c.to_state()).to_state() == c.to_state()
        d = AccessCounters.from_state(c.to_state()).delta(c)
        assert d.loads == 0 and d.cross_complex_transfers == 0

    def test_unknown_state_keys_ignored(self):
        state = AccessCounters(dram_reads_per_socket=(1,),
                               dram_writebacks_per_socket=(0,)).to_state()
        state["from_the_future"] = 99
        assert AccessCounters.from_state(state).dram_reads_per_socket == (1,)

    def test_region_counters_flow_through_machine(self):
        """Prefetch counters reach RegionMetrics via the machine layer."""
        from dataclasses import replace

        from repro.workloads import get_workload

        config = replace(tiny_machine(), hierarchy="prefetch-nl")
        workload = get_workload("npb-is", 4, scale=0.1)
        machine = Machine(config)
        result = machine.run_full(workload)
        assert sum(r.counters.prefetches for r in result.regions) > 0
