"""Tests for the benchmark workload suite.

Covers the three properties BarrierPoint depends on: paper-matching
dynamic barrier counts, thread-count invariance of the schedule and
instruction totals (strong scaling), and full determinism of traces.
"""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads import WORKLOAD_NAMES, get_workload
from repro.workloads.base import PhaseInstance

PAPER_BARRIERS = {
    "parsec-bodytrack": 89,
    "npb-bt": 1001,
    "npb-cg": 46,
    "npb-ft": 34,
    "npb-is": 11,
    "npb-lu": 503,
    "npb-mg": 245,
    "npb-sp": 3601,
}

SMALL = 0.1


class TestRegistry:
    def test_all_names_registered(self):
        assert set(WORKLOAD_NAMES) == set(PAPER_BARRIERS)

    def test_unknown_name(self):
        with pytest.raises(WorkloadError):
            get_workload("npb-nope", 4)

    def test_unknown_name_message_distinguishes_suites(self):
        """Regression: the error must not advertise paper-excluded
        workloads (npb-ua) as part of the paper suite."""
        with pytest.raises(WorkloadError) as exc:
            get_workload("npb-nope", 4)
        message = str(exc.value)
        assert f"paper suite: {sorted(WORKLOAD_NAMES)}" in message
        assert "extension workloads" in message
        assert "'npb-ua'" in message.split("extension workloads")[1]
        assert "npb-ua" not in message.split("extension workloads")[0]

    def test_registry_superset_of_paper_names(self):
        """npb-ua is registered (it exercises the region filter) but is
        deliberately not a WORKLOAD_NAMES member (paper exclusion)."""
        from repro.workloads import _REGISTRY

        assert set(WORKLOAD_NAMES) < set(_REGISTRY)
        assert set(_REGISTRY) - set(WORKLOAD_NAMES) == {"npb-ua"}
        assert get_workload("npb-ua", 4, scale=SMALL).name == "npb-ua"

    def test_invalid_threads(self):
        with pytest.raises(WorkloadError):
            get_workload("npb-ft", 0)

    def test_invalid_scale(self):
        with pytest.raises(WorkloadError):
            get_workload("npb-ft", 4, scale=0.0)


class TestCanonicalNames:
    """Canonical-form validation of dynamic workload names (the names
    that must round-trip through the serve job-submission schema)."""

    def test_registry_and_dynamic_names_pass_through(self, tmp_path):
        from repro.workloads import canonical_workload_name

        assert canonical_workload_name("npb-ft") == "npb-ft"
        assert canonical_workload_name("fuzz-7") == "fuzz-7"
        assert canonical_workload_name("fuzz-0") == "fuzz-0"
        path = f"trace:{tmp_path}/t.rpt"
        assert canonical_workload_name(path) == path

    def test_non_canonical_fuzz_seed_is_loud(self):
        from repro.workloads import canonical_workload_name

        with pytest.raises(WorkloadError, match="fuzz-7"):
            canonical_workload_name("fuzz-007")
        with pytest.raises(WorkloadError):
            get_workload("fuzz-007", 4)

    def test_pathless_trace_name_is_loud(self):
        from repro.workloads import canonical_workload_name

        with pytest.raises(WorkloadError, match="trace:<path"):
            canonical_workload_name("trace:")

    def test_unknown_and_non_string_names_are_loud(self):
        from repro.workloads import canonical_workload_name

        with pytest.raises(WorkloadError, match="paper suite"):
            canonical_workload_name("npb-nope")
        with pytest.raises(WorkloadError, match="string"):
            canonical_workload_name(7)


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
class TestPerWorkload:
    def test_barrier_count_matches_paper(self, name):
        workload = get_workload(name, 4, scale=SMALL)
        assert workload.barrier_count == PAPER_BARRIERS[name]

    def test_barrier_count_thread_invariant(self, name):
        counts = {
            nt: get_workload(name, nt, scale=SMALL).barrier_count
            for nt in (2, 4, 8)
        }
        assert len(set(counts.values())) == 1

    def test_traces_deterministic(self, name):
        w1 = get_workload(name, 4, scale=SMALL)
        w2 = get_workload(name, 4, scale=SMALL)
        for idx in (0, w1.num_regions // 2, w1.num_regions - 1):
            t1, t2 = w1.region_trace(idx), w2.region_trace(idx)
            assert t1.instructions == t2.instructions
            for a, b in zip(t1.threads, t2.threads):
                assert len(a.blocks) == len(b.blocks)
                for ba, bb in zip(a.blocks, b.blocks):
                    assert ba.block.bb_id == bb.block.bb_id
                    assert ba.count == bb.count
                    assert np.array_equal(ba.lines, bb.lines)
                    assert np.array_equal(ba.writes, bb.writes)

    def test_every_region_buildable_and_nonempty(self, name):
        workload = get_workload(name, 2, scale=SMALL)
        step = max(1, workload.num_regions // 25)
        for idx in range(0, workload.num_regions, step):
            trace = workload.region_trace(idx)
            assert trace.instructions > 0
            assert trace.num_threads == 2

    def test_strong_scaling_totals(self, name):
        """Aggregate instructions are ~invariant in thread count (class-A
        fixed-size inputs), the property multipliers transfer through."""
        step = None
        totals = {}
        for nt in (4, 8):
            workload = get_workload(name, nt, scale=SMALL)
            step = max(1, workload.num_regions // 10)
            totals[nt] = sum(
                workload.region_trace(i).instructions
                for i in range(0, workload.num_regions, step)
            )
        ratio = totals[4] / totals[8]
        assert 0.7 < ratio < 1.45

    def test_region_out_of_range(self, name):
        workload = get_workload(name, 2, scale=SMALL)
        with pytest.raises(WorkloadError):
            workload.region_trace(workload.num_regions)
        with pytest.raises(WorkloadError):
            workload.region_trace(-1)

    def test_phase_of(self, name):
        workload = get_workload(name, 2, scale=SMALL)
        inst = workload.phase_of(0)
        assert isinstance(inst, PhaseInstance)
        assert inst.phase

    def test_static_blocks_cover_trace(self, name):
        workload = get_workload(name, 2, scale=SMALL)
        nblocks = workload.num_static_blocks
        trace = workload.region_trace(workload.num_regions - 1)
        for thread in trace.threads:
            for exec_ in thread.blocks:
                assert 0 <= exec_.block.bb_id < nblocks


class TestScheduleStructure:
    def test_ft_has_four_unique_init_regions(self):
        workload = get_workload("npb-ft", 2, scale=SMALL)
        phases = [workload.phase_of(i).phase for i in range(4)]
        assert phases == ["setup", "twiddle_init", "fft_init", "warm"]

    def test_sp_has_nine_phase_loop(self):
        workload = get_workload("npb-sp", 2, scale=SMALL)
        first_step = [workload.phase_of(i).phase for i in range(1, 10)]
        assert len(set(first_step)) == 9
        second_step = [workload.phase_of(i).phase for i in range(10, 19)]
        assert first_step == second_step

    def test_mg_vcycle_levels_descend_then_ascend(self):
        workload = get_workload("npb-mg", 2, scale=SMALL)
        params = [workload.phase_of(i).param for i in range(5, 5 + 28)]
        assert params[0] == 7  # down path starts at the finest level
        assert params[-1] == 1

    def test_bodytrack_frame_structure(self):
        workload = get_workload("parsec-bodytrack", 2, scale=SMALL)
        frame0 = [workload.phase_of(i).phase for i in range(1, 23)]
        frame1 = [workload.phase_of(i).phase for i in range(23, 45)]
        assert frame0 == frame1
        assert frame0[0] == "load"

    def test_is_fresh_keys_per_iteration(self):
        workload = get_workload("npb-is", 2, scale=SMALL)
        lines1 = workload.region_trace(1).threads[0].blocks[1].lines
        lines2 = workload.region_trace(2).threads[0].blocks[1].lines
        # Key arrays live at different bases -> different address ranges.
        assert set(lines1.tolist()) != set(lines2.tolist())

    def test_lu_jitter_varies_length(self):
        workload = get_workload("npb-lu", 2, scale=1.0)
        lengths = {
            workload.region_trace(i).instructions for i in range(3, 43, 2)
        }
        assert len(lengths) > 5  # wavefront jitter produces varied lengths

    def test_cg_spmv_gather_pattern_repeats_across_iterations(self):
        workload = get_workload("npb-cg", 2, scale=SMALL)
        # spmv regions are 1, 4, 7, ...; gather block is index 2.
        g1 = workload.region_trace(1).threads[0].blocks[2].lines
        g2 = workload.region_trace(4).threads[0].blocks[2].lines
        # 75% of the sparsity pattern is iteration-invariant.
        common = np.intersect1d(g1, g2).size
        assert common > 0


class TestAllocator:
    def test_arrays_do_not_overlap(self):
        workload = get_workload("npb-cg", 2, scale=SMALL)
        spans = []
        for name in ("matrix", "x", "p", "q", "r", "dots"):
            base = workload.array_base(name)
            spans.append((base, base + workload.array_lines(name)))
        spans.sort()
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert end <= start
