"""Corpus conformance and corruption tests over the golden fixture.

``tests/data/golden-corpus.json`` pins the committed ``.rpt`` traces by
content hash; this battery builds a :class:`~repro.trace.corpus.TraceCorpus`
from exactly those files and asserts (a) the corpus-wide
differential-conformance sweep passes on every hierarchy backend, and
(b) every corruption mode — bit-flipped stored trace, bit-flipped shard,
torn manifest — surfaces as a store miss or a loud
:class:`~repro.errors.TraceFormatError`, never a wrong merge.
"""

from __future__ import annotations

import hashlib
import json
import pathlib

import pytest

from repro.errors import (
    ConfigError,
    RetryExhaustedError,
    TraceFormatError,
)
from repro.experiments.common import RetryPolicy
from repro.mem.backends import backend_names
from repro.store import ArtifactStore
from repro.trace.corpus import (
    CORPUS_FORMAT,
    CorpusEntry,
    TraceCorpus,
    conformance_machine,
)
from repro.trace.shard import ShardedReplay, split_trace

BACKENDS = tuple(sorted(backend_names()))

#: Near-zero backoff for corruption tests that exhaust retries.
FAST = RetryPolicy(max_retries=0, backoff_base=0.001, backoff_max=0.01)

DATA_DIR = pathlib.Path(__file__).parent / "data"


@pytest.fixture(scope="module")
def golden_manifest():
    """The pinned golden-corpus fixture."""
    manifest = json.loads((DATA_DIR / "golden-corpus.json").read_text())
    assert manifest["format"] == CORPUS_FORMAT
    return manifest


@pytest.fixture()
def corpus(tmp_path, golden_manifest):
    """A fresh corpus holding exactly the golden traces."""
    store = ArtifactStore(root=tmp_path / "store")
    corpus = TraceCorpus(store, name="golden")
    for spec in golden_manifest["traces"]:
        corpus.add_trace(DATA_DIR / spec["file"])
    return corpus


class TestGoldenCorpusFixture:
    def test_pinned_hashes_match_disk(self, golden_manifest):
        """The fixture's sha256 pins hold — golden traces are immutable."""
        for spec in golden_manifest["traces"]:
            digest = hashlib.sha256(
                (DATA_DIR / spec["file"]).read_bytes()
            ).hexdigest()
            assert digest == spec["sha256"], (
                f"{spec['file']} changed on disk — golden fixtures are "
                f"immutable"
            )

    def test_corpus_indexes_the_golden_coordinates(
        self, corpus, golden_manifest
    ):
        entries = corpus.entries()
        assert len(entries) == len(golden_manifest["traces"])
        by_workload = {e.workload: e for e in entries}
        for spec in golden_manifest["traces"]:
            entry = by_workload[spec["workload"]]
            assert entry.num_threads == spec["num_threads"]
            assert entry.scale == spec["scale"]
            assert entry.num_regions == spec["num_regions"]
            assert entry.fingerprint.endswith(spec["sha256"])

    def test_add_trace_deduplicates_by_content(self, corpus, golden_manifest):
        before = corpus.entries()
        for spec in golden_manifest["traces"]:
            again = corpus.add_trace(DATA_DIR / spec["file"])
            assert again in before
        assert corpus.entries() == before

    def test_resolve_roundtrips_content(self, corpus, golden_manifest):
        """Resolving an entry serves the exact golden bytes back."""
        spec = golden_manifest["traces"][0]
        entry = next(
            e for e in corpus.entries() if e.workload == spec["workload"]
        )
        path = corpus.resolve(entry)
        digest = hashlib.sha256(path.read_bytes()).hexdigest()
        assert digest == spec["sha256"]


class TestConformanceSweep:
    def test_sweep_passes_on_every_backend(self, corpus, golden_manifest):
        """Every golden entry × backend is bit-identical through the
        split-shard-merge path, in profiles and detailed runs."""
        results = corpus.verify(workers=0)
        assert len(results) == len(golden_manifest["traces"]) * len(BACKENDS)
        assert all(r["ok"] for r in results)
        for r in results:
            assert r["unsharded"] == r["sharded"]
            assert r["unsharded_full"] == r["sharded_full"]

    def test_full_digests_differentiate_backends(self, corpus):
        """Profiles are backend-independent; detailed runs are not —
        the backend axis of the sweep is only meaningful because the
        full-run digest differs across hierarchy backends."""
        results = corpus.verify(workers=0)
        label = results[0]["label"]
        mine = [r for r in results if r["label"] == label]
        assert len({r["unsharded"] for r in mine}) == 1
        assert len({r["unsharded_full"] for r in mine}) == len(BACKENDS)

    def test_empty_corpus_verifies_vacuously(self, tmp_path):
        store = ArtifactStore(root=tmp_path / "store")
        assert TraceCorpus(store, name="empty").verify(workers=0) == []


class TestCorruption:
    def test_bit_flipped_stored_trace_resolves_loudly(self, corpus):
        """A corrupted trace in the store never replays: resolve raises."""
        entry = corpus.entries()[0]
        stored = corpus.store.path_for_file("traces", entry.store_key)
        blob = bytearray(stored.read_bytes())
        blob[len(blob) // 2] ^= 0x01
        stored.write_bytes(bytes(blob))
        with pytest.raises(TraceFormatError, match="missing or corrupt"):
            corpus.resolve(entry)

    def test_evicted_trace_resolves_loudly(self, corpus):
        """A GC-evicted trace is a loud miss, not an empty replay."""
        entry = corpus.entries()[0]
        corpus.store.path_for_file("traces", entry.store_key).unlink()
        with pytest.raises(TraceFormatError, match="GC-evicted"):
            corpus.resolve(entry)

    def test_torn_manifest_is_loud_not_empty(self, corpus):
        """A manifest that fails its checksum must never read as an
        empty corpus — silent loss of the whole index."""
        path = corpus.store.path_for("corpus", corpus.manifest_key)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])  # torn write
        with pytest.raises(TraceFormatError, match="corrupt"):
            corpus.entries()

    def test_missing_manifest_is_an_empty_corpus(self, tmp_path):
        """No manifest at all is legitimately empty (nothing recorded)."""
        store = ArtifactStore(root=tmp_path / "store")
        assert TraceCorpus(store, name="fresh").entries() == []

    def test_bit_flipped_shard_never_merges(self, corpus, tmp_path):
        """Corrupting one payload byte of one shard aborts the sharded
        replay loudly — a wrong merge is not an outcome."""
        from repro.trace.capture import TraceReader

        entry = corpus.entries()[0]
        shards = split_trace(
            corpus.resolve(entry), tmp_path / "shards", num_shards=3
        )
        victim = shards[1]
        with TraceReader(victim) as reader:
            offset, length, _ = reader._offsets[0]
        blob = bytearray(victim.read_bytes())
        blob[offset + length // 2] ^= 0xFF
        victim.write_bytes(bytes(blob))

        replay = ShardedReplay(
            shards, conformance_machine(entry.num_threads, BACKENDS[0]),
            workers=0, retry=FAST,
        )
        with pytest.raises(RetryExhaustedError, match="TraceFormatError"):
            replay.run(want_profiles=True)

    def test_corrupt_shard_header_fails_at_chain_construction(
        self, corpus, tmp_path
    ):
        """Header-level damage is caught before any replay starts."""
        entry = corpus.entries()[0]
        shards = split_trace(
            corpus.resolve(entry), tmp_path / "shards", num_shards=2
        )
        blob = bytearray(shards[0].read_bytes())
        blob[12] ^= 0xFF  # inside the metadata JSON
        shards[0].write_bytes(bytes(blob))
        with pytest.raises(TraceFormatError):
            ShardedReplay(
                shards, conformance_machine(entry.num_threads, BACKENDS[0])
            )


class TestRecording:
    def test_fuzz_range_records_and_dedups(self, tmp_path):
        store = ArtifactStore(root=tmp_path / "store")
        corpus = TraceCorpus(store, name="fuzz")
        first = corpus.record_fuzz_range([3, 4], num_threads=2, scale=0.05)
        assert [e.label for e in first] == ["fuzz-3/2t", "fuzz-4/2t"]
        assert len(corpus.entries()) == 2
        again = corpus.record_fuzz_range([3, 4], num_threads=2, scale=0.05)
        assert again == first
        assert len(corpus.entries()) == 2

    def test_distinct_corpora_share_a_store(self, tmp_path):
        """Different corpus names are independent indexes."""
        store = ArtifactStore(root=tmp_path / "store")
        a = TraceCorpus(store, name="a")
        b = TraceCorpus(store, name="b")
        assert a.manifest_key != b.manifest_key
        a.record_fuzz_range([5], num_threads=2, scale=0.05)
        assert len(a.entries()) == 1
        assert b.entries() == []

    def test_disabled_store_is_rejected(self, tmp_path):
        disabled = ArtifactStore(root=tmp_path / "store", enabled=False)
        with pytest.raises(ConfigError, match="enabled artifact store"):
            TraceCorpus(disabled)

    def test_entry_roundtrips_through_dict(self, tmp_path):
        store = ArtifactStore(root=tmp_path / "store")
        corpus = TraceCorpus(store, name="rt")
        (entry,) = corpus.record_fuzz_range([6], num_threads=2, scale=0.05)
        assert CorpusEntry.from_dict(entry.to_dict()) == entry
