"""Tests for warmup strategies: cold flush and MRU replay."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.mem.hierarchy import MemoryHierarchy
from repro.sim.warmup import ColdWarmup, MRUWarmup, MRUWarmupData
from tests.conftest import tiny_machine


def _data(region=3, per_core=((), (), (), ())):
    return MRUWarmupData(region_index=region, per_core=per_core)


class TestColdWarmup:
    def test_flushes_state(self):
        h = MemoryHierarchy(tiny_machine())
        h.access(0, 99, True)
        ColdWarmup().prepare(h, 0)
        assert not h.l1d[0].contains(99)
        assert h.directory.owner(99) == -1


class TestMRUWarmupData:
    def test_total_lines(self):
        data = _data(per_core=(((1, False), (2, True)), ((3, False),), (), ()))
        assert data.total_lines == 3


class TestMRUWarmup:
    def test_replays_into_caches(self):
        h = MemoryHierarchy(tiny_machine())
        data = _data(per_core=(
            ((10, False), (11, True)), (), (), (),
        ))
        MRUWarmup(data).prepare(h, 3)
        assert h.l1d[0].contains(10)
        assert h.l1d[0].contains(11)
        assert h.directory.owner(11) == 0   # write replayed as write
        assert h.directory.owner(10) == -1

    def test_region_mismatch_rejected(self):
        h = MemoryHierarchy(tiny_machine())
        with pytest.raises(SimulationError):
            MRUWarmup(_data(region=3)).prepare(h, 4)

    def test_too_many_cores_rejected(self):
        h = MemoryHierarchy(tiny_machine())  # 4 cores
        data = _data(per_core=tuple(((1, False),) for _ in range(5)))
        with pytest.raises(SimulationError):
            MRUWarmup(data).prepare(h, 3)

    def test_flushes_before_replay(self):
        h = MemoryHierarchy(tiny_machine())
        h.access(0, 777, False)
        MRUWarmup(_data(per_core=(((1, False),), (), (), ()))).prepare(h, 3)
        assert not h.l1d[0].contains(777)

    def test_recency_order_preserved(self):
        """The last captured line must end up MRU (survive pressure)."""
        machine = tiny_machine()
        h = MemoryHierarchy(machine)
        capacity = machine.l1d.num_lines
        stream = tuple((i, False) for i in range(0, 4 * capacity * machine.l1d.associativity, 1))
        data = _data(per_core=(stream, (), (), ()))
        MRUWarmup(data).prepare(h, 3)
        last_line = stream[-1][0]
        assert h.l1d[0].contains(last_line)

    def test_old_writes_replayed_clean(self):
        """Entries beyond the LRU dirty window lose M state (their
        writeback already happened before the checkpoint)."""
        machine = tiny_machine()
        h = MemoryHierarchy(machine)
        window = machine.l3.num_lines // machine.cores_per_socket
        n = window + 50
        stream = tuple((i, True) for i in range(n))
        data = _data(per_core=(stream, (), (), ()))
        MRUWarmup(data).prepare(h, 3)
        assert h.directory.owner(0) == -1       # ancient write: clean
        assert h.directory.owner(n - 1) == 0    # recent write: still M

    def test_multi_core_round_robin(self):
        h = MemoryHierarchy(tiny_machine())
        data = _data(per_core=(
            ((1, False),), ((2, False),), ((3, False),), ((4, False),),
        ))
        MRUWarmup(data).prepare(h, 3)
        for core, line in enumerate((1, 2, 3, 4)):
            assert h.l1d[core].contains(line)
