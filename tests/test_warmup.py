"""Tests for warmup strategies: cold flush and MRU replay."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.mem.hierarchy import MemoryHierarchy
from repro.sim.warmup import ColdWarmup, MRUWarmup, MRUWarmupData
from tests.conftest import tiny_machine


def _data(region=3, per_core=((), (), (), ())):
    return MRUWarmupData(region_index=region, per_core=per_core)


class TestColdWarmup:
    def test_flushes_state(self):
        h = MemoryHierarchy(tiny_machine())
        h.access(0, 99, True)
        ColdWarmup().prepare(h, 0)
        assert not h.l1d[0].contains(99)
        assert h.directory.owner(99) == -1


class TestMRUWarmupData:
    def test_total_lines(self):
        data = _data(per_core=(((1, False), (2, True)), ((3, False),), (), ()))
        assert data.total_lines == 3


class TestMRUWarmup:
    def test_replays_into_caches(self):
        h = MemoryHierarchy(tiny_machine())
        data = _data(per_core=(
            ((10, False), (11, True)), (), (), (),
        ))
        MRUWarmup(data).prepare(h, 3)
        assert h.l1d[0].contains(10)
        assert h.l1d[0].contains(11)
        assert h.directory.owner(11) == 0   # write replayed as write
        assert h.directory.owner(10) == -1

    def test_region_mismatch_rejected(self):
        h = MemoryHierarchy(tiny_machine())
        with pytest.raises(SimulationError):
            MRUWarmup(_data(region=3)).prepare(h, 4)

    def test_too_many_cores_rejected(self):
        h = MemoryHierarchy(tiny_machine())  # 4 cores
        data = _data(per_core=tuple(((1, False),) for _ in range(5)))
        with pytest.raises(SimulationError):
            MRUWarmup(data).prepare(h, 3)

    def test_flushes_before_replay(self):
        h = MemoryHierarchy(tiny_machine())
        h.access(0, 777, False)
        MRUWarmup(_data(per_core=(((1, False),), (), (), ()))).prepare(h, 3)
        assert not h.l1d[0].contains(777)

    def test_recency_order_preserved(self):
        """The last captured line must end up MRU (survive pressure)."""
        machine = tiny_machine()
        h = MemoryHierarchy(machine)
        capacity = machine.l1d.num_lines
        stream = tuple((i, False) for i in range(0, 4 * capacity * machine.l1d.associativity, 1))
        data = _data(per_core=(stream, (), (), ()))
        MRUWarmup(data).prepare(h, 3)
        last_line = stream[-1][0]
        assert h.l1d[0].contains(last_line)

    def test_old_writes_replayed_clean(self):
        """Entries beyond the LRU dirty window lose M state (their
        writeback already happened before the checkpoint)."""
        machine = tiny_machine()
        h = MemoryHierarchy(machine)
        window = machine.l3.num_lines // machine.cores_per_socket
        n = window + 50
        stream = tuple((i, True) for i in range(n))
        data = _data(per_core=(stream, (), (), ()))
        MRUWarmup(data).prepare(h, 3)
        assert h.directory.owner(0) == -1       # ancient write: clean
        assert h.directory.owner(n - 1) == 0    # recent write: still M

    def test_dirty_window_counts_active_threads_not_cores(self):
        """Regression: a capture with fewer streams than cores-per-socket
        must size the dirty window by the *active thread* count — the LLC
        was shared by that many writers — not by the machine's full
        cores-per-socket, which replayed recent writes as clean."""
        machine = tiny_machine()  # 4 cores/socket, 512-line L3
        llc = machine.l3.num_lines
        correct_window = llc // 2       # 2 active threads
        wrong_window = llc // machine.cores_per_socket
        assert correct_window > wrong_window
        # Two streams of `correct_window` distinct written lines each;
        # disjoint line ranges spread evenly over L3 sets, so the 512
        # lines exactly fill the L3 and nothing is evicted during replay.
        streams = (
            tuple((i, True) for i in range(correct_window)),
            tuple((1000 + i, True) for i in range(correct_window)),
        )
        h = MemoryHierarchy(machine)
        MRUWarmup(_data(per_core=streams)).prepare(h, 3)
        dirty = [
            line
            for lines in ((s[0] for s in st) for st in streams)
            for line in lines
            if h.directory.owner(line) >= 0
        ]
        # Every captured write is inside the two-sharer window, so every
        # line must replay dirty; the old cores-per-socket window dropped
        # M state from the first half of each stream.
        assert len(dirty) == 2 * correct_window

    def test_dirty_window_full_sockets_share_per_socket(self):
        """With every core active, the window is the per-socket share
        ``llc / cores_per_socket`` — stream counts on *other* sockets
        must not shrink it (a machine-wide 8-sharer window would)."""
        machine = tiny_machine(num_sockets=2)  # 8 cores, 4 per socket
        llc = machine.l3.num_lines
        window = llc // machine.cores_per_socket  # 4 writers per socket
        # Four streams per socket of exactly `window` written lines: the
        # socket L3 fills exactly (no evictions), and with the per-socket
        # window every entry is recent enough to stay dirty.  A
        # machine-wide 8-sharer window would replay each stream's older
        # half clean.
        n = window
        streams = tuple(
            tuple((core * 10_000 + i, True) for i in range(n))
            for core in range(8)
        )
        h = MemoryHierarchy(machine)
        MRUWarmup(_data(per_core=streams)).prepare(h, 3)
        for core in range(8):
            assert h.directory.owner(core * 10_000) == core
            assert h.directory.owner(core * 10_000 + n - 1) == core

    def test_dirty_window_is_per_socket(self):
        """A half-populated socket keeps its wider per-writer share: the
        window divides each socket's LLC by the streams mapped to *that*
        socket, not by a machine-wide stream count."""
        machine = tiny_machine(num_sockets=2)  # 4 cores/socket, 512-line L3s
        llc = machine.l3.num_lines
        # Six active streams: cores 0-3 fill socket 0 (4 writers), cores
        # 4-5 leave socket 1 half-populated (2 writers -> window llc/2).
        n1 = llc // 2
        streams = tuple(
            tuple((core * 10_000 + i, True) for i in range(
                llc // 4 if core < 4 else n1
            ))
            for core in range(6)
        )
        h = MemoryHierarchy(machine)
        MRUWarmup(_data(per_core=streams)).prepare(h, 3)
        # Socket 1's two streams fill its L3 exactly; with the per-socket
        # window every write is recent enough to stay dirty.  A
        # machine-wide 6-stream (clamped to 4) window would have replayed
        # each stream's older half clean.
        for core in (4, 5):
            assert h.directory.owner(core * 10_000) == core
            assert h.directory.owner(core * 10_000 + n1 - 1) == core

    def test_prefetch_suppressed_during_replay(self):
        """Replay is checkpoint reconstruction: a prefetching backend
        must install exactly the captured lines, not speculative
        neighbors that would evict captured state."""
        from repro.mem import NextLinePrefetchHierarchy

        h = NextLinePrefetchHierarchy(tiny_machine())
        data = _data(per_core=(((10, False), (20, True)), (), (), ()))
        MRUWarmup(data).prepare(h, 3)
        assert h.l1d[0].contains(10) and h.l1d[0].contains(20)
        assert not h.l2[0].contains(11)  # no next-line speculation
        assert not h.l2[0].contains(21)
        assert h.snapshot().prefetches == 0
        # The demand path prefetches again after replay.
        h.access(0, 100, False)
        assert h.l2[0].contains(101)
        assert h.snapshot().prefetches == 1

    def test_multi_core_round_robin(self):
        h = MemoryHierarchy(tiny_machine())
        data = _data(per_core=(
            ((1, False),), ((2, False),), ((3, False),), ((4, False),),
        ))
        MRUWarmup(data).prepare(h, 3)
        for core, line in enumerate((1, 2, 3, 4)):
            assert h.l1d[core].contains(line)
