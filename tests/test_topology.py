"""Tests for the machine-topology abstraction (repro.mem.topology).

The views, the hop-class algebra, the fabric bandwidth floor, and its
integration with the region timing model.
"""

from dataclasses import replace

import pytest

from repro.config import CACHE_LINE_BYTES, TopologyConfig
from repro.mem.topology import (
    CROSS_COMPLEX,
    CROSS_SOCKET,
    INTRA_COMPLEX,
    LATENCY_CLASSES,
    Topology,
    fabric_min_cycles,
)
from repro.sim.machine import Machine
from repro.workloads import get_workload
from tests.conftest import tiny_machine


def ccx_machine(num_sockets=2, cores_per_complex=(2, 2), **kwargs):
    return replace(
        tiny_machine(num_sockets=num_sockets,
                     cores_per_socket=sum(cores_per_complex)),
        topology=TopologyConfig(cores_per_complex=cores_per_complex,
                                **kwargs),
    )


class TestViews:
    def test_socket_view_partitions_cores_by_socket(self):
        machine = ccx_machine()  # the complex structure must not matter
        topo = Topology.socket_view(machine)
        assert topo.num_domains == machine.num_sockets == 2
        assert topo.domains == ((0, 1, 2, 3), (4, 5, 6, 7))
        assert topo.domain_of == [0, 0, 0, 0, 1, 1, 1, 1]
        assert topo.domain_socket == (0, 1)
        assert topo.domain_mask == (0b00001111, 0b11110000)

    def test_complex_view_partitions_cores_by_complex(self):
        topo = Topology.complex_view(ccx_machine())
        assert topo.num_domains == 4
        assert topo.domains == ((0, 1), (2, 3), (4, 5), (6, 7))
        assert topo.domain_socket == (0, 0, 1, 1)
        assert topo.domain_mask == (0b0011, 0b1100, 0b110000, 0b11000000)

    def test_complex_view_imbalanced_sizes(self):
        topo = Topology.complex_view(
            ccx_machine(num_sockets=1, cores_per_complex=(4, 2))
        )
        assert topo.domains == ((0, 1, 2, 3), (4, 5))

    def test_views_coincide_on_flat_machines(self):
        machine = tiny_machine(num_sockets=2)
        sock = Topology.socket_view(machine)
        cplx = Topology.complex_view(machine)
        assert cplx.domains == sock.domains
        assert cplx.domain_socket == sock.domain_socket


class TestHopClasses:
    def test_three_classes_cheapest_first(self):
        assert LATENCY_CLASSES == (
            "intra-complex", "cross-complex", "cross-socket"
        )

    def test_hop_class_partition(self):
        topo = Topology.complex_view(ccx_machine())
        assert topo.hop_class(0, 0) == INTRA_COMPLEX
        assert topo.hop_class(0, 1) == CROSS_COMPLEX  # same socket
        assert topo.hop_class(0, 2) == CROSS_SOCKET
        assert topo.hop_class(3, 2) == CROSS_COMPLEX

    def test_hop_extra_cycles_per_class(self):
        machine = ccx_machine(cross_complex_extra_cycles=17)
        topo = Topology.complex_view(machine)
        assert topo.hop_extra_cycles(1, 1) == 0
        assert topo.hop_extra_cycles(0, 1) == 17
        assert topo.hop_extra_cycles(0, 2) == machine.remote_socket_extra_cycles

    def test_hop_extra_table_is_dense_and_symmetric(self):
        topo = Topology.complex_view(ccx_machine())
        table = topo.hop_extra_table()
        n = topo.num_domains
        assert len(table) == n and all(len(row) == n for row in table)
        for a in range(n):
            for b in range(n):
                assert table[a][b] == topo.hop_extra_cycles(a, b)
                assert table[a][b] == table[b][a]

    def test_socket_view_never_sees_cross_complex(self):
        topo = Topology.socket_view(ccx_machine())
        classes = {
            topo.hop_class(a, b)
            for a in range(topo.num_domains)
            for b in range(topo.num_domains)
        }
        assert classes == {INTRA_COMPLEX, CROSS_SOCKET}


class TestFabricFloor:
    def test_unconstrained_without_interconnect(self):
        assert fabric_min_cycles(tiny_machine(), transfers=10_000) == 0.0

    def test_zero_traffic_is_free(self):
        machine = ccx_machine(interconnect_gbps=10.0)
        assert fabric_min_cycles(machine, transfers=0) == 0.0

    def test_scales_with_traffic_and_inverse_bandwidth(self):
        machine = ccx_machine(interconnect_gbps=10.0)
        one = fabric_min_cycles(machine, transfers=1)
        assert one == CACHE_LINE_BYTES / (10.0 / machine.core.frequency_ghz)
        assert fabric_min_cycles(machine, transfers=7) == pytest.approx(7 * one)
        wider = ccx_machine(interconnect_gbps=20.0)
        assert fabric_min_cycles(wider, 7) == pytest.approx(7 * one / 2)


class TestRegionIntegration:
    @staticmethod
    def run(machine):
        workload = get_workload("npb-is", machine.num_cores, scale=0.1)
        return Machine(machine).run_full(workload)

    def test_starved_fabric_stretches_regions(self):
        """The same complex machine with a starved interconnect reports
        bandwidth-limited regions and takes longer overall."""
        base = replace(ccx_machine(num_sockets=1), hierarchy="complex")
        free = self.run(base)
        starved = self.run(
            replace(base,
                    topology=replace(base.topology, interconnect_gbps=1e-3))
        )
        assert any(r.bandwidth_limited for r in starved.regions)
        assert starved.app.cycles > free.app.cycles
        # Traffic counters are unchanged — only the timing is bounded.
        assert [r.counters.to_state() for r in starved.regions] == [
            r.counters.to_state() for r in free.regions
        ]

    def test_flat_machines_unaffected_by_fabric_model(self):
        """Flat machines (interconnect_gbps=None) go down the exact
        pre-topology timing path: no fabric floor is ever applied."""
        machine = tiny_machine(num_sockets=2)
        assert machine.topology.interconnect_gbps is None
        result = self.run(machine)
        assert result.app.cycles > 0
