"""Failure injection and edge cases across module boundaries."""

import numpy as np
import pytest

from repro.config import CacheConfig, MachineConfig, SimPointConfig
from repro.core.pipeline import BarrierPointPipeline
from repro.core.reconstruction import reconstruct_app
from repro.core.selection import select_barrierpoints
from repro.core.speedup import speedup_report
from repro.clustering.simpoint import SimPointClusterer
from repro.errors import (
    ClusteringError,
    ReconstructionError,
    ReproError,
    SimulationError,
    WorkloadError,
)
from repro.sim.machine import Machine
from repro.trace.program import BasicBlock, BlockExec, RegionTrace, ThreadTrace
from repro.workloads import get_workload
from tests.conftest import tiny_machine


class TestErrorHierarchy:
    @pytest.mark.parametrize("exc", [
        ClusteringError, ReconstructionError, SimulationError, WorkloadError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")


class TestDegenerateRegions:
    def _region(self, threads):
        return RegionTrace(region_index=0, phase="x", threads=threads)

    def test_single_thread_region(self):
        block = BasicBlock(bb_id=0, name="b", instructions=100)
        trace = self._region((
            ThreadTrace(0, (BlockExec(block, count=1),)),
        ))
        metrics = Machine(tiny_machine()).simulate_region(trace)
        assert metrics.barrier_cycles == 0.0  # one thread: no barrier cost
        assert metrics.cycles > 0

    def test_thread_with_no_blocks_allowed(self):
        block = BasicBlock(bb_id=0, name="b", instructions=100)
        trace = self._region((
            ThreadTrace(0, (BlockExec(block, count=1),)),
            ThreadTrace(1, ()),  # master-only region
        ))
        metrics = Machine(tiny_machine()).simulate_region(trace)
        assert metrics.per_thread_cycles[1] == 0.0

    def test_all_empty_region_rejected(self):
        trace = self._region((ThreadTrace(0, ()), ThreadTrace(1, ())))
        with pytest.raises(SimulationError):
            Machine(tiny_machine()).simulate_region(trace)


class TestDegenerateClustering:
    def test_more_clusters_than_distinct_points(self):
        """Duplicate-heavy inputs must not crash or return empty clusters."""
        signatures = np.array([[1.0, 0.0]] * 6 + [[0.0, 1.0]] * 2)
        weights = np.ones(8) * 10
        result = SimPointClusterer(
            SimPointConfig(max_k=8, kmeans_restarts=2)
        ).fit(signatures, weights)
        assert result.chosen_k >= 1
        assert 1 <= result.num_clusters <= result.chosen_k
        for cluster in range(result.num_clusters):
            assert result.members_of(cluster).size > 0

    def test_identical_regions_cluster_to_one(self):
        signatures = np.tile(np.array([[0.3, 0.7]]), (10, 1))
        weights = np.ones(10)
        result = SimPointClusterer(
            SimPointConfig(max_k=5, kmeans_restarts=2)
        ).fit(signatures, weights)
        assert result.chosen_k == 1

    def test_selection_rejects_non_positive_instructions(self):
        signatures = np.random.default_rng(0).random((4, 3))
        weights = np.ones(4)
        clustering = SimPointClusterer(
            SimPointConfig(max_k=2, kmeans_restarts=1)
        ).fit(signatures, weights)
        with pytest.raises(ReconstructionError):
            select_barrierpoints(
                clustering, np.array([1.0, 2.0, 0.0, 4.0]), "w", 1, "s")

    def test_selection_rejects_label_mismatch(self):
        signatures = np.random.default_rng(0).random((4, 3))
        clustering = SimPointClusterer(
            SimPointConfig(max_k=2, kmeans_restarts=1)
        ).fit(signatures, np.ones(4))
        with pytest.raises(ReconstructionError):
            select_barrierpoints(clustering, np.ones(5), "w", 1, "s")


class TestReconstructionConsistency:
    def test_wrong_key_metrics_rejected(self):
        workload = get_workload("npb-is", 4, scale=0.1)
        pipe = BarrierPointPipeline(
            tiny_machine(),
            simpoint=SimPointConfig(max_k=4, kmeans_restarts=1))
        selection = pipe.select(workload)
        full = pipe.full_run(workload)
        # Supply a region's metrics under another region's key.
        points = list(selection.selected_regions)
        bad = {idx: full.region(points[0]) for idx in points}
        if len(points) > 1:
            with pytest.raises(ReconstructionError):
                reconstruct_app(selection, bad)

    def test_speedup_empty_selection_rejected(self):
        workload = get_workload("npb-is", 4, scale=0.1)
        pipe = BarrierPointPipeline(
            tiny_machine(),
            simpoint=SimPointConfig(max_k=2, kmeans_restarts=1))
        selection = pipe.select(workload)
        object.__setattr__(selection, "points", ())
        with pytest.raises(ReconstructionError):
            speedup_report(selection)


class TestExtremeMachineShapes:
    def test_single_core_machine(self):
        machine = MachineConfig(
            name="uni", num_sockets=1, cores_per_socket=1,
            l1i=CacheConfig(1024, 4, 4), l1d=CacheConfig(2048, 8, 4),
            l2=CacheConfig(8192, 8, 8), l3=CacheConfig(32768, 16, 30),
        )
        workload = get_workload("npb-is", 1, scale=0.1)
        full = Machine(machine).run_full(workload)
        assert full.app.cycles > 0
        # no sharing, no barriers
        assert all(r.barrier_cycles == 0 for r in full.regions)
        assert full.regions[0].counters.cache_to_cache == 0

    def test_many_small_sockets(self):
        machine = MachineConfig(
            name="quad", num_sockets=4, cores_per_socket=1,
            l1i=CacheConfig(1024, 4, 4), l1d=CacheConfig(2048, 8, 4),
            l2=CacheConfig(8192, 8, 8), l3=CacheConfig(32768, 16, 30),
        )
        workload = get_workload("npb-ft", 4, scale=0.1)
        full = Machine(machine).run_full(workload)
        # the all-to-all transposes must generate cross-socket traffic
        transposes = [r for r in full.regions if r.phase == "transpose"]
        assert sum(r.counters.cache_to_cache for r in transposes) > 0

    def test_oversized_workload_scale(self):
        workload = get_workload("npb-is", 4, scale=3.0)
        trace = workload.region_trace(1)
        assert trace.num_refs > 0


class TestMoreThreadsThanWork:
    def test_tiny_arrays_many_threads(self):
        """More threads than array lines: partitions degrade gracefully."""
        workload = get_workload("npb-is", 32, scale=0.02)
        trace = workload.region_trace(0)
        assert trace.num_threads == 32
        assert trace.instructions > 0
