"""Shared fixtures: tiny machines and scaled-down workloads for fast tests."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.config import CacheConfig, CoreConfig, MachineConfig
from repro.workloads import get_workload


def assert_bit_identical(a, b, path="value"):
    """Deep bit-identity check over nested state (dicts/tuples/arrays).

    Stricter than ``==``: numpy arrays must match in dtype, shape, *and*
    raw bytes, and scalars must match in type as well as value — the
    "byte-identical" contract the record/replay conformance battery
    asserts.  (Plain pickle-bytes comparison is unusable here: pickle
    memoizes shared objects, so identical values serialize differently
    depending on object identity.)
    """
    assert type(a) is type(b), f"{path}: {type(a)} vs {type(b)}"
    if isinstance(a, dict):
        assert a.keys() == b.keys(), f"{path}: key mismatch"
        for key in a:
            assert_bit_identical(a[key], b[key], f"{path}[{key!r}]")
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b), f"{path}: length {len(a)} vs {len(b)}"
        for i, (xa, xb) in enumerate(zip(a, b)):
            assert_bit_identical(xa, xb, f"{path}[{i}]")
    elif isinstance(a, np.ndarray):
        assert a.dtype == b.dtype, f"{path}: dtype {a.dtype} vs {b.dtype}"
        assert a.shape == b.shape, f"{path}: shape {a.shape} vs {b.shape}"
        assert (np.ascontiguousarray(a).tobytes()
                == np.ascontiguousarray(b).tobytes()), f"{path}: array bytes"
    else:
        assert a == b, f"{path}: {a!r} vs {b!r}"


@pytest.fixture(scope="session", autouse=True)
def _isolated_artifact_store(tmp_path_factory):
    """Point the artifact store at a per-session temp dir.

    Keeps test runs hermetic (no reuse of a developer's ``.repro-store``)
    and keeps the repository clean.  Tests that need their own store root
    monkeypatch ``REPRO_STORE_DIR`` on top of this.
    """
    root = tmp_path_factory.mktemp("repro-store")
    previous = os.environ.get("REPRO_STORE_DIR")
    os.environ["REPRO_STORE_DIR"] = str(root)
    yield root
    if previous is None:
        os.environ.pop("REPRO_STORE_DIR", None)
    else:  # pragma: no cover - depends on invoking environment
        os.environ["REPRO_STORE_DIR"] = previous


def tiny_machine(num_sockets: int = 1, cores_per_socket: int = 4) -> MachineConfig:
    """A very small machine: 4 cores/socket, tiny caches, fast to simulate."""
    return MachineConfig(
        name=f"tiny-{num_sockets}x{cores_per_socket}",
        num_sockets=num_sockets,
        cores_per_socket=cores_per_socket,
        core=CoreConfig(),
        l1i=CacheConfig(4 * 256, 4, 4),      # 16 lines
        l1d=CacheConfig(8 * 256, 8, 4),      # 32 lines
        l2=CacheConfig(8 * 1024, 8, 8),      # 128 lines
        l3=CacheConfig(32 * 1024, 16, 30),   # 512 lines
    )


@pytest.fixture
def machine4() -> MachineConfig:
    """Single-socket 4-core tiny machine."""
    return tiny_machine()


@pytest.fixture
def machine8_2s() -> MachineConfig:
    """Two-socket, 8-core tiny machine (exercises coherence across sockets)."""
    return tiny_machine(num_sockets=2, cores_per_socket=4)


@pytest.fixture
def small_ft():
    """npb-ft at 4 threads, small scale."""
    return get_workload("npb-ft", 4, scale=0.1)


@pytest.fixture
def small_cg():
    """npb-cg at 4 threads, small scale."""
    return get_workload("npb-cg", 4, scale=0.1)


@pytest.fixture
def small_is():
    """npb-is at 4 threads, small scale (few regions: fastest suite member)."""
    return get_workload("npb-is", 4, scale=0.2)
