"""Tests for the experiment harness (small-scale, reduced suite)."""

import pytest

from repro.config import SimPointConfig
from repro.experiments import paper_data
from repro.experiments.common import ExperimentRunner, experiment_machine
from repro.experiments import (
    ablations,
    fig1_barrier_counts,
    fig3_ipc_trace,
    fig4_perfect_warmup,
    fig6_cross_validation,
    fig8_relative_scaling,
    fig9_speedups,
    table3_barrierpoints,
)
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(
        scale=0.15,
        benchmarks=("npb-is", "npb-ft"),
        simpoint=SimPointConfig(max_k=12, kmeans_restarts=2),
    )


class TestCommon:
    def test_experiment_machine(self):
        assert experiment_machine(8).num_cores == 8
        assert experiment_machine(32).num_cores == 32
        with pytest.raises(ConfigError):
            experiment_machine(16)

    def test_memoization(self, runner):
        first = runner.full("npb-is", 8)
        assert runner.full("npb-is", 8) is first
        prof = runner.profiles("npb-is", 8)
        assert runner.profiles("npb-is", 8) is prof
        sel = runner.selection("npb-is", 8)
        assert runner.selection("npb-is", 8) is sel


class TestFig1(object):
    def test_counts_match_paper(self, runner):
        rows = fig1_barrier_counts.compute(runner)
        for row in rows:
            assert row["barriers_8"] == paper_data.BARRIER_COUNTS[
                row["benchmark"]]
            assert row["invariant"]

    def test_render(self, runner):
        out = fig1_barrier_counts.run(runner)
        assert "Fig. 1" in out and "npb-is" in out


class TestFig3:
    def test_series_shapes(self, runner):
        data = fig3_ipc_trace.compute(runner)
        n = runner.workload("npb-ft", 32).num_regions
        assert data["actual_ipc"].shape == (n,)
        assert data["reconstructed_ipc"].shape == (n,)
        assert data["correlation"] > 0.5

    def test_render(self, runner):
        out = fig3_ipc_trace.run(runner)
        assert "IPC" in out and "barrierpoint" in out


class TestFig4:
    def test_errors_reasonable(self, runner):
        data = fig4_perfect_warmup.compute(runner)
        assert data["avg_error"] < 25.0
        assert data["max_error"] >= data["avg_error"]
        assert len(data["rows"]) == 4  # 2 benchmarks x 2 core counts

    def test_render_mentions_paper(self, runner):
        out = fig4_perfect_warmup.run(runner)
        assert "paper: 0.6%" in out


class TestFig6:
    def test_transfer_cells_present(self, runner):
        rows = fig6_cross_validation.compute(runner)
        for row in rows:
            assert set(row["cells"]) == {(8, 8), (8, 32), (32, 8), (32, 32)}

    def test_render(self, runner):
        assert "cross-validation" in fig6_cross_validation.run(runner)


class TestFig8:
    def test_predicted_close_to_actual(self, runner):
        rows = fig8_relative_scaling.compute(runner)
        for row in rows:
            assert row["actual"] > 0
            assert row["predicted"] == pytest.approx(row["actual"],
                                                     rel=0.35)


class TestFig9:
    def test_aggregates(self, runner):
        data = fig9_speedups.compute(runner)
        assert data["max_parallel"] >= data["hmean_parallel"]
        assert data["min_parallel"] <= data["hmean_parallel"]
        for row in data["rows"]:
            assert row["parallel"] >= row["serial"] * 0.99

    def test_render(self, runner):
        assert "harmonic-mean" in fig9_speedups.run(runner)


class TestTable3:
    def test_structure(self, runner):
        rows = table3_barrierpoints.compute(runner)
        for row in rows:
            assert row["num_barriers"] == paper_data.BARRIER_COUNTS[
                row["benchmark"]]
            assert row["num_significant"] + row["num_insignificant"] >= 1
            assert 0 <= row["insig_total_weight"] < 0.1

    def test_render(self, runner):
        assert "Table III" in table3_barrierpoints.run(runner)


class TestAblations:
    def test_thread_combining(self, runner):
        rows = ablations.compute_thread_combining(runner)
        assert {r["benchmark"] for r in rows} == set(runner.benchmarks)

    def test_significant_only(self, runner):
        rows = ablations.compute_significant_only(runner)
        for row in rows:
            assert row["serial_significant"] >= row["serial_all"] * 0.99
            assert row["coverage_pct"] > 90.0

    def test_render(self, runner):
        assert "Ablation" in ablations.run(runner)
