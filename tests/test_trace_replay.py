"""The differential-conformance battery for trace record/replay.

The BarrierPoint methodology rests on traces being deterministic; this
battery asserts the stronger, durable property the record/replay
subsystem adds: for **every** registered workload, a recorded trace
replayed through the pipeline is *bit-identical* to fresh generation —
profiles (BBV/LDV array bytes included) and detailed full runs across
all three hierarchy backends — and the committed golden fixtures keep
that anchor stable across future changes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import shutil

import pytest

from repro.core.pipeline import BarrierPointPipeline
from repro.errors import TraceFormatError
from repro.mem.backends import backend_names
from repro.profiling.profiler import profiles_digest
from repro.store import ArtifactStore
from repro.trace.capture import (
    TraceReader,
    record_trace,
    store_trace,
    stored_trace,
    validate_trace,
)
from repro.workloads import get_workload, registered_workloads
from repro.workloads.replay import ReplayWorkload
from tests.conftest import assert_bit_identical, tiny_machine

SCALE = 0.1
THREADS = 4

#: Tiny evaluation machines, one per hierarchy backend.
BACKENDS = tuple(sorted(backend_names()))

#: Fuzzer scenarios riding through the same conformance checks.
FUZZ_SEEDS = (1, 2, 3)

GOLDEN = {
    "golden-npb-is.rpt": {
        "sha256": "3ebdec0c01231a03a6336301b97b8b6afb0be2240f8236d1f3b7a5ffc70e17c7",
        "workload": "npb-is",
        "num_threads": 2,
        "scale": 0.05,
        "num_regions": 11,
    },
    "golden-fuzz-11.rpt": {
        "sha256": "9229404987135cb24fa36c3b0db4e4e2702c9815a3f75edccaf16ff4547fab48",
        "workload": "fuzz-11",
        "num_threads": 2,
        "scale": 0.05,
        "num_regions": 34,
    },
}


def backend_machine(backend: str):
    """The tiny test machine running one hierarchy backend."""
    machine = tiny_machine()
    return dataclasses.replace(
        machine, name=f"{machine.name}-{backend}", hierarchy=backend
    )


@pytest.fixture(scope="module")
def trace_dir(tmp_path_factory):
    """Module-scoped directory holding one recording per workload."""
    return tmp_path_factory.mktemp("conformance")


def _record_once(trace_dir, name):
    """Record ``name`` at the battery coordinates (cached on disk)."""
    path = trace_dir / f"{name.replace(':', '_')}.rpt"
    if not path.exists():
        record_trace(get_workload(name, THREADS, SCALE), path)
    return path


@pytest.mark.parametrize("name", registered_workloads())
def test_record_replay_profiles_bit_identical(name, trace_dir):
    """Replayed functional profiles match fresh generation byte-for-byte."""
    path = _record_once(trace_dir, name)
    fresh = get_workload(name, THREADS, SCALE)
    replay = ReplayWorkload(path)
    pipe = BarrierPointPipeline(tiny_machine())
    fresh_profiles = pipe.profile(fresh)
    replay_profiles = pipe.profile(replay)
    assert len(fresh_profiles) == len(replay_profiles)
    for a, b in zip(fresh_profiles, replay_profiles):
        assert_bit_identical(a.to_state(), b.to_state())
    assert profiles_digest(fresh_profiles) == profiles_digest(replay_profiles)
    replay.close()


@pytest.mark.parametrize("name", registered_workloads())
@pytest.mark.parametrize("backend", BACKENDS)
def test_record_replay_full_run_bit_identical(name, backend, trace_dir):
    """Replayed detailed runs match fresh ones on every hierarchy backend."""
    path = _record_once(trace_dir, name)
    machine = backend_machine(backend)
    fresh_full = BarrierPointPipeline(machine).full_run(
        get_workload(name, THREADS, SCALE)
    )
    replay = ReplayWorkload(path)
    replay_full = BarrierPointPipeline(machine).full_run(replay)
    assert_bit_identical(fresh_full.to_state(), replay_full.to_state())
    replay.close()


@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_fuzzer_scenarios_replay_bit_identical(seed, trace_dir):
    """Fuzzer-emitted scenarios are replayable workloads like any other."""
    name = f"fuzz-{seed}"
    path = _record_once(trace_dir, name)
    machine = backend_machine("prefetch-nl")
    pipe = BarrierPointPipeline(machine)
    fresh = get_workload(name, THREADS, SCALE)
    replay = ReplayWorkload(path)
    assert profiles_digest(pipe.profile(fresh)) == profiles_digest(
        pipe.profile(replay)
    )
    assert_bit_identical(
        pipe.full_run(fresh).to_state(), pipe.full_run(replay).to_state()
    )
    replay.close()


def test_replay_of_replay_is_stable(trace_dir, tmp_path):
    """Re-recording a replay reproduces identical chunk payloads."""
    first = _record_once(trace_dir, "npb-is")
    replay = ReplayWorkload(first)
    second = record_trace(replay, tmp_path / "second.rpt")
    replay.close()
    with TraceReader(first) as a, TraceReader(second) as b:
        assert list(a.iter_chunk_info()) == list(b.iter_chunk_info())


def test_warmed_barrierpoint_matches_through_replay(trace_dir):
    """The warmup capture pass also sees identical executions on replay."""
    from repro.profiling.profiler import FunctionalProfiler
    from repro.sim.machine import Machine
    from repro.sim.warmup import MRUWarmup

    path = _record_once(trace_dir, "npb-cg")
    machine = tiny_machine()
    fresh = get_workload("npb-cg", THREADS, SCALE)
    replay = ReplayWorkload(path)
    mid = fresh.num_regions // 2
    capacity = machine.l3.num_lines
    data_fresh = FunctionalProfiler(fresh).capture_warmup({mid}, capacity)[mid]
    data_replay = FunctionalProfiler(replay).capture_warmup(
        {mid}, capacity
    )[mid]
    assert data_fresh.per_core == data_replay.per_core
    metrics_fresh = Machine(machine).simulate_barrierpoint(
        fresh, mid, MRUWarmup(data_fresh)
    )
    metrics_replay = Machine(machine).simulate_barrierpoint(
        replay, mid, MRUWarmup(data_replay)
    )
    assert_bit_identical(metrics_fresh.to_state(), metrics_replay.to_state())
    replay.close()


class TestGoldenFixtures:
    """The committed ``.rpt`` fixtures are a durable conformance anchor."""

    @pytest.mark.parametrize("filename", sorted(GOLDEN))
    def test_checksum_pinned(self, filename, golden_dir):
        expected = GOLDEN[filename]
        path = golden_dir / filename
        assert hashlib.sha256(path.read_bytes()).hexdigest() == (
            expected["sha256"]
        ), f"{filename} changed on disk — golden fixtures are immutable"

    @pytest.mark.parametrize("filename", sorted(GOLDEN))
    def test_validates_and_matches_metadata(self, filename, golden_dir):
        expected = GOLDEN[filename]
        with validate_trace(golden_dir / filename) as reader:
            assert reader.meta["workload"] == expected["workload"]
            assert reader.num_threads == expected["num_threads"]
            assert reader.meta["scale"] == expected["scale"]
            assert reader.num_regions == expected["num_regions"]

    @pytest.mark.parametrize("filename", sorted(GOLDEN))
    def test_replays_bit_identical_to_fresh_generation(
        self, filename, golden_dir
    ):
        expected = GOLDEN[filename]
        replay = ReplayWorkload(golden_dir / filename)
        fresh = get_workload(
            expected["workload"], expected["num_threads"], expected["scale"]
        )
        pipe = BarrierPointPipeline(tiny_machine())
        assert profiles_digest(pipe.profile(replay)) == profiles_digest(
            pipe.profile(fresh)
        )
        assert_bit_identical(
            pipe.full_run(fresh).to_state(), pipe.full_run(replay).to_state()
        )
        replay.close()

    def test_bit_flip_raises_not_garbage(self, golden_dir, tmp_path):
        """Corrupting one payload bit is a loud TraceFormatError."""
        source = golden_dir / "golden-npb-is.rpt"
        corrupt = tmp_path / "corrupt.rpt"
        data = bytearray(source.read_bytes())
        data[len(data) // 2] ^= 0x01  # single bit, inside a chunk payload
        corrupt.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError):
            validate_trace(corrupt)

    @staticmethod
    def _recorded_code(path):
        """The code fingerprint the fixture was recorded under.

        Stored traces are keyed by their *recording's* fingerprint, so
        looking up an archived fixture must use its own — the current
        package's fingerprint has moved on since the fixture was made.
        """
        with TraceReader(path) as reader:
            return reader.meta["code_fingerprint"]

    def test_corrupt_golden_copy_is_a_store_miss(self, golden_dir, tmp_path):
        """A stored-then-corrupted golden trace reads as a miss."""
        source = golden_dir / "golden-npb-is.rpt"
        code = self._recorded_code(source)
        store = ArtifactStore(root=tmp_path / "store")
        stored = store_trace(store, source)
        data = bytearray(stored.read_bytes())
        data[len(data) // 2] ^= 0x01
        stored.write_bytes(bytes(data))
        assert stored_trace(store, "npb-is", 2, 0.05, code=code) is None
        assert store.misses == 1
        assert not stored.exists()

    def test_pristine_golden_copy_is_a_store_hit(self, golden_dir, tmp_path):
        source = golden_dir / "golden-npb-is.rpt"
        code = self._recorded_code(source)
        store = ArtifactStore(root=tmp_path / "store")
        copy = tmp_path / "copy.rpt"
        shutil.copyfile(source, copy)
        store_trace(store, copy)
        assert stored_trace(store, "npb-is", 2, 0.05, code=code) is not None
        assert store.hits == 1

    def test_stale_code_fingerprint_is_unreachable(self, golden_dir, tmp_path):
        """Under *current* code, an old recording's key simply misses."""
        from repro.store import code_fingerprint

        source = golden_dir / "golden-npb-is.rpt"
        if self._recorded_code(source) == code_fingerprint():
            pytest.skip("fixture was recorded under the current source tree")
        store = ArtifactStore(root=tmp_path / "store")
        store_trace(store, source)
        # The fixture predates the current source tree, so the default
        # (current-code) lookup must not serve it.
        assert stored_trace(store, "npb-is", 2, 0.05) is None


@pytest.fixture(scope="module")
def golden_dir():
    """The committed fixture directory."""
    import pathlib

    return pathlib.Path(__file__).parent / "data"
