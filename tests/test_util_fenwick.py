"""Unit and property tests for the Fenwick tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.fenwick import FenwickTree


class TestBasics:
    def test_empty_tree_total(self):
        assert FenwickTree(0).total() == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            FenwickTree(-1)

    def test_single_slot(self):
        tree = FenwickTree(1)
        tree.add(0, 5)
        assert tree.prefix_sum(0) == 5
        assert tree.total() == 5

    def test_add_and_prefix(self):
        tree = FenwickTree(10)
        tree.add(3, 2)
        tree.add(7, 4)
        assert tree.prefix_sum(2) == 0
        assert tree.prefix_sum(3) == 2
        assert tree.prefix_sum(6) == 2
        assert tree.prefix_sum(7) == 6
        assert tree.prefix_sum(9) == 6

    def test_negative_delta_supported(self):
        tree = FenwickTree(4)
        tree.add(1, 3)
        tree.add(1, -1)
        assert tree.prefix_sum(1) == 2

    def test_range_sum(self):
        tree = FenwickTree(8)
        for i in range(8):
            tree.add(i, i)
        assert tree.range_sum(2, 4) == 2 + 3 + 4
        assert tree.range_sum(0, 7) == sum(range(8))

    def test_range_sum_empty_range(self):
        tree = FenwickTree(8)
        tree.add(3, 7)
        assert tree.range_sum(5, 4) == 0

    def test_out_of_range_add(self):
        tree = FenwickTree(4)
        with pytest.raises(IndexError):
            tree.add(4, 1)
        with pytest.raises(IndexError):
            tree.add(-1, 1)

    def test_out_of_range_prefix(self):
        tree = FenwickTree(4)
        with pytest.raises(IndexError):
            tree.prefix_sum(4)

    def test_size_property(self):
        assert FenwickTree(17).size == 17


class TestProperties:
    @settings(max_examples=50)
    @given(st.lists(st.tuples(st.integers(0, 63), st.integers(-5, 5)),
                    max_size=60))
    def test_matches_naive_prefix_sums(self, updates):
        tree = FenwickTree(64)
        naive = [0] * 64
        for index, delta in updates:
            tree.add(index, delta)
            naive[index] += delta
        for i in range(64):
            assert tree.prefix_sum(i) == sum(naive[: i + 1])

    @settings(max_examples=30)
    @given(st.lists(st.integers(0, 31), min_size=1, max_size=40),
           st.integers(0, 31), st.integers(0, 31))
    def test_range_sum_consistent(self, indices, lo, hi):
        tree = FenwickTree(32)
        naive = [0] * 32
        for index in indices:
            tree.add(index, 1)
            naive[index] += 1
        expected = sum(naive[min(lo, hi): hi + 1]) if lo <= hi else 0
        assert tree.range_sum(lo, hi) == expected
