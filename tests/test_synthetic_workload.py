"""Tests for the user-facing SyntheticWorkload builder."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads import PhaseSpec, SyntheticSpec, SyntheticWorkload


def _spec(**overrides):
    phases = overrides.pop("phases", (
        PhaseSpec(name="a", pattern="stream", footprint_lines=256,
                  refs_per_thread=64),
        PhaseSpec(name="b", pattern="gather", footprint_lines=512,
                  refs_per_thread=32, shared=True),
    ))
    schedule = overrides.pop(
        "schedule", (("a", 0), ("b", 0), ("a", 1), ("b", 1)))
    return SyntheticSpec(name="custom", phases=phases, schedule=schedule,
                         **overrides)


class TestSpecValidation:
    def test_valid(self):
        spec = _spec()
        assert len(spec.phases) == 2

    def test_unknown_pattern(self):
        with pytest.raises(WorkloadError):
            PhaseSpec(name="x", pattern="teleport", footprint_lines=8,
                      refs_per_thread=8)

    def test_duplicate_phase_names(self):
        phases = (
            PhaseSpec(name="a", pattern="stream", footprint_lines=8,
                      refs_per_thread=8),
            PhaseSpec(name="a", pattern="rmw", footprint_lines=8,
                      refs_per_thread=8),
        )
        with pytest.raises(WorkloadError):
            _spec(phases=phases, schedule=(("a", 0),))

    def test_schedule_references_unknown_phase(self):
        with pytest.raises(WorkloadError):
            _spec(schedule=(("zzz", 0),))

    def test_empty_schedule(self):
        with pytest.raises(WorkloadError):
            _spec(schedule=())

    def test_bad_jitter(self):
        with pytest.raises(WorkloadError):
            PhaseSpec(name="x", pattern="stream", footprint_lines=8,
                      refs_per_thread=8, length_jitter=1.0)


class TestSyntheticWorkload:
    def test_schedule_respected(self):
        workload = SyntheticWorkload(_spec(), num_threads=2)
        assert workload.num_regions == 4
        assert workload.phase_of(0).phase == "a"
        assert workload.phase_of(1).phase == "b"

    def test_traces_deterministic(self):
        w1 = SyntheticWorkload(_spec(), num_threads=2)
        w2 = SyntheticWorkload(_spec(), num_threads=2)
        t1 = w1.region_trace(1)
        t2 = w2.region_trace(1)
        for a, b in zip(t1.threads, t2.threads):
            for ba, bb in zip(a.blocks, b.blocks):
                assert np.array_equal(ba.lines, bb.lines)

    def test_shared_phase_spans_whole_array(self):
        workload = SyntheticWorkload(_spec(), num_threads=2)
        trace = workload.region_trace(1)  # the shared gather phase
        base = workload.array_base("data_b")
        span = workload.array_lines("data_b")
        for thread in trace.threads:
            for exec_ in thread.blocks:
                if exec_.lines.size:
                    assert exec_.lines.min() >= base
                    assert exec_.lines.max() < base + span

    def test_all_patterns_buildable(self):
        for pattern in ("stream", "stencil", "gather", "scatter", "rmw"):
            phases = (PhaseSpec(name="p", pattern=pattern,
                                footprint_lines=128, refs_per_thread=32),)
            workload = SyntheticWorkload(
                SyntheticSpec(name=f"t-{pattern}", phases=phases,
                              schedule=(("p", 0),)),
                num_threads=2,
            )
            trace = workload.region_trace(0)
            assert trace.instructions > 0
            assert trace.num_refs > 0

    def test_jitter_varies_length(self):
        phases = (PhaseSpec(name="p", pattern="stream", footprint_lines=512,
                            refs_per_thread=256, length_jitter=0.3),)
        schedule = tuple(("p", it) for it in range(8))
        workload = SyntheticWorkload(
            SyntheticSpec(name="jit", phases=phases, schedule=schedule),
            num_threads=2,
        )
        lengths = {workload.region_trace(i).instructions for i in range(8)}
        assert len(lengths) > 1

    def test_pipeline_compatible(self):
        """The custom-workload path drives the full methodology."""
        from repro.config import SimPointConfig
        from repro.core.pipeline import BarrierPointPipeline
        from tests.conftest import tiny_machine

        workload = SyntheticWorkload(_spec(), num_threads=4)
        pipe = BarrierPointPipeline(
            tiny_machine(), simpoint=SimPointConfig(max_k=4,
                                                    kmeans_restarts=2))
        result = pipe.run(workload)
        assert result.estimate.instructions == pytest.approx(
            result.reference.instructions, rel=1e-9)
