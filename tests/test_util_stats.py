"""Tests for statistics helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import (
    abs_pct_error,
    geometric_mean,
    harmonic_mean,
    weighted_mean,
)

positive_lists = st.lists(
    st.floats(0.1, 1e6, allow_nan=False), min_size=1, max_size=20
)


class TestHarmonicMean:
    def test_single_value(self):
        assert harmonic_mean([4.0]) == pytest.approx(4.0)

    def test_known_value(self):
        assert harmonic_mean([1.0, 2.0]) == pytest.approx(4.0 / 3.0)

    def test_paper_style_speedups(self):
        # hmean is dominated by the small values, as the paper's 24.7x is.
        assert harmonic_mean([10.0, 866.6]) < 20.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            harmonic_mean([])

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError):
            harmonic_mean([1.0, 0.0])

    @given(positive_lists)
    def test_never_exceeds_arithmetic_mean(self, values):
        assert harmonic_mean(values) <= sum(values) / len(values) * (1 + 1e-9)


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([0.0, 2.0])

    @given(positive_lists)
    def test_between_harmonic_and_arithmetic(self, values):
        gm = geometric_mean(values)
        assert harmonic_mean(values) <= gm * (1 + 1e-9)
        assert gm <= sum(values) / len(values) * (1 + 1e-9)


class TestWeightedMean:
    def test_equal_weights(self):
        assert weighted_mean([1.0, 3.0], [1.0, 1.0]) == pytest.approx(2.0)

    def test_weighting_pulls_toward_heavy_value(self):
        assert weighted_mean([1.0, 3.0], [3.0, 1.0]) == pytest.approx(1.5)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0], [1.0, 2.0])

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0], [0.0])


class TestAbsPctError:
    def test_exact(self):
        assert abs_pct_error(10.0, 10.0) == 0.0

    def test_symmetric_in_magnitude(self):
        assert abs_pct_error(11.0, 10.0) == pytest.approx(10.0)
        assert abs_pct_error(9.0, 10.0) == pytest.approx(10.0)

    def test_zero_reference_rejected(self):
        with pytest.raises(ValueError):
            abs_pct_error(1.0, 0.0)
