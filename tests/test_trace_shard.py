"""Property battery for region-range trace sharding.

Asserts the shard subsystem's central contract: for *any* valid shard
plan — one shard, one shard per region, or randomized boundaries — the
split-replay-merge path (:class:`~repro.trace.shard.ShardedReplay`) is
bit-identical to the unsharded
:class:`~repro.workloads.replay.ReplayWorkload`, in functional profiles
*and* detailed full runs, on every hierarchy backend.  Malformed plans
and broken chains must fail loudly at construction, never by merging
wrong results.
"""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.core.pipeline import BarrierPointPipeline
from repro.errors import ConfigError, TraceFormatError
from repro.mem.backends import backend_names
from repro.profiling.profiler import profiles_digest
from repro.trace.capture import TraceReader, record_trace, validate_trace
from repro.trace.shard import (
    ShardChainReplay,
    ShardPlan,
    ShardedReplay,
    shard_provenance,
    split_trace,
)
from repro.workloads import get_workload
from repro.workloads.replay import ReplayWorkload
from tests.conftest import assert_bit_identical, tiny_machine

SCALE = 0.1
THREADS = 4
BENCH = "npb-is"

BACKENDS = tuple(sorted(backend_names()))

#: Seed of the randomized-boundary battery (deterministic across runs).
BATTERY_SEED = 20260808


def backend_machine(backend: str):
    """The tiny test machine running one hierarchy backend."""
    machine = tiny_machine()
    return dataclasses.replace(
        machine, name=f"{machine.name}-{backend}", hierarchy=backend
    )


@pytest.fixture(scope="module")
def parent_trace(tmp_path_factory):
    """One recorded parent trace shared by the whole battery."""
    path = tmp_path_factory.mktemp("shards") / "parent.rpt"
    record_trace(get_workload(BENCH, THREADS, SCALE), path)
    return path


@pytest.fixture(scope="module")
def num_regions(parent_trace):
    with TraceReader(parent_trace) as reader:
        return reader.num_regions


@pytest.fixture(scope="module")
def baseline(parent_trace):
    """Unsharded profile states/digest + per-backend full-run states."""
    replay = ReplayWorkload(parent_trace)
    profiles = BarrierPointPipeline(tiny_machine()).profile(replay)
    fulls = {
        backend: BarrierPointPipeline(backend_machine(backend))
        .full_run(replay).to_state()
        for backend in BACKENDS
    }
    replay.close()
    return {
        "profile_states": [p.to_state() for p in profiles],
        "digest": profiles_digest(profiles),
        "fulls": fulls,
    }


def assert_matches_baseline(shard_paths, backend, baseline, workers=0):
    """Sharded replay of ``shard_paths`` equals the unsharded baseline."""
    replay = ShardedReplay(
        shard_paths, backend_machine(backend), workers=workers
    )
    profiles, full = replay.run(want_profiles=True, want_full=True)
    assert_bit_identical(
        [p.to_state() for p in profiles], baseline["profile_states"]
    )
    assert profiles_digest(profiles) == baseline["digest"]
    assert_bit_identical(full.to_state(), baseline["fulls"][backend])


class TestShardPlan:
    def test_even_plan_is_deterministic(self, parent_trace, num_regions):
        """The even plan is a pure function of the trace header."""
        a = ShardPlan.even(parent_trace, 3)
        b = ShardPlan.even(parent_trace, 3)
        assert a == b
        assert a.num_shards == 3
        assert a.boundaries[0] == 0
        assert a.boundaries[-1] == num_regions
        assert a.parent_regions == num_regions

    def test_single_shard_plan_covers_everything(
        self, parent_trace, num_regions
    ):
        plan = ShardPlan.even(parent_trace, 1)
        assert plan.boundaries == (0, num_regions)
        assert plan.shard_range(0) == (0, num_regions)

    def test_one_shard_per_region(self, parent_trace, num_regions):
        plan = ShardPlan.even(parent_trace, num_regions)
        assert plan.num_shards == num_regions
        for k in range(num_regions):
            assert plan.shard_range(k) == (k, k + 1)

    def test_more_shards_than_regions_rejected(
        self, parent_trace, num_regions
    ):
        """An empty shard cannot be a valid trace — reject the plan."""
        with pytest.raises(ConfigError, match="at least one region"):
            ShardPlan.even(parent_trace, num_regions + 1)

    @pytest.mark.parametrize("bad", [0, -1])
    def test_nonpositive_shard_count_rejected(self, parent_trace, bad):
        with pytest.raises(ConfigError, match=">= 1"):
            ShardPlan.even(parent_trace, bad)

    def test_bad_boundaries_rejected(self, parent_trace, num_regions):
        n = num_regions
        for bad in [(1, n), (0, n - 1), (0,), (0, 2, 1, n), (0, 2, 2, n)]:
            with pytest.raises(ConfigError):
                ShardPlan.from_boundaries(parent_trace, bad)

    def test_shard_range_bounds_checked(self, parent_trace):
        plan = ShardPlan.even(parent_trace, 2)
        with pytest.raises(ConfigError, match="out of range"):
            plan.shard_range(2)
        with pytest.raises(ConfigError, match="out of range"):
            plan.shard_range(-1)


class TestSplitTrace:
    def test_shards_are_standalone_valid_traces(
        self, parent_trace, num_regions, tmp_path
    ):
        """Every shard passes full CRC validation on its own."""
        paths = split_trace(parent_trace, tmp_path, num_shards=3)
        assert len(paths) == 3
        plan = ShardPlan.even(parent_trace, 3)
        for index, path in enumerate(paths):
            with validate_trace(path) as reader:
                start, end = plan.shard_range(index)
                assert reader.num_regions == end - start
                assert reader.meta["workload"] == BENCH
                assert reader.num_threads == THREADS

    def test_provenance_binds_shards_to_parent_bytes(
        self, parent_trace, num_regions, tmp_path
    ):
        paths = split_trace(parent_trace, tmp_path, num_shards=2)
        plan = ShardPlan.even(parent_trace, 2)
        for index, path in enumerate(paths):
            prov = shard_provenance(path)
            start, end = plan.shard_range(index)
            assert prov == {
                "parent": plan.parent_fingerprint,
                "parent_regions": num_regions,
                "start": start,
                "end": end,
                "index": index,
                "count": 2,
            }

    def test_unsharded_trace_has_no_provenance(self, parent_trace):
        assert shard_provenance(parent_trace) is None

    def test_exactly_one_plan_argument(self, parent_trace, tmp_path):
        with pytest.raises(ConfigError, match="exactly one"):
            split_trace(parent_trace, tmp_path)
        with pytest.raises(ConfigError, match="exactly one"):
            split_trace(
                parent_trace, tmp_path, num_shards=2, boundaries=(0, 1)
            )

    def test_shard_chunks_are_byte_exact_parent_copies(
        self, parent_trace, tmp_path
    ):
        """Shard ``k``'s chunk ``i`` equals parent chunk ``start + i``."""
        paths = split_trace(parent_trace, tmp_path, num_shards=2)
        plan = ShardPlan.even(parent_trace, 2)
        with TraceReader(parent_trace) as parent:
            for index, path in enumerate(paths):
                start, end = plan.shard_range(index)
                with TraceReader(path) as shard:
                    for local in range(end - start):
                        assert shard._read_payload(local) == (
                            parent._read_payload(start + local)
                        )


class TestChainValidation:
    @pytest.fixture()
    def shards(self, parent_trace, tmp_path):
        return split_trace(parent_trace, tmp_path, num_shards=3)

    def test_empty_chain_rejected(self):
        with pytest.raises(TraceFormatError, match="empty"):
            ShardChainReplay([])

    def test_unsharded_file_rejected(self, parent_trace):
        with pytest.raises(TraceFormatError, match="no shard provenance"):
            ShardChainReplay([parent_trace])

    def test_out_of_order_chain_rejected(self, shards):
        with pytest.raises(TraceFormatError, match="chain position"):
            ShardChainReplay([shards[1], shards[0], shards[2]])

    def test_gap_in_chain_rejected(self, shards):
        with pytest.raises(TraceFormatError, match="chain position"):
            ShardChainReplay([shards[0], shards[2]])

    def test_chain_must_start_at_region_zero(self, shards):
        with pytest.raises(TraceFormatError):
            ShardChainReplay(shards[1:])

    def test_mixed_granularity_gap_rejected(self, parent_trace, tmp_path):
        """Shards from different plans of the same parent can pass the
        index check yet leave a range gap — caught by the gap check."""
        three = split_trace(parent_trace, tmp_path / "a", num_shards=3)
        two = split_trace(parent_trace, tmp_path / "b", num_shards=2)
        with pytest.raises(TraceFormatError, match="contiguous"):
            ShardChainReplay([three[0], two[1]])

    def test_mixed_parents_rejected(self, parent_trace, tmp_path):
        mine = split_trace(parent_trace, tmp_path / "a", num_shards=2)
        other_path = tmp_path / "other.rpt"
        record_trace(get_workload("fuzz-5", THREADS, SCALE), other_path)
        theirs = split_trace(other_path, tmp_path / "b", num_shards=2)
        with pytest.raises(TraceFormatError, match="different parent"):
            ShardChainReplay([mine[0], theirs[1]])

    def test_incomplete_chain_rejected_by_sharded_replay(self, shards):
        """ShardedReplay needs the whole parent, not a prefix."""
        with pytest.raises(TraceFormatError, match="complete chain"):
            ShardedReplay(shards[:2], tiny_machine())

    def test_machine_thread_mismatch_rejected(self, shards):
        wrong = tiny_machine(cores_per_socket=8)
        with pytest.raises(ConfigError, match="cores"):
            ShardedReplay(shards, wrong)

    def test_prefix_chain_replays_the_prefix(self, parent_trace, tmp_path):
        """A valid prefix chain serves exactly the parent's first regions."""
        paths = split_trace(parent_trace, tmp_path, num_shards=3)
        chain = ShardChainReplay(paths[:2])
        end = chain.shard_boundaries[-1]
        unsharded = ReplayWorkload(parent_trace)
        pipe = BarrierPointPipeline(tiny_machine())
        try:
            assert chain.num_regions == end
            assert_bit_identical(
                [p.to_state() for p in pipe.profile(chain)],
                [p.to_state() for p in pipe.profile(unsharded)[:end]],
            )
        finally:
            chain.close()
            unsharded.close()


class TestShardedBitIdentity:
    """The merge-determinism battery (the PR's acceptance property)."""

    def test_single_shard(self, parent_trace, baseline, tmp_path):
        paths = split_trace(parent_trace, tmp_path, num_shards=1)
        assert_matches_baseline(paths, BACKENDS[0], baseline)

    def test_one_shard_per_region(
        self, parent_trace, num_regions, baseline, tmp_path
    ):
        """Maximal split: every shard holds exactly one region."""
        paths = split_trace(parent_trace, tmp_path, num_shards=num_regions)
        assert len(paths) == num_regions
        assert_matches_baseline(paths, BACKENDS[0], baseline)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_random_boundaries_all_backends(
        self, backend, parent_trace, num_regions, baseline, tmp_path
    ):
        """Seeded-random boundary sets are bit-identical on every backend."""
        rng = random.Random(f"{BATTERY_SEED}:{backend}")
        for trial in range(2):
            count = rng.randint(2, num_regions - 1)
            interior = sorted(
                rng.sample(range(1, num_regions), count - 1)
            )
            boundaries = (0, *interior, num_regions)
            paths = split_trace(
                parent_trace, tmp_path / f"t{trial}",
                boundaries=boundaries,
            )
            assert_matches_baseline(paths, backend, baseline)

    def test_parallel_pool_replay(self, parent_trace, baseline, tmp_path):
        """The process-pool fan-out merges identically to serial."""
        paths = split_trace(parent_trace, tmp_path, num_shards=3)
        assert_matches_baseline(paths, BACKENDS[-1], baseline, workers=2)
