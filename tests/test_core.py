"""Tests for the BarrierPoint core: signatures, selection, reconstruction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.simpoint import SimPointClusterer
from repro.config import SimPointConfig
from repro.core.reconstruction import (
    apki_difference,
    reconstruct_app,
    reconstructed_ipc_trace,
    runtime_error_pct,
)
from repro.core.selection import (
    SIGNIFICANCE_THRESHOLD,
    reassign_multipliers,
    select_barrierpoints,
)
from repro.core.signatures import (
    SIGNATURE_VARIANTS,
    SignatureConfig,
    build_signature_matrix,
    signature_of,
)
from repro.core.speedup import speedup_report
from repro.errors import ClusteringError, ReconstructionError
from repro.profiling.profiler import FunctionalProfiler, RegionProfile


def _profile(idx, bbv, ldv, instructions=1000):
    bbv = np.asarray(bbv, dtype=float)
    ldv = np.asarray(ldv, dtype=float)
    return RegionProfile(
        region_index=idx, phase="p", instructions=instructions,
        per_thread_instructions=(instructions,),
        bbv=bbv, ldv=ldv,
    )


class TestSignatureConfig:
    def test_labels(self):
        assert SignatureConfig(kind="bbv").label == "bbv"
        assert SignatureConfig(kind="ldv").label == "reuse_dist"
        assert SignatureConfig(kind="combined").label == "combine"
        assert SignatureConfig(kind="combined", ldv_weight_v=2).label == \
            "combine-1_2"

    def test_variants_cover_figure5(self):
        assert set(SIGNATURE_VARIANTS) == {
            "bbv", "reuse_dist", "reuse_dist-1_2", "reuse_dist-1_5",
            "combine", "combine-1_2", "combine-1_5",
        }

    def test_invalid_kind(self):
        with pytest.raises(ClusteringError):
            SignatureConfig(kind="nope")

    def test_invalid_weight(self):
        with pytest.raises(ClusteringError):
            SignatureConfig(ldv_weight_v=-1)


class TestSignatureOf:
    def _p(self):
        return _profile(0, [[10.0, 30.0], [20.0, 40.0]],
                        [[4.0, 0.0, 4.0], [0.0, 8.0, 0.0]])

    def test_bbv_concat_normalized(self):
        sig = signature_of(self._p(), SignatureConfig(kind="bbv"))
        assert sig.shape == (4,)
        assert sig.sum() == pytest.approx(1.0)
        assert sig.tolist() == [0.1, 0.3, 0.2, 0.4]

    def test_ldv_sum_mode(self):
        cfg = SignatureConfig(kind="ldv", thread_mode="sum")
        sig = signature_of(self._p(), cfg)
        assert sig.shape == (3,)
        assert sig.tolist() == [0.25, 0.5, 0.25]

    def test_combined_halves_normalized(self):
        sig = signature_of(self._p(), SignatureConfig(kind="combined"))
        assert sig.shape == (10,)
        assert sig[:4].sum() == pytest.approx(1.0)
        assert sig[4:].sum() == pytest.approx(1.0)

    def test_ldv_weighting_emphasizes_long_distances(self):
        unweighted = signature_of(
            self._p(), SignatureConfig(kind="ldv"))
        weighted = signature_of(
            self._p(), SignatureConfig(kind="ldv", ldv_weight_v=1))
        # bucket 2 (distance ~4) gains mass relative to bucket 0.
        assert weighted[2] / max(weighted[0], 1e-12) > \
            unweighted[2] / max(unweighted[0], 1e-12)

    def test_concat_distinguishes_heterogeneous_threads(self):
        hom = _profile(0, [[10.0, 0.0], [10.0, 0.0]], [[1.0], [1.0]])
        het = _profile(1, [[20.0, 0.0], [0.0, 20.0]], [[1.0], [1.0]])
        concat = SignatureConfig(kind="bbv", thread_mode="concat")
        summed = SignatureConfig(kind="bbv", thread_mode="sum")
        # Summation hides the heterogeneity in this case.
        assert not np.allclose(signature_of(hom, concat),
                               signature_of(het, concat))
        assert not np.allclose(signature_of(hom, summed),
                               signature_of(het, summed)) or True

    def test_matrix_and_weights(self):
        profiles = [
            _profile(0, [[1.0, 0.0]], [[1.0, 0.0]], instructions=100),
            _profile(1, [[0.0, 1.0]], [[0.0, 1.0]], instructions=300),
        ]
        matrix, weights = build_signature_matrix(
            profiles, SignatureConfig())
        assert matrix.shape == (2, 4)
        assert weights.tolist() == [100.0, 300.0]

    def test_matrix_rejects_empty(self):
        with pytest.raises(ClusteringError):
            build_signature_matrix([], SignatureConfig())

    def test_matrix_rejects_mixed_dims(self):
        profiles = [
            _profile(0, [[1.0]], [[1.0]]),
            _profile(1, [[1.0, 2.0]], [[1.0]]),
        ]
        with pytest.raises(ClusteringError):
            build_signature_matrix(profiles, SignatureConfig())


def _toy_selection(insn=(100, 100, 100, 300), max_k=2):
    """Two obvious clusters: regions {0,1,2} and {3}."""
    signatures = np.array(
        [[1.0, 0.0], [1.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
    weights = np.asarray(insn, dtype=float)
    clustering = SimPointClusterer(
        SimPointConfig(max_k=max_k, kmeans_restarts=2)
    ).fit(signatures, weights)
    return select_barrierpoints(clustering, weights, "toy", 2, "combine")


class TestSelection:
    def test_multiplier_identity(self):
        sel = _toy_selection()
        # sum_i insn_i (cluster) == insn_rep * mult  for every point
        for point in sel.points:
            members = np.flatnonzero(sel.labels == point.cluster)
            cluster_insn = sum(
                [100, 100, 100, 300][i] for i in members)
            assert point.instructions * point.multiplier == pytest.approx(
                cluster_insn)

    def test_weights_sum_to_one(self):
        sel = _toy_selection()
        assert sum(p.weight for p in sel.points) == pytest.approx(1.0)

    def test_significance_threshold(self):
        sel = _toy_selection(insn=(1_000_000, 1_000_000, 1_000_000, 100))
        small = [p for p in sel.points if p.instructions == 100]
        assert small and not small[0].significant
        assert small[0].weight < SIGNIFICANCE_THRESHOLD

    def test_selected_regions_sorted(self):
        sel = _toy_selection()
        assert list(sel.selected_regions) == sorted(sel.selected_regions)

    def test_point_for_region(self):
        sel = _toy_selection()
        point = sel.point_for_region(1)
        assert sel.labels[1] == point.cluster

    def test_reassign_multipliers(self):
        sel = _toy_selection()
        target = np.array([50.0, 50.0, 50.0, 600.0])
        moved = reassign_multipliers(sel, target, num_threads=4)
        assert moved.num_threads == 4
        for point in moved.points:
            members = np.flatnonzero(moved.labels == point.cluster)
            assert point.instructions * point.multiplier == pytest.approx(
                target[members].sum())

    def test_reassign_rejects_wrong_length(self):
        sel = _toy_selection()
        with pytest.raises(ReconstructionError):
            reassign_multipliers(sel, np.ones(7), 4)

    @settings(max_examples=25)
    @given(st.lists(st.integers(10, 10_000), min_size=2, max_size=12))
    def test_multiplier_times_rep_covers_total(self, insn):
        signatures = np.random.default_rng(len(insn)).random((len(insn), 3))
        weights = np.asarray(insn, dtype=float)
        clustering = SimPointClusterer(
            SimPointConfig(max_k=min(4, len(insn)), kmeans_restarts=1)
        ).fit(signatures, weights)
        sel = select_barrierpoints(clustering, weights, "t", 1, "combine")
        covered = sum(p.instructions * p.multiplier for p in sel.points)
        assert covered == pytest.approx(sum(insn))


class TestReconstruction:
    def _run(self, workload_scale=0.15):
        from repro.sim.machine import Machine
        from repro.workloads import get_workload
        from tests.conftest import tiny_machine

        workload = get_workload("npb-is", 4, scale=workload_scale)
        full = Machine(tiny_machine()).run_full(workload)
        profiles = FunctionalProfiler(workload).profile()
        matrix, weights = build_signature_matrix(
            profiles, SignatureConfig())
        return workload, full, matrix, weights

    def test_identity_when_every_region_selected(self):
        workload, full, matrix, weights = self._run()
        clustering = SimPointClusterer(
            SimPointConfig(max_k=workload.num_regions, bic_threshold=1.0,
                           kmeans_restarts=2)
        ).fit(matrix, weights)
        if clustering.num_clusters == workload.num_regions:
            sel = select_barrierpoints(
                clustering, weights, workload.name, 4, "combine")
            metrics = {p.region_index: full.region(p.region_index)
                       for p in sel.points}
            estimate = reconstruct_app(sel, metrics)
            assert estimate.cycles == pytest.approx(full.app.cycles)
            assert estimate.instructions == pytest.approx(
                full.app.instructions)

    def test_reconstructed_instructions_match_total(self):
        workload, full, matrix, weights = self._run()
        clustering = SimPointClusterer(
            SimPointConfig(max_k=4, kmeans_restarts=2)).fit(matrix, weights)
        sel = select_barrierpoints(
            clustering, weights, workload.name, 4, "combine")
        metrics = {p.region_index: full.region(p.region_index)
                   for p in sel.points}
        estimate = reconstruct_app(sel, metrics)
        assert estimate.instructions == pytest.approx(
            full.app.instructions, rel=1e-9)

    def test_missing_metrics_rejected(self):
        sel = _toy_selection()
        with pytest.raises(ReconstructionError):
            reconstruct_app(sel, {})

    def test_error_helpers(self):
        from repro.sim.results import AppMetrics
        ref = AppMetrics(instructions=1000, cycles=1000,
                         dram_accesses=10, frequency_ghz=2.66)
        est = AppMetrics(instructions=1000, cycles=1100,
                         dram_accesses=12, frequency_ghz=2.66)
        assert runtime_error_pct(est, ref) == pytest.approx(10.0)
        assert apki_difference(est, ref) == pytest.approx(2.0)

    def test_ipc_trace_constant_within_cluster(self):
        workload, full, matrix, weights = self._run()
        clustering = SimPointClusterer(
            SimPointConfig(max_k=3, kmeans_restarts=2)).fit(matrix, weights)
        sel = select_barrierpoints(
            clustering, weights, workload.name, 4, "combine")
        trace = reconstructed_ipc_trace(sel, full.regions)
        assert trace.shape == (workload.num_regions,)
        for cluster in range(sel.num_barrierpoints):
            members = np.flatnonzero(sel.labels == cluster)
            assert np.unique(trace[members]).size == 1


class TestSpeedupReport:
    def test_basic_accounting(self):
        sel = _toy_selection()
        report = speedup_report(sel)
        total = sel.total_instructions
        costs = [p.instructions for p in sel.points]
        assert report.serial_speedup == pytest.approx(total / sum(costs))
        assert report.parallel_speedup == pytest.approx(total / max(costs))
        assert report.resource_reduction == pytest.approx(
            sel.num_regions / len(sel.points))

    def test_warmup_cost_reduces_speedup(self):
        sel = _toy_selection()
        plain = speedup_report(sel)
        charged = speedup_report(
            sel, warmup_lines={p.region_index: 500 for p in sel.points})
        assert charged.serial_speedup < plain.serial_speedup

    def test_significant_only(self):
        sel = _toy_selection(insn=(10**6, 10**6, 10**6, 50))
        full_report = speedup_report(sel)
        sig_report = speedup_report(sel, significant_only=True)
        assert sig_report.num_barrierpoints < full_report.num_barrierpoints
        assert sig_report.serial_speedup >= full_report.serial_speedup
