"""Tests for ASCII table rendering."""

import pytest

from repro.util.tables import format_table


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bb"], [["x", 1], ["longer", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "-" in lines[1]
        assert len(lines) == 4

    def test_title(self):
        out = format_table(["h"], [["v"]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        out = format_table(["x"], [[1.23456]])
        assert "1.235" in out

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_rows(self):
        out = format_table(["a"], [])
        assert "a" in out

    def test_no_trailing_whitespace(self):
        out = format_table(["aaa", "b"], [["x", "yyyy"]])
        for line in out.splitlines():
            assert line == line.rstrip()
