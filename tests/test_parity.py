"""Randomized fast-vs-reference parity tests for the hot-path engines.

Every optimized engine in this repo has its seed implementation preserved
under ``repro._reference``; these tests drive both sides with identical
randomized inputs and require *bit-identical* outputs — stats counters,
LRU orders, stack-distance histograms, MRU snapshots, simulated cycles.
This is the contract that lets the perf work claim "faster, not
different" (the same idiom as the Numba-vs-Python proxy parity tests the
SNIPPETS exemplars use).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._reference import (
    ReferenceFunctionalProfiler,
    ReferenceLruStackProfiler,
    ReferenceMemoryHierarchy,
    ReferenceMRUTracker,
    ReferenceSetAssocCache,
)
from repro.config import CacheConfig
from repro.mem.cache import SetAssocCache
from repro.mem.hierarchy import MemoryHierarchy
from repro.profiling.ldv import (
    LruStackProfiler,
    bucket_of,
    bucketize,
    naive_stack_distances,
)
from repro.profiling.mru import MRUTracker
from repro.profiling.profiler import FunctionalProfiler
from repro.profiling.stackdist import (
    OlkenStackProfiler,
    StackDistanceEngine,
    left_smaller_counts,
)
from repro.sim.machine import Machine
from repro.sim.warmup import MRUWarmup
from repro.workloads import get_workload
from tests.conftest import tiny_machine

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

lines_st = st.lists(st.integers(0, 80), min_size=1, max_size=250)
chunked_streams = st.lists(
    st.lists(st.integers(0, 50), min_size=1, max_size=120),
    min_size=1,
    max_size=5,
)


def _arr(values, dtype=np.int64):
    return np.asarray(values, dtype=dtype)


# ---------------------------------------------------------------------------
# LRU cache: dict-based vs seed list-based
# ---------------------------------------------------------------------------

cache_ops = st.lists(
    st.tuples(
        st.sampled_from(["lookup", "fill", "fill_dirty", "remove",
                         "mark_dirty", "contains", "flush"]),
        st.integers(0, 60),
    ),
    min_size=1,
    max_size=300,
)


class TestCacheParity:
    @settings(max_examples=60)
    @given(cache_ops)
    def test_random_op_sequences(self, ops):
        fast = SetAssocCache(CacheConfig(16 * 64, 4, 4))
        ref = ReferenceSetAssocCache(CacheConfig(16 * 64, 4, 4))
        for op, line in ops:
            if op == "lookup":
                assert fast.lookup(line) == ref.lookup(line)
            elif op == "fill":
                vf, vr = fast.fill(line), ref.fill(line)
                assert (vf is None) == (vr is None)
                if vf is not None:
                    assert (vf.line, vf.dirty) == (vr.line, vr.dirty)
            elif op == "fill_dirty":
                vf, vr = fast.fill(line, dirty=True), ref.fill(line, dirty=True)
                assert (vf is None) == (vr is None)
                if vf is not None:
                    assert (vf.line, vf.dirty) == (vr.line, vr.dirty)
            elif op == "remove":
                assert fast.remove(line) == ref.remove(line)
            elif op == "mark_dirty":
                fast.mark_dirty(line)
                ref.mark_dirty(line)
                assert fast.is_dirty(line) == ref.is_dirty(line)
            elif op == "contains":
                assert fast.contains(line) == ref.contains(line)
            else:
                fast.flush()
                ref.flush()
            # Full state equivalence after every operation.
            assert fast.resident_lines() == ref.resident_lines()
            assert fast.occupancy == ref.occupancy
        assert vars(fast.stats) == vars(ref.stats)


# ---------------------------------------------------------------------------
# Stack distances: vectorized engine vs Olken/Fenwick vs naive vs cascade
# ---------------------------------------------------------------------------

class TestStackDistanceParity:
    @settings(max_examples=60)
    @given(chunked_streams)
    def test_engine_matches_naive_across_chunks(self, chunks):
        engine = StackDistanceEngine()
        olken = OlkenStackProfiler(capacity=16)
        full: list[int] = []
        for chunk in chunks:
            arr = _arr(chunk)
            got = engine.observe(arr).distances
            got_olken = olken.observe(arr)
            full.extend(chunk)
            expected = naive_stack_distances(_arr(full))[-len(chunk):]
            assert got.tolist() == expected
            assert got_olken.tolist() == expected
        assert engine.unique_lines == len(set(full)) == olken.unique_lines

    @settings(max_examples=60)
    @given(chunked_streams)
    def test_profiler_matches_reference_cascade(self, chunks):
        fast = LruStackProfiler()
        ref = ReferenceLruStackProfiler()
        for chunk in chunks:
            arr = _arr(chunk)
            fast.observe(arr)
            ref.observe(arr)
            assert np.array_equal(fast.take_histogram(),
                                  ref.take_histogram())
        assert fast.unique_lines == ref.unique_lines

    @settings(max_examples=40)
    @given(chunked_streams, st.integers(1, 40))
    def test_floor_mode_threshold_exact(self, chunks, floor):
        engine = StackDistanceEngine()
        full: list[int] = []
        for chunk in chunks:
            arr = _arr(chunk)
            got = engine.observe(arr, distance_floor=floor).distances
            full.extend(chunk)
            expected = naive_stack_distances(_arr(full))[-len(chunk):]
            for g, e in zip(got.tolist(), expected):
                assert (g < 0) == (e < 0)
                if e >= 0:
                    assert (g >= floor) == (e >= floor)

    @settings(max_examples=60)
    @given(st.lists(st.integers(0, 10_000), min_size=1, max_size=400,
                    unique=True))
    def test_left_smaller_counts(self, values):
        arr = _arr(values)
        expected = np.array(
            [(arr[:i] < arr[i]).sum() for i in range(arr.size)]
        )
        assert np.array_equal(left_smaller_counts(arr), expected)

    @settings(max_examples=40)
    @given(st.lists(st.integers(-1, 1 << 24), min_size=1, max_size=100))
    def test_bucketize_matches_bucket_of(self, distances):
        arr = _arr(distances)
        assert bucketize(arr).tolist() == [bucket_of(d) for d in distances]


# ---------------------------------------------------------------------------
# MRU tracker: chunked engine vs seed per-access dict
# ---------------------------------------------------------------------------

class TestMRUParity:
    @settings(max_examples=60)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 1),
                st.lists(st.tuples(st.integers(0, 50), st.booleans()),
                         min_size=1, max_size=120),
            ),
            min_size=1,
            max_size=6,
        ),
        st.integers(1, 20),
    )
    def test_snapshots_identical(self, batches, cap):
        fast = MRUTracker(num_cores=2, capacity_lines=cap)
        ref = ReferenceMRUTracker(num_cores=2, capacity_lines=cap)
        for core, refs in batches:
            lines = _arr([line for line, _ in refs])
            writes = _arr([w for _, w in refs], dtype=bool)
            fast.observe(core, lines, writes)
            ref.observe(core, lines, writes)
        snap_fast = fast.snapshot(0)
        snap_ref = ref.snapshot(0)
        assert snap_fast.per_core == snap_ref.per_core
        for core in range(2):
            assert fast.occupancy(core) == ref.occupancy(core)


# ---------------------------------------------------------------------------
# Memory hierarchy: full access_block parity on randomized streams
# ---------------------------------------------------------------------------

access_batches = st.lists(
    st.tuples(
        st.integers(0, 7),                      # core
        st.lists(st.tuples(st.integers(0, 700), st.booleans()),
                 min_size=1, max_size=80),
        st.sampled_from([1.0, 2.0, 4.0]),       # mlp
    ),
    min_size=1,
    max_size=25,
)


class TestHierarchyParity:
    @settings(max_examples=40, deadline=None)
    @given(access_batches)
    def test_access_block_identical(self, batches):
        machine = tiny_machine(num_sockets=2, cores_per_socket=4)
        fast = MemoryHierarchy(machine)
        ref = ReferenceMemoryHierarchy(machine)
        for core, refs, mlp in batches:
            lines = _arr([line for line, _ in refs])
            writes = _arr([w for _, w in refs], dtype=bool)
            stall_fast = fast.access_block(core, lines, writes, mlp)
            stall_ref = ref.access_block(core, lines, writes, mlp)
            assert stall_fast == stall_ref
        self._assert_hierarchy_state_equal(fast, ref)

    @staticmethod
    def _assert_hierarchy_state_equal(fast, ref):
        snap_fast, snap_ref = fast.snapshot(), ref.snapshot()
        for attr in (
            "loads", "stores", "l1d_misses", "l2_misses", "l3_misses",
            "cache_to_cache", "writebacks", "l1i_misses",
            "dram_reads_per_socket", "dram_writebacks_per_socket",
        ):
            assert getattr(snap_fast, attr) == getattr(snap_ref, attr), attr
        for cf, cr in zip(
            (*fast.l1i, *fast.l1d, *fast.l2, *fast.l3),
            (*ref.l1i, *ref.l1d, *ref.l2, *ref.l3),
        ):
            assert cf.resident_lines() == cr.resident_lines()
            assert vars(cf.stats) == vars(cr.stats)
        assert fast.directory._sharers == ref.directory._sharers
        assert fast.directory._owner == ref.directory._owner
        assert vars(fast.directory.stats) == vars(ref.directory.stats)


# ---------------------------------------------------------------------------
# Fuzzer-seeded streams: the ScenarioFuzzer drives the same parity contracts
# ---------------------------------------------------------------------------

class TestFuzzerSeededParity:
    """The randomized-scenario generator feeds the fast-vs-seed contracts.

    Unlike the hypothesis strategies above, these streams have realistic
    structure (sweeps, gathers, scatter bursts) at realistic footprints,
    and are reproducible from a single integer seed across platforms.
    """

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_stackdist_engines_agree_on_fuzzer_streams(self, seed):
        from repro.trace.generators import ScenarioFuzzer

        lines, _ = ScenarioFuzzer(seed).stream(4000, footprint_lines=300)
        engine = StackDistanceEngine()
        olken = OlkenStackProfiler()
        # Uneven chunk splits exercise the cross-chunk continuation paths.
        bounds = [0, 1, 17, 1000, 2500, lines.size]
        got_chunks = []
        for lo, hi in zip(bounds, bounds[1:]):
            got_chunks.append(engine.observe(lines[lo:hi]).distances)
        fast = np.concatenate(got_chunks)
        assert fast.tolist() == olken.observe(lines).tolist()
        assert fast.tolist() == naive_stack_distances(lines)

    @pytest.mark.parametrize("seed", [5, 6])
    def test_hierarchy_parity_on_fuzzer_streams(self, seed):
        from repro.trace.generators import ScenarioFuzzer

        fuzzer = ScenarioFuzzer(seed)
        machine = tiny_machine(num_sockets=2, cores_per_socket=4)
        fast = MemoryHierarchy(machine)
        ref = ReferenceMemoryHierarchy(machine)
        for core in range(8):
            lines, writes = fuzzer.stream(
                600, footprint_lines=700, tag=f"core{core}"
            )
            assert fast.access_block(core, lines, writes, 2.0) == (
                ref.access_block(core, lines, writes, 2.0)
            )
        TestHierarchyParity._assert_hierarchy_state_equal(fast, ref)

    @pytest.mark.parametrize("seed", [4, 9])
    def test_fuzz_workload_profiles_match_reference(self, seed):
        workload = get_workload(f"fuzz-{seed}", 4, scale=0.1)
        fast = FunctionalProfiler(workload).profile()
        ref = ReferenceFunctionalProfiler(workload).profile()
        assert len(fast) == len(ref)
        for a, b in zip(fast, ref):
            assert np.array_equal(a.bbv, b.bbv)
            assert np.array_equal(a.ldv, b.ldv)


# ---------------------------------------------------------------------------
# End-to-end: whole-workload profiles, full runs and warmed barrierpoints
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def parity_workload():
    return get_workload("npb-is", 4, scale=0.2)


class TestEndToEndParity:
    def test_profiles_identical(self, parity_workload):
        fast = FunctionalProfiler(parity_workload).profile()
        ref = ReferenceFunctionalProfiler(parity_workload).profile()
        assert len(fast) == len(ref)
        for a, b in zip(fast, ref):
            assert np.array_equal(a.bbv, b.bbv)
            assert np.array_equal(a.ldv, b.ldv)

    def test_full_run_identical(self, parity_workload):
        machine = tiny_machine()
        fast = Machine(machine).run_full(parity_workload)
        ref = Machine(
            machine, hierarchy_factory=ReferenceMemoryHierarchy
        ).run_full(parity_workload)
        for fr, rr in zip(fast.regions, ref.regions):
            assert fr.cycles == rr.cycles
            assert fr.per_thread_cycles == rr.per_thread_cycles
            assert fr.counters.loads == rr.counters.loads
            assert fr.counters.l3_misses == rr.counters.l3_misses
            assert fr.counters.writebacks == rr.counters.writebacks

    def test_warmed_barrierpoint_identical(self, parity_workload):
        machine = tiny_machine()
        mid = parity_workload.num_regions // 2
        capacity = machine.l3.num_lines
        data_fast = FunctionalProfiler(parity_workload).capture_warmup(
            {mid}, capacity
        )[mid]
        data_ref = ReferenceFunctionalProfiler(
            parity_workload
        ).capture_warmup({mid}, capacity)[mid]
        assert data_fast.per_core == data_ref.per_core
        fast = Machine(machine).simulate_barrierpoint(
            parity_workload, mid, MRUWarmup(data_fast)
        )
        ref = Machine(
            machine, hierarchy_factory=ReferenceMemoryHierarchy
        ).simulate_barrierpoint(parity_workload, mid, MRUWarmup(data_ref))
        assert fast.cycles == ref.cycles
        assert fast.per_thread_cycles == ref.per_thread_cycles
