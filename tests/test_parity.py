"""Randomized fast-vs-reference parity tests for the hot-path engines.

Every optimized engine in this repo has its seed implementation preserved
under ``repro._reference``; these tests drive both sides with identical
randomized inputs and require *bit-identical* outputs — stats counters,
LRU orders, stack-distance histograms, MRU snapshots, simulated cycles.
This is the contract that lets the perf work claim "faster, not
different" (the same idiom as the Numba-vs-Python proxy parity tests the
SNIPPETS exemplars use).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._reference import (
    ReferenceFunctionalProfiler,
    ReferenceLruStackProfiler,
    ReferenceMemoryHierarchy,
    ReferenceMRUTracker,
    ReferenceSetAssocCache,
)
from repro.config import CacheConfig
from repro.mem.backends import HIERARCHY_BACKENDS
from repro.mem.cache import SetAssocCache
from repro.mem.hierarchy import MemoryHierarchy
from repro.profiling.ldv import (
    LruStackProfiler,
    bucket_of,
    bucketize,
    naive_stack_distances,
)
from repro.profiling.mru import MRUTracker
from repro.profiling.profiler import FunctionalProfiler
from repro.profiling.stackdist import (
    OlkenStackProfiler,
    StackDistanceEngine,
    left_smaller_counts,
)
from repro.sim.machine import Machine
from repro.sim.warmup import MRUWarmup
from repro.util import jit
from repro.workloads import get_workload
from tests.conftest import tiny_machine

#: Kernel tiers under test: py == kernel-py always; == nb when numba is
#: installed (the nb leg auto-skips otherwise).
KERNEL_TIERS = [
    pytest.param("kernel-py", id="kernel-py"),
    pytest.param("nb", id="nb", marks=pytest.mark.skipif(
        not jit.numba_available(), reason="numba not installed"
    )),
]

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

lines_st = st.lists(st.integers(0, 80), min_size=1, max_size=250)
chunked_streams = st.lists(
    st.lists(st.integers(0, 50), min_size=1, max_size=120),
    min_size=1,
    max_size=5,
)


def _arr(values, dtype=np.int64):
    return np.asarray(values, dtype=dtype)


# ---------------------------------------------------------------------------
# LRU cache: dict-based vs seed list-based
# ---------------------------------------------------------------------------

cache_ops = st.lists(
    st.tuples(
        st.sampled_from(["lookup", "fill", "fill_dirty", "remove",
                         "mark_dirty", "contains", "flush"]),
        st.integers(0, 60),
    ),
    min_size=1,
    max_size=300,
)


class TestCacheParity:
    @settings(max_examples=60)
    @given(cache_ops)
    def test_random_op_sequences(self, ops):
        fast = SetAssocCache(CacheConfig(16 * 64, 4, 4))
        ref = ReferenceSetAssocCache(CacheConfig(16 * 64, 4, 4))
        for op, line in ops:
            if op == "lookup":
                assert fast.lookup(line) == ref.lookup(line)
            elif op == "fill":
                vf, vr = fast.fill(line), ref.fill(line)
                assert (vf is None) == (vr is None)
                if vf is not None:
                    assert (vf.line, vf.dirty) == (vr.line, vr.dirty)
            elif op == "fill_dirty":
                vf, vr = fast.fill(line, dirty=True), ref.fill(line, dirty=True)
                assert (vf is None) == (vr is None)
                if vf is not None:
                    assert (vf.line, vf.dirty) == (vr.line, vr.dirty)
            elif op == "remove":
                assert fast.remove(line) == ref.remove(line)
            elif op == "mark_dirty":
                fast.mark_dirty(line)
                ref.mark_dirty(line)
                assert fast.is_dirty(line) == ref.is_dirty(line)
            elif op == "contains":
                assert fast.contains(line) == ref.contains(line)
            else:
                fast.flush()
                ref.flush()
            # Full state equivalence after every operation.
            assert fast.resident_lines() == ref.resident_lines()
            assert fast.occupancy == ref.occupancy
        assert vars(fast.stats) == vars(ref.stats)


# ---------------------------------------------------------------------------
# Stack distances: vectorized engine vs Olken/Fenwick vs naive vs cascade
# ---------------------------------------------------------------------------

class TestStackDistanceParity:
    @settings(max_examples=60)
    @given(chunked_streams)
    def test_engine_matches_naive_across_chunks(self, chunks):
        engine = StackDistanceEngine()
        olken = OlkenStackProfiler(capacity=16)
        full: list[int] = []
        for chunk in chunks:
            arr = _arr(chunk)
            got = engine.observe(arr).distances
            got_olken = olken.observe(arr)
            full.extend(chunk)
            expected = naive_stack_distances(_arr(full))[-len(chunk):]
            assert got.tolist() == expected
            assert got_olken.tolist() == expected
        assert engine.unique_lines == len(set(full)) == olken.unique_lines

    @settings(max_examples=60)
    @given(chunked_streams)
    def test_profiler_matches_reference_cascade(self, chunks):
        fast = LruStackProfiler()
        ref = ReferenceLruStackProfiler()
        for chunk in chunks:
            arr = _arr(chunk)
            fast.observe(arr)
            ref.observe(arr)
            assert np.array_equal(fast.take_histogram(),
                                  ref.take_histogram())
        assert fast.unique_lines == ref.unique_lines

    @settings(max_examples=40)
    @given(chunked_streams, st.integers(1, 40))
    def test_floor_mode_threshold_exact(self, chunks, floor):
        engine = StackDistanceEngine()
        full: list[int] = []
        for chunk in chunks:
            arr = _arr(chunk)
            got = engine.observe(arr, distance_floor=floor).distances
            full.extend(chunk)
            expected = naive_stack_distances(_arr(full))[-len(chunk):]
            for g, e in zip(got.tolist(), expected):
                assert (g < 0) == (e < 0)
                if e >= 0:
                    assert (g >= floor) == (e >= floor)

    @settings(max_examples=60)
    @given(st.lists(st.integers(0, 10_000), min_size=1, max_size=400,
                    unique=True))
    def test_left_smaller_counts(self, values):
        arr = _arr(values)
        expected = np.array(
            [(arr[:i] < arr[i]).sum() for i in range(arr.size)]
        )
        assert np.array_equal(left_smaller_counts(arr), expected)

    @settings(max_examples=40)
    @given(st.lists(st.integers(-1, 1 << 24), min_size=1, max_size=100))
    def test_bucketize_matches_bucket_of(self, distances):
        arr = _arr(distances)
        assert bucketize(arr).tolist() == [bucket_of(d) for d in distances]


# ---------------------------------------------------------------------------
# MRU tracker: chunked engine vs seed per-access dict
# ---------------------------------------------------------------------------

class TestMRUParity:
    @settings(max_examples=60)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 1),
                st.lists(st.tuples(st.integers(0, 50), st.booleans()),
                         min_size=1, max_size=120),
            ),
            min_size=1,
            max_size=6,
        ),
        st.integers(1, 20),
    )
    def test_snapshots_identical(self, batches, cap):
        fast = MRUTracker(num_cores=2, capacity_lines=cap)
        ref = ReferenceMRUTracker(num_cores=2, capacity_lines=cap)
        for core, refs in batches:
            lines = _arr([line for line, _ in refs])
            writes = _arr([w for _, w in refs], dtype=bool)
            fast.observe(core, lines, writes)
            ref.observe(core, lines, writes)
        snap_fast = fast.snapshot(0)
        snap_ref = ref.snapshot(0)
        assert snap_fast.per_core == snap_ref.per_core
        for core in range(2):
            assert fast.occupancy(core) == ref.occupancy(core)


# ---------------------------------------------------------------------------
# Memory hierarchy: full access_block parity on randomized streams
# ---------------------------------------------------------------------------

access_batches = st.lists(
    st.tuples(
        st.integers(0, 7),                      # core
        st.lists(st.tuples(st.integers(0, 700), st.booleans()),
                 min_size=1, max_size=80),
        st.sampled_from([1.0, 2.0, 4.0]),       # mlp
    ),
    min_size=1,
    max_size=25,
)


class TestHierarchyParity:
    @settings(max_examples=40, deadline=None)
    @given(access_batches)
    def test_access_block_identical(self, batches):
        machine = tiny_machine(num_sockets=2, cores_per_socket=4)
        fast = MemoryHierarchy(machine)
        ref = ReferenceMemoryHierarchy(machine)
        for core, refs, mlp in batches:
            lines = _arr([line for line, _ in refs])
            writes = _arr([w for _, w in refs], dtype=bool)
            stall_fast = fast.access_block(core, lines, writes, mlp)
            stall_ref = ref.access_block(core, lines, writes, mlp)
            assert stall_fast == stall_ref
        self._assert_hierarchy_state_equal(fast, ref)

    @staticmethod
    def _assert_hierarchy_state_equal(fast, ref):
        snap_fast, snap_ref = fast.snapshot(), ref.snapshot()
        for attr in (
            "loads", "stores", "l1d_misses", "l2_misses", "l3_misses",
            "cache_to_cache", "writebacks", "l1i_misses",
            "dram_reads_per_socket", "dram_writebacks_per_socket",
        ):
            assert getattr(snap_fast, attr) == getattr(snap_ref, attr), attr
        for cf, cr in zip(
            (*fast.l1i, *fast.l1d, *fast.l2, *fast.l3),
            (*ref.l1i, *ref.l1d, *ref.l2, *ref.l3),
        ):
            assert cf.resident_lines() == cr.resident_lines()
            assert vars(cf.stats) == vars(cr.stats)
        assert fast.directory._sharers == ref.directory._sharers
        assert fast.directory._owner == ref.directory._owner
        assert vars(fast.directory.stats) == vars(ref.directory.stats)


# ---------------------------------------------------------------------------
# Fuzzer-seeded streams: the ScenarioFuzzer drives the same parity contracts
# ---------------------------------------------------------------------------

class TestFuzzerSeededParity:
    """The randomized-scenario generator feeds the fast-vs-seed contracts.

    Unlike the hypothesis strategies above, these streams have realistic
    structure (sweeps, gathers, scatter bursts) at realistic footprints,
    and are reproducible from a single integer seed across platforms.
    """

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_stackdist_engines_agree_on_fuzzer_streams(self, seed):
        from repro.trace.generators import ScenarioFuzzer

        lines, _ = ScenarioFuzzer(seed).stream(4000, footprint_lines=300)
        engine = StackDistanceEngine()
        olken = OlkenStackProfiler()
        # Uneven chunk splits exercise the cross-chunk continuation paths.
        bounds = [0, 1, 17, 1000, 2500, lines.size]
        got_chunks = []
        for lo, hi in zip(bounds, bounds[1:]):
            got_chunks.append(engine.observe(lines[lo:hi]).distances)
        fast = np.concatenate(got_chunks)
        assert fast.tolist() == olken.observe(lines).tolist()
        assert fast.tolist() == naive_stack_distances(lines)

    @pytest.mark.parametrize("seed", [5, 6])
    def test_hierarchy_parity_on_fuzzer_streams(self, seed):
        from repro.trace.generators import ScenarioFuzzer

        fuzzer = ScenarioFuzzer(seed)
        machine = tiny_machine(num_sockets=2, cores_per_socket=4)
        fast = MemoryHierarchy(machine)
        ref = ReferenceMemoryHierarchy(machine)
        for core in range(8):
            lines, writes = fuzzer.stream(
                600, footprint_lines=700, tag=f"core{core}"
            )
            assert fast.access_block(core, lines, writes, 2.0) == (
                ref.access_block(core, lines, writes, 2.0)
            )
        TestHierarchyParity._assert_hierarchy_state_equal(fast, ref)

    @pytest.mark.parametrize("seed", [4, 9])
    def test_fuzz_workload_profiles_match_reference(self, seed):
        workload = get_workload(f"fuzz-{seed}", 4, scale=0.1)
        fast = FunctionalProfiler(workload).profile()
        ref = ReferenceFunctionalProfiler(workload).profile()
        assert len(fast) == len(ref)
        for a, b in zip(fast, ref):
            assert np.array_equal(a.bbv, b.bbv)
            assert np.array_equal(a.ldv, b.ldv)


# ---------------------------------------------------------------------------
# End-to-end: whole-workload profiles, full runs and warmed barrierpoints
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def parity_workload():
    return get_workload("npb-is", 4, scale=0.2)


class TestEndToEndParity:
    def test_profiles_identical(self, parity_workload):
        fast = FunctionalProfiler(parity_workload).profile()
        ref = ReferenceFunctionalProfiler(parity_workload).profile()
        assert len(fast) == len(ref)
        for a, b in zip(fast, ref):
            assert np.array_equal(a.bbv, b.bbv)
            assert np.array_equal(a.ldv, b.ldv)

    def test_full_run_identical(self, parity_workload):
        machine = tiny_machine()
        fast = Machine(machine).run_full(parity_workload)
        ref = Machine(
            machine, hierarchy_factory=ReferenceMemoryHierarchy
        ).run_full(parity_workload)
        for fr, rr in zip(fast.regions, ref.regions):
            assert fr.cycles == rr.cycles
            assert fr.per_thread_cycles == rr.per_thread_cycles
            assert fr.counters.loads == rr.counters.loads
            assert fr.counters.l3_misses == rr.counters.l3_misses
            assert fr.counters.writebacks == rr.counters.writebacks

    def test_warmed_barrierpoint_identical(self, parity_workload):
        machine = tiny_machine()
        mid = parity_workload.num_regions // 2
        capacity = machine.l3.num_lines
        data_fast = FunctionalProfiler(parity_workload).capture_warmup(
            {mid}, capacity
        )[mid]
        data_ref = ReferenceFunctionalProfiler(
            parity_workload
        ).capture_warmup({mid}, capacity)[mid]
        assert data_fast.per_core == data_ref.per_core
        fast = Machine(machine).simulate_barrierpoint(
            parity_workload, mid, MRUWarmup(data_fast)
        )
        ref = Machine(
            machine, hierarchy_factory=ReferenceMemoryHierarchy
        ).simulate_barrierpoint(parity_workload, mid, MRUWarmup(data_ref))
        assert fast.cycles == ref.cycles
        assert fast.per_thread_cycles == ref.per_thread_cycles


# ---------------------------------------------------------------------------
# Kernel tier: flat-array kernels (interpreted, and compiled when available)
# ---------------------------------------------------------------------------


def _fuzz_batches(seed: int, num_cores: int, rounds: int = 40):
    """Seeded (core, lines, writes, mlp) batches shared by the tier tests."""
    rng = np.random.default_rng(seed)
    batches = []
    for _ in range(rounds):
        core = int(rng.integers(0, num_cores))
        n = int(rng.integers(1, 250))
        lines = rng.integers(0, 2000, size=n).astype(np.int64)
        writes = rng.random(n) < 0.3
        mlp = float(rng.choice([1.0, 2.0, 4.0]))
        batches.append((core, lines, writes, mlp))
    return batches


def _hierarchy_state(hier):
    """Snapshot counters, ordered cache contents, stats, directory maps."""
    snap = hier.snapshot()
    counters = {
        attr: getattr(snap, attr)
        for attr in (
            "loads", "stores", "l1d_misses", "l2_misses", "l3_misses",
            "cache_to_cache", "writebacks", "prefetches",
            "intra_complex_transfers", "cross_complex_transfers",
            "cross_socket_transfers",
            "dram_reads_per_socket", "dram_writebacks_per_socket",
        )
    }
    caches = []
    for cache in (*hier.l1d, *hier.l2, *hier.l3):
        cache.resident_lines()  # sync any kernel-held state
        caches.append((
            tuple(tuple(s.keys()) for s in cache._sets),  # LRU order
            vars(cache.stats),
        ))
    directory = hier.directory
    sharers = {k: v for k, v in directory._sharers.items() if v}
    owners = {k: v for k, v in directory._owner.items() if v is not None}
    return counters, caches, sharers, owners


class TestKernelTierParity:
    """The flat-array kernel tier is bit-identical to the dict engines.

    Each test drives a py-tier instance and a kernel-tier instance with
    the same streams and requires identical stalls, counters, LRU
    orders, per-cache stats and directory state — including with
    dict-level reads interleaved mid-run, which force the kernel arrays
    to materialize back into the dict structures and re-seed.
    """

    @pytest.mark.parametrize("backend", sorted(HIERARCHY_BACKENDS))
    @pytest.mark.parametrize("tier", KERNEL_TIERS)
    def test_all_backends_identical(self, tier, backend):
        machine = tiny_machine(num_sockets=2, cores_per_socket=4)
        cls = HIERARCHY_BACKENDS[backend]
        with jit.forced_tier("py"):
            plain = cls(machine)
        assert plain._kernel_fns is None
        with jit.forced_tier(tier):
            kernel = cls(machine)
            assert kernel._kernel_fns is not None
            for core, lines, writes, mlp in _fuzz_batches(13, 8):
                assert plain.access_block(core, lines, writes, mlp) == \
                    kernel.access_block(core, lines, writes, mlp)
            assert _hierarchy_state(plain) == _hierarchy_state(kernel)

    @pytest.mark.parametrize("tier", KERNEL_TIERS)
    def test_interleaved_dict_reads_materialize(self, tier):
        machine = tiny_machine(num_sockets=2, cores_per_socket=4)
        with jit.forced_tier("py"):
            plain = MemoryHierarchy(machine)
        with jit.forced_tier(tier):
            kernel = MemoryHierarchy(machine)
            for step, (core, lines, writes, mlp) in enumerate(
                _fuzz_batches(17, 8)
            ):
                assert plain.access_block(core, lines, writes, mlp) == \
                    kernel.access_block(core, lines, writes, mlp)
                if step % 5 == 2:
                    # Dict-level reads force materialization mid-run.
                    line = int(lines[0])
                    assert kernel.l1d[core].contains(line) == \
                        plain.l1d[core].contains(line)
                    assert kernel.l2[core].resident_lines() == \
                        plain.l2[core].resident_lines()
                    assert kernel.directory.sharers(line) == \
                        plain.directory.sharers(line)
            assert _hierarchy_state(plain) == _hierarchy_state(kernel)

    @pytest.mark.parametrize("tier", KERNEL_TIERS)
    def test_matches_seed_reference(self, tier):
        machine = tiny_machine(num_sockets=2, cores_per_socket=4)
        ref = ReferenceMemoryHierarchy(machine)
        with jit.forced_tier(tier):
            kernel = MemoryHierarchy(machine)
            for core, lines, writes, mlp in _fuzz_batches(19, 8):
                assert kernel.access_block(core, lines, writes, mlp) == \
                    ref.access_block(core, lines, writes, mlp)
            TestHierarchyParity._assert_hierarchy_state_equal(kernel, ref)

    @pytest.mark.parametrize("tier", KERNEL_TIERS)
    def test_flush_and_replay_cycle(self, tier):
        machine = tiny_machine(num_sockets=2, cores_per_socket=4)
        cls = HIERARCHY_BACKENDS["prefetch-nl"]
        with jit.forced_tier("py"):
            plain = cls(machine)
        rng = np.random.default_rng(23)
        with jit.forced_tier(tier):
            kernel = cls(machine)
            for _ in range(3):
                for core, lines, writes, mlp in _fuzz_batches(29, 8, 12):
                    assert plain.access_block(core, lines, writes, mlp) == \
                        kernel.access_block(core, lines, writes, mlp)
                    replay = rng.integers(0, 2000, size=40).astype(np.int64)
                    rwrites = rng.random(40) < 0.3
                    plain.replay_block(core, replay, rwrites)
                    kernel.replay_block(core, replay, rwrites)
                assert _hierarchy_state(plain) == _hierarchy_state(kernel)
                plain.flush_all()
                kernel.flush_all()
                assert _hierarchy_state(plain) == _hierarchy_state(kernel)

    @pytest.mark.parametrize("tier", KERNEL_TIERS)
    def test_extreme_addresses_and_directory_growth(self, tier):
        machine = tiny_machine(num_sockets=2, cores_per_socket=4)
        rng = np.random.default_rng(31)
        with jit.forced_tier("py"):
            plain = MemoryHierarchy(machine)
        with jit.forced_tier(tier):
            kernel = MemoryHierarchy(machine)
            # Negative and huge addresses exercise the int64 hash wrap;
            # a long distinct-line sweep forces directory rehash growth.
            for base in (-(1 << 62), 1 << 61, 0):
                for _ in range(10):
                    core = int(rng.integers(0, 8))
                    n = int(rng.integers(1, 150))
                    lines = (rng.integers(0, 1500, size=n) + base).astype(
                        np.int64
                    )
                    writes = rng.random(n) < 0.4
                    assert plain.access_block(core, lines, writes, 1.0) == \
                        kernel.access_block(core, lines, writes, 1.0)
            sweep = np.arange(30_000, dtype=np.int64)
            flags = np.zeros(sweep.size, dtype=bool)
            assert plain.access_block(0, sweep, flags, 1.0) == \
                kernel.access_block(0, sweep, flags, 1.0)
            assert _hierarchy_state(plain) == _hierarchy_state(kernel)

    @pytest.mark.parametrize("tier", KERNEL_TIERS)
    def test_mru_tracker_identical(self, tier):
        rng = np.random.default_rng(37)
        streams = []
        for _ in range(30):
            n = int(rng.integers(1, 500))
            streams.append((
                int(rng.integers(0, 2)),
                rng.integers(0, 700, size=n) * 64,
                rng.random(n) < 0.25,
            ))
        with jit.forced_tier("py"):
            plain = MRUTracker(num_cores=2, capacity_lines=128)
        with jit.forced_tier(tier):
            kernel = MRUTracker(num_cores=2, capacity_lines=128)
            assert kernel._kstates is not None
            for core, lines, writes in streams:
                plain.observe(core, lines, writes)
                kernel.observe(core, lines, writes)
            assert kernel.snapshot(0).per_core == plain.snapshot(0).per_core
            for core in range(2):
                assert kernel.occupancy(core) == plain.occupancy(core)

    @pytest.mark.parametrize("tier", KERNEL_TIERS)
    def test_profiles_and_warmup_identical(self, tier):
        workload = get_workload("fuzz-4", 4, scale=0.1)
        with jit.forced_tier("py"):
            plain_prof = FunctionalProfiler(workload).profile()
        with jit.forced_tier(tier):
            kernel_prof = FunctionalProfiler(workload).profile()
        assert len(plain_prof) == len(kernel_prof)
        for a, b in zip(kernel_prof, plain_prof):
            assert np.array_equal(a.bbv, b.bbv)
            assert np.array_equal(a.ldv, b.ldv)
        mid = workload.num_regions // 2
        with jit.forced_tier("py"):
            plain_data = FunctionalProfiler(workload).capture_warmup(
                {mid}, 256
            )[mid]
        with jit.forced_tier(tier):
            kernel_data = FunctionalProfiler(workload).capture_warmup(
                {mid}, 256
            )[mid]
        assert kernel_data.per_core == plain_data.per_core

    @pytest.mark.parametrize("tier", KERNEL_TIERS)
    def test_full_run_identical(self, tier):
        workload = get_workload("npb-is", 4, scale=0.1)
        machine = tiny_machine()
        with jit.forced_tier("py"):
            plain = Machine(machine).run_full(workload)
        with jit.forced_tier(tier):
            kernel = Machine(machine).run_full(workload)
        for kr, pr in zip(kernel.regions, plain.regions):
            assert kr.cycles == pr.cycles
            assert kr.per_thread_cycles == pr.per_thread_cycles
            assert kr.counters.loads == pr.counters.loads
            assert kr.counters.l3_misses == pr.counters.l3_misses
            assert kr.counters.writebacks == pr.counters.writebacks
