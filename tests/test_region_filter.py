"""Tests for region coalescing (the npb-ua future-work extension)."""

import numpy as np
import pytest

from repro.core.region_filter import coalesce_regions
from repro.core.signatures import SignatureConfig, build_signature_matrix
from repro.clustering.simpoint import SimPointClusterer
from repro.config import SimPointConfig
from repro.errors import WorkloadError
from repro.profiling.profiler import FunctionalProfiler, RegionProfile
from repro.workloads import WORKLOAD_NAMES, get_workload


def _profile(idx, instructions):
    return RegionProfile(
        region_index=idx, phase=f"p{idx % 3}", instructions=instructions,
        per_thread_instructions=(instructions,),
        bbv=np.full((1, 4), float(instructions) / 4),
        ldv=np.full((1, 3), float(instructions) / 3),
    )


class TestCoalesceRegions:
    def test_large_regions_pass_through(self):
        profiles = [_profile(i, 1000) for i in range(5)]
        result = coalesce_regions(profiles, min_weight=0.05)
        assert result.num_super_regions == 5
        assert result.groups == ((0,), (1,), (2,), (3,), (4,))

    def test_tiny_regions_merged(self):
        profiles = [_profile(i, 1) for i in range(100)]
        result = coalesce_regions(profiles, min_weight=0.1)
        assert result.num_super_regions == 10
        for group in result.groups:
            assert len(group) == 10

    def test_signatures_and_weights_additive(self):
        profiles = [_profile(i, 10 + i) for i in range(6)]
        result = coalesce_regions(profiles, min_weight=0.4)
        assert result.num_super_regions == 2
        assert result.groups == ((0, 1, 2), (3, 4, 5))
        merged = result.profiles[0]
        members = result.groups[0]
        assert merged.instructions == sum(10 + i for i in members)
        expected_bbv = sum(profiles[i].bbv for i in members)
        assert np.allclose(merged.bbv, expected_bbv)
        expected_ldv = sum(profiles[i].ldv for i in members)
        assert np.allclose(merged.ldv, expected_ldv)

    def test_groups_are_consecutive_and_cover_everything(self):
        profiles = [_profile(i, (i % 7) + 1) for i in range(40)]
        result = coalesce_regions(profiles, min_weight=0.03)
        flattened = [i for group in result.groups for i in group]
        assert flattened == list(range(40))

    def test_tail_folded_into_last_group(self):
        profiles = [_profile(i, 100) for i in range(4)] + [_profile(4, 1)]
        result = coalesce_regions(profiles, min_weight=0.2)
        assert result.groups[-1][-1] == 4
        assert sum(len(g) for g in result.groups) == 5

    def test_max_group_bound(self):
        profiles = [_profile(i, 1) for i in range(30)]
        result = coalesce_regions(profiles, min_weight=0.9, max_group=8)
        assert all(len(g) <= 8 + 8 for g in result.groups)
        assert max(len(g) for g in result.groups[:-1]) <= 8

    def test_group_of(self):
        profiles = [_profile(i, 1) for i in range(9)]
        result = coalesce_regions(profiles, min_weight=0.34)
        assert result.group_of(0) == 0
        assert result.group_of(8) == result.num_super_regions - 1
        with pytest.raises(WorkloadError):
            result.group_of(99)

    def test_invalid_inputs(self):
        with pytest.raises(WorkloadError):
            coalesce_regions([], min_weight=0.1)
        with pytest.raises(WorkloadError):
            coalesce_regions([_profile(0, 1)], min_weight=0.0)
        with pytest.raises(WorkloadError):
            coalesce_regions([_profile(1, 1)], min_weight=0.1)  # gap at 0


class TestNpbUA:
    def test_excluded_from_evaluated_suite(self):
        assert "npb-ua" not in WORKLOAD_NAMES

    def test_many_barriers(self):
        workload = get_workload("npb-ua", 4, scale=0.1)
        assert workload.barrier_count > 10_000

    def test_end_to_end_with_coalescing(self):
        """npb-ua becomes analyzable after region filtering: >10k regions
        compress to a clusterable super-region set (the paper's future
        work, section V)."""
        workload = get_workload("npb-ua", 2, scale=0.05)
        profiles = FunctionalProfiler(workload).profile()
        coalesced = coalesce_regions(profiles, min_weight=2e-3)
        assert coalesced.num_super_regions < len(profiles) / 10
        matrix, weights = build_signature_matrix(
            coalesced.profiles, SignatureConfig())
        clustering = SimPointClusterer(
            SimPointConfig(max_k=10, kmeans_restarts=2)
        ).fit(matrix, weights)
        assert 1 <= clustering.chosen_k <= 10
        # Redundant time steps compress massively.
        total = weights.sum()
        covered = sum(
            weights[clustering.members_of(c)].sum()
            for c in range(clustering.num_clusters)
        )
        assert covered == pytest.approx(total)
