"""Docstring audit: every public API in the audited packages is documented.

Mirrors the pydocstyle/ruff "missing docstring" rules (D100-D104) with no
third-party dependency, scoped — per the documentation policy — to
``repro.experiments``, ``repro.store``, ``repro.sim``, and
``repro.serve``.  CI additionally runs ruff's ``D1`` rules over the same
packages.
"""

from __future__ import annotations

import ast
import pathlib

SRC = pathlib.Path(__file__).resolve().parents[1] / "src" / "repro"

#: Packages under the documentation mandate.
AUDITED = ("experiments", "store", "sim", "serve")


def _is_public(name: str) -> bool:
    """Whether a definition name is public (pydocstyle semantics)."""
    return not name.startswith("_") or (
        name.startswith("__") and name.endswith("__")
    )


def _missing_in_node(
    node: ast.AST, qualifier: str, missing: list[str]
) -> None:
    """Recursively collect public defs without docstrings under ``node``."""
    for child in ast.iter_child_nodes(node):
        if not isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        name = child.name
        if name.startswith("__") and name.endswith("__"):
            continue  # magic methods: D105/D107 territory, not enforced
        if not _is_public(name):
            continue  # private defs (and everything inside) are exempt
        if ast.get_docstring(child) is None:
            missing.append(f"{qualifier}{name}")
        _missing_in_node(child, f"{qualifier}{name}.", missing)


def missing_docstrings(path: pathlib.Path) -> list[str]:
    """All public, undocumented definitions in one source file.

    Args:
        path: Python source file to audit.

    Returns:
        Qualified names missing a docstring; the module itself is
        reported as ``<module>`` when its docstring is absent.
    """
    tree = ast.parse(path.read_text(), filename=str(path))
    missing: list[str] = []
    if ast.get_docstring(tree) is None:
        missing.append("<module>")
    _missing_in_node(tree, "", missing)
    return missing


def test_audited_packages_exist():
    for package in AUDITED:
        assert (SRC / package / "__init__.py").is_file()


def test_public_api_is_documented():
    offenders: list[str] = []
    for package in AUDITED:
        for path in sorted((SRC / package).rglob("*.py")):
            rel = path.relative_to(SRC.parent)
            offenders += [
                f"{rel}: {name}" for name in missing_docstrings(path)
            ]
    assert not offenders, (
        "public definitions missing docstrings (one-line summary + "
        "args/returns required):\n  " + "\n  ".join(offenders)
    )
