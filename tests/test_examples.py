"""Smoke tests: every example must run against the current API.

Examples are documentation-adjacent code; running them (at a tiny scale,
via the ``REPRO_SCALE`` knob they all honor) keeps them from drifting as
the API evolves.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

import pytest

ROOT = pathlib.Path(__file__).resolve().parents[1]
EXAMPLES = sorted((ROOT / "examples").glob("*.py"))

#: Output each example must produce (guards against silent no-ops).
EXPECTED_OUTPUT = {
    "quickstart": "BarrierPoint estimate",
    "warmup_study": "MRU warmup replayed",
    "cross_architecture": "core speedup",
    "custom_workload": "estimate error vs full simulation",
}


def test_every_example_is_covered():
    assert {p.stem for p in EXAMPLES} == set(EXPECTED_OUTPUT)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path: pathlib.Path):
    env = dict(
        os.environ,
        PYTHONPATH=str(ROOT / "src"),
        REPRO_SCALE="0.1",
    )
    result = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
        cwd=ROOT,
    )
    assert result.returncode == 0, (
        f"{path.name} failed:\n{result.stdout}\n{result.stderr}"
    )
    assert EXPECTED_OUTPUT[path.stem] in result.stdout
