"""Tests for the memory substrate: caches, directory, DRAM, hierarchy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CacheConfig
from repro.mem.cache import SetAssocCache
from repro.mem.directory import Directory
from repro.mem.dram import Dram
from repro.mem.hierarchy import MemoryHierarchy
from tests.conftest import tiny_machine


def small_cache(lines=16, assoc=4):
    return SetAssocCache(CacheConfig(lines * 64, assoc, 4))


class TestSetAssocCache:
    def test_miss_then_hit(self):
        cache = small_cache()
        assert not cache.lookup(42)
        cache.fill(42)
        assert cache.lookup(42)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_contains_does_not_touch_stats(self):
        cache = small_cache()
        cache.fill(1)
        before = cache.stats.accesses
        assert cache.contains(1)
        assert not cache.contains(2)
        assert cache.stats.accesses == before

    def test_lru_eviction_order(self):
        cache = small_cache(lines=4, assoc=4)  # one set
        for line in (0, 4, 8, 12):
            cache.fill(line * 4)  # all map to set 0? use same-set lines
        cache = small_cache(lines=4, assoc=4)
        set_stride = cache.config.num_sets
        lines = [i * set_stride for i in range(4)]
        for line in lines:
            cache.fill(line)
        cache.lookup(lines[0])  # promote oldest to MRU
        victim = cache.fill(99 * set_stride)
        assert victim is not None
        assert victim.line == lines[1]  # second-oldest evicted

    def test_dirty_eviction_flagged(self):
        cache = small_cache(lines=2, assoc=2)
        stride = cache.config.num_sets
        cache.fill(0, dirty=True)
        cache.fill(stride)
        victim = cache.fill(2 * stride)
        assert victim.line == 0 and victim.dirty
        assert cache.stats.dirty_evictions == 1

    def test_remove(self):
        cache = small_cache()
        cache.fill(7)
        assert cache.remove(7)
        assert not cache.contains(7)
        assert not cache.remove(7)
        assert cache.stats.invalidations == 1

    def test_mark_dirty(self):
        cache = small_cache()
        cache.fill(3)
        cache.mark_dirty(3)
        assert cache.is_dirty(3)
        cache.mark_dirty(99)  # absent: no-op
        assert not cache.is_dirty(99)

    def test_flush(self):
        cache = small_cache()
        cache.fill(1)
        cache.flush()
        assert cache.occupancy == 0
        assert not cache.contains(1)

    def test_occupancy_bounded(self):
        cache = small_cache(lines=8, assoc=2)
        for line in range(100):
            cache.fill(line)
        assert cache.occupancy <= 8

    def test_refill_promotes_not_duplicates(self):
        cache = small_cache()
        cache.fill(5)
        cache.fill(5)
        assert cache.resident_lines().count(5) == 1

    def test_miss_rate(self):
        cache = small_cache()
        cache.lookup(1)
        cache.fill(1)
        cache.lookup(1)
        assert cache.stats.miss_rate == pytest.approx(0.5)

    @settings(max_examples=25)
    @given(st.lists(st.integers(0, 200), min_size=1, max_size=300))
    def test_capacity_invariant(self, lines):
        cache = small_cache(lines=16, assoc=4)
        for line in lines:
            if not cache.lookup(line):
                cache.fill(line)
        assert cache.occupancy <= 16
        per_set = {}
        for line in cache.resident_lines():
            per_set.setdefault(line & (cache.config.num_sets - 1), []).append(line)
        assert all(len(v) <= 4 for v in per_set.values())

    @settings(max_examples=25)
    @given(st.lists(st.integers(0, 50), min_size=1, max_size=100))
    def test_most_recent_always_present(self, lines):
        cache = small_cache(lines=8, assoc=2)
        for line in lines:
            if not cache.lookup(line):
                cache.fill(line)
        assert cache.contains(lines[-1])


class TestDirectory:
    def test_read_records_sharer(self):
        directory = Directory(num_cores=4)
        assert directory.note_read(10, 2) == -1
        assert directory.sharers(10) == 0b100

    def test_write_returns_invalidation_mask(self):
        directory = Directory(num_cores=4)
        directory.note_read(10, 0)
        directory.note_read(10, 1)
        mask = directory.note_write(10, 3)
        assert mask == 0b011
        assert directory.owner(10) == 3
        assert directory.stats.invalidations_sent == 2

    def test_read_downgrades_remote_owner(self):
        directory = Directory(num_cores=4)
        directory.note_write(5, 1)
        prev = directory.note_read(5, 2)
        assert prev == 1
        assert not directory.is_modified(5)
        assert directory.stats.downgrades == 1

    def test_own_read_keeps_modified(self):
        directory = Directory(num_cores=4)
        directory.note_write(5, 1)
        assert directory.note_read(5, 1) == -1
        assert directory.is_modified(5)

    def test_drop(self):
        directory = Directory(num_cores=2)
        directory.note_write(9, 0)
        directory.drop(9)
        assert directory.owner(9) == -1
        assert directory.sharers(9) == 0


class TestDram:
    def test_read_latency_and_counters(self):
        dram = Dram(tiny_machine())
        latency = dram.read(0)
        assert latency == tiny_machine().dram_latency_cycles
        assert dram.stats.reads_per_socket[0] == 1

    def test_writeback_counted(self):
        dram = Dram(tiny_machine())
        dram.writeback(0)
        assert dram.total_accesses() == 1

    def test_bandwidth_floor(self):
        machine = tiny_machine()
        dram = Dram(machine)
        # 8 GB/s at 2.66 GHz ~ 3.008 B/cycle -> 1000 lines = 64000 B
        floor = dram.min_cycles_for_traffic([1000], [0])
        expected = 1000 * 64 / (8.0 / 2.66)
        assert floor == pytest.approx(expected)

    def test_bandwidth_floor_worst_socket(self):
        dram = Dram(tiny_machine(num_sockets=2))
        floor = dram.min_cycles_for_traffic([10, 1000], [0, 0])
        assert floor == pytest.approx(
            dram.min_cycles_for_traffic([1000], [0]))


class TestMemoryHierarchy:
    def _refs(self, lines, writes=None):
        arr = np.asarray(lines, dtype=np.int64)
        if writes is None:
            w = np.zeros(arr.size, dtype=bool)
        else:
            w = np.asarray(writes, dtype=bool)
        return arr, w

    def test_cold_read_costs_dram(self):
        h = MemoryHierarchy(tiny_machine())
        extra = h.access(0, 1234, False)
        assert extra == h.machine.dram_latency_cycles
        assert h.snapshot().l3_misses == 1

    def test_second_read_hits_l1(self):
        h = MemoryHierarchy(tiny_machine())
        h.access(0, 1234, False)
        assert h.access(0, 1234, False) == 0

    def test_sibling_core_hits_l3(self):
        h = MemoryHierarchy(tiny_machine())
        h.access(0, 77, False)
        extra = h.access(1, 77, False)
        assert extra == h.machine.l2.latency_cycles + h.machine.l3.latency_cycles or \
            extra == h.machine.l3.latency_cycles

    def test_write_invalidates_other_sharers(self):
        h = MemoryHierarchy(tiny_machine())
        h.access(0, 500, False)
        h.access(1, 500, False)
        h.access(2, 500, True)
        # core 0's private copy must be gone
        assert not h.l1d[0].contains(500)
        assert not h.l2[0].contains(500)
        assert h.directory.owner(500) == 2

    def test_remote_socket_dirty_read_is_c2c(self):
        h = MemoryHierarchy(tiny_machine(num_sockets=2))
        h.access(0, 900, True)          # socket 0 owns dirty
        before_wb = h.snapshot().writebacks
        extra = h.access(4, 900, False)  # socket 1 reads
        snap = h.snapshot()
        assert snap.cache_to_cache >= 1
        assert snap.writebacks == before_wb + 1  # MSI downgrade writeback
        assert extra >= h.machine.l3.latency_cycles

    def test_write_to_own_modified_line_is_cheap(self):
        h = MemoryHierarchy(tiny_machine())
        h.access(0, 321, True)
        lines, writes = self._refs([321], [True])
        assert h.access_block(0, lines, writes, mlp=1.0) == 0.0

    def test_store_stall_fraction(self):
        h = MemoryHierarchy(tiny_machine())
        lines, writes = self._refs([42], [True])
        stall = h.access_block(0, lines, writes, mlp=1.0)
        assert 0 < stall < h.machine.dram_latency_cycles

    def test_mlp_scales_stalls(self):
        h1 = MemoryHierarchy(tiny_machine())
        h2 = MemoryHierarchy(tiny_machine())
        lines, writes = self._refs(list(range(10_000, 10_064)))
        s1 = h1.access_block(0, lines, writes, mlp=1.0)
        s2 = h2.access_block(0, lines, writes, mlp=4.0)
        assert s1 == pytest.approx(4.0 * s2)

    def test_invalid_mlp(self):
        h = MemoryHierarchy(tiny_machine())
        lines, writes = self._refs([1])
        from repro.errors import SimulationError
        with pytest.raises(SimulationError):
            h.access_block(0, lines, writes, mlp=0.5)

    def test_l3_inclusion_purges_private_copies(self):
        machine = tiny_machine()  # L3 = 512 lines
        h = MemoryHierarchy(machine)
        h.access(0, 0, False)
        # Stream enough distinct lines through core 0 to evict line 0 from L3.
        lines, writes = self._refs(list(range(1, 1 + 2 * machine.l3.num_lines)))
        h.access_block(0, lines, writes, mlp=4.0)
        assert not h.l3[0].contains(0)
        assert not h.l1d[0].contains(0)
        assert not h.l2[0].contains(0)

    def test_counters_delta(self):
        h = MemoryHierarchy(tiny_machine())
        before = h.snapshot()
        lines, writes = self._refs([1, 2, 3], [False, True, False])
        h.access_block(0, lines, writes, mlp=1.0)
        delta = h.snapshot().delta(before)
        assert delta.loads == 2
        assert delta.stores == 1
        assert delta.accesses == 3
        assert delta.l3_misses == 3

    def test_access_code(self):
        h = MemoryHierarchy(tiny_machine())
        stall = h.access_code(0, (1 << 40, (1 << 40) + 1))
        assert stall == 2 * h.machine.l2.latency_cycles
        assert h.access_code(0, (1 << 40,)) == 0  # now warm

    def test_flush_all(self):
        h = MemoryHierarchy(tiny_machine())
        h.access(0, 5, True)
        h.flush_all()
        assert not h.l1d[0].contains(5)
        assert h.directory.owner(5) == -1

    def test_replay_reconstructs_state(self):
        h = MemoryHierarchy(tiny_machine())
        h.replay(0, 5, True)
        assert h.l1d[0].contains(5)
        assert h.directory.owner(5) == 0

    def test_dram_bandwidth_accounting_per_socket(self):
        h = MemoryHierarchy(tiny_machine(num_sockets=2))
        lines, writes = self._refs(list(range(100)))
        h.access_block(0, lines, writes, mlp=1.0)   # socket 0
        h.access_block(4, lines + 10_000, writes, mlp=1.0)  # socket 1
        snap = h.snapshot()
        assert snap.dram_reads_per_socket[0] == 100
        assert snap.dram_reads_per_socket[1] == 100
