"""Tests for machine/methodology configuration (Tables I and II)."""

import pytest

from repro.config import (
    CacheConfig,
    CoreConfig,
    MachineConfig,
    MemConfig,
    SimPointConfig,
    scaled,
    simpoint_defaults,
    table1_8core,
    table1_32core,
)
from repro.errors import ConfigError


class TestCacheConfig:
    def test_geometry(self):
        cache = CacheConfig(32 * 1024, 8, 4)
        assert cache.num_lines == 512
        assert cache.num_sets == 64

    def test_invalid_size(self):
        with pytest.raises(ConfigError):
            CacheConfig(0, 4, 4)

    def test_non_divisible(self):
        with pytest.raises(ConfigError):
            CacheConfig(1000, 3, 4)

    def test_non_pow2_sets(self):
        with pytest.raises(ConfigError):
            CacheConfig(3 * 8 * 64, 8, 4)  # 3 sets


class TestCoreConfig:
    def test_defaults_match_table1(self):
        core = CoreConfig()
        assert core.frequency_ghz == 2.66
        assert core.dispatch_width == 4
        assert core.rob_entries == 128
        assert core.branch_miss_penalty == 8

    def test_invalid_width(self):
        with pytest.raises(ConfigError):
            CoreConfig(dispatch_width=0)


class TestMemConfig:
    def test_defaults_match_table1(self):
        mem = MemConfig()
        assert mem.latency_ns == 65.0
        assert mem.bandwidth_gbps_per_socket == 8.0

    def test_invalid(self):
        with pytest.raises(ConfigError):
            MemConfig(latency_ns=-1)


class TestTable1Machines:
    def test_8core(self):
        cfg = table1_8core()
        assert cfg.num_cores == 8
        assert cfg.num_sockets == 1
        assert cfg.l3.size_bytes == 8 * 1024 * 1024

    def test_32core(self):
        cfg = table1_32core()
        assert cfg.num_cores == 32
        assert cfg.num_sockets == 4
        assert cfg.total_llc_bytes == 32 * 1024 * 1024

    def test_dram_latency_cycles(self):
        # 65 ns at 2.66 GHz = ~173 cycles.
        assert table1_8core().dram_latency_cycles == 173

    def test_socket_of(self):
        cfg = table1_32core()
        assert cfg.socket_of(0) == 0
        assert cfg.socket_of(7) == 0
        assert cfg.socket_of(8) == 1
        assert cfg.socket_of(31) == 3

    def test_socket_of_out_of_range(self):
        with pytest.raises(ConfigError):
            table1_8core().socket_of(8)

    def test_invalid_machine(self):
        with pytest.raises(ConfigError):
            MachineConfig(name="bad", num_sockets=0, cores_per_socket=8)


class TestScaled:
    def test_shrinks_capacity_only(self):
        base = table1_8core()
        small = scaled(base, 16)
        assert small.l1d.size_bytes == base.l1d.size_bytes // 16
        assert small.l1d.associativity == base.l1d.associativity
        assert small.l1d.latency_cycles == base.l1d.latency_cycles
        assert small.core == base.core

    def test_l3_shrinks_further_by_default(self):
        small = scaled(table1_8core(), 16)
        assert small.l3.size_bytes == table1_8core().l3.size_bytes // 64

    def test_explicit_l3_factor(self):
        small = scaled(table1_8core(), 16, l3_factor=16)
        assert small.l3.size_bytes == table1_8core().l3.size_bytes // 16

    def test_never_below_one_set(self):
        tiny = scaled(table1_8core(), 1 << 20)
        assert tiny.l1d.num_sets >= 1
        assert tiny.l1d.num_lines >= tiny.l1d.associativity

    def test_invalid_factor(self):
        with pytest.raises(ConfigError):
            scaled(table1_8core(), 0)

    def test_name_tagged(self):
        assert "scaled" in scaled(table1_8core(), 4).name


class TestSimPointConfig:
    def test_defaults_match_table2(self):
        cfg = simpoint_defaults()
        assert cfg.projected_dims == 15
        assert cfg.max_k == 20
        assert cfg.fixed_length is False
        assert cfg.coverage_pct == 1.0

    def test_invalid_dims(self):
        with pytest.raises(ConfigError):
            SimPointConfig(projected_dims=0)

    def test_invalid_coverage(self):
        with pytest.raises(ConfigError):
            SimPointConfig(coverage_pct=1.5)

    def test_invalid_threshold(self):
        with pytest.raises(ConfigError):
            SimPointConfig(bic_threshold=0.0)
