"""Documentation health: the link checker passes and core docs exist."""

from __future__ import annotations

import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parents[1]


def test_core_documents_exist():
    for name in (
        "README.md",
        "EXPERIMENTS.md",
        "docs/architecture.md",
        "docs/cli.md",
    ):
        assert (ROOT / name).is_file(), f"missing {name}"


def test_markdown_links_resolve():
    result = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "check_docs.py")],
        capture_output=True,
        text=True,
        cwd=ROOT,
        timeout=60,
    )
    assert result.returncode == 0, result.stdout + result.stderr
