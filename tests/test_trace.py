"""Tests for the trace substrate: rng, program records, generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.trace import generators as gen
from repro.trace.program import BasicBlock, BlockExec, RegionTrace, ThreadTrace
from repro.trace.rng import stream_rng, stream_seed


class TestStreamSeed:
    def test_deterministic(self):
        assert stream_seed("a", 1, 2.5) == stream_seed("a", 1, 2.5)

    def test_sensitive_to_each_part(self):
        base = stream_seed("workload", 8, 3)
        assert stream_seed("workload", 8, 4) != base
        assert stream_seed("workload", 9, 3) != base
        assert stream_seed("other", 8, 3) != base

    def test_part_boundaries_matter(self):
        # ("ab", "c") must differ from ("a", "bc").
        assert stream_seed("ab", "c") != stream_seed("a", "bc")

    def test_rng_reproducible(self):
        a = stream_rng("x", 1).integers(0, 1000, 10)
        b = stream_rng("x", 1).integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_rng_streams_independent(self):
        a = stream_rng("x", 1).integers(0, 1000, 10)
        b = stream_rng("x", 2).integers(0, 1000, 10)
        assert not np.array_equal(a, b)


def _block(**kwargs) -> BasicBlock:
    defaults = dict(bb_id=0, name="bb", instructions=10)
    defaults.update(kwargs)
    return BasicBlock(**defaults)


class TestBasicBlock:
    def test_valid(self):
        block = _block(mispredict_rate=0.05, mlp=2.5, code_lines=(1, 2))
        assert block.instructions == 10

    def test_zero_instructions_rejected(self):
        with pytest.raises(WorkloadError):
            _block(instructions=0)

    def test_bad_mispredict_rate(self):
        with pytest.raises(WorkloadError):
            _block(mispredict_rate=1.5)

    def test_bad_mlp(self):
        with pytest.raises(WorkloadError):
            _block(mlp=0.5)


class TestBlockExec:
    def test_instruction_count(self):
        exec_ = BlockExec(_block(instructions=7), count=3)
        assert exec_.instructions == 21
        assert exec_.num_refs == 0

    def test_refs(self):
        lines = np.array([1, 2, 3], dtype=np.int64)
        writes = np.array([False, True, False])
        exec_ = BlockExec(_block(), count=1, lines=lines, writes=writes)
        assert exec_.num_refs == 3

    def test_mismatched_refs_rejected(self):
        with pytest.raises(WorkloadError):
            BlockExec(_block(), count=1,
                      lines=np.array([1], dtype=np.int64),
                      writes=np.array([True, False]))

    def test_zero_count_rejected(self):
        with pytest.raises(WorkloadError):
            BlockExec(_block(), count=0)


class TestRegionTrace:
    def _trace(self):
        threads = tuple(
            ThreadTrace(tid, (BlockExec(_block(), count=2),))
            for tid in range(3)
        )
        return RegionTrace(region_index=5, phase="p", threads=threads)

    def test_aggregates(self):
        trace = self._trace()
        assert trace.num_threads == 3
        assert trace.instructions == 3 * 20
        assert trace.num_refs == 0

    def test_thread_ids_must_be_dense(self):
        threads = (ThreadTrace(1, (BlockExec(_block(), count=1),)),)
        with pytest.raises(WorkloadError):
            RegionTrace(region_index=0, phase="p", threads=threads)

    def test_empty_threads_rejected(self):
        with pytest.raises(WorkloadError):
            RegionTrace(region_index=0, phase="p", threads=())


class TestGenerators:
    def test_strided_sweep(self):
        lines, writes = gen.strided_sweep(100, 5)
        assert lines.tolist() == [100, 101, 102, 103, 104]
        assert not writes.any()

    def test_strided_sweep_write(self):
        _, writes = gen.strided_sweep(0, 3, write=True)
        assert writes.all()

    def test_strided_sweep_repeat(self):
        lines, _ = gen.strided_sweep(0, 3, repeat=2)
        assert lines.tolist() == [0, 1, 2, 0, 1, 2]

    def test_strided_sweep_stride(self):
        lines, _ = gen.strided_sweep(0, 3, stride=4)
        assert lines.tolist() == [0, 4, 8]

    def test_zero_stride_rejected(self):
        with pytest.raises(WorkloadError):
            gen.strided_sweep(0, 3, stride=0)

    def test_rmw_sweep_pattern(self):
        lines, writes = gen.read_modify_write_sweep(10, 2)
        assert lines.tolist() == [10, 10, 11, 11]
        assert writes.tolist() == [False, True, False, True]

    def test_stencil_sweep_touches_neighbours(self):
        lines, writes = gen.stencil_sweep(100, 3, radius=1)
        assert lines.size == 9
        assert set(lines.tolist()) <= set(range(100, 104))
        assert writes.sum() == 3  # one write per centre

    def test_stencil_no_write(self):
        _, writes = gen.stencil_sweep(0, 4, radius=1, write_center=False)
        assert not writes.any()

    def test_stencil_clipped_at_base(self):
        lines, _ = gen.stencil_sweep(50, 2, radius=1)
        assert lines.min() >= 50

    def test_random_gather_in_window(self):
        rng = np.random.default_rng(1)
        lines, writes = gen.random_gather(rng, 1000, 50, 200)
        assert lines.size == 200
        assert lines.min() >= 1000
        assert lines.max() < 1050
        assert not writes.any()

    def test_random_gather_write_fraction(self):
        rng = np.random.default_rng(1)
        _, writes = gen.random_gather(rng, 0, 100, 1000, write_fraction=0.5)
        assert 300 < writes.sum() < 700

    def test_random_gather_bad_fraction(self):
        with pytest.raises(WorkloadError):
            gen.random_gather(np.random.default_rng(0), 0, 10, 5,
                              write_fraction=1.5)

    def test_blocked_all_to_all_covers_owners(self):
        lines, writes = gen.blocked_all_to_all(
            0, lines_per_owner=16, num_owners=4, reader=1, chunk_lines=4
        )
        owners_touched = {int(line) // 16 for line in lines.tolist()}
        assert owners_touched == {0, 1, 2, 3}
        assert not writes.any()

    def test_blocked_all_to_all_reader_range(self):
        with pytest.raises(WorkloadError):
            gen.blocked_all_to_all(0, 16, 4, reader=4, chunk_lines=4)

    def test_histogram_scatter_structure(self):
        rng = np.random.default_rng(2)
        lines, writes = gen.histogram_scatter(rng, 0, 9, 1000, 64)
        assert lines.size == 27  # key read + bucket read + bucket write
        assert writes.tolist() == [False, False, True] * 9
        assert (lines[1::3] == lines[2::3]).all()

    def test_histogram_scatter_skew_concentrates(self):
        rng = np.random.default_rng(3)
        lines_flat, _ = gen.histogram_scatter(rng, 0, 2000, 10**6, 256,
                                              skew=1.0)
        rng = np.random.default_rng(3)
        lines_skew, _ = gen.histogram_scatter(rng, 0, 2000, 10**6, 256,
                                              skew=4.0)
        assert (np.unique(lines_skew[1::3]).size
                < np.unique(lines_flat[1::3]).size)

    def test_reduction_accumulate(self):
        lines, writes = gen.reduction_accumulate(5, 2, rounds=2)
        assert lines.tolist() == [5, 5, 6, 6, 5, 5, 6, 6]
        assert writes.sum() == 4

    def test_pointer_chase_matches_gather_footprint(self):
        rng = np.random.default_rng(4)
        lines, _ = gen.pointer_chase(rng, 100, 10, 50)
        assert lines.min() >= 100 and lines.max() < 110

    def test_concat(self):
        a = gen.strided_sweep(0, 2)
        b = gen.strided_sweep(10, 2, write=True)
        lines, writes = gen.concat(a, b)
        assert lines.tolist() == [0, 1, 10, 11]
        assert writes.tolist() == [False, False, True, True]

    def test_concat_empty(self):
        lines, writes = gen.concat()
        assert lines.size == 0 and writes.size == 0

    @settings(max_examples=25)
    @given(st.integers(1, 100), st.integers(1, 5), st.integers(1, 3))
    def test_sweep_length_property(self, n, stride, repeat):
        lines, writes = gen.strided_sweep(0, n, stride=stride, repeat=repeat)
        assert lines.size == n * repeat
        assert lines.size == writes.size
