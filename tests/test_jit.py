"""Tests for the JIT kernel-tier dispatch module (``repro.util.jit``)."""

import pytest

from repro.errors import ConfigError
from repro.util import jit


class TestRequestedMode:
    def test_default_is_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_JIT", raising=False)
        assert jit.requested_mode() == "auto"

    @pytest.mark.parametrize("raw", ["auto", "on", "off", " ON ", "Off", ""])
    def test_accepts_known_modes(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_JIT", raw)
        assert jit.requested_mode() in jit.MODES

    def test_rejects_unknown_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_JIT", "turbo")
        with pytest.raises(ConfigError, match="REPRO_JIT"):
            jit.requested_mode()


class TestActiveTier:
    def test_off_forces_py(self, monkeypatch):
        monkeypatch.setenv("REPRO_JIT", "off")
        assert jit.active_tier() == "py"
        assert jit.kernel_tier() is None

    def test_auto_matches_numba_availability(self, monkeypatch):
        monkeypatch.setenv("REPRO_JIT", "auto")
        expected = "nb" if jit.numba_available() else "py"
        assert jit.active_tier() == expected

    def test_on_without_numba_degrades_to_py(self, monkeypatch):
        monkeypatch.setenv("REPRO_JIT", "on")
        if jit.numba_available():
            assert jit.active_tier() == "nb"
        else:
            assert jit.active_tier() == "py"


class TestForcedTier:
    def test_forced_tier_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JIT", "off")
        with jit.forced_tier("kernel-py"):
            assert jit.active_tier() == "kernel-py"
            assert jit.kernel_tier() == "kernel-py"
        assert jit.active_tier() == "py"

    def test_nesting_restores_previous_override(self):
        with jit.forced_tier("py"):
            with jit.forced_tier("kernel-py"):
                assert jit.active_tier() == "kernel-py"
            assert jit.active_tier() == "py"

    def test_restores_on_exception(self):
        before = jit.active_tier()
        with pytest.raises(RuntimeError):
            with jit.forced_tier("kernel-py"):
                raise RuntimeError("boom")
        assert jit.active_tier() == before

    def test_rejects_unknown_tier(self):
        with pytest.raises(ConfigError, match="unknown JIT tier"):
            with jit.forced_tier("cuda"):
                pass  # pragma: no cover


class TestDegradation:
    def test_quiet_in_auto_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_JIT", "auto")
        assert jit.degradation_note() is None

    def test_loud_when_on_without_numba(self, monkeypatch):
        monkeypatch.setenv("REPRO_JIT", "on")
        note = jit.degradation_note()
        if jit.numba_available():
            assert note is None
        else:
            assert "numba" in note
            assert jit.jit_status()["degraded"]

    def test_forced_tier_suppresses_note(self, monkeypatch):
        monkeypatch.setenv("REPRO_JIT", "on")
        with jit.forced_tier("kernel-py"):
            assert jit.degradation_note() is None


class TestStatus:
    def test_status_shape(self, monkeypatch):
        monkeypatch.setenv("REPRO_JIT", "off")
        status = jit.jit_status()
        assert status == {
            "mode": "off",
            "numba": jit.numba_available(),
            "tier": "py",
            "degraded": False,
        }

    def test_status_reports_forced_tier(self):
        with jit.forced_tier("kernel-py"):
            assert jit.jit_status()["tier"] == "kernel-py"


class TestRunReportNote:
    def test_runner_records_degradation_note(self, monkeypatch):
        # The note must not depend on the execution path (prefetch is
        # only reached by parallel runs) — it lands at construction.
        from repro.experiments.common import ExperimentRunner

        monkeypatch.setenv("REPRO_JIT", "on")
        runner = ExperimentRunner(scale=0.1, store=None)
        if jit.numba_available():
            assert runner.report.notes == []
        else:
            assert any("numba" in note for note in runner.report.notes)
            assert runner.report.noteworthy()
            assert runner.report.to_dict()["notes"] == runner.report.notes

    def test_runner_quiet_in_auto_mode(self, monkeypatch):
        from repro.experiments.common import ExperimentRunner

        monkeypatch.setenv("REPRO_JIT", "auto")
        runner = ExperimentRunner(scale=0.1, store=None)
        assert runner.report.notes == []
        assert not runner.report.noteworthy()


class TestCompileAndWarm:
    def test_compile_kernel_without_numba_raises(self):
        if jit.numba_available():
            pytest.skip("numba installed; compile path covered by warm test")
        with pytest.raises(ConfigError, match="numba"):
            jit.compile_kernel(lambda: None)

    def test_warm_is_noop_on_py_tier(self, monkeypatch):
        monkeypatch.setenv("REPRO_JIT", "off")
        assert jit.warm_kernels() == []

    def test_warm_covers_all_kernel_groups(self):
        # kernel-py exercises the same warm paths the nb tier compiles.
        with jit.forced_tier("kernel-py"):
            warmed = jit.warm_kernels()
        assert "profiling.stackdist" in " ".join(warmed) or warmed
        assert len(warmed) >= 2

    @pytest.mark.skipif(not jit.numba_available(), reason="numba not installed")
    def test_warm_compiles_nb_kernels(self):  # pragma: no cover - numba leg
        with jit.forced_tier("nb"):
            warmed = jit.warm_kernels()
        assert len(warmed) >= 2
