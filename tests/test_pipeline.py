"""Integration tests: the full BarrierPoint pipeline on small workloads."""

import numpy as np
import pytest

from repro.config import SimPointConfig
from repro.core.crossarch import apply_selection_across
from repro.core.pipeline import BarrierPointPipeline
from repro.core.signatures import SignatureConfig
from repro.errors import ConfigError
from repro.workloads import get_workload
from tests.conftest import tiny_machine

SP_FAST = SimPointConfig(max_k=10, kmeans_restarts=2)


@pytest.fixture(scope="module")
def pipe():
    return BarrierPointPipeline(tiny_machine(), simpoint=SP_FAST)


@pytest.fixture(scope="module")
def workload():
    return get_workload("npb-is", 4, scale=0.2)


@pytest.fixture(scope="module")
def selection(pipe, workload):
    return pipe.select(workload)


@pytest.fixture(scope="module")
def full(pipe, workload):
    return pipe.full_run(workload)


class TestSelectionStage:
    def test_selection_covers_all_regions(self, selection, workload):
        assert selection.num_regions == workload.num_regions
        assert selection.labels.shape == (workload.num_regions,)
        assert 1 <= selection.num_barrierpoints <= workload.num_regions

    def test_selection_deterministic(self, pipe, workload, selection):
        again = pipe.select(workload)
        assert np.array_equal(again.labels, selection.labels)
        assert again.selected_regions == selection.selected_regions

    def test_signature_label_recorded(self, selection):
        assert selection.signature_label == "combine"

    def test_thread_mismatch_rejected(self, pipe):
        big = get_workload("npb-is", 16, scale=0.2)
        with pytest.raises(ConfigError):
            pipe.select(big)


class TestPerfectEvaluation:
    def test_small_error(self, pipe, selection, workload, full):
        result = pipe.evaluate_perfect(selection, full)
        assert result.warmup_name == "perfect"
        assert result.runtime_error_pct < 20.0
        assert result.estimate.instructions == pytest.approx(
            full.app.instructions, rel=1e-9)

    def test_scaling_beats_no_scaling_or_ties(self, pipe, selection, full):
        scaled_r = pipe.evaluate_perfect(selection, full, scaling=True)
        unscaled = pipe.evaluate_perfect(selection, full, scaling=False)
        assert scaled_r.runtime_error_pct <= unscaled.runtime_error_pct + 5.0


class TestWarmupEvaluation:
    def test_mru_pipeline_runs(self, pipe, selection, workload, full):
        result = pipe.evaluate_with_warmup(selection, workload, full, "mru")
        assert result.warmup_name == "mru"
        assert set(result.point_metrics) == set(selection.selected_regions)
        assert all(v >= 0 for v in result.warmup_lines.values())
        assert result.runtime_error_pct < 50.0

    def test_cold_pipeline_runs(self, pipe, selection, workload, full):
        result = pipe.evaluate_with_warmup(selection, workload, full, "cold")
        assert result.warmup_name == "cold"
        assert all(v == 0 for v in result.warmup_lines.values())

    def test_unknown_warmup_rejected(self, pipe, selection, workload, full):
        with pytest.raises(ConfigError):
            pipe.evaluate_with_warmup(selection, workload, full, "magic")

    def test_run_convenience(self, pipe, workload):
        result = pipe.run(workload)
        assert result.warmup_name == "mru"
        assert result.runtime_error_pct >= 0.0


class TestCrossArchitecture:
    def test_transfer_to_more_cores(self, pipe, selection, workload):
        pipe8 = BarrierPointPipeline(
            tiny_machine(num_sockets=2), simpoint=SP_FAST)
        w8 = get_workload("npb-is", 8, scale=0.2)
        full8 = pipe8.full_run(w8)
        result = apply_selection_across(selection, full8, pipe8)
        assert result.selection.num_threads == 8
        assert result.estimate.instructions == pytest.approx(
            full8.app.instructions, rel=1e-9)
        assert result.runtime_error_pct < 30.0

    def test_multipliers_recomputed_on_target(self, selection):
        from repro.core.selection import reassign_multipliers
        target = np.arange(1, selection.num_regions + 1, dtype=float) * 100
        moved = reassign_multipliers(selection, target, 8)
        assert moved.total_instructions == pytest.approx(target.sum())


class TestSignatureVariants:
    @pytest.mark.parametrize("kind", ["bbv", "ldv", "combined"])
    def test_all_kinds_produce_selections(self, workload, kind):
        pipe = BarrierPointPipeline(
            tiny_machine(), signature=SignatureConfig(kind=kind),
            simpoint=SP_FAST)
        selection = pipe.select(workload)
        assert selection.num_barrierpoints >= 1
        assert selection.signature_label.startswith(
            {"bbv": "bbv", "ldv": "reuse", "combined": "combine"}[kind])
