"""Property tests for the stack-distance engines.

Several implementations of exact LRU stack distances coexist in the
repo: the vectorized :class:`~repro.profiling.stackdist.StackDistanceEngine`
(the hot path), the streaming dict+Fenwick
:class:`~repro.profiling.stackdist.OlkenStackProfiler`, the seed
:class:`repro._reference.ReferenceLruStackProfiler` cascade, and the
flat-array kernel of :mod:`repro.profiling.kernels` in both its
interpreted (``kernel-py``) and, when numba is installed, compiled
(``nb``) tiers.  These tests assert all of them produce identical
distances and LDV histograms on seeded random streams and on every
adversarial degenerate shape (empty, single line, all-unique,
all-repeat, sawtooth, reverse reuse), at several chunking granularities
— the property the replayed-trace profiles rest on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro._reference import ReferenceLruStackProfiler
from repro.profiling.ldv import (
    LruStackProfiler,
    bucketize,
    naive_stack_distances,
)
from repro.profiling.ldv import NUM_LDV_BUCKETS
from repro.profiling.kernels import KernelDistanceEngine
from repro.profiling.stackdist import OlkenStackProfiler, StackDistanceEngine
from repro.trace.rng import stream_rng
from repro.util import jit

#: Kernel tiers to battery-test; nb auto-skips when numba is absent.
KERNEL_TIERS = ["kernel-py"] + (["nb"] if jit.numba_available() else [])


def _histogram(distances: np.ndarray) -> np.ndarray:
    """Bucketized LDV histogram of a distance array."""
    hist = np.zeros(NUM_LDV_BUCKETS, dtype=np.int64)
    if distances.size:
        np.add.at(hist, bucketize(distances), 1)
    return hist


def _chunked(stream: np.ndarray, chunk: int):
    """Split a stream into ``chunk``-sized pieces (at least one)."""
    if stream.size == 0:
        return [stream]
    return [stream[i:i + chunk] for i in range(0, stream.size, chunk)]


def assert_three_way_identical(stream: np.ndarray, chunk: int) -> None:
    """Every engine agrees with every other and with the naive stack."""
    engine = StackDistanceEngine()
    olken = OlkenStackProfiler()
    fast_profiler = LruStackProfiler()
    ref_profiler = ReferenceLruStackProfiler()
    kernel_engines = {}
    for tier in KERNEL_TIERS:
        with jit.forced_tier(tier):  # bundle is bound at construction
            kernel_engines[tier] = KernelDistanceEngine()

    engine_dists = []
    olken_dists = []
    kernel_dists = {tier: [] for tier in KERNEL_TIERS}
    for piece in _chunked(stream, chunk):
        engine_dists.append(engine.observe(piece).distances)
        olken_dists.append(olken.observe(piece))
        fast_profiler.observe(piece)
        ref_profiler.observe(piece)
        for tier, kengine in kernel_engines.items():
            with jit.forced_tier(tier):
                kernel_dists[tier].append(kengine.observe(piece).distances)
    engine_all = np.concatenate(engine_dists) if engine_dists else stream
    olken_all = np.concatenate(olken_dists) if olken_dists else stream

    expected = np.asarray(naive_stack_distances(stream), dtype=np.int64)
    assert engine_all.tolist() == expected.tolist()
    assert olken_all.tolist() == expected.tolist()
    for tier in KERNEL_TIERS:
        kernel_all = (
            np.concatenate(kernel_dists[tier]) if kernel_dists[tier]
            else stream
        )
        assert kernel_all.tolist() == expected.tolist(), tier
        assert kernel_engines[tier].unique_lines == engine.unique_lines, tier

    expected_hist = _histogram(expected)
    assert np.array_equal(fast_profiler.take_histogram(), expected_hist)
    assert np.array_equal(ref_profiler.take_histogram(), expected_hist)
    assert engine.unique_lines == olken.unique_lines == len(set(stream.tolist()))


CHUNKS = (1, 7, 64, 100_000)


class TestSeededRandomStreams:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("chunk", CHUNKS)
    def test_uniform_random(self, seed, chunk):
        rng = stream_rng("stackdist-prop", seed)
        stream = rng.integers(0, 200, size=1500, dtype=np.int64)
        assert_three_way_identical(stream, chunk)

    @pytest.mark.parametrize("seed", range(3))
    def test_zipf_skewed(self, seed):
        rng = stream_rng("stackdist-zipf", seed)
        stream = np.minimum(
            rng.zipf(1.3, size=1200).astype(np.int64), 10_000
        )
        assert_three_way_identical(stream, 97)

    @pytest.mark.parametrize("seed", range(3))
    def test_phased_working_sets(self, seed):
        """Phase changes (disjoint footprints back to back) stay exact."""
        rng = stream_rng("stackdist-phase", seed)
        phases = [
            rng.integers(base, base + 64, size=400, dtype=np.int64)
            for base in (0, 1_000, 0, 2_000)
        ]
        assert_three_way_identical(np.concatenate(phases), 256)


class TestAdversarialShapes:
    def test_empty_stream(self):
        assert_three_way_identical(np.empty(0, dtype=np.int64), 64)

    def test_single_access(self):
        assert_three_way_identical(np.array([7], dtype=np.int64), 64)

    def test_single_line_repeated(self):
        stream = np.zeros(500, dtype=np.int64)
        for chunk in CHUNKS:
            assert_three_way_identical(stream, chunk)

    def test_all_unique(self):
        stream = np.arange(800, dtype=np.int64)
        for chunk in CHUNKS:
            assert_three_way_identical(stream, chunk)

    def test_all_unique_descending(self):
        assert_three_way_identical(
            np.arange(800, dtype=np.int64)[::-1].copy(), 64
        )

    def test_sawtooth_reuse(self):
        """Repeated full sweeps: every reuse at the footprint distance."""
        stream = np.tile(np.arange(100, dtype=np.int64), 6)
        assert_three_way_identical(stream, 64)

    def test_reverse_reuse(self):
        """Sweep then reverse sweep: distances span the whole range."""
        fwd = np.arange(200, dtype=np.int64)
        assert_three_way_identical(np.concatenate([fwd, fwd[::-1]]), 150)

    def test_alternating_pair(self):
        stream = np.tile(np.array([3, 9], dtype=np.int64), 300)
        assert_three_way_identical(stream, 7)

    def test_negative_and_huge_addresses(self):
        """Line ids are arbitrary int64s (code segment lives at 2^40)."""
        rng = stream_rng("stackdist-huge", 0)
        base = np.array([-5, 1 << 40, 0, (1 << 40) + 1, -5], dtype=np.int64)
        stream = base[rng.integers(0, base.size, size=600)]
        assert_three_way_identical(stream, 64)

    def test_engine_reset_forgets_history(self):
        engine = StackDistanceEngine()
        stream = np.arange(50, dtype=np.int64)
        engine.observe(stream)
        engine.reset()
        assert engine.unique_lines == 0
        # After reset, every line is cold again.
        assert engine.observe(stream).distances.tolist() == [-1] * 50
