"""Unit tests for the ``.rpt`` binary trace format and its store plumbing.

Covers the header/chunk/footer layout, every corruption mode (all must
raise a loud :class:`~repro.errors.TraceFormatError`, never return
garbage), the version policy, the scenario fuzzer's determinism, and the
artifact store's corrupt-trace-is-a-miss behaviour.
"""

from __future__ import annotations

import struct

import numpy as np
import pytest

from repro.errors import TraceFormatError, WorkloadError
from repro.store import ArtifactStore
from repro.trace.capture import (
    FORMAT_VERSION,
    MAGIC,
    TraceReader,
    inspect_trace,
    record_trace,
    store_trace,
    stored_trace,
    trace_fingerprint,
    validate_trace,
)
from repro.trace.generators import ScenarioFuzzer
from repro.workloads import get_workload
from repro.workloads.replay import ReplayWorkload
from tests.conftest import assert_bit_identical


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    """A small recorded npb-is trace plus its source workload."""
    workload = get_workload("npb-is", 2, scale=0.1)
    path = tmp_path_factory.mktemp("rpt") / "is.rpt"
    record_trace(workload, path)
    return workload, path


class TestFormatRoundTrip:
    def test_header_metadata(self, recorded):
        workload, path = recorded
        with TraceReader(path) as reader:
            meta = reader.meta
            assert meta["workload"] == workload.name
            assert meta["num_threads"] == workload.num_threads
            assert meta["num_regions"] == workload.num_regions
            assert meta["scale"] == workload.scale
            assert len(meta["schedule"]) == workload.num_regions
            assert len(reader.blocks) == workload.num_static_blocks
            for block in reader.blocks:
                original = workload.block(block.name)
                assert block == original

    def test_schedule_round_trips(self, recorded):
        workload, path = recorded
        replay = ReplayWorkload(path)
        for idx in range(workload.num_regions):
            assert replay.phase_of(idx) == workload.phase_of(idx)
        replay.close()

    def test_region_streams_bit_identical(self, recorded):
        workload, path = recorded
        replay = ReplayWorkload(path)
        for idx in range(workload.num_regions):
            fresh = workload.region_trace(idx)
            replayed = replay.region_trace(idx)
            assert replayed.phase == fresh.phase
            for ta, tb in zip(fresh.threads, replayed.threads):
                assert len(ta.blocks) == len(tb.blocks)
                for ea, eb in zip(ta.blocks, tb.blocks):
                    assert ea.block == eb.block
                    assert ea.count == eb.count
                    assert_bit_identical(
                        np.ascontiguousarray(ea.lines),
                        np.ascontiguousarray(eb.lines),
                    )
                    assert np.array_equal(ea.writes, eb.writes)
        replay.close()

    def test_validate_and_inspect(self, recorded):
        workload, path = recorded
        validate_trace(path).close()
        info = inspect_trace(path)
        assert info["num_regions"] == workload.num_regions
        assert info["version"] == FORMAT_VERSION
        assert info["file_bytes"] == path.stat().st_size
        assert info["fingerprint"] == trace_fingerprint(path)

    def test_replay_never_materializes_full_trace(self, recorded):
        _, path = recorded
        replay = ReplayWorkload(path)
        for _ in replay.iter_regions():
            pass
        # The base-class memo stays empty; only the reader's LRU window
        # (a handful of regions) is resident.
        assert replay._trace_cache == {}
        assert len(replay._reader._window) <= 4
        replay.close()

    def test_fingerprint_tracks_content(self, recorded, tmp_path):
        workload, path = recorded
        other = get_workload("npb-is", 2, scale=0.2)
        other_path = tmp_path / "other.rpt"
        record_trace(other, other_path)
        assert trace_fingerprint(path) != trace_fingerprint(other_path)


def _flip_byte(path, offset, out):
    """Copy ``path`` to ``out`` with one byte inverted."""
    data = bytearray(path.read_bytes())
    data[offset] ^= 0xFF
    out.write_bytes(bytes(data))
    return out


class TestCorruptionIsLoud:
    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceFormatError, match="cannot open"):
            TraceReader(tmp_path / "missing.rpt")

    def test_bad_magic(self, recorded, tmp_path):
        _, path = recorded
        bad = _flip_byte(path, 0, tmp_path / "magic.rpt")
        with pytest.raises(TraceFormatError, match="bad magic"):
            TraceReader(bad)

    def test_version_mismatch(self, recorded, tmp_path):
        _, path = recorded
        data = bytearray(path.read_bytes())
        struct.pack_into("<H", data, len(MAGIC), FORMAT_VERSION + 41)
        bad = tmp_path / "future.rpt"
        bad.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError, match="version 42 is not"):
            TraceReader(bad)

    def test_metadata_corruption(self, recorded, tmp_path):
        _, path = recorded
        bad = _flip_byte(path, len(MAGIC) + 2 + 4 + 5, tmp_path / "meta.rpt")
        with pytest.raises(TraceFormatError, match="metadata"):
            TraceReader(bad)

    def test_truncation(self, recorded, tmp_path):
        _, path = recorded
        data = path.read_bytes()
        for cut in (4, len(data) // 2, len(data) - 3):
            bad = tmp_path / f"cut{cut}.rpt"
            bad.write_bytes(data[:cut])
            with pytest.raises(TraceFormatError):
                validate_trace(bad)

    def test_chunk_bit_flip(self, recorded, tmp_path):
        workload, path = recorded
        # Flip a byte well inside the first chunk payload.
        info = inspect_trace(path)
        header_end = info["file_bytes"] - info["chunk_payload_bytes"] - 200
        bad = _flip_byte(path, header_end + 150, tmp_path / "flip.rpt")
        with pytest.raises(TraceFormatError, match="checksum mismatch"):
            validate_trace(bad)

    def test_trailing_garbage(self, recorded, tmp_path):
        _, path = recorded
        bad = tmp_path / "trailing.rpt"
        bad.write_bytes(path.read_bytes() + b"extra")
        with pytest.raises(TraceFormatError, match="trailing bytes"):
            TraceReader(bad)


class TestReplayParameterValidation:
    def test_thread_mismatch_is_actionable(self, recorded):
        _, path = recorded
        with pytest.raises(WorkloadError, match="recorded with 2 threads"):
            get_workload(f"trace:{path}", 8, 0.1)

    def test_explicit_scale_mismatch_is_actionable(self, recorded):
        _, path = recorded
        with pytest.raises(WorkloadError, match="recorded at scale"):
            ReplayWorkload(path, scale=0.5)

    def test_get_workload_inherits_recorded_scale(self, recorded):
        """Scale-carrying callers (the runner) replay a trace as recorded."""
        workload, path = recorded
        replay = get_workload(f"trace:{path}", 2, 1.0)
        assert replay.scale == workload.scale == 0.1
        replay.close()

    def test_matching_parameters_accepted(self, recorded):
        workload, path = recorded
        replay = get_workload(f"trace:{path}", 2, 0.1)
        assert replay.name == workload.name
        assert replay.num_regions == workload.num_regions
        replay.close()


class TestTraceStore:
    def test_store_round_trip(self, recorded, tmp_path):
        _, path = recorded
        store = ArtifactStore(root=tmp_path / "store")
        stored = store_trace(store, path)
        assert stored is not None
        assert stored.read_bytes() == path.read_bytes()
        hit = stored_trace(store, "npb-is", 2, 0.1)
        assert hit == stored
        assert store.hits == 1

    def test_corrupt_stored_trace_is_a_miss(self, recorded, tmp_path):
        _, path = recorded
        store = ArtifactStore(root=tmp_path / "store")
        stored = store_trace(store, path)
        data = bytearray(stored.read_bytes())
        data[len(data) // 2] ^= 0xFF
        stored.write_bytes(bytes(data))
        assert stored_trace(store, "npb-is", 2, 0.1) is None
        assert store.misses == 1
        assert not stored.exists(), "corrupt trace must be unlinked"

    def test_wrong_coordinates_miss(self, recorded, tmp_path):
        _, path = recorded
        store = ArtifactStore(root=tmp_path / "store")
        store_trace(store, path)
        assert stored_trace(store, "npb-is", 4, 0.1) is None
        assert stored_trace(store, "npb-cg", 2, 0.1) is None

    def test_disabled_store_drops_files(self, recorded, tmp_path):
        _, path = recorded
        store = ArtifactStore(root=tmp_path / "store", enabled=False)
        assert store_trace(store, path) is None
        assert stored_trace(store, "npb-is", 2, 0.1) is None


class TestScenarioFuzzer:
    def test_same_seed_same_spec(self):
        assert ScenarioFuzzer(5).spec() == ScenarioFuzzer(5).spec()

    def test_different_seeds_differ(self):
        specs = {ScenarioFuzzer(seed).spec() for seed in range(8)}
        assert len(specs) == 8

    def test_workload_is_deterministic(self):
        a = ScenarioFuzzer(3).workload(2, scale=0.2)
        b = ScenarioFuzzer(3).workload(2, scale=0.2)
        assert a.num_regions == b.num_regions
        for idx in range(a.num_regions):
            ta, tb = a.region_trace(idx), b.region_trace(idx)
            for xa, xb in zip(ta.threads, tb.threads):
                for ea, eb in zip(xa.blocks, xb.blocks):
                    assert np.array_equal(ea.lines, eb.lines)
                    assert np.array_equal(ea.writes, eb.writes)

    def test_get_workload_resolves_fuzz_names(self):
        workload = get_workload("fuzz-9", 2, 0.2)
        assert workload.name == "fuzz-9"
        assert workload.num_regions >= 8

    def test_bad_seed_rejected(self):
        with pytest.raises(WorkloadError, match="seed"):
            ScenarioFuzzer(-1)

    @pytest.mark.parametrize("seed", [-1, -(2**70), 2**63, 2**100])
    def test_out_of_range_seeds_rejected_at_construction(self, seed):
        """Negative and overlarge seeds fail loudly up front, not deep
        inside RNG seeding."""
        from repro.trace.generators import MAX_SEED

        assert MAX_SEED == 2**63 - 1
        with pytest.raises(WorkloadError, match="seed"):
            ScenarioFuzzer(seed)

    def test_max_seed_is_accepted(self):
        from repro.trace.generators import MAX_SEED

        assert ScenarioFuzzer(MAX_SEED).spec() is not None

    @pytest.mark.parametrize("seed", [True, False, 1.5, "7", None])
    def test_non_int_seeds_rejected(self, seed):
        """bools and other non-ints are type errors, not silent casts."""
        with pytest.raises(WorkloadError, match="seed must be an int"):
            ScenarioFuzzer(seed)

    def test_imbalance_skews_threads(self):
        from repro.workloads.synthetic import (
            PhaseSpec, SyntheticSpec, SyntheticWorkload,
        )

        spec = SyntheticSpec(
            name="imb",
            phases=(PhaseSpec("p", "stream", 256, 500, imbalance=0.5),),
            schedule=(("p", 0),),
        )
        workload = SyntheticWorkload(spec, num_threads=4, scale=1.0)
        refs = [t.num_refs for t in workload.region_trace(0).threads]
        assert refs[0] < refs[-1], refs

    def test_imbalance_validation(self):
        from repro.workloads.synthetic import PhaseSpec

        with pytest.raises(WorkloadError, match="imbalance"):
            PhaseSpec("p", "stream", 256, 500, imbalance=1.5)

    def test_stream_is_seeded(self):
        fuzzer = ScenarioFuzzer(4)
        lines_a, writes_a = fuzzer.stream(2000)
        lines_b, writes_b = fuzzer.stream(2000)
        assert lines_a.size >= 2000
        assert np.array_equal(lines_a, lines_b)
        assert np.array_equal(writes_a, writes_b)
        lines_c, _ = ScenarioFuzzer(5).stream(2000)
        assert not np.array_equal(lines_a[: lines_c.size], lines_c)
