"""Fault-injection plan tests and the fault-matrix recovery battery.

The matrix crosses fault sites (``runner.task``, ``store.put``,
``store.get``, ``trace.read``) with the runner's recovery paths (retry
succeeds, retries exhausted, pool respawn after a worker crash, serial
fallback, checkpoint resume) and asserts the recovered results are
bit-identical to a fault-free serial baseline — the PR's acceptance
property.
"""

from __future__ import annotations

import os

import pytest

from repro.errors import (
    ConfigError,
    InjectedFaultError,
    RetryExhaustedError,
)
from repro.experiments.common import ExperimentRunner, RetryPolicy
from repro.faults import (
    ENV_SEED,
    ENV_SPEC,
    FaultPlan,
    FaultRule,
    active_plan,
    install_plan,
    maybe_corrupt,
    maybe_inject,
    uninstall_plan,
)
from repro.profiling.profiler import profiles_digest
from repro.store import ArtifactStore, collect_garbage

SCALE = 0.1
BENCH = "npb-is"

#: Fast retry policy for tests: near-zero backoff, small budgets.
FAST = dict(backoff_base=0.001, backoff_max=0.01)


@pytest.fixture(autouse=True)
def no_leaked_plan():
    """Every test starts and ends with fault injection disabled."""
    uninstall_plan()
    yield
    uninstall_plan()
    os.environ.pop(ENV_SPEC, None)
    os.environ.pop(ENV_SEED, None)


class TestFaultPlan:
    def test_parse_round_trip(self):
        """The compact spec syntax parses and re-renders losslessly."""
        spec = ("runner.task:exception:rate=0.25,max_attempts=3;"
                "store.put:io_error;"
                "store.get:latency:seconds=0.2;"
                "trace.read:partial_write:fraction=0.25,match=is")
        plan = FaultPlan.parse(spec, seed=42)
        assert len(plan.rules) == 4
        assert plan.rules[0] == FaultRule(
            "runner.task", "exception", rate=0.25, max_attempts=3
        )
        assert FaultPlan.parse(plan.to_spec(), seed=42) == plan

    @pytest.mark.parametrize("spec", [
        "bogus.site:exception",
        "runner.task:bogus_kind",
        "runner.task",
        "runner.task:exception:rate=2.0",
        "runner.task:exception:max_attempts=0",
        "runner.task:exception:bogus=1",
        "runner.task:exception:rate",
    ])
    def test_parse_rejects_bad_specs(self, spec):
        """Typos in sites, kinds, and options fail loudly."""
        with pytest.raises(ConfigError):
            FaultPlan.parse(spec)

    def test_selection_is_deterministic_and_rate_scaled(self):
        """The rate coin is a pure function of (seed, site, key, kind)."""
        plan = FaultPlan.parse("runner.task:exception:rate=0.5", seed=7)
        again = FaultPlan.parse("runner.task:exception:rate=0.5", seed=7)
        keys = [f"task-{i}" for i in range(400)]
        picked = [
            k for k in keys
            if plan.rule_for("runner.task", k, 0) is not None
        ]
        assert picked == [
            k for k in keys
            if again.rule_for("runner.task", k, 0) is not None
        ]
        assert 120 < len(picked) < 280  # ~rate * len(keys)
        other_seed = FaultPlan.parse("runner.task:exception:rate=0.5", seed=8)
        assert picked != [
            k for k in keys
            if other_seed.rule_for("runner.task", k, 0) is not None
        ]

    def test_attempt_gating_lets_retries_succeed(self):
        """Attempts at or past ``max_attempts`` no longer fault."""
        plan = FaultPlan.parse("runner.task:exception:max_attempts=2")
        assert plan.rule_for("runner.task", "k", 0) is not None
        assert plan.rule_for("runner.task", "k", 1) is not None
        assert plan.rule_for("runner.task", "k", 2) is None

    def test_match_filters_keys(self):
        """``match=`` substring-filters which keys a rule touches."""
        plan = FaultPlan.parse("runner.task:exception:match=32t")
        assert plan.rule_for("runner.task", "npb-is/32t", 0) is not None
        assert plan.rule_for("runner.task", "npb-is/8t", 0) is None
        assert plan.rule_for("store.put", "npb-is/32t", 0) is None

    def test_install_mirrors_into_environment(self):
        """Installed plans export to the env; workers re-parse them."""
        plan = FaultPlan.parse("store.put:io_error:rate=0.5", seed=9)
        install_plan(plan)
        assert os.environ[ENV_SPEC] == plan.to_spec()
        assert os.environ[ENV_SEED] == "9"
        assert FaultPlan.from_env() == plan
        uninstall_plan()
        assert ENV_SPEC not in os.environ and ENV_SEED not in os.environ
        assert active_plan() is None

    def test_from_env_unset_is_none(self):
        """No ``REPRO_FAULTS`` means no plan."""
        assert FaultPlan.from_env({}) is None
        assert FaultPlan.from_env({"REPRO_FAULTS": "  "}) is None


class TestHooks:
    def test_disabled_hooks_are_noops(self):
        """With no plan installed the hooks do nothing."""
        maybe_inject("runner.task", key="anything")
        assert maybe_corrupt("store.put", "k", b"data") == b"data"

    def test_exception_kind(self):
        """``exception`` raises InjectedFaultError naming site and key."""
        install_plan(FaultPlan.parse("runner.task:exception"))
        with pytest.raises(InjectedFaultError, match=r"runner\.task \(job\)"):
            maybe_inject("runner.task", key="job")
        maybe_inject("store.put", key="job")  # other sites unaffected

    def test_io_error_kind(self):
        """``io_error`` raises a retryable OSError (EIO)."""
        install_plan(FaultPlan.parse("store.get:io_error"))
        with pytest.raises(OSError) as excinfo:
            maybe_inject("store.get", key="k")
        assert excinfo.value.errno == 5

    def test_crash_degrades_outside_sacrificial_processes(self):
        """``crash`` only kills marked-expendable processes."""
        install_plan(FaultPlan.parse("runner.task:crash"))
        with pytest.raises(InjectedFaultError, match="crash"):
            maybe_inject("runner.task", key="k")  # still alive

    def test_partial_write_truncates(self):
        """``partial_write`` truncates via maybe_corrupt, not maybe_inject."""
        install_plan(FaultPlan.parse("store.put:partial_write:fraction=0.25"))
        maybe_inject("store.put", key="k")  # partial_write never raises
        assert maybe_corrupt("store.put", "k", b"x" * 100) == b"x" * 25
        assert maybe_corrupt("store.get", "k", b"x" * 100) == b"x" * 100


def make_runner(store_dir, workers=2, **kwargs):
    """A small two-worker runner over one benchmark for the matrix."""
    kwargs.setdefault("retry", RetryPolicy(max_retries=2, **FAST))
    return ExperimentRunner(
        scale=SCALE, benchmarks=(BENCH,), workers=workers,
        store=ArtifactStore(root=store_dir), **kwargs,
    )


def run_states(runner, num_threads=8):
    """The pass's observable results: profile digest + full-run state."""
    profiles = runner.profiles(BENCH, num_threads)
    full = runner.full(BENCH, num_threads)
    return profiles_digest(profiles), full.to_state()


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """Fault-free serial results for the matrix to compare against."""
    runner = ExperimentRunner(
        scale=SCALE, benchmarks=(BENCH,), workers=0,
        store=ArtifactStore(root=tmp_path_factory.mktemp("base") / "store"),
    )
    return run_states(runner)


class TestFaultMatrix:
    def test_retry_recovers_bit_identically(self, tmp_path, baseline):
        """An exception on attempt 0 is retried; results are identical."""
        install_plan(FaultPlan.parse(
            "runner.task:exception:max_attempts=1", seed=3
        ))
        runner = make_runner(tmp_path / "store")
        assert runner.prefetch([(BENCH, 8)]) == 2
        assert run_states(runner) == baseline
        (task,) = runner.report.tasks
        assert task.disposition == "completed" and task.attempts == 2
        assert "InjectedFaultError" in task.errors[0]
        assert runner.report.noteworthy()

    def test_timeout_fault_is_retried(self, tmp_path, baseline):
        """A latency fault trips the per-task SIGALRM budget; the retry
        (fault expired) completes with identical results."""
        install_plan(FaultPlan.parse(
            "runner.task:latency:seconds=5,max_attempts=1", seed=3
        ))
        runner = make_runner(
            tmp_path / "store",
            retry=RetryPolicy(max_retries=2, timeout=0.5, **FAST),
        )
        assert runner.prefetch([(BENCH, 8)]) == 2
        assert run_states(runner) == baseline
        (task,) = runner.report.tasks
        assert task.attempts == 2
        assert "TaskTimeoutError" in task.errors[0]

    def test_worker_crash_respawns_pool(self, tmp_path, baseline):
        """A crash fault really kills the worker; the pool is respawned
        and the retried pass is bit-identical."""
        install_plan(FaultPlan.parse(
            "runner.task:crash:max_attempts=1", seed=3
        ))
        runner = make_runner(tmp_path / "store")
        assert runner.prefetch([(BENCH, 8)]) == 2
        assert run_states(runner) == baseline
        assert runner.report.pool_failures >= 1
        assert not runner.report.serial_fallback

    def test_persistent_crashes_degrade_to_serial(self, tmp_path, baseline):
        """When the pool keeps dying, the runner finishes serially (where
        crash faults degrade to exceptions) — still bit-identical."""
        install_plan(FaultPlan.parse(
            "runner.task:crash:max_attempts=3", seed=3
        ))
        runner = make_runner(
            tmp_path / "store",
            retry=RetryPolicy(
                max_retries=4, max_pool_failures=0, **FAST
            ),
        )
        assert runner.prefetch([(BENCH, 8)]) == 2
        assert run_states(runner) == baseline
        assert runner.report.serial_fallback
        assert runner.report.pool_failures >= 1

    def test_retry_exhaustion_drains_other_tasks(self, tmp_path, baseline):
        """One hopeless task raises RetryExhaustedError only after every
        other task completed (and was journaled)."""
        install_plan(FaultPlan.parse(
            "runner.task:exception:max_attempts=99,match=32t", seed=3
        ))
        runner = make_runner(
            tmp_path / "store",
            retry=RetryPolicy(max_retries=1, **FAST),
        )
        with pytest.raises(RetryExhaustedError, match="npb-is/32t"):
            runner.prefetch([(BENCH, 8), (BENCH, 32)])
        by_label = {t.label: t for t in runner.report.tasks}
        assert by_label["npb-is/8t"].disposition == "completed"
        assert by_label["npb-is/32t"].disposition == "failed"
        assert by_label["npb-is/32t"].attempts == 2
        # The completed pass's artifacts and journal entry survive.
        assert run_states(runner) == baseline
        assert runner.journal().completed_passes()

    def test_resume_skips_checkpointed_passes(self, tmp_path, baseline):
        """``--resume`` after a failed run recomputes only the remainder."""
        install_plan(FaultPlan.parse(
            "runner.task:exception:max_attempts=99,match=32t", seed=3
        ))
        crashed = make_runner(
            tmp_path / "store", retry=RetryPolicy(max_retries=0, **FAST)
        )
        with pytest.raises(RetryExhaustedError):
            crashed.prefetch([(BENCH, 8), (BENCH, 32)])

        uninstall_plan()
        resumed = make_runner(tmp_path / "store", resume=True)
        # Only the 32t pass (2 kinds) is recomputed; 8t is checkpointed.
        assert resumed.prefetch([(BENCH, 8), (BENCH, 32)]) == 2
        assert resumed.report.resumed == 1
        assert run_states(resumed) == baseline
        labels = [t.label for t in resumed.report.tasks]
        assert labels == ["npb-is/32t"]

    def test_resume_distrusts_journal_without_artifacts(self, tmp_path):
        """A journaled pass whose artifacts vanished is recomputed."""
        import shutil

        runner = make_runner(tmp_path / "store")
        assert runner.prefetch([(BENCH, 8)]) == 2
        assert runner.journal().completed_passes()
        # Evict the artifacts but keep the journal (a GC sweep can do
        # exactly this): the checkpoint alone must not be trusted.
        shutil.rmtree(tmp_path / "store" / "profiles")
        shutil.rmtree(tmp_path / "store" / "full")

        rerun = make_runner(tmp_path / "store", resume=True)
        assert rerun.prefetch([(BENCH, 8)]) == 2  # recomputed, not resumed
        assert rerun.report.resumed == 0

    def test_store_put_crash_orphans_tmp_for_janitor(self, tmp_path):
        """A sacrificial process dying between temp-write and rename
        strands a .tmp orphan, which only the janitor removes."""
        import subprocess
        import sys
        import textwrap

        store_root = tmp_path / "store"
        script = textwrap.dedent(f"""
            import repro.faults as faults
            from repro.store import ArtifactStore

            faults.install_plan(faults.FaultPlan.parse("store.put:crash"))
            faults.mark_process_sacrificial()
            store = ArtifactStore(root={str(store_root)!r})
            store.put("demo", store.derive_key(x=1), b"payload")
        """)
        proc = subprocess.run(
            [sys.executable, "-c", script],
            env={**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)},
        )
        assert proc.returncode == 13  # really died at the fault point
        orphans = list(store_root.rglob("*.tmp"))
        assert len(orphans) == 1
        assert not ArtifactStore(root=store_root).has(
            "demo", ArtifactStore.derive_key(x=1)
        )
        stats = collect_garbage(
            ArtifactStore(root=store_root), tmp_grace_seconds=0.0
        )
        assert stats.reaped_tmp == 1
        assert not list(store_root.rglob("*.tmp"))

    def test_store_get_fault_degrades_to_recompute(self, tmp_path, baseline):
        """Persistent read errors turn store hits into recomputes — the
        results are still identical."""
        warm = make_runner(tmp_path / "store", workers=0)
        assert run_states(warm) == baseline

        install_plan(FaultPlan.parse(
            "store.get:io_error:max_attempts=99", seed=3
        ))
        cold = make_runner(tmp_path / "store", workers=0)
        assert run_states(cold) == baseline
        assert cold.store.misses >= 2


class TestStoreFaults:
    def test_transient_get_error_is_retried(self, tmp_path):
        """One injected EIO on read is absorbed by the I/O retries."""
        store = ArtifactStore(root=tmp_path / "store")
        key = store.derive_key(x=1)
        store.put("demo", key, {"v": 41})
        install_plan(FaultPlan.parse("store.get:io_error:max_attempts=1"))
        assert store.get("demo", key) == {"v": 41}
        assert store.hits == 1

    def test_persistent_get_error_is_miss(self, tmp_path):
        """EIO surviving every retry reads as a miss, never a crash."""
        store = ArtifactStore(root=tmp_path / "store")
        key = store.derive_key(x=1)
        store.put("demo", key, {"v": 41})
        install_plan(FaultPlan.parse("store.get:io_error:max_attempts=99"))
        assert store.get("demo", key) is None
        assert store.misses == 1

    def test_transient_put_error_is_retried(self, tmp_path):
        """One injected EIO on write is retried; no temp file leaks."""
        store = ArtifactStore(root=tmp_path / "store")
        key = store.derive_key(x=1)
        install_plan(FaultPlan.parse("store.put:io_error:max_attempts=1"))
        assert store.put("demo", key, {"v": 42}) is not None
        uninstall_plan()
        assert store.get("demo", key) == {"v": 42}
        assert not list((tmp_path / "store").rglob("*.tmp"))

    def test_put_error_surviving_retries_raises(self, tmp_path, monkeypatch):
        """Writes (unlike reads) surface persistent I/O errors."""
        monkeypatch.setenv("REPRO_STORE_IO_RETRIES", "0")
        store = ArtifactStore(root=tmp_path / "store")
        install_plan(FaultPlan.parse("store.put:io_error:max_attempts=99"))
        with pytest.raises(OSError):
            store.put("demo", store.derive_key(x=1), "payload")
        assert not list((tmp_path / "store").rglob("*.tmp"))

    def test_torn_write_is_detected_and_healed(self, tmp_path):
        """A partial_write-corrupted artifact reads as a miss and is
        unlinked, so the next put heals the store."""
        store = ArtifactStore(root=tmp_path / "store")
        key = store.derive_key(x=1)
        install_plan(FaultPlan.parse("store.put:partial_write:max_attempts=99"))
        path = store.put("demo", key, {"v": 43})
        assert path.is_file()
        uninstall_plan()
        assert store.get("demo", key) is None  # checksum catches the tear
        assert not path.is_file()  # corrupt file unlinked
        store.put("demo", key, {"v": 43})
        assert store.get("demo", key) == {"v": 43}

    def test_cold_misses_do_not_retry(self, tmp_path, monkeypatch):
        """FileNotFoundError is not transient: misses stay single-probe."""
        sleeps: list[float] = []
        monkeypatch.setattr(
            "repro.store.artifacts.time.sleep",
            lambda s: sleeps.append(s),
        )
        store = ArtifactStore(root=tmp_path / "store")
        assert store.get("demo", store.derive_key(x=1)) is None
        assert sleeps == []


class TestShardedReplayFaults:
    """Fault-matrix extension: faults during sharded corpus replay."""

    @pytest.fixture()
    def shards(self, tmp_path):
        """A recorded trace split into 3 shards, plus its serial,
        fault-free baseline results."""
        from repro.core.pipeline import BarrierPointPipeline
        from repro.trace.shard import split_trace
        from repro.workloads import get_workload
        from repro.workloads.replay import ReplayWorkload
        from tests.conftest import tiny_machine

        path = tmp_path / "parent.rpt"
        from repro.trace.capture import record_trace

        record_trace(get_workload(BENCH, 4, SCALE), path)
        paths = split_trace(path, tmp_path / "shards", num_shards=3)
        machine = tiny_machine()
        replay = ReplayWorkload(path)
        pipe = BarrierPointPipeline(machine)
        baseline = (
            profiles_digest(pipe.profile(replay)),
            pipe.full_run(replay).to_state(),
        )
        replay.close()
        return paths, machine, baseline

    @staticmethod
    def _run(paths, machine, workers=2, **retry_kwargs):
        from repro.trace.shard import ShardedReplay

        retry_kwargs.setdefault("max_retries", 2)
        replay = ShardedReplay(
            paths, machine, workers=workers,
            retry=RetryPolicy(**retry_kwargs, **FAST),
        )
        profiles, full = replay.run(want_profiles=True, want_full=True)
        return (profiles_digest(profiles), full.to_state()), replay.report

    def test_trace_read_fault_recovers_bit_identically(self, shards):
        """Every shard task hits a trace.read fault on attempt 0; the
        retried (attempt-gated) tasks merge bit-identically."""
        paths, machine, baseline = shards
        install_plan(FaultPlan.parse(
            "trace.read:exception:max_attempts=1", seed=3
        ))
        results, report = self._run(paths, machine)
        assert results == baseline
        assert len(report.tasks) == len(paths)
        for task in report.tasks:
            assert task.disposition == "completed"
            assert task.attempts == 2
            assert "InjectedFaultError" in task.errors[0]

    def test_runner_task_fault_recovers_bit_identically(self, shards):
        """The runner.task site covers shard tasks exactly like
        experiment passes."""
        paths, machine, baseline = shards
        install_plan(FaultPlan.parse(
            "runner.task:exception:max_attempts=1,match=shard", seed=3
        ))
        results, report = self._run(paths, machine)
        assert results == baseline
        assert all(t.attempts == 2 for t in report.tasks)

    def test_persistent_trace_read_fault_exhausts_loudly(self, shards):
        """A fault surviving every retry aborts the merge — partial or
        wrong results are not an outcome."""
        paths, machine, _ = shards
        install_plan(FaultPlan.parse(
            "trace.read:exception:max_attempts=99", seed=3
        ))
        with pytest.raises(RetryExhaustedError, match="shard"):
            self._run(paths, machine, max_retries=1)

    def test_transient_store_get_fault_on_manifest_is_absorbed(
        self, tmp_path
    ):
        """A transient manifest-read EIO is absorbed by the store's I/O
        retries; the conformance sweep is unaffected."""
        from repro.trace.corpus import TraceCorpus

        store = ArtifactStore(root=tmp_path / "store")
        corpus = TraceCorpus(store, name="faulty")
        corpus.record_fuzz_range([1], num_threads=2, scale=SCALE)
        clean = corpus.verify(workers=0)

        install_plan(FaultPlan.parse("store.get:io_error:max_attempts=1"))
        assert len(corpus.entries()) == 1
        assert corpus.verify(workers=0) == clean

    def test_persistent_store_get_fault_on_manifest_is_loud(self, tmp_path):
        """A manifest unreadable through every retry raises — it must
        never read as an empty corpus."""
        from repro.errors import TraceFormatError
        from repro.trace.corpus import TraceCorpus

        store = ArtifactStore(root=tmp_path / "store")
        corpus = TraceCorpus(store, name="faulty")
        corpus.record_fuzz_range([1], num_threads=2, scale=SCALE)

        install_plan(FaultPlan.parse("store.get:io_error:max_attempts=99"))
        with pytest.raises(TraceFormatError, match="corrupt"):
            corpus.entries()


@pytest.mark.skipif(
    not os.path.isdir("/proc/self/fd"), reason="needs /proc fd listing"
)
class TestTraceReadFaults:
    def _open_fds(self):
        """Count this process's open file descriptors."""
        return len(os.listdir("/proc/self/fd"))

    def test_trace_read_fault_does_not_leak_fds(self, tmp_path):
        """An injected trace.read fault mid-iteration leaks no fd."""
        from repro.trace.capture import TraceReader, record_trace
        from repro.workloads import get_workload

        path = tmp_path / "is.rpt"
        record_trace(get_workload(BENCH, 2, scale=SCALE), path)
        install_plan(FaultPlan.parse("trace.read:exception:match=#1"))
        with TraceReader(path) as reader:
            reader.region_execs(0)
            before = self._open_fds()
            with pytest.raises(InjectedFaultError):
                reader.region_execs(1)
            assert self._open_fds() == before
        assert self._open_fds() <= before

    def test_corrupt_chunk_mid_iteration_does_not_leak_fds(self, tmp_path):
        """A real corrupt chunk raises cleanly without leaking an fd."""
        from repro.errors import TraceFormatError
        from repro.trace.capture import TraceReader, record_trace
        from repro.workloads import get_workload

        path = tmp_path / "is.rpt"
        record_trace(get_workload(BENCH, 2, scale=SCALE), path)
        with TraceReader(path) as reader:
            offset, length, _ = reader._offsets[1]
        blob = bytearray(path.read_bytes())
        blob[offset + length // 2] ^= 0xFF
        path.write_bytes(bytes(blob))

        with TraceReader(path) as reader:
            reader.region_execs(0)
            before = self._open_fds()
            with pytest.raises(TraceFormatError, match="checksum"):
                reader.region_execs(1)
            assert self._open_fds() == before
