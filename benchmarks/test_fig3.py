"""Benchmark: regenerate Fig. 3 IPC trace reconstruction (paper: BarrierPoint, ISPASS 2014).

Prints the regenerated table and records it under benchmarks/results/.
Timing measures the experiment's analysis cost on top of the shared,
memoized profiling/simulation passes.
"""

from repro.experiments import fig3_ipc_trace as experiment


def test_fig3(benchmark, runner, record_table):
    output = benchmark.pedantic(
        lambda: experiment.run(runner), rounds=1, iterations=1
    )
    assert output.strip()
    record_table("fig3", output)
