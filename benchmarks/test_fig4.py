"""Benchmark: regenerate Fig. 4 perfect-warmup accuracy (paper: BarrierPoint, ISPASS 2014).

Prints the regenerated table and records it under benchmarks/results/.
Timing measures the experiment's analysis cost on top of the shared,
memoized profiling/simulation passes.
"""

from repro.experiments import fig4_perfect_warmup as experiment


def test_fig4(benchmark, runner, record_table):
    output = benchmark.pedantic(
        lambda: experiment.run(runner), rounds=1, iterations=1
    )
    assert output.strip()
    record_table("fig4", output)
