"""Shared session fixtures for the benchmark harness.

All figure/table benchmarks share one memoized :class:`ExperimentRunner`,
so the expensive profiling and full-simulation passes are paid once per
(benchmark, core count), exactly as in the paper's evaluation flow.  The
runner is store-backed: baseline profiles and full runs persist under the
artifact store (``.repro-store`` by default), so repeated benchmark
sessions — and the ``repro`` CLI — share them instead of recomputing.

Environment knobs:
    REPRO_BENCH_SCALE       workload scale (default 0.5; 1.0 = the numbers
                            recorded in EXPERIMENTS.md)
    REPRO_BENCH_WORKLOADS   comma-separated benchmark subset
    REPRO_WORKERS           process-parallel prefetch of the expensive
                            passes (default 0 = in-process)
    REPRO_STORE_DIR         artifact store root (default .repro-store)
    REPRO_STORE             set 0 to disable artifact reuse
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments.common import ExperimentRunner
from repro.workloads import WORKLOAD_NAMES

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))
    names = os.environ.get("REPRO_BENCH_WORKLOADS", "")
    benchmarks = (
        tuple(n.strip() for n in names.split(",") if n.strip())
        if names
        else WORKLOAD_NAMES
    )
    return ExperimentRunner(scale=scale, benchmarks=benchmarks)


@pytest.fixture(scope="session")
def record_table():
    """Persist each regenerated table under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _record
