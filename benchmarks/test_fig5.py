"""Benchmark: regenerate Fig. 5 maxK/method sweep (paper: BarrierPoint, ISPASS 2014).

Prints the regenerated table and records it under benchmarks/results/.
Timing measures the experiment's analysis cost on top of the shared,
memoized profiling/simulation passes.
"""

from repro.experiments import fig5_maxk_methods as experiment


def test_fig5(benchmark, runner, record_table):
    output = benchmark.pedantic(
        lambda: experiment.run(runner), rounds=1, iterations=1
    )
    assert output.strip()
    record_table("fig5", output)
