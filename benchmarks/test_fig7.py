"""Benchmark: regenerate Fig. 7 MRU warmup accuracy (paper: BarrierPoint, ISPASS 2014).

Prints the regenerated table and records it under benchmarks/results/.
Timing measures the experiment's analysis cost on top of the shared,
memoized profiling/simulation passes.
"""

from repro.experiments import fig7_warmup_error as experiment


def test_fig7(benchmark, runner, record_table):
    output = benchmark.pedantic(
        lambda: experiment.run(runner), rounds=1, iterations=1
    )
    assert output.strip()
    record_table("fig7", output)
