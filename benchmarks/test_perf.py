"""Perf benchmark: fast engines vs the seed reference implementations.

For every workload in the suite this times, on identical inputs,

* the functional profiling pass (chunked exact-LDV engine vs the seed
  bucketed-cascade stacks),
* the full detailed simulation (dict-LRU inlined hierarchy vs the seed
  list-scan hierarchy), and
* barrierpoint warmup + replay (batched MRU capture/replay vs the seed
  per-line path),

asserting along the way that both sides produce *identical* results —
histograms, cycles, counters — so the speedup is never bought with
accuracy.  The aggregate profile+full-run speedup must clear
``REPRO_BENCH_MIN_SPEEDUP`` (default 3x), and every run refreshes the
perf trajectory in ``benchmarks/results/BENCH_perf.json``.

When numba is installed the profile and full-run phases are measured a
second time with the JIT kernel tier engaged (``tier: "nb"`` records),
after an untimed compilation warmup; the pooled additional speedup over
the py tier must clear ``REPRO_BENCH_MIN_JIT_SPEEDUP`` (default 3x).

Scale/workload knobs are inherited from ``conftest.py``; see
``EXPERIMENTS.md`` for how to read the report.
"""

from __future__ import annotations

import os
import pathlib

import numpy as np
import pytest

from repro._reference import (
    ReferenceFunctionalProfiler,
    ReferenceMemoryHierarchy,
)
from repro.experiments.common import experiment_machine
from repro.profiling.profiler import FunctionalProfiler
from repro.sim.machine import Machine
from repro.sim.warmup import MRUWarmup
from repro.util import jit
from repro.util.timing import BenchmarkReport, time_call

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
NUM_THREADS = 8
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "3.0"))
#: Additional pooled speedup the nb tier must buy over the py tier.
MIN_JIT_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_JIT_SPEEDUP", "3.0"))
#: Best-of-N timing to damp scheduler/turbo noise.
REPEAT = int(os.environ.get("REPRO_BENCH_REPEAT", "2"))


def _assert_profiles_identical(fast, reference):
    assert len(fast) == len(reference)
    for a, b in zip(fast, reference):
        assert a.region_index == b.region_index
        assert np.array_equal(a.bbv, b.bbv)
        assert np.array_equal(a.ldv, b.ldv), (
            f"LDV mismatch in region {a.region_index}"
        )


def _assert_metrics_identical(fast, reference):
    assert fast.cycles == reference.cycles
    assert fast.per_thread_cycles == reference.per_thread_cycles
    fc, rc = fast.counters, reference.counters
    for attr in (
        "loads", "stores", "l1d_misses", "l2_misses", "l3_misses",
        "cache_to_cache", "writebacks", "l1i_misses",
        "dram_reads_per_socket", "dram_writebacks_per_socket",
    ):
        assert getattr(fc, attr) == getattr(rc, attr), attr


@pytest.fixture(scope="module")
def report(runner):
    rep = BenchmarkReport(scale=runner.scale)
    yield rep
    # Only the canonical scale-0.5 full-suite run refreshes the committed
    # trajectory file; smoke runs (CI at scale 0.1, workload subsets)
    # write a side file so they never clobber the baseline.
    from repro.workloads import WORKLOAD_NAMES

    canonical = runner.scale == 0.5 and tuple(runner.benchmarks) == WORKLOAD_NAMES
    name = (
        "BENCH_perf.json" if canonical
        else f"BENCH_perf_scale-{runner.scale:g}.json"
    )
    payload = rep.write(RESULTS_DIR / name)
    combined = payload["combined"]["py"]["profile+full_run"]
    status = jit.jit_status()
    print(f"\nactive JIT tier: {status['tier']} (mode {status['mode']})")
    print(f"combined profile+full_run speedup: {combined:.2f}x "
          f"(floor {MIN_SPEEDUP}x)")
    assert combined >= MIN_SPEEDUP, (
        f"hot-path engine regressed: combined profile+full-run speedup "
        f"{combined:.2f}x is below the {MIN_SPEEDUP}x floor"
    )
    if "nb" in payload["combined"]:
        extra = payload["combined"]["nb"]["vs_py"]
        print(f"nb tier additional speedup over py: {extra:.2f}x "
              f"(floor {MIN_JIT_SPEEDUP}x)")
        assert extra >= MIN_JIT_SPEEDUP, (
            f"JIT kernel tier buys only {extra:.2f}x over the py engines, "
            f"below the {MIN_JIT_SPEEDUP}x floor"
        )


def test_perf_all_workloads(runner, report):
    """Time and parity-check every phase on every suite workload.

    The fast side runs the system as shipped (memoized traces, steady
    state); the reference side runs the *seed* system faithfully, which
    regenerated every region trace on every pass.  Identical generator
    seeds guarantee both sides still see identical streams, which the
    parity assertions check result-by-result.  With numba installed,
    profile and full_run are measured again under the nb kernel tier
    (compilation warmed outside the timed region) and parity-checked
    against the same references.
    """
    config = experiment_machine(NUM_THREADS)
    from repro.workloads import get_workload

    nb_tiers: tuple[str, ...] = ()
    if jit.numba_available():
        jit.warm_kernels()  # compile outside every timed region
        nb_tiers = ("nb",)

    for name in runner.benchmarks:
        workload = runner.workload(name, NUM_THREADS)
        ref_workload = get_workload(name, NUM_THREADS, runner.scale)
        ref_workload.disable_trace_cache()
        # Warm the fast side's trace cache so its timings are steady-state.
        for _ in workload.iter_regions():
            pass

        # -- profiling pass ------------------------------------------------
        ref_prof = time_call(
            lambda: ReferenceFunctionalProfiler(ref_workload).profile(), REPEAT
        )
        with jit.forced_tier("py"):
            fast_prof = time_call(
                lambda: FunctionalProfiler(workload).profile(), REPEAT
            )
        _assert_profiles_identical(fast_prof.value, ref_prof.value)
        report.add(name, "profile", fast_prof.seconds, ref_prof.seconds)
        for tier in nb_tiers:
            with jit.forced_tier(tier):
                timed = time_call(
                    lambda: FunctionalProfiler(workload).profile(),
                    REPEAT, warmup=1,
                )
            _assert_profiles_identical(timed.value, ref_prof.value)
            report.add(name, "profile", timed.seconds, ref_prof.seconds,
                       tier=tier)

        # -- full detailed simulation -------------------------------------
        ref_full = time_call(
            lambda: Machine(
                config, hierarchy_factory=ReferenceMemoryHierarchy
            ).run_full(ref_workload),
            REPEAT,
        )
        with jit.forced_tier("py"):
            fast_full = time_call(
                lambda: Machine(config).run_full(workload), REPEAT
            )
        for fr, rr in zip(fast_full.value.regions, ref_full.value.regions):
            _assert_metrics_identical(fr, rr)
        report.add(name, "full_run", fast_full.seconds, ref_full.seconds)
        for tier in nb_tiers:
            with jit.forced_tier(tier):
                timed = time_call(
                    lambda: Machine(config).run_full(workload),
                    REPEAT, warmup=1,
                )
            for fr, rr in zip(timed.value.regions, ref_full.value.regions):
                _assert_metrics_identical(fr, rr)
            report.add(name, "full_run", timed.seconds, ref_full.seconds,
                       tier=tier)

        # -- barrierpoint warmup capture + replay -------------------------
        mid = workload.num_regions // 2
        capacity = config.l3.num_lines

        def _fast_replay():
            data = FunctionalProfiler(workload).capture_warmup(
                {mid}, capacity
            )[mid]
            machine = Machine(config)
            return machine.simulate_barrierpoint(
                workload, mid, MRUWarmup(data)
            )

        def _ref_replay():
            data = ReferenceFunctionalProfiler(ref_workload).capture_warmup(
                {mid}, capacity
            )[mid]
            machine = Machine(
                config, hierarchy_factory=ReferenceMemoryHierarchy
            )
            return machine.simulate_barrierpoint(
                ref_workload, mid, MRUWarmup(data)
            )

        ref_rep = time_call(_ref_replay, REPEAT)
        with jit.forced_tier("py"):
            fast_rep = time_call(_fast_replay, REPEAT)
        _assert_metrics_identical(fast_rep.value, ref_rep.value)
        report.add(name, "barrierpoint_replay",
                   fast_rep.seconds, ref_rep.seconds)
