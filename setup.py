"""Legacy setuptools shim.

The offline environment lacks the ``wheel`` package, so PEP 517 editable
installs fail; this shim lets ``pip install -e .`` use the legacy
``setup.py develop`` path. All metadata lives in ``pyproject.toml``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.23", "scipy>=1.9"],
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
