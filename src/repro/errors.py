"""Exception hierarchy for the ``repro`` package.

All library-raised errors derive from :class:`ReproError`, so callers can
catch one type at an API boundary while still being able to discriminate
between configuration problems, workload problems and simulation problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigError(ReproError):
    """A machine, SimPoint or pipeline configuration is inconsistent."""


class WorkloadError(ReproError):
    """A workload was mis-specified or asked for an out-of-range region."""


class SimulationError(ReproError):
    """The detailed simulator was driven into an invalid state."""


class TraceFormatError(ReproError):
    """A recorded trace file is malformed, corrupted, or unsupported.

    Raised loudly — a trace that fails its magic, version, or checksum
    validation must never be silently replayed as garbage.  The artifact
    store treats this error as a cache miss.
    """


class InjectedFaultError(ReproError):
    """A fault deliberately injected by an active :mod:`repro.faults` plan.

    Raised only when a seeded fault plan is installed; recovery layers
    (the runner's retry loop, the store's I/O retries) treat it exactly
    like the real failure it stands in for.
    """


class TaskTimeoutError(ReproError):
    """A runner task exceeded its per-task time budget."""


class RetryExhaustedError(ReproError):
    """A runner task kept failing after its whole retry budget."""


class ClusteringError(ReproError):
    """Clustering inputs are degenerate (empty, mismatched, non-finite)."""


class ReconstructionError(ReproError):
    """Whole-program reconstruction received inconsistent inputs."""
