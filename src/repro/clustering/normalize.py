"""Vector normalization for signature construction.

SimPoint normalizes each region's vector to unit L1 mass so clustering
sees *behaviour* rather than region length; lengths re-enter as k-means
weights (section III-B).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ClusteringError


def normalize_l1(vector: np.ndarray) -> np.ndarray:
    """Scale a non-negative vector to sum to 1; zero vectors stay zero."""
    vec = np.asarray(vector, dtype=np.float64)
    if vec.ndim != 1:
        raise ClusteringError(f"expected 1-D vector, got shape {vec.shape}")
    if np.any(vec < 0):
        raise ClusteringError("signature vectors must be non-negative")
    total = vec.sum()
    if total == 0.0:
        return vec.copy()
    return vec / total


def normalize_rows(matrix: np.ndarray) -> np.ndarray:
    """Row-wise L1 normalization; all-zero rows stay zero."""
    mat = np.asarray(matrix, dtype=np.float64)
    if mat.ndim != 2:
        raise ClusteringError(f"expected 2-D matrix, got shape {mat.shape}")
    if np.any(mat < 0):
        raise ClusteringError("signature vectors must be non-negative")
    totals = mat.sum(axis=1, keepdims=True)
    safe = np.where(totals == 0.0, 1.0, totals)
    return mat / safe
