"""Weighted Bayesian Information Criterion for k selection.

Follows the X-means / SimPoint formulation (spherical Gaussians, pooled
variance), extended to weighted points by treating a region of weight
``w`` as ``w`` replicated observations.  SimPoint then picks the smallest
``k`` whose BIC score reaches a threshold fraction (default 0.9) of the
best score across ``k = 1 .. maxK``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ClusteringError

_ABS_VARIANCE_FLOOR = 1e-18
#: Variance is floored at this fraction of the data's global variance so
#: that *perfect* clusterings (exact duplicate regions, common in highly
#: repetitive barrier workloads) yield a large-but-bounded likelihood.
#: Past the k where every cluster is pure, BIC then strictly decreases
#: with k through the parameter penalty, giving the selection rule a knee.
_REL_VARIANCE_FLOOR = 1e-4


def weighted_bic(
    points: np.ndarray,
    weights: np.ndarray,
    labels: np.ndarray,
    centers: np.ndarray,
) -> float:
    """BIC of a weighted clustering (higher is better)."""
    pts = np.asarray(points, dtype=np.float64)
    wts = np.asarray(weights, dtype=np.float64)
    n, d = pts.shape
    k = centers.shape[0]
    if labels.shape != (n,) or wts.shape != (n,):
        raise ClusteringError("labels/weights shape mismatch with points")
    total_weight = wts.sum()
    if total_weight <= 0:
        raise ClusteringError("total weight must be positive")

    global_mean = (pts * wts[:, None]).sum(axis=0) / total_weight
    global_resid = pts - global_mean
    global_var = float(
        (np.einsum("ij,ij->i", global_resid, global_resid) * wts).sum()
    ) / (total_weight * d)
    floor = max(global_var * _REL_VARIANCE_FLOOR, _ABS_VARIANCE_FLOOR)

    residual = pts - centers[labels]
    sq_err = np.einsum("ij,ij->i", residual, residual)
    pooled = float((sq_err * wts).sum())
    denominator = max(total_weight - k, 1.0)
    variance = max(pooled / (denominator * d), floor)

    log_likelihood = 0.0
    for j in range(k):
        members = labels == j
        r_j = float(wts[members].sum())
        if r_j <= 0:
            continue
        log_likelihood += (
            r_j * np.log(r_j / total_weight)
            - 0.5 * r_j * d * np.log(2.0 * np.pi * variance)
            - 0.5 * (r_j - 1.0) * d
        )
    num_params = (k - 1) + k * d + 1
    return float(log_likelihood - 0.5 * num_params * np.log(total_weight))
