"""Random linear projection (SimPoint's dimensionality reduction).

Projects the high-dimensional signature matrix onto ``dims`` (Table II: 15)
random directions.  By the Johnson–Lindenstrauss property, pairwise
distances — all k-means ever looks at — are approximately preserved.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ClusteringError


def random_projection(
    matrix: np.ndarray, dims: int, seed: int
) -> np.ndarray:
    """Project row vectors of ``matrix`` into ``dims`` dimensions.

    The projection matrix has i.i.d. Gaussian entries scaled by
    ``1/sqrt(dims)`` and is fully determined by ``seed``, so a given
    signature set always lands in the same projected space.
    """
    mat = np.asarray(matrix, dtype=np.float64)
    if mat.ndim != 2:
        raise ClusteringError(f"expected 2-D matrix, got shape {mat.shape}")
    if dims <= 0:
        raise ClusteringError(f"dims must be positive, got {dims}")
    if not np.all(np.isfinite(mat)):
        raise ClusteringError("signature matrix contains non-finite values")
    original_dims = mat.shape[1]
    if original_dims <= dims:
        # Already low-dimensional; projection would only add noise.
        return mat.copy()
    rng = np.random.Generator(np.random.PCG64(seed))
    proj = rng.standard_normal((original_dims, dims)) / np.sqrt(dims)
    return mat @ proj
