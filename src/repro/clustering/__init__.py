"""SimPoint-style clustering: normalization, projection, k-means, BIC.

Re-implements the pieces of SimPoint 3.2 that BarrierPoint uses
(section III-B and Table II): L1 normalization of signature vectors,
random linear projection to 15 dimensions, weighted k-means over region
signatures with the region's aggregate instruction count as its weight,
and BIC-based selection of the number of clusters up to ``maxK``.
"""

from repro.clustering.bic import weighted_bic
from repro.clustering.kmeans import KMeansResult, weighted_kmeans
from repro.clustering.normalize import normalize_l1, normalize_rows
from repro.clustering.projection import random_projection
from repro.clustering.simpoint import ClusteringResult, SimPointClusterer

__all__ = [
    "ClusteringResult",
    "KMeansResult",
    "SimPointClusterer",
    "normalize_l1",
    "normalize_rows",
    "random_projection",
    "weighted_bic",
    "weighted_kmeans",
]
