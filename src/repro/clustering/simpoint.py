"""The SimPoint-equivalent driver: project, sweep k, pick by BIC.

This is the piece the paper invokes as "SimPoint clustering software
version 3.2" with the Table II parameters; BarrierPoint feeds it one
signature vector per inter-barrier region plus instruction-count weights
and receives cluster labels and one representative region per cluster.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clustering.bic import weighted_bic
from repro.clustering.kmeans import weighted_kmeans
from repro.clustering.projection import random_projection
from repro.config import SimPointConfig
from repro.errors import ClusteringError


@dataclass(frozen=True)
class ClusteringResult:
    """Labels, representatives and model-selection diagnostics.

    ``chosen_k`` is the k the BIC sweep *selected* and is always a key of
    ``bic_by_k``; ``num_clusters`` is the number of clusters actually
    present after empty clusters (possible with duplicate-heavy data) are
    dropped and labels renumbered, so ``num_clusters <= chosen_k``.
    """

    labels: np.ndarray
    representatives: tuple[int, ...]
    chosen_k: int
    bic_by_k: dict[int, float]
    projected: np.ndarray
    weights: np.ndarray

    @property
    def num_clusters(self) -> int:
        """Number of (non-empty, compacted) clusters in ``labels``."""
        return len(self.representatives)

    def members_of(self, cluster: int) -> np.ndarray:
        """Region indices belonging to ``cluster``."""
        return np.flatnonzero(self.labels == cluster)


class SimPointClusterer:
    """Clusters region signatures per the Table II configuration."""

    def __init__(self, config: SimPointConfig) -> None:
        self.config = config

    def fit(self, signatures: np.ndarray, weights: np.ndarray) -> ClusteringResult:
        """Cluster one signature per region, weighted by instructions.

        Sweeps ``k = 1 .. min(maxK, n)``, scores each with weighted BIC and
        selects the smallest ``k`` whose normalized score reaches the
        configured threshold (SimPoint's rule).  The representative of each
        cluster is the member closest to the cluster centroid, ties broken
        toward the longer region.
        """
        sig = np.asarray(signatures, dtype=np.float64)
        wts = np.asarray(weights, dtype=np.float64)
        if sig.ndim != 2 or sig.shape[0] == 0:
            raise ClusteringError(f"bad signature matrix shape {sig.shape}")
        n = sig.shape[0]
        if wts.shape != (n,):
            raise ClusteringError(f"weights shape {wts.shape} != ({n},)")

        cfg = self.config
        projected = random_projection(sig, cfg.projected_dims, cfg.seed)

        max_k = min(cfg.max_k, n)
        fits = {}
        bic_by_k: dict[int, float] = {}
        for k in range(1, max_k + 1):
            fit = weighted_kmeans(
                projected, wts, k,
                seed=cfg.seed + k,
                max_iterations=cfg.kmeans_iterations,
                restarts=cfg.kmeans_restarts,
            )
            fits[k] = fit
            bic_by_k[k] = weighted_bic(projected, wts, fit.labels, fit.centers)

        chosen_k = self._select_k(bic_by_k)
        best = fits[chosen_k]
        labels, centers = self._compact(best.labels, best.centers)
        reps = self._representatives(projected, wts, labels, centers)
        # ``chosen_k`` stays the *selected* (pre-compaction) k so it keys
        # ``bic_by_k``; the compacted cluster count is ``num_clusters``.
        return ClusteringResult(
            labels=labels,
            representatives=reps,
            chosen_k=chosen_k,
            bic_by_k=bic_by_k,
            projected=projected,
            weights=wts,
        )

    @staticmethod
    def _compact(
        labels: np.ndarray, centers: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Drop empty clusters (possible with duplicate-heavy data) and
        renumber labels densely."""
        used = np.unique(labels)
        if used.size == centers.shape[0]:
            return labels, centers
        remap = {int(old): new for new, old in enumerate(used)}
        new_labels = np.array([remap[int(l)] for l in labels], dtype=np.int64)
        return new_labels, centers[used]

    def _select_k(self, bic_by_k: dict[int, float]) -> int:
        """Smallest k whose normalized BIC clears the threshold."""
        scores = np.array([bic_by_k[k] for k in sorted(bic_by_k)])
        ks = sorted(bic_by_k)
        lo, hi = scores.min(), scores.max()
        if hi == lo:
            return ks[0]
        normalized = (scores - lo) / (hi - lo)
        for k, score in zip(ks, normalized):
            if score >= self.config.bic_threshold:
                return k
        return ks[-1]  # pragma: no cover - max always reaches 1.0

    @staticmethod
    def _representatives(
        points: np.ndarray,
        weights: np.ndarray,
        labels: np.ndarray,
        centers: np.ndarray,
    ) -> tuple[int, ...]:
        """Per-cluster representative: nearest to centroid, longest on ties."""
        reps = []
        for j in range(centers.shape[0]):
            members = np.flatnonzero(labels == j)
            if members.size == 0:
                raise ClusteringError(
                    f"cluster {j} is empty"
                )  # pragma: no cover - kmeans reseeds empties
            diffs = points[members] - centers[j]
            dists = np.einsum("ij,ij->i", diffs, diffs)
            best = dists.min()
            near = members[dists <= best * (1.0 + 1e-9) + 1e-30]
            if near.size > 1:
                near = near[np.argsort(-weights[near], kind="stable")]
            reps.append(int(near[0]))
        return tuple(reps)
