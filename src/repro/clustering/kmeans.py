"""Weighted k-means with k-means++ seeding.

Weights are the regions' aggregate instruction counts (section III-B):
they pull centroids toward long regions and, through the distortion
objective, bias cluster boundaries the same way SimPoint's variable-length
support does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ClusteringError


@dataclass(frozen=True)
class KMeansResult:
    """Outcome of one weighted k-means fit."""

    labels: np.ndarray
    centers: np.ndarray
    distortion: float
    iterations: int

    @property
    def k(self) -> int:
        """Number of clusters."""
        return self.centers.shape[0]


def _pairwise_sq_dists(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances, shape (n_points, n_centers)."""
    p_sq = np.einsum("ij,ij->i", points, points)[:, None]
    c_sq = np.einsum("ij,ij->i", centers, centers)[None, :]
    cross = points @ centers.T
    return np.maximum(p_sq + c_sq - 2.0 * cross, 0.0)


def _kmeans_pp_init(
    points: np.ndarray, weights: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """Weighted k-means++ seeding."""
    n = points.shape[0]
    centers = np.empty((k, points.shape[1]), dtype=np.float64)
    probs = weights / weights.sum()
    first = rng.choice(n, p=probs)
    centers[0] = points[first]
    closest = _pairwise_sq_dists(points, centers[:1]).ravel()
    for j in range(1, k):
        scores = closest * weights
        total = scores.sum()
        if total <= 0.0:
            # All points coincide with chosen centers; reuse random picks.
            idx = rng.choice(n, p=probs)
        else:
            idx = rng.choice(n, p=scores / total)
        centers[j] = points[idx]
        closest = np.minimum(
            closest, _pairwise_sq_dists(points, centers[j : j + 1]).ravel()
        )
    return centers


def weighted_kmeans(
    points: np.ndarray,
    weights: np.ndarray,
    k: int,
    seed: int,
    max_iterations: int = 100,
    restarts: int = 5,
) -> KMeansResult:
    """Fit ``k`` clusters minimizing weighted distortion; best of restarts.

    Distortion is ``sum_i w_i * ||x_i - c_{label(i)}||^2``.  Empty clusters
    are re-seeded with the point of largest weighted residual.
    """
    pts = np.asarray(points, dtype=np.float64)
    wts = np.asarray(weights, dtype=np.float64)
    if pts.ndim != 2:
        raise ClusteringError(f"points must be 2-D, got shape {pts.shape}")
    n = pts.shape[0]
    if wts.shape != (n,):
        raise ClusteringError(f"weights shape {wts.shape} != ({n},)")
    if np.any(wts <= 0):
        raise ClusteringError("weights must be strictly positive")
    if not 1 <= k <= n:
        raise ClusteringError(f"k must be in [1, {n}], got {k}")

    rng = np.random.Generator(np.random.PCG64(seed))
    best: KMeansResult | None = None
    for _ in range(max(1, restarts)):
        centers = _kmeans_pp_init(pts, wts, k, rng)
        labels = np.zeros(n, dtype=np.int64)
        iterations = 0
        for iterations in range(1, max_iterations + 1):
            dists = _pairwise_sq_dists(pts, centers)
            new_labels = dists.argmin(axis=1)
            # Re-seed any empty cluster with the worst-fit point.  Zero the
            # stolen point's residual so two empty clusters never take the
            # same point, and never steal a cluster's only member (that
            # would just move the hole).
            for j in range(k):
                if not np.any(new_labels == j):
                    residuals = dists[np.arange(n), new_labels] * wts
                    counts = np.bincount(new_labels, minlength=k)
                    stealable = counts[new_labels] > 1
                    if not np.any(stealable):
                        continue  # fewer distinct points than clusters
                    residuals[~stealable] = -1.0
                    worst = int(residuals.argmax())
                    new_labels[worst] = j
                    centers[j] = pts[worst]
                    dists[worst, :] = np.inf
                    dists[worst, j] = 0.0
            if np.array_equal(new_labels, labels) and iterations > 1:
                break
            labels = new_labels
            for j in range(k):
                members = labels == j
                if not np.any(members):
                    continue  # duplicate-heavy data: keep the old center
                w = wts[members]
                centers[j] = (pts[members] * w[:, None]).sum(axis=0) / w.sum()
        dists = _pairwise_sq_dists(pts, centers)
        distortion = float((dists[np.arange(n), labels] * wts).sum())
        candidate = KMeansResult(
            labels=labels, centers=centers.copy(),
            distortion=distortion, iterations=iterations,
        )
        if best is None or candidate.distortion < best.distortion:
            best = candidate
    assert best is not None
    return best
