"""Reference (seed) implementations of the hot-path engines.

These are the pre-optimization implementations, kept runnable for two
purposes only:

* **Parity**: randomized tests drive the fast engines and these references
  with identical inputs and assert bit-identical outputs (stats, stack
  distance histograms, MRU snapshots, simulated cycles and counters).
* **Perf baselines**: ``benchmarks/test_perf.py`` times each fast engine
  against its reference on the real workloads and records the speedups in
  ``benchmarks/results/BENCH_perf.json``.

Nothing in the library runtime imports this package.
"""

from repro._reference.cache import ReferenceSetAssocCache
from repro._reference.hierarchy import ReferenceMemoryHierarchy
from repro._reference.ldv import ReferenceLruStackProfiler
from repro._reference.mru import ReferenceMRUTracker
from repro._reference.profiler import ReferenceFunctionalProfiler

__all__ = [
    "ReferenceFunctionalProfiler",
    "ReferenceLruStackProfiler",
    "ReferenceMRUTracker",
    "ReferenceMemoryHierarchy",
    "ReferenceSetAssocCache",
]
