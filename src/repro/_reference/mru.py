"""Seed per-access MRU tracker, kept as a parity/benchmark reference."""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.sim.warmup import MRUWarmupData


class ReferenceMRUTracker:
    """Seed per-core MRU line tracking with bounded capacity."""

    def __init__(self, num_cores: int, capacity_lines: int) -> None:
        if num_cores <= 0:
            raise WorkloadError("num_cores must be positive")
        if capacity_lines <= 0:
            raise WorkloadError("capacity_lines must be positive")
        self.capacity_lines = capacity_lines
        # Insertion-ordered dicts: oldest entry first; value = was_write.
        self._per_core: list[dict[int, bool]] = [{} for _ in range(num_cores)]

    def observe(self, core: int, lines: np.ndarray, writes: np.ndarray) -> None:
        """Stream one block's references for ``core`` through the tracker."""
        table = self._per_core[core]
        cap = self.capacity_lines
        for line, w in zip(lines.tolist(), writes.tolist()):
            prev = table.pop(line, False)
            # Dirtiness is sticky while the line stays tracked: a line
            # written and later read is still dirty in the cache, and the
            # replay must restore Modified state or eviction writebacks
            # (DRAM bandwidth) would be lost.
            table[line] = w or prev
            if len(table) > cap:
                oldest = next(iter(table))
                del table[oldest]

    def snapshot(self, region_index: int) -> MRUWarmupData:
        """Freeze current state as warmup data for ``region_index``."""
        return MRUWarmupData(
            region_index=region_index,
            per_core=tuple(
                tuple(table.items()) for table in self._per_core
            ),
        )

    def occupancy(self, core: int) -> int:
        """Number of lines currently tracked for ``core``."""
        return len(self._per_core[core])
