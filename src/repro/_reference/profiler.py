"""Seed functional profiler, kept as a parity/benchmark reference.

Identical flow to :class:`~repro.profiling.profiler.FunctionalProfiler`
but driving the seed cascade stacks and per-access MRU tracker, one
``observe`` per block execution (the fast profiler concatenates each
thread's region stream into one chunk).
"""

from __future__ import annotations

import numpy as np

from repro._reference.ldv import ReferenceLruStackProfiler
from repro._reference.mru import ReferenceMRUTracker
from repro.errors import WorkloadError
from repro.profiling.bbv import collect_region_bbv
from repro.profiling.ldv import NUM_LDV_BUCKETS
from repro.profiling.profiler import RegionProfile
from repro.sim.warmup import MRUWarmupData
from repro.workloads.base import Workload


class ReferenceFunctionalProfiler:
    """Seed one-pass profiler over a whole workload."""

    def __init__(self, workload: Workload) -> None:
        self.workload = workload

    def profile(self) -> list[RegionProfile]:
        """One functional pass over every region, in program order."""
        workload = self.workload
        num_blocks = workload.num_static_blocks
        stacks = [
            ReferenceLruStackProfiler() for _ in range(workload.num_threads)
        ]
        profiles: list[RegionProfile] = []
        for trace in workload.iter_regions():
            bbv = collect_region_bbv(trace, num_blocks)
            ldv = np.zeros(
                (workload.num_threads, NUM_LDV_BUCKETS), dtype=np.float64
            )
            for thread in trace.threads:
                stack = stacks[thread.thread_id]
                for exec_ in thread.blocks:
                    if exec_.lines.size:
                        stack.observe(exec_.lines)
                ldv[thread.thread_id] = stack.take_histogram()
            profiles.append(
                RegionProfile(
                    region_index=trace.region_index,
                    phase=trace.phase,
                    instructions=trace.instructions,
                    per_thread_instructions=tuple(
                        t.instructions for t in trace.threads
                    ),
                    bbv=bbv,
                    ldv=ldv,
                )
            )
        return profiles

    def capture_warmup(
        self, barrierpoint_regions: set[int], llc_capacity_lines: int
    ) -> dict[int, MRUWarmupData]:
        """Second pass: snapshot MRU state at each selected barrierpoint."""
        workload = self.workload
        if not barrierpoint_regions:
            return {}
        bad = {
            r for r in barrierpoint_regions
            if not 0 <= r < workload.num_regions
        }
        if bad:
            raise WorkloadError(
                f"barrierpoint regions out of range: {sorted(bad)}"
            )
        tracker = ReferenceMRUTracker(
            workload.num_threads, llc_capacity_lines
        )
        snapshots: dict[int, MRUWarmupData] = {}
        last_needed = max(barrierpoint_regions)
        for trace in workload.iter_regions():
            idx = trace.region_index
            if idx in barrierpoint_regions:
                snapshots[idx] = tracker.snapshot(idx)
            if idx >= last_needed:
                break
            for thread in trace.threads:
                for exec_ in thread.blocks:
                    if exec_.lines.size:
                        tracker.observe(
                            thread.thread_id, exec_.lines, exec_.writes
                        )
        return snapshots
