"""Seed list-based LRU cache, kept as a parity/benchmark reference.

Each set is a Python list ordered least- to most-recently used, so
``in``/``remove`` are O(associativity) scans per access — the cost the
dict-based :class:`~repro.mem.cache.SetAssocCache` eliminated.  Behavior
(including every stats counter) is identical by construction and enforced
by the randomized parity tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import CacheConfig
from repro.mem.cache import CacheStats, _EvictedLine


@dataclass
class ReferenceSetAssocCache:
    """Seed LRU set-associative cache of line addresses."""

    config: CacheConfig
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self._num_sets = self.config.num_sets
        self._set_mask = self._num_sets - 1
        self._assoc = self.config.associativity
        self._sets: list[list[int]] = [[] for _ in range(self._num_sets)]
        self._dirty: set[int] = set()

    @property
    def latency(self) -> int:
        """Access latency in core cycles (from the config)."""
        return self.config.latency_cycles

    def lookup(self, line: int) -> bool:
        """Probe for ``line``; on hit, promote to MRU. Updates stats."""
        s = self._sets[line & self._set_mask]
        if line in s:
            s.remove(line)
            s.append(line)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def contains(self, line: int) -> bool:
        """Presence check without LRU update or stats."""
        return line in self._sets[line & self._set_mask]

    def fill(self, line: int, dirty: bool = False) -> _EvictedLine | None:
        """Insert ``line`` at MRU; return the victim if one was evicted."""
        s = self._sets[line & self._set_mask]
        if line in s:
            s.remove(line)
            s.append(line)
            if dirty:
                self._dirty.add(line)
            return None
        victim = None
        if len(s) >= self._assoc:
            old = s.pop(0)
            was_dirty = old in self._dirty
            if was_dirty:
                self._dirty.discard(old)
                self.stats.dirty_evictions += 1
            self.stats.evictions += 1
            victim = _EvictedLine(old, was_dirty)
        s.append(line)
        if dirty:
            self._dirty.add(line)
        return victim

    def mark_dirty(self, line: int) -> None:
        """Flag a resident line as modified (no-op if absent)."""
        if self.contains(line):
            self._dirty.add(line)

    def is_dirty(self, line: int) -> bool:
        """True if the line is resident and modified."""
        return line in self._dirty

    def remove(self, line: int) -> bool:
        """Invalidate ``line`` (coherence); returns True if it was present."""
        s = self._sets[line & self._set_mask]
        if line in s:
            s.remove(line)
            self._dirty.discard(line)
            self.stats.invalidations += 1
            return True
        return False

    def flush(self) -> None:
        """Drop all contents (counters preserved)."""
        for s in self._sets:
            s.clear()
        self._dirty.clear()

    def resident_lines(self) -> list[int]:
        """All resident lines, set by set, LRU to MRU within a set."""
        out: list[int] = []
        for s in self._sets:
            out.extend(s)
        return out

    @property
    def occupancy(self) -> int:
        """Number of resident lines."""
        return sum(len(s) for s in self._sets)
