"""Seed bucketed-cascade stack profiler, kept as a parity/benchmark reference.

A bucketed Mattson stack: bucket ``i`` holds the lines at stack positions
``[2^i - 1, 2^{i+1} - 1)`` as an insertion-ordered dict; an access removes
the line from its bucket (that bucket index *is* the power-of-two distance
bin), reinserts at bucket 0 and cascades overflow demotions.  Exact at
bucket granularity, but the cascade walks O(log n) dict levels per cold
access in a Python loop — the cost the chunked engine in
:mod:`repro.profiling.stackdist` eliminated.
"""

from __future__ import annotations

import numpy as np

from repro.profiling.ldv import COLD_BUCKET, NUM_LDV_BUCKETS


class ReferenceLruStackProfiler:
    """Seed streaming stack-distance histogrammer for one thread."""

    __slots__ = ("_buckets", "_pos", "_hist")

    def __init__(self) -> None:
        self._buckets: list[dict[int, None]] = [
            {} for _ in range(COLD_BUCKET)
        ]
        self._pos: dict[int, int] = {}
        self._hist = [0] * NUM_LDV_BUCKETS

    @property
    def unique_lines(self) -> int:
        """Number of distinct lines ever observed (stack depth)."""
        return len(self._pos)

    def observe(self, lines: np.ndarray) -> None:
        """Stream a batch of line accesses through the LRU stack."""
        buckets = self._buckets
        pos = self._pos
        hist = self._hist
        max_bucket = COLD_BUCKET - 1
        for line in lines.tolist():
            b = pos.get(line, -1)
            if b < 0:
                hist[COLD_BUCKET] += 1
            else:
                hist[b] += 1
                del buckets[b][line]
            bucket0 = buckets[0]
            bucket0[line] = None
            pos[line] = 0
            # Cascade overflow demotions; bucket i holds at most 2^i lines.
            i = 0
            cap = 1
            while len(buckets[i]) > cap and i < max_bucket:
                victim = next(iter(buckets[i]))
                del buckets[i][victim]
                nxt = i + 1
                buckets[nxt][victim] = None
                pos[victim] = nxt
                i = nxt
                cap <<= 1

    def take_histogram(self) -> np.ndarray:
        """Return the histogram accumulated since the last call, and reset."""
        out = np.asarray(self._hist, dtype=np.float64)
        self._hist = [0] * NUM_LDV_BUCKETS
        return out

    def reset(self) -> None:
        """Forget all stack state and the pending histogram."""
        for bucket in self._buckets:
            bucket.clear()
        self._pos.clear()
        self._hist = [0] * NUM_LDV_BUCKETS
