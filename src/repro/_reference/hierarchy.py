"""Seed memory hierarchy, kept as a parity/benchmark reference.

Subclasses the fast :class:`~repro.mem.hierarchy.MemoryHierarchy` but
builds list-based reference caches and overrides the hot paths with the
seed implementations: the per-access loop probes/promotes through list
scans, ``_l3_fill`` is an out-of-line call per L3 miss, and ``replay``
allocates two numpy arrays per replayed line.  Pass it as
``hierarchy_factory`` to :class:`~repro.sim.machine.Machine` to run whole
simulations on the seed engine.
"""

from __future__ import annotations

import numpy as np

from repro._reference.cache import ReferenceSetAssocCache
from repro.errors import SimulationError
from repro.mem.hierarchy import _STORE_STALL_FRACTION, MemoryHierarchy


class ReferenceMemoryHierarchy(MemoryHierarchy):
    """Caches + directory + DRAM, seed (pre-optimization) hot paths."""

    cache_cls = ReferenceSetAssocCache

    def _l3_fill(self, socket: int, line: int) -> None:
        """Fill ``line`` into a socket's L3, handling inclusive eviction."""
        victim = self.l3[socket].fill(line)
        if victim is None:
            return
        vline = victim.line
        dir_sharers = self.directory._sharers
        dir_owner = self.directory._owner
        owner = dir_owner.get(vline, -1)
        if owner >= 0 and self._socket_of[owner] == socket:
            self.dram.writeback(socket)
            self._writebacks += 1
            del dir_owner[vline]
        # Inclusion: purge the victim from this socket's private caches.
        mask = dir_sharers.get(vline, 0)
        if mask:
            local = mask & self._socket_mask[socket]
            core = 0
            while local:
                if local & 1:
                    self.l1d[core].remove(vline)
                    self.l2[core].remove(vline)
                local >>= 1
                core += 1
            rest = mask & ~self._socket_mask[socket]
            if rest:
                dir_sharers[vline] = rest
            else:
                del dir_sharers[vline]

    def _invalidate_remote(self, line: int, mask: int, my_socket: int) -> bool:
        """Remove ``line`` from all cores in ``mask``; True if any was remote."""
        remote = False
        core = 0
        while mask:
            if mask & 1:
                self.l1d[core].remove(line)
                self.l2[core].remove(line)
                if self._socket_of[core] != my_socket:
                    remote = True
            mask >>= 1
            core += 1
        return remote

    def access_block(self, core, lines, writes, mlp: float) -> float:
        """Seed per-access loop; see the fast implementation for semantics."""
        if mlp < 1.0:
            raise SimulationError(f"mlp must be >= 1, got {mlp}")
        socket = self._socket_of[core]
        l1 = self.l1d[core]
        l2 = self.l2[core]
        l3 = self.l3[socket]
        l1_sets = l1._sets
        l1_mask = l1._set_mask
        l1_assoc = l1._assoc
        l2_sets = l2._sets
        l2_mask = l2._set_mask
        l2_assoc = l2._assoc
        l2_lat = l2.config.latency_cycles
        l3_lat = l3.config.latency_cycles
        dram_lat = self.dram.latency_cycles
        remote_lat = l3_lat + self.machine.remote_socket_extra_cycles
        directory = self.directory
        dir_sharers = directory._sharers
        dir_owner = directory._owner
        dir_stats = directory.stats
        my_bit = 1 << core
        num_sockets = self.machine.num_sockets
        dram_reads = self.dram.stats.reads_per_socket

        loads = stores = l1d_misses = l2_misses = c2c = 0
        stall = 0.0

        if type(lines) is not list:
            lines = lines.tolist()
        if type(writes) is not list:
            writes = writes.tolist()
        for line, w in zip(lines, writes):
            extra = 0
            if w:
                stores += 1
                prev_owner = dir_owner.get(line, -1)
                if prev_owner != core:
                    mask = dir_sharers.get(line, 0) & ~my_bit
                    if mask or prev_owner >= 0:
                        if mask:
                            dir_stats.invalidations_sent += bin(mask).count("1")
                            remote = self._invalidate_remote(line, mask, socket)
                        else:
                            remote = False
                        if prev_owner >= 0:
                            # Remote M copy: transfer + writeback on downgrade.
                            self.dram.writeback(self._socket_of[prev_owner])
                            self._writebacks += 1
                            remote = remote or self._socket_of[prev_owner] != socket
                            c2c += 1
                        if num_sockets > 1:
                            l3s = self.l3
                            for s in range(num_sockets):
                                if s != socket:
                                    l3s[s].remove(line)
                        extra = remote_lat if remote else l3_lat
                    dir_sharers[line] = my_bit
                    dir_owner[line] = core
            else:
                loads += 1

            # L1D probe.
            s = l1_sets[line & l1_mask]
            if line in s:
                s.remove(line)
                s.append(line)
                l1.stats.hits += 1
                if w and extra:
                    stall += extra * _STORE_STALL_FRACTION
                continue
            l1.stats.misses += 1
            l1d_misses += 1

            # L2 probe.
            s2 = l2_sets[line & l2_mask]
            if line in s2:
                s2.remove(line)
                s2.append(line)
                l2.stats.hits += 1
                extra += l2_lat
            else:
                l2.stats.misses += 1
                l2_misses += 1
                # L3 probe.
                if l3.lookup(line):
                    extra += l3_lat
                else:
                    owner = dir_owner.get(line, -1)
                    if owner >= 0 and owner != core:
                        # Dirty in a remote private hierarchy: cache-to-cache
                        # transfer plus MSI downgrade writeback.
                        extra += (
                            remote_lat
                            if self._socket_of[owner] != socket
                            else l3_lat + l2_lat
                        )
                        if not w:
                            del dir_owner[line]
                            dir_stats.downgrades += 1
                            self.dram.writeback(self._socket_of[owner])
                            self._writebacks += 1
                        dir_stats.cache_to_cache += 1
                        c2c += 1
                    else:
                        extra += dram_lat
                        dram_reads[socket] += 1
                    self._l3_fill(socket, line)
                # Fill L2.
                if len(s2) >= l2_assoc:
                    s2.pop(0)
                    l2.stats.evictions += 1
                s2.append(line)

            # Fill L1.
            if len(s) >= l1_assoc:
                s.pop(0)
                l1.stats.evictions += 1
            s.append(line)

            if not w:
                dir_sharers[line] = dir_sharers.get(line, 0) | my_bit
                prev_owner = dir_owner.get(line, -1)
                if prev_owner >= 0 and prev_owner != core:
                    del dir_owner[line]
                    dir_stats.downgrades += 1
                stall += extra
            else:
                stall += extra * _STORE_STALL_FRACTION

        self._loads += loads
        self._stores += stores
        self._l1d_misses += l1d_misses
        self._l2_misses += l2_misses
        self._c2c += c2c
        return stall / mlp

    def access_code(self, core: int, code_lines: tuple[int, ...]) -> int:
        """Instruction-fetch touch of a block's code lines; returns stalls."""
        l1i = self.l1i[core]
        extra = 0
        for line in code_lines:
            if not l1i.lookup(line):
                self._l1i_misses += 1
                l1i.fill(line)
                extra += self.l2[core].config.latency_cycles
        return extra

    def replay(self, core: int, line: int, was_write: bool) -> None:
        """Seed warmup replay: two fresh numpy arrays per replayed line."""
        self.access_block(
            core,
            np.array([line], dtype=np.int64),
            np.array([was_write], dtype=bool),
            mlp=1.0,
        )

    def replay_block(self, core: int, lines, writes) -> None:
        """Per-line seed replay (the batched path under measurement)."""
        for line, was_write in zip(lines, writes):
            self.replay(core, line, was_write)
