"""Deterministic fault injection for the execution and storage layers.

The fault layer is both a test harness and a chaos knob: a seedable
:class:`~repro.faults.plan.FaultPlan` injects worker crashes, raised
exceptions, artificial latency, and I/O errors / partial writes at named
sites in the runner and store —

* ``runner.task`` — a profile/full-run pass in a pool worker,
* ``store.put`` — an artifact write (between temp file and rename),
* ``store.get`` — an artifact read,
* ``trace.read`` — a ``.rpt`` chunk read,
* ``serve.request`` — an HTTP request entering the ``repro serve``
  dispatcher (surfaces as a structured 5xx response, never a hang) —

deterministically: whether a given (site, key, attempt) faults is a pure
function of the plan's seed, so a faulted run is exactly reproducible.
When no plan is installed every hook is a single ``None`` check — zero
overhead on the hot paths.

Activate a plan programmatically (:func:`install_plan`) or from the
environment (``REPRO_FAULTS`` spec + ``REPRO_FAULT_SEED``), which
worker processes inherit.  See ``docs/robustness.md``.
"""

from repro.faults.plan import (
    ENV_SEED,
    ENV_SPEC,
    FAULT_KINDS,
    FAULT_SITES,
    FaultPlan,
    FaultRule,
    active_plan,
    install_plan,
    mark_process_sacrificial,
    maybe_corrupt,
    maybe_inject,
    uninstall_plan,
)

__all__ = [
    "ENV_SEED",
    "ENV_SPEC",
    "FAULT_KINDS",
    "FAULT_SITES",
    "FaultPlan",
    "FaultRule",
    "active_plan",
    "install_plan",
    "mark_process_sacrificial",
    "maybe_corrupt",
    "maybe_inject",
    "uninstall_plan",
]
