"""Seedable, deterministic fault plans and their injection hooks.

A :class:`FaultPlan` is a list of :class:`FaultRule`\\ s plus a seed.
Every injection decision is a pure function of ``(seed, site, key,
kind)`` — no global counters, no wall clock — so the same plan over the
same work produces the same faults in any process, in any order, with
any worker count.  That is what lets the fault-matrix tests assert
byte-identical recovery and what makes a chaos run reproducible from its
seed.

The hooks are free when no plan is installed: :func:`maybe_inject` and
:func:`maybe_corrupt` return after one module-global ``None`` check.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field

from repro.errors import ConfigError, InjectedFaultError

#: The named injection sites wired into the runner, store, trace reader,
#: and the serve layer's request handler.  Plans may only target these
#: (typos fail loudly).
FAULT_SITES = (
    "runner.task", "store.put", "store.get", "trace.read", "serve.request",
)

#: Supported fault kinds:
#:
#: * ``crash`` — ``os._exit`` the process (pool worker death; downgraded
#:   to ``exception`` when the caller cannot tolerate process death);
#: * ``exception`` — raise :class:`~repro.errors.InjectedFaultError`;
#: * ``io_error`` — raise ``OSError(EIO)`` (exercises I/O retries);
#: * ``latency`` — sleep ``seconds`` then continue (with a per-task
#:   timeout configured, this is the timeout fault);
#: * ``partial_write`` — truncate the bytes being written (a torn write:
#:   detected later by the store's checksums, healed by recompute).
FAULT_KINDS = ("crash", "exception", "io_error", "latency", "partial_write")

#: Environment variables carrying the active plan into worker processes.
ENV_SPEC = "REPRO_FAULTS"
ENV_SEED = "REPRO_FAULT_SEED"

_EIO = 5


@dataclass(frozen=True)
class FaultRule:
    """One injection rule of a :class:`FaultPlan`.

    Attributes:
        site: Injection site, one of :data:`FAULT_SITES`.
        kind: Fault kind, one of :data:`FAULT_KINDS`.
        rate: Probability in [0, 1] that a given ``(site, key)`` pair is
            faulted at all (decided deterministically from the seed).
        max_attempts: Attempts (0-based) on which a selected pair still
            faults; attempt >= ``max_attempts`` succeeds.  1 (default)
            means "fault once, first retry succeeds"; a large value
            means the fault is persistent (retries exhaust).
        match: Substring filter on the key; empty matches every key.
        seconds: Sleep duration for ``latency`` faults.
        fraction: Surviving prefix fraction for ``partial_write`` faults.
    """

    site: str
    kind: str
    rate: float = 1.0
    max_attempts: int = 1
    match: str = ""
    seconds: float = 0.05
    fraction: float = 0.5

    def __post_init__(self) -> None:
        """Validate rule fields loudly at construction time."""
        if self.site not in FAULT_SITES:
            raise ConfigError(
                f"unknown fault site {self.site!r}; known: {FAULT_SITES}"
            )
        if self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigError(f"fault rate {self.rate} outside [0, 1]")
        if self.max_attempts < 1:
            raise ConfigError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )

    def to_spec(self) -> str:
        """Render the rule in the compact ``REPRO_FAULTS`` syntax."""
        parts = [self.site, self.kind]
        options = []
        if self.rate != 1.0:
            options.append(f"rate={self.rate:g}")
        if self.max_attempts != 1:
            options.append(f"max_attempts={self.max_attempts}")
        if self.match:
            options.append(f"match={self.match}")
        if self.kind == "latency" and self.seconds != 0.05:
            options.append(f"seconds={self.seconds:g}")
        if self.kind == "partial_write" and self.fraction != 0.5:
            options.append(f"fraction={self.fraction:g}")
        if options:
            parts.append(",".join(options))
        return ":".join(parts)


def _parse_rule(spec: str) -> FaultRule:
    """Parse one ``site:kind[:opt=val,...]`` rule spec."""
    pieces = spec.split(":", 2)
    if len(pieces) < 2:
        raise ConfigError(
            f"bad fault rule {spec!r}: expected site:kind[:opt=val,...]"
        )
    site, kind = pieces[0].strip(), pieces[1].strip()
    kwargs: dict = {}
    if len(pieces) == 3 and pieces[2].strip():
        for option in pieces[2].split(","):
            if "=" not in option:
                raise ConfigError(
                    f"bad fault option {option!r} in rule {spec!r}: "
                    f"expected name=value"
                )
            name, value = option.split("=", 1)
            name = name.strip()
            if name == "rate":
                kwargs["rate"] = float(value)
            elif name == "max_attempts":
                kwargs["max_attempts"] = int(value)
            elif name == "match":
                kwargs["match"] = value.strip()
            elif name == "seconds":
                kwargs["seconds"] = float(value)
            elif name == "fraction":
                kwargs["fraction"] = float(value)
            else:
                raise ConfigError(
                    f"unknown fault option {name!r} in rule {spec!r}; "
                    f"known: rate, max_attempts, match, seconds, fraction"
                )
    return FaultRule(site=site, kind=kind, **kwargs)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of fault rules.

    Attributes:
        rules: The injection rules, evaluated in order (first match that
            the seeded coin selects wins).
        seed: Seed for the deterministic per-(site, key) coin.
    """

    rules: tuple[FaultRule, ...] = ()
    seed: int = 0

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> FaultPlan:
        """Build a plan from the compact spec syntax.

        The spec is semicolon-separated rules, each
        ``site:kind[:opt=val,...]`` — e.g.::

            runner.task:exception;store.put:io_error:rate=0.3,max_attempts=2

        Args:
            spec: The rules string (empty means no rules).
            seed: Plan seed.

        Returns:
            The parsed plan.

        Raises:
            ConfigError: On unknown sites, kinds, or options.
        """
        rules = tuple(
            _parse_rule(part)
            for part in spec.split(";")
            if part.strip()
        )
        return cls(rules=rules, seed=seed)

    @classmethod
    def from_env(cls, environ=os.environ) -> FaultPlan | None:
        """The plan described by ``REPRO_FAULTS``/``REPRO_FAULT_SEED``.

        Args:
            environ: Environment mapping (injectable for tests).

        Returns:
            The parsed plan, or ``None`` when ``REPRO_FAULTS`` is unset
            or empty.
        """
        spec = environ.get(ENV_SPEC, "")
        if not spec.strip():
            return None
        return cls.parse(spec, seed=int(environ.get(ENV_SEED, "0")))

    def to_spec(self) -> str:
        """Render the plan in the ``REPRO_FAULTS`` syntax (seed excluded)."""
        return ";".join(rule.to_spec() for rule in self.rules)

    def _selected(self, rule: FaultRule, site: str, key: str) -> bool:
        """Whether the seeded coin selects ``(site, key)`` for this rule."""
        if rule.site != site:
            return False
        if rule.match and rule.match not in key:
            return False
        if rule.rate >= 1.0:
            return True
        digest = hashlib.sha256(
            f"{self.seed}|{site}|{key}|{rule.kind}|{rule.match}".encode()
        ).digest()
        fraction = int.from_bytes(digest[:8], "little") / 2**64
        return fraction < rule.rate

    def rule_for(
        self, site: str, key: str, attempt: int
    ) -> FaultRule | None:
        """The first rule that faults this ``(site, key, attempt)``, if any.

        Args:
            site: One of :data:`FAULT_SITES`.
            key: Stable identity of the operation (task key, store key,
                trace path) — the unit the seeded coin is tossed per.
            attempt: 0-based attempt counter; attempts at or beyond a
                rule's ``max_attempts`` no longer fault (so retries can
                succeed deterministically).

        Returns:
            The matching rule, or ``None``.
        """
        for rule in self.rules:
            if attempt < rule.max_attempts and self._selected(rule, site, key):
                return rule
        return None


#: The installed plan (``None`` = fault injection fully disabled) and
#: whether the environment has been consulted yet.  Worker processes
#: start with ``_INITIALIZED = False`` and pick the plan up from the
#: inherited environment on their first hook call.
_PLAN: FaultPlan | None = None
_INITIALIZED = False

#: Whether this process may really die for a ``crash`` fault.  Set by
#: the runner's pool-worker initializer — a worker's death is a
#: recoverable event (``BrokenProcessPool``), the parent's is not.
_SACRIFICIAL = False


def mark_process_sacrificial(flag: bool = True) -> None:
    """Declare this process expendable for ``crash`` faults.

    Called from the process-pool worker initializer; everywhere else a
    ``crash`` fault degrades to an
    :class:`~repro.errors.InjectedFaultError`.

    Args:
        flag: The new sacrificial state.
    """
    global _SACRIFICIAL
    _SACRIFICIAL = flag


def install_plan(plan: FaultPlan | None, export: bool = True) -> None:
    """Install (or clear) the process-wide fault plan.

    Args:
        plan: The plan to activate, or ``None`` to disable injection.
        export: Also mirror the plan into ``REPRO_FAULTS`` /
            ``REPRO_FAULT_SEED`` so spawned worker processes inherit it.
    """
    global _PLAN, _INITIALIZED
    _PLAN = plan
    _INITIALIZED = True
    if not export:
        return
    if plan is None or not plan.rules:
        os.environ.pop(ENV_SPEC, None)
        os.environ.pop(ENV_SEED, None)
    else:
        os.environ[ENV_SPEC] = plan.to_spec()
        os.environ[ENV_SEED] = str(plan.seed)


def uninstall_plan() -> None:
    """Disable fault injection (and clear the environment mirror)."""
    install_plan(None)


def active_plan() -> FaultPlan | None:
    """The currently effective plan (lazily read from the environment)."""
    global _PLAN, _INITIALIZED
    if not _INITIALIZED:
        _PLAN = FaultPlan.from_env()
        _INITIALIZED = True
    return _PLAN


def _fire(rule: FaultRule, site: str, key: str, process_safe: bool) -> None:
    """Execute a matched rule's side effect."""
    if rule.kind == "latency":
        time.sleep(rule.seconds)
        return
    if rule.kind == "io_error":
        raise OSError(_EIO, f"injected I/O error at {site} ({key})")
    if rule.kind == "crash" and process_safe:
        os._exit(13)
    # ``crash`` outside a sacrificial process degrades to an exception:
    # killing the caller would take the whole run (or test suite) down.
    raise InjectedFaultError(
        f"injected {rule.kind} fault at {site} ({key})"
    )


def maybe_inject(
    site: str, key: str, attempt: int = 0, process_safe: bool = False
) -> None:
    """Fault-injection hook: fault iff the active plan says so.

    The disabled-path cost is one global load and ``None`` check.

    Args:
        site: One of :data:`FAULT_SITES`.
        key: Stable operation identity (see :meth:`FaultPlan.rule_for`).
        attempt: 0-based retry attempt of this operation.
        process_safe: Whether a ``crash`` fault may really ``os._exit``
            (true only inside sacrificial pool workers; elsewhere it
            degrades to an :class:`~repro.errors.InjectedFaultError`).

    Raises:
        InjectedFaultError: For ``exception`` (and non-process-safe
            ``crash``) faults.
        OSError: For ``io_error`` faults.
    """
    plan = _PLAN if _INITIALIZED else active_plan()
    if plan is None:
        return
    rule = plan.rule_for(site, key, attempt)
    if rule is not None and rule.kind != "partial_write":
        _fire(rule, site, key, process_safe or _SACRIFICIAL)


def maybe_corrupt(site: str, key: str, data: bytes, attempt: int = 0) -> bytes:
    """Torn-write hook: truncate ``data`` iff a ``partial_write`` rule fires.

    Args:
        site: One of :data:`FAULT_SITES` (``store.put`` in practice).
        key: Stable operation identity.
        data: The bytes about to be written.
        attempt: 0-based retry attempt of this operation.

    Returns:
        ``data``, or a truncated prefix simulating a torn write.
    """
    plan = _PLAN if _INITIALIZED else active_plan()
    if plan is None:
        return data
    rule = plan.rule_for(site, key, attempt)
    if rule is not None and rule.kind == "partial_write":
        return data[: max(1, int(len(data) * rule.fraction))]
    return data
