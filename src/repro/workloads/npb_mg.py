"""npb-mg — Multigrid V-cycle synthetic analogue.

Structure: five initialization regions, then 4 V-cycles of 60 regions each
(down path over 7 levels x {smooth, resid, restrict, comm}, 4 coarse-grid
solves, up path over 7 levels x {prolong, smooth, resid, comm}) — 245
dynamic barriers as in Fig. 1 / Table III.

The defining property: every level runs the *same* basic blocks over
footprints that halve per level.  Normalized BBVs are therefore identical
across levels while LDVs differ, so mg is the workload where combined
BBV+LDV signatures beat BBV-only clustering (Fig. 5) and where merged
clusters of different lengths make multiplier scaling essential (§VI-A).
"""

from __future__ import annotations

from repro.trace import generators as gen
from repro.trace.program import BlockExec
from repro.workloads.base import PhaseInstance, Workload

_V_CYCLES = 4
_NUM_LEVELS = 7  # level 1 (coarsest) .. 7 (finest)
_FINEST_GRID_LINES = 8192
#: Per-level shrink factor: real 3-D multigrid shrinks footprints 8x per
#: level, which makes levels below the finest two carry negligible weight —
#: clustering can merge them at almost no cost (they fall under the 0.1%
#: significance threshold, as in Table III's mg rows) while the fine levels
#: still present distinct LDV footprints.
_LEVEL_RATIO = 8


def _grid_lines(level: int) -> int:
    return max(4, _FINEST_GRID_LINES // _LEVEL_RATIO ** (_NUM_LEVELS - level))


class NpbMG(Workload):
    """Synthetic npb-mg (class A): 245 barriers, level-shared code."""

    name = "npb-mg"
    input_size = "A"

    def _build(self) -> None:
        for level in range(1, _NUM_LEVELS + 1):
            lines = self._scaled(_grid_lines(level))
            self._alloc(f"u{level}", lines)
            self._alloc(f"r{level}", lines)

        self._bb("mg_init_loop", instructions=45)
        self._bb("mg_init_fill", instructions=9, mlp=4.0)
        self._bb("mg_zran_loop", instructions=55)
        self._bb("mg_zran_scatter", instructions=24, mlp=1.5, mispredict_rate=0.03)
        self._bb("mg_norm_loop", instructions=40)
        self._bb("mg_norm_kernel", instructions=12, mlp=4.0)
        self._bb("mg_smooth_loop", instructions=50)
        self._bb("mg_smooth_kernel", instructions=30, mlp=3.0, mispredict_rate=0.006)
        self._bb("mg_resid_loop", instructions=45)
        self._bb("mg_resid_kernel", instructions=24, mlp=3.0, mispredict_rate=0.006)
        self._bb("mg_restrict_loop", instructions=40)
        self._bb("mg_restrict_kernel", instructions=15, mlp=4.0)
        self._bb("mg_prolong_loop", instructions=40)
        self._bb("mg_prolong_kernel", instructions=18, mlp=4.0)
        self._bb("mg_comm_loop", instructions=35)
        self._bb("mg_comm_exchange", instructions=12, mlp=1.5, mispredict_rate=0.02)
        self._bb("mg_coarse_loop", instructions=50)
        self._bb("mg_coarse_kernel", instructions=36, mlp=1.5, mispredict_rate=0.02)

        for phase in ("init", "zero", "zran", "norm", "touch"):
            self._schedule.append(PhaseInstance(phase, 0))
        for cycle in range(_V_CYCLES):
            for level in range(_NUM_LEVELS, 0, -1):  # down: fine -> coarse
                for phase in ("smooth", "resid", "restrict", "comm"):
                    self._schedule.append(PhaseInstance(phase, cycle, level))
            for k in range(4):  # coarse-grid solve
                self._schedule.append(PhaseInstance("coarse", cycle, k))
            for level in range(1, _NUM_LEVELS + 1):  # up: coarse -> fine
                for phase in ("prolong", "smooth", "resid", "comm"):
                    self._schedule.append(PhaseInstance(phase, cycle, level))

    def _grid_part(self, array: str, level: int, thread_id: int) -> tuple[int, int]:
        return self._partition(f"{array}{level}", thread_id)

    def _build_thread(
        self, inst: PhaseInstance, region_index: int, thread_id: int
    ) -> list[BlockExec]:
        finest = _NUM_LEVELS

        if inst.phase in ("init", "zero", "touch"):
            u_base, u_n = self._grid_part("u", finest, thread_id)
            r_base, r_n = self._grid_part("r", finest, thread_id)
            write = inst.phase != "touch"
            refs = gen.concat(
                gen.strided_sweep(u_base, u_n, write=write),
                gen.strided_sweep(r_base, r_n, write=write),
            )
            return [
                BlockExec(self.block("mg_init_loop"), count=1),
                BlockExec(self.block("mg_init_fill"), count=u_n + r_n,
                          lines=refs[0], writes=refs[1]),
            ]

        if inst.phase == "zran":
            rng = self._rng("zran", thread_id)
            u_base = self.array_base(f"u{finest}")
            u_total = self.array_lines(f"u{finest}")
            count = max(8, u_total // (2 * self.num_threads))
            refs = gen.random_gather(rng, u_base, u_total, count, write_fraction=0.5)
            return [
                BlockExec(self.block("mg_zran_loop"), count=1),
                BlockExec(self.block("mg_zran_scatter"), count=count,
                          lines=refs[0], writes=refs[1]),
            ]

        if inst.phase == "norm":
            r_base, r_n = self._grid_part("r", finest, thread_id)
            refs = gen.strided_sweep(r_base, r_n)
            return [
                BlockExec(self.block("mg_norm_loop"), count=1),
                BlockExec(self.block("mg_norm_kernel"), count=r_n,
                          lines=refs[0], writes=refs[1]),
            ]

        if inst.phase == "coarse":
            u_base, u_n = self._grid_part("u", 1, thread_id)
            refs = gen.strided_sweep(u_base, u_n, repeat=3)
            return [
                BlockExec(self.block("mg_coarse_loop"), count=1),
                BlockExec(self.block("mg_coarse_kernel"), count=3 * u_n,
                          lines=refs[0], writes=refs[1]),
            ]

        level = inst.param
        u_base, u_n = self._grid_part("u", level, thread_id)
        r_base, r_n = self._grid_part("r", level, thread_id)

        if inst.phase == "smooth":
            refs = gen.concat(
                gen.stencil_sweep(u_base, u_n, radius=1),
                gen.strided_sweep(r_base, r_n),
            )
            return [
                BlockExec(self.block("mg_smooth_loop"), count=1),
                BlockExec(self.block("mg_smooth_kernel"), count=u_n,
                          lines=refs[0], writes=refs[1]),
            ]

        if inst.phase == "resid":
            refs = gen.concat(
                gen.stencil_sweep(u_base, u_n, radius=1, write_center=False),
                gen.strided_sweep(r_base, r_n, write=True),
            )
            return [
                BlockExec(self.block("mg_resid_loop"), count=1),
                BlockExec(self.block("mg_resid_kernel"), count=u_n,
                          lines=refs[0], writes=refs[1]),
            ]

        if inst.phase == "restrict":
            coarse = max(1, level - 1)
            c_base, c_n = self._grid_part("r", coarse, thread_id)
            refs = gen.concat(
                gen.strided_sweep(r_base, r_n),
                gen.strided_sweep(c_base, c_n, write=True),
            )
            return [
                BlockExec(self.block("mg_restrict_loop"), count=1),
                BlockExec(self.block("mg_restrict_kernel"), count=r_n,
                          lines=refs[0], writes=refs[1]),
            ]

        if inst.phase == "prolong":
            coarse = max(1, level - 1)
            c_base, c_n = self._grid_part("u", coarse, thread_id)
            refs = gen.concat(
                gen.strided_sweep(c_base, c_n),
                gen.read_modify_write_sweep(u_base, u_n),
            )
            return [
                BlockExec(self.block("mg_prolong_loop"), count=1),
                BlockExec(self.block("mg_prolong_kernel"), count=u_n,
                          lines=refs[0], writes=refs[1]),
            ]

        if inst.phase == "comm":
            # Boundary exchange: read the neighbouring threads' edge lines,
            # refresh our own edges — small, sharing-heavy regions.
            left = (thread_id - 1) % self.num_threads
            right = (thread_id + 1) % self.num_threads
            l_base, l_n = self._grid_part("u", level, left)
            r2_base, r2_n = self._grid_part("u", level, right)
            edge = max(1, min(4, l_n))
            refs = gen.concat(
                gen.strided_sweep(l_base + max(0, l_n - edge), edge),
                gen.strided_sweep(r2_base, min(edge, r2_n)),
                gen.strided_sweep(u_base, min(edge, u_n), write=True),
                gen.strided_sweep(u_base + max(0, u_n - edge), edge, write=True),
            )
            return [
                BlockExec(self.block("mg_comm_loop"), count=1),
                BlockExec(self.block("mg_comm_exchange"), count=max(1, refs[0].size),
                          lines=refs[0], writes=refs[1]),
            ]

        raise AssertionError(f"unknown phase {inst.phase!r}")
