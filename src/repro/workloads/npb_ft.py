"""npb-ft — 3-D FFT synthetic analogue.

Structure: four distinct initialization regions, then 6 iterations of five
phases (evolve, fft-x, fft-y, transpose, checksum) — 34 dynamic barriers as
in Fig. 1 / Table III.  The transpose phase performs blocked all-to-all
reads across thread partitions, generating the cross-socket sharing traffic
that makes ft bandwidth-hungry; the four init regions are each unique,
mirroring Table III where ft's first four barrierpoints carry multiplier 1.
"""

from __future__ import annotations

from repro.trace import generators as gen
from repro.trace.program import BlockExec
from repro.workloads.base import PhaseInstance, Workload

_FT_ITERATIONS = 6
_GRID_LINES = 16384
_TWIDDLE_LINES = 2048
_DOT_LINES = 8


class NpbFT(Workload):
    """Synthetic npb-ft (class A): 34 barriers, all-to-all transposes."""

    name = "npb-ft"
    input_size = "A"

    def _build(self) -> None:
        self._alloc("u0", self._scaled(_GRID_LINES))
        self._alloc("u1", self._scaled(_GRID_LINES))
        self._alloc("twiddle", self._scaled(_TWIDDLE_LINES))
        self._alloc("sums", _DOT_LINES)

        self._bb("ft_setup_loop", instructions=60)
        self._bb("ft_setup_fill", instructions=9, mlp=4.0)
        self._bb("ft_twiddle_loop", instructions=50)
        self._bb("ft_twiddle_fill", instructions=21, mlp=4.0)
        self._bb("ft_init_fft_loop", instructions=70)
        self._bb("ft_init_fft", instructions=27, mlp=3.0)
        self._bb("ft_warm_loop", instructions=45)
        self._bb("ft_warm_touch", instructions=6, mlp=4.0)
        self._bb("ft_evolve_loop", instructions=40)
        self._bb("ft_evolve_kernel", instructions=24, mlp=4.0)
        self._bb("ft_fftx_loop", instructions=55)
        self._bb("ft_fftx_butterfly", instructions=36, mlp=4.0, mispredict_rate=0.004)
        self._bb("ft_ffty_loop", instructions=55)
        self._bb("ft_ffty_butterfly", instructions=36, mlp=3.0, mispredict_rate=0.004)
        self._bb("ft_transpose_loop", instructions=45)
        self._bb("ft_transpose_copy", instructions=12, mlp=4.0, mispredict_rate=0.002)
        self._bb("ft_checksum_loop", instructions=40)
        self._bb("ft_checksum_gather", instructions=18, mlp=1.5, mispredict_rate=0.02)

        for phase in ("setup", "twiddle_init", "fft_init", "warm"):
            self._schedule.append(PhaseInstance(phase, 0))
        for it in range(_FT_ITERATIONS):
            for phase in ("evolve", "fftx", "ffty", "transpose", "checksum"):
                self._schedule.append(PhaseInstance(phase, it))

    def _build_thread(
        self, inst: PhaseInstance, region_index: int, thread_id: int
    ) -> list[BlockExec]:
        u0_base, u0_n = self._partition("u0", thread_id)
        u1_base, u1_n = self._partition("u1", thread_id)
        tw_base, tw_n = self._partition("twiddle", thread_id)

        if inst.phase == "setup":
            refs = gen.strided_sweep(u0_base, u0_n, write=True)
            return [
                BlockExec(self.block("ft_setup_loop"), count=1),
                BlockExec(self.block("ft_setup_fill"), count=u0_n,
                          lines=refs[0], writes=refs[1]),
            ]

        if inst.phase == "twiddle_init":
            refs = gen.strided_sweep(tw_base, tw_n, write=True)
            return [
                BlockExec(self.block("ft_twiddle_loop"), count=1),
                BlockExec(self.block("ft_twiddle_fill"), count=tw_n,
                          lines=refs[0], writes=refs[1]),
            ]

        if inst.phase == "fft_init":
            refs = gen.concat(
                gen.strided_sweep(u0_base, u0_n),
                gen.strided_sweep(u1_base, u1_n, write=True),
            )
            return [
                BlockExec(self.block("ft_init_fft_loop"), count=1),
                BlockExec(self.block("ft_init_fft"), count=u0_n,
                          lines=refs[0], writes=refs[1]),
            ]

        if inst.phase == "warm":
            refs = gen.strided_sweep(u1_base, u1_n, repeat=2)
            return [
                BlockExec(self.block("ft_warm_loop"), count=1),
                BlockExec(self.block("ft_warm_touch"), count=2 * u1_n,
                          lines=refs[0], writes=refs[1]),
            ]

        if inst.phase == "evolve":
            refs = gen.concat(
                gen.read_modify_write_sweep(u0_base, u0_n),
                gen.strided_sweep(tw_base, tw_n),
            )
            return [
                BlockExec(self.block("ft_evolve_loop"), count=1),
                BlockExec(self.block("ft_evolve_kernel"), count=u0_n,
                          lines=refs[0], writes=refs[1]),
            ]

        if inst.phase == "fftx":
            refs = gen.concat(
                gen.strided_sweep(u0_base, u0_n),
                gen.strided_sweep(u1_base, u1_n, write=True),
            )
            return [
                BlockExec(self.block("ft_fftx_loop"), count=1),
                BlockExec(self.block("ft_fftx_butterfly"), count=u0_n,
                          lines=refs[0], writes=refs[1]),
            ]

        if inst.phase == "ffty":
            refs = gen.read_modify_write_sweep(u1_base, u1_n)
            return [
                BlockExec(self.block("ft_ffty_loop"), count=1),
                BlockExec(self.block("ft_ffty_butterfly"), count=u1_n,
                          lines=refs[0], writes=refs[1]),
            ]

        if inst.phase == "transpose":
            per_owner = self.array_lines("u1") // self.num_threads
            chunk = max(1, per_owner // self.num_threads)
            remote = gen.blocked_all_to_all(
                self.array_base("u1"), max(per_owner, 1), self.num_threads,
                reader=thread_id, chunk_lines=chunk,
            )
            refs = gen.concat(remote, gen.strided_sweep(u0_base, u0_n, write=True))
            return [
                BlockExec(self.block("ft_transpose_loop"), count=1),
                BlockExec(self.block("ft_transpose_copy"), count=max(1, refs[0].size),
                          lines=refs[0], writes=refs[1]),
            ]

        if inst.phase == "checksum":
            # The checksum samples a mostly-fixed set of grid points; a
            # minority varies per iteration (realistic run-to-run noise).
            fixed_rng = self._rng("checksum", thread_id)
            iter_rng = self._rng("checksum-iter", inst.iteration, thread_id)
            count = max(8, u0_n // 4)
            fixed_count = max(1, (3 * count) // 4)
            refs = gen.concat(
                gen.random_gather(fixed_rng, self.array_base("u0"),
                                  self.array_lines("u0"), fixed_count),
                gen.random_gather(iter_rng, self.array_base("u0"),
                                  self.array_lines("u0"),
                                  max(1, count - fixed_count)),
                gen.reduction_accumulate(self.array_base("sums"), _DOT_LINES, rounds=2),
            )
            return [
                BlockExec(self.block("ft_checksum_loop"), count=1),
                BlockExec(self.block("ft_checksum_gather"), count=count,
                          lines=refs[0], writes=refs[1]),
            ]

        raise AssertionError(f"unknown phase {inst.phase!r}")
