"""npb-bt — Block Tridiagonal solver (ADI) synthetic analogue.

Structure: one initialization region, then 200 time steps of five phases
(compute_rhs, x_solve, y_solve, z_solve, add), giving the paper's 1001
dynamic barriers (Fig. 1 / Table III).  The three solver sweeps are
compute-heavy stencil walks over the solution grid with mild deterministic
length jitter, so clustering yields a handful of barrierpoints with large
fractional multipliers, as in Table III.
"""

from __future__ import annotations

from repro.trace import generators as gen
from repro.trace.program import BlockExec
from repro.workloads.base import PhaseInstance, Workload

_TIME_STEPS = 200
_U_LINES = 768
_RHS_LINES = 768
_LHS_LINES = 160


class NpbBT(Workload):
    """Synthetic npb-bt (class A): 1001 barriers, 5-phase ADI time loop."""

    name = "npb-bt"
    input_size = "A"

    def _build(self) -> None:
        self._alloc("u", self._scaled(_U_LINES))
        self._alloc("rhs", self._scaled(_RHS_LINES))
        self._alloc("lhs", self._scaled(_LHS_LINES))

        self._bb("bt_init_loop", instructions=40)
        self._bb("bt_init_fill", instructions=12, mlp=4.0)
        self._bb("bt_rhs_loop", instructions=55)
        self._bb("bt_rhs_kernel", instructions=33, mlp=3.0, mispredict_rate=0.005)
        for axis in "xyz":
            self._bb(f"bt_{axis}_loop", instructions=60)
            self._bb(
                f"bt_{axis}_solve",
                instructions={"x": 42, "y": 48, "z": 57}[axis],
                mlp={"x": 3.0, "y": 2.5, "z": 2.0}[axis],
                mispredict_rate=0.008,
            )
        self._bb("bt_add_loop", instructions=35)
        self._bb("bt_add_kernel", instructions=15, mlp=4.0)

        self._schedule.append(PhaseInstance("init", 0))
        for step in range(_TIME_STEPS):
            for phase in ("rhs", "x_solve", "y_solve", "z_solve", "add"):
                self._schedule.append(PhaseInstance(phase, step))

    def _build_thread(
        self, inst: PhaseInstance, region_index: int, thread_id: int
    ) -> list[BlockExec]:
        u_base, u_n = self._partition("u", thread_id)
        rhs_base, rhs_n = self._partition("rhs", thread_id)

        if inst.phase == "init":
            refs = gen.concat(
                gen.strided_sweep(u_base, u_n, write=True),
                gen.strided_sweep(rhs_base, rhs_n, write=True),
            )
            return [
                BlockExec(self.block("bt_init_loop"), count=1),
                BlockExec(self.block("bt_init_fill"), u_n + rhs_n, *refs),
            ]

        jit = self._jitter(inst.phase, inst.iteration, 0.08)
        n = max(2, round(u_n * jit))

        if inst.phase == "rhs":
            refs = gen.concat(
                gen.stencil_sweep(u_base, n, radius=1, write_center=False),
                gen.strided_sweep(rhs_base, min(n, rhs_n), write=True),
            )
            return [
                BlockExec(self.block("bt_rhs_loop"), count=1),
                BlockExec(self.block("bt_rhs_kernel"), count=n, lines=refs[0], writes=refs[1]),
            ]

        if inst.phase in ("x_solve", "y_solve", "z_solve"):
            axis = inst.phase[0]
            lhs_base, lhs_n = self._partition("lhs", thread_id)
            # Each solver reads the RHS stencil, works in the per-thread LHS
            # scratch area and writes the solution back; y and z walk the
            # grid with growing strides (less spatial locality per plane).
            stride = {"x": 1, "y": 2, "z": 3}[axis]
            span = max(2, n // stride)
            refs = gen.concat(
                gen.stencil_sweep(rhs_base, span, radius=1, write_center=False),
                gen.strided_sweep(lhs_base, min(span, lhs_n), repeat=2),
                gen.read_modify_write_sweep(u_base, span, stride=stride),
            )
            return [
                BlockExec(self.block(f"bt_{axis}_loop"), count=1),
                BlockExec(self.block(f"bt_{axis}_solve"), count=span, lines=refs[0], writes=refs[1]),
            ]

        if inst.phase == "add":
            refs = gen.concat(
                gen.strided_sweep(rhs_base, min(n, rhs_n)),
                gen.read_modify_write_sweep(u_base, n),
            )
            return [
                BlockExec(self.block("bt_add_loop"), count=1),
                BlockExec(self.block("bt_add_kernel"), count=n, lines=refs[0], writes=refs[1]),
            ]

        raise AssertionError(f"unknown phase {inst.phase!r}")
