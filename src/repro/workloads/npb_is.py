"""npb-is — Integer Sort (bucket ranking) synthetic analogue.

Structure: one initialization region, then 10 ranking iterations — 11
dynamic barriers as in Fig. 1 / Table III.  Each iteration ranks a *fresh*
key array with an iteration-specific skew and a growing active-bucket
window, so the ten ranking regions are all mutually distinct; Table III
accordingly shows ten significant barrierpoints with multiplier 1.0 each,
and is exhibits the methodology's smallest simulation speedup.
"""

from __future__ import annotations

from repro.trace import generators as gen
from repro.trace.program import BlockExec
from repro.workloads.base import PhaseInstance, Workload

_RANK_ITERATIONS = 10
_KEYS_PER_ITER = 4800  # key *values*; 8 keys per cache line
_BUCKET_LINES = 1280


class NpbIS(Workload):
    """Synthetic npb-is (class A): 11 barriers, 10 unique ranking regions."""

    name = "npb-is"
    input_size = "A"

    def _build(self) -> None:
        for it in range(_RANK_ITERATIONS):
            self._alloc(f"keys{it}", max(1, self._scaled(_KEYS_PER_ITER) // 8))
        self._alloc("buckets", self._scaled(_BUCKET_LINES))

        self._bb("is_init_loop", instructions=45)
        self._bb("is_init_fill", instructions=9, mlp=4.0)
        self._bb("is_rank_loop", instructions=50)
        self._bb("is_rank_scatter", instructions=27, mlp=1.5, mispredict_rate=0.05)
        self._bb("is_rank_count", instructions=12, mlp=4.0, mispredict_rate=0.01)

        self._schedule.append(PhaseInstance("init", 0))
        for it in range(_RANK_ITERATIONS):
            self._schedule.append(PhaseInstance("rank", it))

    def _build_thread(
        self, inst: PhaseInstance, region_index: int, thread_id: int
    ) -> list[BlockExec]:
        buckets_base = self.array_base("buckets")
        buckets_n = self.array_lines("buckets")

        if inst.phase == "init":
            part_base, part_n = self._partition("buckets", thread_id)
            refs = gen.strided_sweep(part_base, part_n, write=True)
            return [
                BlockExec(self.block("is_init_loop"), count=1),
                BlockExec(self.block("is_init_fill"), count=part_n,
                          lines=refs[0], writes=refs[1]),
            ]

        it = inst.iteration
        keys_base, keys_n = self._partition(f"keys{it}", thread_id)
        n_keys = self._per_thread(_KEYS_PER_ITER)
        # Iteration-specific key distribution: skew rises and the active
        # bucket window widens, so every ranking region has its own LDV.
        skew = 0.5 + 0.12 * it
        active_buckets = max(16, round(buckets_n * (0.35 + 0.065 * it)))
        rng = self._rng("rank", it, thread_id)
        scatter = gen.histogram_scatter(
            rng,
            keys_base=keys_base,
            n_keys=n_keys,
            buckets_base=buckets_base,
            n_buckets=min(active_buckets, buckets_n),
            skew=skew,
        )
        count_base, count_n = self._partition("buckets", thread_id)
        counts = gen.strided_sweep(count_base, count_n)
        return [
            BlockExec(self.block("is_rank_loop"), count=1),
            BlockExec(self.block("is_rank_scatter"), count=n_keys,
                      lines=scatter[0], writes=scatter[1]),
            BlockExec(self.block("is_rank_count"), count=count_n,
                      lines=counts[0], writes=counts[1]),
        ]
