"""Replay of recorded ``.rpt`` traces through the workload interface.

:class:`ReplayWorkload` makes a recorded trace (see
:mod:`repro.trace.capture`) indistinguishable from the workload that
produced it: it reconstructs the static basic-block table and the region
schedule from the trace metadata and serves every region's block
executions from the file, so the profiler, the detailed simulator, the
warmup capture, and every hierarchy backend observe bit-identical
executions — the differential-conformance property
``tests/test_trace_replay.py`` asserts.

Replay never materializes the full trace: the base class's region memo
is disabled and the reader keeps only a small LRU window of decoded
regions, so peak memory is bounded by a few regions regardless of trace
size.
"""

from __future__ import annotations

import math
import os

from repro.errors import WorkloadError
from repro.trace.capture import TraceReader
from repro.trace.program import BasicBlock, BlockExec
from repro.workloads.base import PhaseInstance, Workload


def decode_block_execs(
    reader: TraceReader,
    region_index: int,
    thread_id: int,
    table: tuple[BasicBlock, ...],
    origin: str,
) -> list[BlockExec]:
    """Decode one thread's recorded executions against a block table.

    Shared by :class:`ReplayWorkload` and the shard-chain replay in
    :mod:`repro.trace.shard`, so both paths resolve block ids and report
    unknown ids identically.

    Args:
        reader: The trace to serve from.
        region_index: Region index *local to that trace file*.
        thread_id: The thread whose executions to decode.
        table: Dense ``bb_id``-ordered block table.
        origin: Trace description for error messages.

    Returns:
        The thread's :class:`BlockExec` list for the region.

    Raises:
        WorkloadError: When the region references a block id the table
            does not declare.
    """
    execs = reader.region_execs(region_index)[thread_id]
    out = []
    for bb_id, count, lines, writes in execs:
        if bb_id >= len(table):
            raise WorkloadError(
                f"trace {origin} region {region_index} "
                f"references unknown block id {bb_id}"
            )
        out.append(BlockExec(table[bb_id], count=count,
                             lines=lines, writes=writes))
    return out


class ReplayWorkload(Workload):
    """A workload backed by a recorded trace file.

    Parameters
    ----------
    path:
        The ``.rpt`` trace file.
    num_threads:
        Optional expectation; must equal the recorded thread count
        (replay cannot re-thread a trace).  ``None`` accepts whatever
        was recorded.
    scale:
        Optional expectation; must equal the recorded scale.  ``None``
        accepts whatever was recorded.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        num_threads: int | None = None,
        scale: float | None = None,
    ) -> None:
        self._reader = TraceReader(path)
        meta = self._reader.meta
        self.name = meta["workload"]
        self.input_size = meta.get("input_size", "")
        self.trace_path = self._reader.path
        if num_threads is not None and num_threads != meta["num_threads"]:
            raise WorkloadError(
                f"trace {str(self.trace_path)!r} was recorded with "
                f"{meta['num_threads']} threads and cannot replay with "
                f"{num_threads}; re-record the workload at the desired "
                f"thread count (`repro trace record {self.name} "
                f"--threads {num_threads}`) or run it on machines with "
                f"{meta['num_threads']} cores (e.g. `repro sweep "
                f"--machines ...`)"
            )
        if scale is not None and not math.isclose(
            scale, meta["scale"], rel_tol=1e-12
        ):
            raise WorkloadError(
                f"trace {str(self.trace_path)!r} was recorded at scale "
                f"{meta['scale']} and cannot replay at scale {scale}; "
                f"re-record the workload at the desired scale"
            )
        super().__init__(
            num_threads=meta["num_threads"], scale=meta["scale"]
        )
        # Bounded-memory replay: the reader's LRU window is the only
        # region cache (REPRO_TRACE_CACHE applies to *generated* traces).
        self._cache_traces = False
        self._trace_cache.clear()

    def _build(self) -> None:
        """Reconstruct schedule and block table from the trace metadata."""
        meta = self._reader.meta
        for phase, iteration, param in meta["schedule"]:
            self._schedule.append(PhaseInstance(phase, iteration, param))
        for block in self._reader.blocks:
            if block.name in self._blocks:
                raise WorkloadError(
                    f"trace {str(self.trace_path)!r} declares block "
                    f"{block.name!r} twice"
                )
            self._blocks[block.name] = block
        by_id = sorted(self._blocks.values(), key=lambda b: b.bb_id)
        if [b.bb_id for b in by_id] != list(range(len(by_id))):
            raise WorkloadError(
                f"trace {str(self.trace_path)!r} block ids are not dense"
            )
        self._block_table: tuple[BasicBlock, ...] = tuple(by_id)

    def _build_thread(
        self, inst: PhaseInstance, region_index: int, thread_id: int
    ) -> list[BlockExec]:
        """Serve one thread's block executions from the recorded chunk."""
        return decode_block_execs(
            self._reader, region_index, thread_id, self._block_table,
            repr(str(self.trace_path)),
        )

    def close(self) -> None:
        """Close the underlying trace reader."""
        self._reader.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReplayWorkload(name={self.name!r}, threads={self.num_threads}, "
            f"regions={self.num_regions}, path={str(self.trace_path)!r})"
        )
