"""npb-ua — Unstructured Adaptive mesh synthetic analogue.

The paper *excluded* npb-ua: it "generates a very large number of
barriers which makes it difficult to analyze" (section V), naming a
region filter/combiner as future work.  We include a synthetic ua —
adaptive-mesh refinement with per-element barriers, >10,000 dynamic
barriers of individually negligible weight — precisely to exercise that
extension (:mod:`repro.core.region_filter`).  It is deliberately *not*
part of ``WORKLOAD_NAMES`` (the paper's evaluated suite): construct it
explicitly via ``get_workload("npb-ua", ...)``.
"""

from __future__ import annotations

from repro.trace import generators as gen
from repro.trace.program import BlockExec
from repro.workloads.base import PhaseInstance, Workload

_TIME_STEPS = 300
_REGIONS_PER_STEP = 36  # transfer/adapt micro-phases with barriers
_MESH_LINES = 2048


class NpbUA(Workload):
    """Synthetic npb-ua: >10,000 tiny inter-barrier regions."""

    name = "npb-ua"
    input_size = "A"

    def _build(self) -> None:
        self._alloc("mesh", self._scaled(_MESH_LINES))
        self._alloc("flux", self._scaled(_MESH_LINES // 2))

        self._bb("ua_init_loop", instructions=45)
        self._bb("ua_init_fill", instructions=9, mlp=4.0)
        self._bb("ua_transfer_loop", instructions=40)
        self._bb("ua_transfer_kernel", instructions=18, mlp=2.0,
                 mispredict_rate=0.02)
        self._bb("ua_adapt_loop", instructions=40)
        self._bb("ua_adapt_kernel", instructions=24, mlp=1.5,
                 mispredict_rate=0.03)

        self._schedule.append(PhaseInstance("init", 0))
        for step in range(_TIME_STEPS):
            for micro in range(_REGIONS_PER_STEP):
                phase = "transfer" if micro % 3 else "adapt"
                self._schedule.append(PhaseInstance(phase, step, micro))

    def _build_thread(
        self, inst: PhaseInstance, region_index: int, thread_id: int
    ) -> list[BlockExec]:
        mesh_base, mesh_n = self._partition("mesh", thread_id)
        flux_base, flux_n = self._partition("flux", thread_id)

        if inst.phase == "init":
            refs = gen.strided_sweep(mesh_base, mesh_n, write=True)
            return [
                BlockExec(self.block("ua_init_loop"), count=1),
                BlockExec(self.block("ua_init_fill"), count=mesh_n,
                          lines=refs[0], writes=refs[1]),
            ]

        # Micro-regions touch a tiny, micro-phase-specific slice of the
        # mesh — each region is individually negligible.
        slice_n = max(1, mesh_n // _REGIONS_PER_STEP)
        offset = (inst.param * slice_n) % max(mesh_n - slice_n, 1)
        if inst.phase == "transfer":
            refs = gen.concat(
                gen.strided_sweep(mesh_base + offset, slice_n),
                gen.strided_sweep(flux_base + offset % max(flux_n, 1),
                                  max(1, slice_n // 2), write=True),
            )
            return [
                BlockExec(self.block("ua_transfer_loop"), count=1),
                BlockExec(self.block("ua_transfer_kernel"), count=slice_n,
                          lines=refs[0], writes=refs[1]),
            ]

        refs = gen.read_modify_write_sweep(mesh_base + offset, slice_n)
        return [
            BlockExec(self.block("ua_adapt_loop"), count=1),
            BlockExec(self.block("ua_adapt_kernel"), count=slice_n,
                      lines=refs[0], writes=refs[1]),
        ]
