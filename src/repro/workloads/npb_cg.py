"""npb-cg — Conjugate Gradient synthetic analogue.

Structure: one initialization region, then 15 CG iterations of three phases
(sparse mat-vec, dot-product reductions, vector axpy updates) — 46 dynamic
barriers as in Fig. 1 / Table III.  The sparse mat-vec streams each
thread's block of matrix rows and gathers randomly from the shared input
vector.  The aggregate working set exceeds one socket's LLC but fits four
sockets' worth, reproducing the paper's super-linear 8→32-core speedup for
cg (Fig. 8, attributed to the 32 MB vs 8 MB LLC).
"""

from __future__ import annotations

from repro.trace import generators as gen
from repro.trace.program import BlockExec
from repro.workloads.base import PhaseInstance, Workload

_CG_ITERATIONS = 15
_MATRIX_LINES = 9600
_VECTOR_LINES = 1200
_DOT_LINES = 8


class NpbCG(Workload):
    """Synthetic npb-cg (class A): 46 barriers, LLC-sensitive working set."""

    name = "npb-cg"
    input_size = "A"

    def _build(self) -> None:
        self._alloc("matrix", self._scaled(_MATRIX_LINES))
        self._alloc("x", self._scaled(_VECTOR_LINES))
        self._alloc("p", self._scaled(_VECTOR_LINES))
        self._alloc("q", self._scaled(_VECTOR_LINES))
        self._alloc("r", self._scaled(_VECTOR_LINES))
        self._alloc("dots", _DOT_LINES)

        self._bb("cg_init_loop", instructions=45)
        self._bb("cg_init_fill", instructions=9, mlp=4.0)
        self._bb("cg_spmv_loop", instructions=50)
        self._bb("cg_spmv_row", instructions=18, mlp=4.0, mispredict_rate=0.004)
        self._bb("cg_spmv_gather", instructions=12, mlp=2.0, mispredict_rate=0.02)
        self._bb("cg_dot_loop", instructions=40)
        self._bb("cg_dot_kernel", instructions=9, mlp=4.0)
        self._bb("cg_dot_reduce", instructions=36, mlp=1.0, mispredict_rate=0.03)
        self._bb("cg_axpy_loop", instructions=35)
        self._bb("cg_axpy_kernel", instructions=12, mlp=4.0)

        self._schedule.append(PhaseInstance("init", 0))
        for it in range(_CG_ITERATIONS):
            for phase in ("spmv", "dots", "axpy"):
                self._schedule.append(PhaseInstance(phase, it))

    def _build_thread(
        self, inst: PhaseInstance, region_index: int, thread_id: int
    ) -> list[BlockExec]:
        mat_base, mat_n = self._partition("matrix", thread_id)
        p_base, p_n = self._partition("p", thread_id)
        q_base, q_n = self._partition("q", thread_id)
        r_base, r_n = self._partition("r", thread_id)
        x_base = self.array_base("x")
        x_total = self.array_lines("x")

        if inst.phase == "init":
            refs = gen.concat(
                gen.strided_sweep(p_base, p_n, write=True),
                gen.strided_sweep(r_base, r_n, write=True),
                gen.strided_sweep(x_base + thread_id * p_n, p_n, write=True),
            )
            return [
                BlockExec(self.block("cg_init_loop"), count=1),
                BlockExec(self.block("cg_init_fill"), count=3 * p_n,
                          lines=refs[0], writes=refs[1]),
            ]

        if inst.phase == "spmv":
            # Most of the sparsity pattern is a property of the matrix and
            # repeats every iteration; a minority of gathers varies per
            # iteration (cache-level noise real runs exhibit), keeping
            # reconstruction errors realistically non-zero.
            fixed_rng = self._rng("spmv", thread_id)
            iter_rng = self._rng("spmv-iter", inst.iteration, thread_id)
            gather_count = p_n // 2
            fixed_count = max(1, (3 * gather_count) // 4)
            vary_count = max(1, gather_count - fixed_count)
            rows = gen.strided_sweep(mat_base, mat_n)
            gathers = gen.concat(
                gen.random_gather(fixed_rng, x_base, x_total, fixed_count),
                gen.random_gather(iter_rng, x_base, x_total, vary_count),
                gen.strided_sweep(q_base, q_n, write=True),
            )
            return [
                BlockExec(self.block("cg_spmv_loop"), count=1),
                BlockExec(self.block("cg_spmv_row"), count=mat_n,
                          lines=rows[0], writes=rows[1]),
                BlockExec(self.block("cg_spmv_gather"), count=gather_count,
                          lines=gathers[0], writes=gathers[1]),
            ]

        if inst.phase == "dots":
            refs = gen.concat(
                gen.strided_sweep(q_base, q_n),
                gen.strided_sweep(r_base, r_n),
                gen.reduction_accumulate(self.array_base("dots"), _DOT_LINES, rounds=4),
            )
            return [
                BlockExec(self.block("cg_dot_loop"), count=1),
                BlockExec(self.block("cg_dot_kernel"), count=q_n + r_n,
                          lines=refs[0], writes=refs[1]),
                BlockExec(self.block("cg_dot_reduce"), count=8),
            ]

        if inst.phase == "axpy":
            refs = gen.concat(
                gen.read_modify_write_sweep(p_base, p_n),
                gen.strided_sweep(r_base, r_n),
                gen.read_modify_write_sweep(x_base + thread_id * p_n, p_n),
            )
            return [
                BlockExec(self.block("cg_axpy_loop"), count=1),
                BlockExec(self.block("cg_axpy_kernel"), count=3 * p_n,
                          lines=refs[0], writes=refs[1]),
            ]

        raise AssertionError(f"unknown phase {inst.phase!r}")
