"""Workload base class: barrier-structured synthetic programs.

A workload is a deterministic generator of inter-barrier region traces.  It
fixes, independently of thread count:

* the *schedule* — an ordered list of ``(phase, iteration)`` pairs, one per
  inter-barrier region (so the dynamic barrier count matches the paper's
  Fig. 1 regardless of threads, the property BarrierPoint relies on), and
* the *total* work per phase — per-thread work is ``total / num_threads``
  (strong scaling, as for NPB class-A fixed-size inputs).

Subclasses declare static basic blocks in ``__init__`` via :meth:`_bb`,
allocate line-granular arrays via :meth:`_alloc`, and implement
:meth:`_build_thread` returning the block executions of one thread in one
region.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.trace.program import BasicBlock, BlockExec, RegionTrace, ThreadTrace
from repro.trace.rng import stream_rng

_CODE_SEGMENT_BASE = 1 << 40
_ARRAY_PAD_LINES = 129  # odd padding decorrelates power-of-two set aliasing


@dataclass(frozen=True)
class PhaseInstance:
    """One scheduled inter-barrier region.

    ``phase`` names the code executed (BBV identity), ``iteration`` is the
    enclosing loop trip, and ``param`` carries phase-specific structure such
    as the multigrid level or the annealing layer — phases sharing a name
    but differing in ``param`` run the *same* basic blocks over different
    footprints, which is exactly the case where BBV-only signatures fail
    and LDVs are needed (paper section VI-A1).
    """

    phase: str
    iteration: int
    param: int = 0


class Workload(ABC):
    """Deterministic barrier-synchronized synthetic program.

    Parameters
    ----------
    num_threads:
        Thread count; one software thread per simulated core.
    scale:
        Multiplies all footprints and reference counts.  ``1.0`` is the
        benchmark-harness default; tests use small values for speed.
    """

    #: Paper-facing benchmark name, e.g. ``"npb-ft"``. Set by subclasses.
    name: str = ""
    #: Input-size label as reported in Table III (``"A"`` or ``"large"``).
    input_size: str = ""

    def __init__(self, num_threads: int, scale: float = 1.0) -> None:
        if num_threads <= 0:
            raise WorkloadError(f"num_threads must be positive, got {num_threads}")
        if scale <= 0:
            raise WorkloadError(f"scale must be positive, got {scale}")
        self.num_threads = num_threads
        self.scale = scale
        self._next_base = 0
        self._arrays: dict[str, tuple[int, int]] = {}
        self._blocks: dict[str, BasicBlock] = {}
        self._next_code_line = _CODE_SEGMENT_BASE
        self._schedule: list[PhaseInstance] = []
        self._trace_cache: dict[int, RegionTrace] = {}
        # Memoization holds every generated region trace for the workload's
        # lifetime (peak memory O(total trace) instead of O(one region));
        # REPRO_TRACE_CACHE=0 restores regenerate-per-pass behavior for
        # memory-constrained full-scale runs.
        self._cache_traces = os.environ.get("REPRO_TRACE_CACHE", "1") != "0"
        self._build()
        if not self._schedule:
            raise WorkloadError(f"workload {self.name!r} produced an empty schedule")

    # ------------------------------------------------------------------
    # Subclass interface
    # ------------------------------------------------------------------

    @abstractmethod
    def _build(self) -> None:
        """Declare arrays and basic blocks, and populate ``self._schedule``."""

    @abstractmethod
    def _build_thread(
        self, inst: PhaseInstance, region_index: int, thread_id: int
    ) -> list[BlockExec]:
        """Block executions of ``thread_id`` in the given region."""

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    @property
    def num_regions(self) -> int:
        """Number of inter-barrier regions == dynamic barrier count."""
        return len(self._schedule)

    @property
    def barrier_count(self) -> int:
        """Dynamic barrier count (the quantity plotted in Fig. 1)."""
        return self.num_regions

    def phase_of(self, region_index: int) -> PhaseInstance:
        """The ``(phase, iteration)`` identity of a region."""
        self._check_region(region_index)
        return self._schedule[region_index]

    def region_trace(self, region_index: int) -> RegionTrace:
        """Build the full multi-threaded trace of one inter-barrier region.

        Traces are deterministic functions of (workload, region), so they
        are built once and memoized: every consumer after the first —
        profiling, the full reference run, warmup capture, barrierpoint
        replays — reads the cached immutable trace instead of re-running
        the generators.  This is a large fraction of end-to-end time on
        workloads with many small regions.
        """
        self._check_region(region_index)
        cached = self._trace_cache.get(region_index)
        if cached is not None:
            return cached
        inst = self._schedule[region_index]
        threads = tuple(
            ThreadTrace(
                thread_id=tid,
                blocks=tuple(self._build_thread(inst, region_index, tid)),
            )
            for tid in range(self.num_threads)
        )
        trace = RegionTrace(
            region_index=region_index, phase=inst.phase, threads=threads
        )
        if self._cache_traces:
            self._trace_cache[region_index] = trace
        return trace

    def disable_trace_cache(self) -> None:
        """Regenerate traces on every request (the seed behavior).

        Used by the perf benchmarks so the reference measurements reflect
        the seed system, which re-ran the trace generators on every pass.
        """
        self._cache_traces = False
        self._trace_cache.clear()

    def iter_regions(self):
        """Yield every region trace in program order."""
        for idx in range(self.num_regions):
            yield self.region_trace(idx)

    def region_instructions(self, region_index: int) -> int:
        """Aggregate instruction count of one region (multiplier weights)."""
        return self.region_trace(region_index).instructions

    # ------------------------------------------------------------------
    # Construction helpers for subclasses
    # ------------------------------------------------------------------

    def _alloc(self, name: str, total_lines: int) -> int:
        """Allocate a named array of ``total_lines`` cache lines; return base."""
        if name in self._arrays:
            raise WorkloadError(f"array {name!r} allocated twice")
        if total_lines <= 0:
            raise WorkloadError(f"array {name!r} must have positive size")
        base = self._next_base
        self._arrays[name] = (base, total_lines)
        self._next_base = base + total_lines + _ARRAY_PAD_LINES
        return base

    def array_base(self, name: str) -> int:
        """Base line address of a previously allocated array."""
        return self._arrays[name][0]

    def array_lines(self, name: str) -> int:
        """Line count of a previously allocated array."""
        return self._arrays[name][1]

    def _bb(
        self,
        name: str,
        instructions: int,
        mispredict_rate: float = 0.01,
        mlp: float = 2.0,
        code_lines: int = 3,
    ) -> BasicBlock:
        """Declare a static basic block with a fresh id and code footprint."""
        if name in self._blocks:
            raise WorkloadError(f"basic block {name!r} declared twice")
        lines = tuple(
            self._next_code_line + i for i in range(code_lines)
        )
        self._next_code_line += code_lines
        block = BasicBlock(
            bb_id=len(self._blocks),
            name=name,
            instructions=instructions,
            mispredict_rate=mispredict_rate,
            mlp=mlp,
            code_lines=lines,
        )
        self._blocks[name] = block
        return block

    def block(self, name: str) -> BasicBlock:
        """Look up a declared basic block by name."""
        return self._blocks[name]

    @property
    def num_static_blocks(self) -> int:
        """Number of static basic blocks (the BBV dimensionality)."""
        return len(self._blocks)

    def _scaled(self, amount: float) -> int:
        """Apply the workload ``scale`` factor; at least 1."""
        return max(1, round(amount * self.scale))

    def _per_thread(self, total: float) -> int:
        """Strong-scaling split: this thread's share of ``total`` work."""
        return max(1, round(total * self.scale / self.num_threads))

    def _partition(self, name: str, thread_id: int) -> tuple[int, int]:
        """Contiguous slice of array ``name`` owned by ``thread_id``.

        Returns ``(base_line, n_lines)``.  The last thread absorbs rounding.
        """
        base, total = self._arrays[name]
        chunk = total // self.num_threads
        if chunk == 0:
            # More threads than lines: threads share the first lines round-robin.
            return base + (thread_id % total), 1
        start = base + thread_id * chunk
        if thread_id == self.num_threads - 1:
            chunk = total - chunk * (self.num_threads - 1)
        return start, chunk

    def _jitter(self, tag: str, iteration: int, frac: float) -> float:
        """Deterministic per-(phase, iteration) length multiplier.

        Uniform in ``[1 - frac, 1 + frac]``; identical across thread counts
        so region lengths (and therefore multipliers) transfer between
        architectures.
        """
        if not 0.0 <= frac < 1.0:
            raise WorkloadError(f"jitter fraction {frac} out of [0, 1)")
        rng = stream_rng(self.name, "jitter", tag, iteration)
        return float(1.0 + frac * (2.0 * rng.random() - 1.0))

    def _rng(self, *parts: object) -> np.random.Generator:
        """Deterministic RNG scoped to this workload plus ``parts``.

        Thread count is deliberately *excluded* from the seed: the schedule
        and data-dependent decisions (key distributions, particle counts)
        must match across core counts for barrierpoints to transfer.
        """
        return stream_rng(self.name, self.input_size, *parts)

    def _check_region(self, region_index: int) -> None:
        if not 0 <= region_index < self.num_regions:
            raise WorkloadError(
                f"region {region_index} out of range [0, {self.num_regions}) "
                f"for workload {self.name!r}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(name={self.name!r}, threads={self.num_threads}, "
            f"regions={self.num_regions}, scale={self.scale})"
        )
