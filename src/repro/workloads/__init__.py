"""Benchmark workloads: synthetic analogues of the paper's suite.

The registry maps the paper's benchmark names (``npb-bt`` ... ``npb-sp``,
``parsec-bodytrack``) to workload classes; :func:`get_workload` is the main
entry point.  All eight reproduce the dynamic barrier counts of Fig. 1 and
the phase structure discussed in section V of the paper.

Beyond the static registry, two dynamic name families resolve here too:

* ``fuzz-<seed>`` — a :class:`~repro.trace.generators.ScenarioFuzzer`
  scenario (seeded randomized barrier structure), and
* ``trace:<path>`` — a :class:`~repro.workloads.replay.ReplayWorkload`
  replaying a recorded ``.rpt`` trace bit-identically.

Both behave like registered workloads everywhere a workload name is
accepted (the experiment runner, the sweep, ``repro trace record``).
"""

from __future__ import annotations

import re

from repro.errors import WorkloadError
from repro.trace.generators import ScenarioFuzzer
from repro.workloads.base import PhaseInstance, Workload
from repro.workloads.replay import ReplayWorkload
from repro.workloads.npb_bt import NpbBT
from repro.workloads.npb_cg import NpbCG
from repro.workloads.npb_ft import NpbFT
from repro.workloads.npb_is import NpbIS
from repro.workloads.npb_lu import NpbLU
from repro.workloads.npb_mg import NpbMG
from repro.workloads.npb_sp import NpbSP
from repro.workloads.npb_ua import NpbUA
from repro.workloads.parsec_bodytrack import ParsecBodytrack
from repro.workloads.synthetic import PhaseSpec, SyntheticSpec, SyntheticWorkload

_REGISTRY: dict[str, type[Workload]] = {
    cls.name: cls
    for cls in (
        ParsecBodytrack, NpbBT, NpbCG, NpbFT, NpbIS, NpbLU, NpbMG, NpbSP,
        # npb-ua is NOT in WORKLOAD_NAMES: the paper excluded it (too many
        # barriers); it exists to exercise repro.core.region_filter.
        NpbUA,
    )
}

#: Benchmark names in the paper's figure order.
WORKLOAD_NAMES: tuple[str, ...] = (
    "parsec-bodytrack",
    "npb-bt",
    "npb-cg",
    "npb-ft",
    "npb-is",
    "npb-lu",
    "npb-mg",
    "npb-sp",
)


def registered_workloads() -> tuple[str, ...]:
    """Every instantiable workload name, sorted.

    A superset of :data:`WORKLOAD_NAMES`: includes extension workloads
    (``npb-ua``) that the paper's figures exclude but that
    :func:`get_workload` accepts.
    """
    return tuple(sorted(_REGISTRY))


#: Name pattern of fuzzer scenarios accepted by :func:`get_workload`.
FUZZ_NAME_RE = re.compile(r"^fuzz-(\d+)$")

#: Name prefix of trace-replay workloads accepted by :func:`get_workload`.
TRACE_NAME_PREFIX = "trace:"


def is_dynamic_workload(name: str) -> bool:
    """Whether a name resolves dynamically (``fuzz-<seed>``/``trace:<path>``).

    Args:
        name: A workload name.

    Returns:
        True for fuzzer scenarios and trace replays, False for registry
        (class-backed) workloads.
    """
    return bool(FUZZ_NAME_RE.match(name)) or name.startswith(TRACE_NAME_PREFIX)


def get_workload(name: str, num_threads: int, scale: float = 1.0) -> Workload:
    """Instantiate a workload by name.

    Accepts the static registry names (paper suite plus extensions), the
    ``fuzz-<seed>`` scenario family, and ``trace:<path>`` replays of
    recorded traces.  A trace pins its own coordinates: ``num_threads``
    must match the recording (a replay cannot re-thread), while the
    recorded scale is inherited — the ``scale`` argument is ignored for
    ``trace:`` names, so trace-backed workloads plug into scale-carrying
    callers (the experiment runner, the sweep) without re-recording.

    Args:
        name: Workload name.
        num_threads: Thread count (one per simulated core).
        scale: Footprint/work scale factor (ignored for ``trace:`` names).

    Returns:
        The instantiated workload.

    Raises:
        WorkloadError: For unknown names or a trace thread-count mismatch.
    """
    fuzz = FUZZ_NAME_RE.match(name)
    if fuzz:
        return ScenarioFuzzer(int(fuzz.group(1))).workload(
            num_threads=num_threads, scale=scale
        )
    if name.startswith(TRACE_NAME_PREFIX):
        return ReplayWorkload(
            name[len(TRACE_NAME_PREFIX):],
            num_threads=num_threads,
        )
    try:
        cls = _REGISTRY[name]
    except KeyError:
        extensions = sorted(set(_REGISTRY) - set(WORKLOAD_NAMES))
        raise WorkloadError(
            f"unknown workload {name!r}; paper suite: "
            f"{sorted(WORKLOAD_NAMES)}; extension workloads (not in the "
            f"paper's figures): {extensions}; dynamic names: 'fuzz-<seed>' "
            f"(scenario fuzzer) and 'trace:<path>' (recorded-trace replay)"
        ) from None
    return cls(num_threads=num_threads, scale=scale)


__all__ = [
    "FUZZ_NAME_RE",
    "NpbBT",
    "NpbCG",
    "NpbFT",
    "NpbIS",
    "NpbLU",
    "NpbMG",
    "NpbSP",
    "NpbUA",
    "ParsecBodytrack",
    "PhaseInstance",
    "PhaseSpec",
    "ReplayWorkload",
    "ScenarioFuzzer",
    "SyntheticSpec",
    "SyntheticWorkload",
    "TRACE_NAME_PREFIX",
    "WORKLOAD_NAMES",
    "Workload",
    "get_workload",
    "is_dynamic_workload",
    "registered_workloads",
]
