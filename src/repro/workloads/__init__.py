"""Benchmark workloads: synthetic analogues of the paper's suite.

The registry maps the paper's benchmark names (``npb-bt`` ... ``npb-sp``,
``parsec-bodytrack``) to workload classes; :func:`get_workload` is the main
entry point.  All eight reproduce the dynamic barrier counts of Fig. 1 and
the phase structure discussed in section V of the paper.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.workloads.base import PhaseInstance, Workload
from repro.workloads.npb_bt import NpbBT
from repro.workloads.npb_cg import NpbCG
from repro.workloads.npb_ft import NpbFT
from repro.workloads.npb_is import NpbIS
from repro.workloads.npb_lu import NpbLU
from repro.workloads.npb_mg import NpbMG
from repro.workloads.npb_sp import NpbSP
from repro.workloads.npb_ua import NpbUA
from repro.workloads.parsec_bodytrack import ParsecBodytrack
from repro.workloads.synthetic import PhaseSpec, SyntheticSpec, SyntheticWorkload

_REGISTRY: dict[str, type[Workload]] = {
    cls.name: cls
    for cls in (
        ParsecBodytrack, NpbBT, NpbCG, NpbFT, NpbIS, NpbLU, NpbMG, NpbSP,
        # npb-ua is NOT in WORKLOAD_NAMES: the paper excluded it (too many
        # barriers); it exists to exercise repro.core.region_filter.
        NpbUA,
    )
}

#: Benchmark names in the paper's figure order.
WORKLOAD_NAMES: tuple[str, ...] = (
    "parsec-bodytrack",
    "npb-bt",
    "npb-cg",
    "npb-ft",
    "npb-is",
    "npb-lu",
    "npb-mg",
    "npb-sp",
)


def registered_workloads() -> tuple[str, ...]:
    """Every instantiable workload name, sorted.

    A superset of :data:`WORKLOAD_NAMES`: includes extension workloads
    (``npb-ua``) that the paper's figures exclude but that
    :func:`get_workload` accepts.
    """
    return tuple(sorted(_REGISTRY))


def get_workload(name: str, num_threads: int, scale: float = 1.0) -> Workload:
    """Instantiate a registered workload by its paper-facing name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        extensions = sorted(set(_REGISTRY) - set(WORKLOAD_NAMES))
        raise WorkloadError(
            f"unknown workload {name!r}; paper suite: "
            f"{sorted(WORKLOAD_NAMES)}; extension workloads (not in the "
            f"paper's figures): {extensions}"
        ) from None
    return cls(num_threads=num_threads, scale=scale)


__all__ = [
    "NpbBT",
    "NpbCG",
    "NpbFT",
    "NpbIS",
    "NpbLU",
    "NpbMG",
    "NpbSP",
    "NpbUA",
    "ParsecBodytrack",
    "PhaseInstance",
    "PhaseSpec",
    "SyntheticSpec",
    "SyntheticWorkload",
    "WORKLOAD_NAMES",
    "Workload",
    "get_workload",
    "registered_workloads",
]
