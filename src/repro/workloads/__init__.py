"""Benchmark workloads: synthetic analogues of the paper's suite.

The registry maps the paper's benchmark names (``npb-bt`` ... ``npb-sp``,
``parsec-bodytrack``) to workload classes; :func:`get_workload` is the main
entry point.  All eight reproduce the dynamic barrier counts of Fig. 1 and
the phase structure discussed in section V of the paper.

Beyond the static registry, two dynamic name families resolve here too:

* ``fuzz-<seed>`` — a :class:`~repro.trace.generators.ScenarioFuzzer`
  scenario (seeded randomized barrier structure), and
* ``trace:<path>`` — a :class:`~repro.workloads.replay.ReplayWorkload`
  replaying a recorded ``.rpt`` trace bit-identically.

Both behave like registered workloads everywhere a workload name is
accepted (the experiment runner, the sweep, ``repro trace record``).
"""

from __future__ import annotations

import re

from repro.errors import WorkloadError
from repro.trace.generators import ScenarioFuzzer
from repro.workloads.base import PhaseInstance, Workload
from repro.workloads.replay import ReplayWorkload
from repro.workloads.npb_bt import NpbBT
from repro.workloads.npb_cg import NpbCG
from repro.workloads.npb_ft import NpbFT
from repro.workloads.npb_is import NpbIS
from repro.workloads.npb_lu import NpbLU
from repro.workloads.npb_mg import NpbMG
from repro.workloads.npb_sp import NpbSP
from repro.workloads.npb_ua import NpbUA
from repro.workloads.parsec_bodytrack import ParsecBodytrack
from repro.workloads.synthetic import PhaseSpec, SyntheticSpec, SyntheticWorkload

_REGISTRY: dict[str, type[Workload]] = {
    cls.name: cls
    for cls in (
        ParsecBodytrack, NpbBT, NpbCG, NpbFT, NpbIS, NpbLU, NpbMG, NpbSP,
        # npb-ua is NOT in WORKLOAD_NAMES: the paper excluded it (too many
        # barriers); it exists to exercise repro.core.region_filter.
        NpbUA,
    )
}

#: Benchmark names in the paper's figure order.
WORKLOAD_NAMES: tuple[str, ...] = (
    "parsec-bodytrack",
    "npb-bt",
    "npb-cg",
    "npb-ft",
    "npb-is",
    "npb-lu",
    "npb-mg",
    "npb-sp",
)


def registered_workloads() -> tuple[str, ...]:
    """Every instantiable workload name, sorted.

    A superset of :data:`WORKLOAD_NAMES`: includes extension workloads
    (``npb-ua``) that the paper's figures exclude but that
    :func:`get_workload` accepts.
    """
    return tuple(sorted(_REGISTRY))


#: Name pattern of fuzzer scenarios accepted by :func:`get_workload`.
FUZZ_NAME_RE = re.compile(r"^fuzz-(\d+)$")

#: Name prefix of trace-replay workloads accepted by :func:`get_workload`.
TRACE_NAME_PREFIX = "trace:"


def is_dynamic_workload(name: str) -> bool:
    """Whether a name resolves dynamically (``fuzz-<seed>``/``trace:<path>``).

    Args:
        name: A workload name.

    Returns:
        True for fuzzer scenarios and trace replays, False for registry
        (class-backed) workloads.
    """
    return bool(FUZZ_NAME_RE.match(name)) or name.startswith(TRACE_NAME_PREFIX)


def _unknown_workload_error(name: str) -> WorkloadError:
    """The loud unknown-name error, shared by every name validator."""
    extensions = sorted(set(_REGISTRY) - set(WORKLOAD_NAMES))
    return WorkloadError(
        f"unknown workload {name!r}; paper suite: "
        f"{sorted(WORKLOAD_NAMES)}; extension workloads (not in the "
        f"paper's figures): {extensions}; dynamic names: 'fuzz-<seed>' "
        f"(scenario fuzzer) and 'trace:<path>' (recorded-trace replay)"
    )


def canonical_workload_name(name: str) -> str:
    """Validate a workload name, loudly, and return its canonical form.

    Static registry names validate against the registry.  Dynamic names
    are checked structurally *and* canonically:

    * ``fuzz-<seed>`` must use the seed's canonical decimal rendering —
      ``fuzz-007`` is rejected because the scenario it denotes is named
      ``fuzz-7``, and accepting both would alias one computation under
      two artifact-store keys (and defeat the serve layer's request
      coalescing).  Seed-range violations (negative, non-integer,
      > 2**63 - 1) are rejected by :class:`ScenarioFuzzer` itself.
    * ``trace:<path>`` must name a non-empty path (the file itself is
      validated when the trace is opened).

    This is the single name gate shared by :func:`get_workload` and the
    job-submission schema of ``repro serve``, so a name that round-trips
    through the service JSON is exactly a name the CLI accepts.

    Args:
        name: The workload name to validate.

    Returns:
        ``name``, unchanged (validation never rewrites silently).

    Raises:
        WorkloadError: For unknown, malformed, or non-canonical names.
    """
    if not isinstance(name, str):
        raise WorkloadError(
            f"workload name must be a string, got {type(name).__name__}"
        )
    fuzz = FUZZ_NAME_RE.match(name)
    if fuzz:
        canonical = ScenarioFuzzer(int(fuzz.group(1))).name
        if canonical != name:
            raise WorkloadError(
                f"non-canonical fuzzer name {name!r}: that scenario is "
                f"named {canonical!r} (seeds use their canonical decimal "
                f"form so one scenario has one store key)"
            )
        return name
    if name.startswith(TRACE_NAME_PREFIX):
        if not name[len(TRACE_NAME_PREFIX):]:
            raise WorkloadError(
                f"trace workload name {name!r} names no path; "
                f"use trace:<path-to-.rpt>"
            )
        return name
    if name not in _REGISTRY:
        raise _unknown_workload_error(name)
    return name


def get_workload(name: str, num_threads: int, scale: float = 1.0) -> Workload:
    """Instantiate a workload by name.

    Accepts the static registry names (paper suite plus extensions), the
    ``fuzz-<seed>`` scenario family, and ``trace:<path>`` replays of
    recorded traces.  A trace pins its own coordinates: ``num_threads``
    must match the recording (a replay cannot re-thread), while the
    recorded scale is inherited — the ``scale`` argument is ignored for
    ``trace:`` names, so trace-backed workloads plug into scale-carrying
    callers (the experiment runner, the sweep) without re-recording.

    Args:
        name: Workload name.
        num_threads: Thread count (one per simulated core).
        scale: Footprint/work scale factor (ignored for ``trace:`` names).

    Returns:
        The instantiated workload.

    Raises:
        WorkloadError: For unknown, malformed, or non-canonical names, or
            a trace thread-count mismatch.
    """
    name = canonical_workload_name(name)
    fuzz = FUZZ_NAME_RE.match(name)
    if fuzz:
        return ScenarioFuzzer(int(fuzz.group(1))).workload(
            num_threads=num_threads, scale=scale
        )
    if name.startswith(TRACE_NAME_PREFIX):
        return ReplayWorkload(
            name[len(TRACE_NAME_PREFIX):],
            num_threads=num_threads,
        )
    return _REGISTRY[name](num_threads=num_threads, scale=scale)


__all__ = [
    "FUZZ_NAME_RE",
    "NpbBT",
    "NpbCG",
    "NpbFT",
    "NpbIS",
    "NpbLU",
    "NpbMG",
    "NpbSP",
    "NpbUA",
    "ParsecBodytrack",
    "PhaseInstance",
    "PhaseSpec",
    "ReplayWorkload",
    "ScenarioFuzzer",
    "SyntheticSpec",
    "SyntheticWorkload",
    "TRACE_NAME_PREFIX",
    "WORKLOAD_NAMES",
    "Workload",
    "canonical_workload_name",
    "get_workload",
    "is_dynamic_workload",
    "registered_workloads",
]
