"""npb-lu — SSOR solver synthetic analogue.

Structure: three initialization regions, then 250 SSOR iterations of two
phases (lower-triangular and upper-triangular wavefront sweeps) — 503
dynamic barriers as in Fig. 1 / Table III.  The wavefront pipelining of
real lu shows up as a comparatively large deterministic length jitter, so
multipliers come out near 250 with fractional parts, matching Table III's
lu-32 row (two barrierpoints, multipliers 250.1 / 250.0).
"""

from __future__ import annotations

from repro.trace import generators as gen
from repro.trace.program import BlockExec
from repro.workloads.base import PhaseInstance, Workload

_SSOR_ITERATIONS = 250
_GRID_LINES = 480


class NpbLU(Workload):
    """Synthetic npb-lu (class A): 503 barriers, two-phase SSOR loop."""

    name = "npb-lu"
    input_size = "A"

    def _build(self) -> None:
        self._alloc("u", self._scaled(_GRID_LINES))
        self._alloc("rsd", self._scaled(_GRID_LINES))
        self._alloc("frct", self._scaled(_GRID_LINES))

        self._bb("lu_init_loop", instructions=45)
        self._bb("lu_init_fill", instructions=9, mlp=4.0)
        self._bb("lu_erhs_loop", instructions=50)
        self._bb("lu_erhs_kernel", instructions=21, mlp=3.0)
        self._bb("lu_norm_loop", instructions=40)
        self._bb("lu_norm_kernel", instructions=12, mlp=4.0)
        self._bb("lu_lower_loop", instructions=60)
        self._bb("lu_lower_sweep", instructions=45, mlp=2.0, mispredict_rate=0.01)
        self._bb("lu_upper_loop", instructions=60)
        self._bb("lu_upper_sweep", instructions=45, mlp=2.0, mispredict_rate=0.01)

        self._schedule.append(PhaseInstance("init", 0))
        self._schedule.append(PhaseInstance("erhs", 0))
        self._schedule.append(PhaseInstance("norm", 0))
        for it in range(_SSOR_ITERATIONS):
            self._schedule.append(PhaseInstance("lower", it))
            self._schedule.append(PhaseInstance("upper", it))

    def _build_thread(
        self, inst: PhaseInstance, region_index: int, thread_id: int
    ) -> list[BlockExec]:
        u_base, u_n = self._partition("u", thread_id)
        rsd_base, rsd_n = self._partition("rsd", thread_id)
        frct_base, frct_n = self._partition("frct", thread_id)

        if inst.phase == "init":
            refs = gen.concat(
                gen.strided_sweep(u_base, u_n, write=True),
                gen.strided_sweep(rsd_base, rsd_n, write=True),
            )
            return [
                BlockExec(self.block("lu_init_loop"), count=1),
                BlockExec(self.block("lu_init_fill"), count=u_n + rsd_n,
                          lines=refs[0], writes=refs[1]),
            ]

        if inst.phase == "erhs":
            refs = gen.concat(
                gen.stencil_sweep(u_base, u_n, radius=1, write_center=False),
                gen.strided_sweep(frct_base, frct_n, write=True),
            )
            return [
                BlockExec(self.block("lu_erhs_loop"), count=1),
                BlockExec(self.block("lu_erhs_kernel"), count=u_n,
                          lines=refs[0], writes=refs[1]),
            ]

        if inst.phase == "norm":
            refs = gen.strided_sweep(rsd_base, rsd_n)
            return [
                BlockExec(self.block("lu_norm_loop"), count=1),
                BlockExec(self.block("lu_norm_kernel"), count=rsd_n,
                          lines=refs[0], writes=refs[1]),
            ]

        if inst.phase in ("lower", "upper"):
            # Wavefront sweeps: read the residual stencil, update the
            # solution; the pipeline fill/drain shows as +/-12% length jitter.
            jit = self._jitter(inst.phase, inst.iteration, 0.12)
            n = max(2, round(u_n * jit))
            refs = gen.concat(
                gen.stencil_sweep(rsd_base, min(n, rsd_n), radius=1,
                                  write_center=False),
                gen.read_modify_write_sweep(u_base, n),
                gen.strided_sweep(frct_base, min(n, frct_n)),
            )
            return [
                BlockExec(self.block(f"lu_{inst.phase}_loop"), count=1),
                BlockExec(self.block(f"lu_{inst.phase}_sweep"), count=n,
                          lines=refs[0], writes=refs[1]),
            ]

        raise AssertionError(f"unknown phase {inst.phase!r}")
