"""parsec-bodytrack — particle-filter body tracker synthetic analogue.

Structure: one initialization region, then 4 frames of 22 regions each
(image pipeline: load, two edge passes, gradient; five annealing layers of
{project, weights, resample}; then estimate, blur, update) — 89 dynamic
barriers as in Fig. 1 / Table III ("simlarge" input).

Data-dependent heterogeneity: the particle count is drawn per frame (and
decays per annealing layer), so particle-phase regions in the *same*
cluster differ in length by up to ~2x.  This is the workload that most
stresses multiplier scaling and produces Table III's mixed multipliers
(16.0, 12.0, 4.1, 19.5, ...).
"""

from __future__ import annotations

from repro.trace import generators as gen
from repro.trace.program import BlockExec
from repro.workloads.base import PhaseInstance, Workload

_FRAMES = 4
_LAYERS = 5
_IMAGE_LINES = 512
_EDGE_LINES = 512
_PARTICLE_LINES = 448
_WEIGHT_LINES = 128
_MODEL_LINES = 64


class ParsecBodytrack(Workload):
    """Synthetic parsec-bodytrack (simlarge): 89 barriers, 4 frames."""

    name = "parsec-bodytrack"
    input_size = "large"

    def _build(self) -> None:
        self._alloc("image", self._scaled(_IMAGE_LINES))
        self._alloc("edges", self._scaled(_EDGE_LINES))
        self._alloc("particles", self._scaled(_PARTICLE_LINES))
        self._alloc("weights", self._scaled(_WEIGHT_LINES))
        self._alloc("model", self._scaled(_MODEL_LINES))

        self._bb("bt_track_init_loop", instructions=50)
        self._bb("bt_track_init_fill", instructions=9, mlp=4.0)
        self._bb("bt_load_loop", instructions=40)
        self._bb("bt_load_copy", instructions=9, mlp=4.0)
        self._bb("bt_edge_loop", instructions=45)
        self._bb("bt_edge_kernel", instructions=27, mlp=3.0, mispredict_rate=0.01)
        self._bb("bt_grad_loop", instructions=40)
        self._bb("bt_grad_kernel", instructions=21, mlp=3.0)
        self._bb("bt_project_loop", instructions=55)
        self._bb("bt_project_kernel", instructions=42, mlp=2.0, mispredict_rate=0.02)
        self._bb("bt_weights_loop", instructions=60)
        self._bb("bt_weights_kernel", instructions=96, mlp=1.5, mispredict_rate=0.03)
        self._bb("bt_anneal_init", instructions=36, mlp=2.0,
                 mispredict_rate=0.02)
        self._bb("bt_resample_loop", instructions=45)
        self._bb("bt_resample_kernel", instructions=24, mlp=1.5, mispredict_rate=0.04)
        self._bb("bt_estimate_loop", instructions=40)
        self._bb("bt_estimate_kernel", instructions=18, mlp=2.0)
        self._bb("bt_blur_loop", instructions=40)
        self._bb("bt_blur_kernel", instructions=24, mlp=3.0)
        self._bb("bt_update_loop", instructions=35)
        self._bb("bt_update_kernel", instructions=15, mlp=3.0)

        self._schedule.append(PhaseInstance("track_init", 0))
        for frame in range(_FRAMES):
            for phase in ("load", "edge", "edge", "grad"):
                self._schedule.append(PhaseInstance(phase, frame))
            for layer in range(_LAYERS):
                for phase in ("project", "weights", "resample"):
                    self._schedule.append(PhaseInstance(phase, frame, layer))
            for phase in ("estimate", "blur", "update"):
                self._schedule.append(PhaseInstance(phase, frame))

    def _particles_this(self, frame: int, layer: int) -> int:
        """Per-frame particle count, decaying over annealing layers.

        Drawn deterministically per frame (independent of thread count), so
        the same heterogeneity appears at 8 and 32 cores.
        """
        rng = self._rng("particles", frame)
        base = 0.9 + 0.2 * float(rng.random())
        per_frame = self.array_lines("particles") * base
        return max(2, round(per_frame * (0.97**layer)))

    def _build_thread(
        self, inst: PhaseInstance, region_index: int, thread_id: int
    ) -> list[BlockExec]:
        img_base, img_n = self._partition("image", thread_id)
        edge_base, edge_n = self._partition("edges", thread_id)

        if inst.phase == "track_init":
            model_base, model_n = self._partition("model", thread_id)
            part_base, part_n = self._partition("particles", thread_id)
            refs = gen.concat(
                gen.strided_sweep(model_base, model_n, write=True),
                gen.strided_sweep(part_base, part_n, write=True),
            )
            return [
                BlockExec(self.block("bt_track_init_loop"), count=1),
                BlockExec(self.block("bt_track_init_fill"), count=model_n + part_n,
                          lines=refs[0], writes=refs[1]),
            ]

        if inst.phase == "load":
            refs = gen.strided_sweep(img_base, img_n, write=True)
            return [
                BlockExec(self.block("bt_load_loop"), count=1),
                BlockExec(self.block("bt_load_copy"), count=img_n,
                          lines=refs[0], writes=refs[1]),
            ]

        if inst.phase == "edge":
            refs = gen.concat(
                gen.stencil_sweep(img_base, img_n, radius=1, write_center=False),
                gen.strided_sweep(edge_base, edge_n, write=True),
            )
            return [
                BlockExec(self.block("bt_edge_loop"), count=1),
                BlockExec(self.block("bt_edge_kernel"), count=img_n,
                          lines=refs[0], writes=refs[1]),
            ]

        if inst.phase == "grad":
            refs = gen.read_modify_write_sweep(edge_base, edge_n)
            return [
                BlockExec(self.block("bt_grad_loop"), count=1),
                BlockExec(self.block("bt_grad_kernel"), count=edge_n,
                          lines=refs[0], writes=refs[1]),
            ]

        if inst.phase in ("project", "weights", "resample"):
            n_total = self._particles_this(inst.iteration, inst.param)
            n_mine = max(1, n_total // self.num_threads)
            part_base = self.array_base("particles")
            part_total = self.array_lines("particles")
            w_base, w_n = self._partition("weights", thread_id)
            rng = self._rng(inst.phase, inst.iteration, inst.param, thread_id)

            my_part_base, my_part_n = self._partition("particles", thread_id)
            own_slice = max(1, min(n_mine, my_part_n))
            if inst.phase == "project":
                # Read the shared body model and particle pool, write only
                # this thread's own particle slice (as real bodytrack does;
                # write-sharing the pool would ping-pong lines at 32 cores).
                refs = gen.concat(
                    gen.strided_sweep(self.array_base("model"),
                                      self.array_lines("model")),
                    gen.random_gather(rng, part_base, part_total, n_mine),
                    gen.strided_sweep(my_part_base, own_slice, write=True),
                )
                kernel = "bt_project_kernel"
            elif inst.phase == "weights":
                refs = gen.concat(
                    gen.random_gather(rng, self.array_base("image"),
                                      self.array_lines("image"), n_mine),
                    gen.read_modify_write_sweep(w_base, min(n_mine, w_n)),
                )
                kernel = "bt_weights_kernel"
            else:  # resample
                # Weights are normalized through a parallel reduction (own
                # partition plus a small shared accumulator), then particles
                # are redrawn into this thread's own slice.
                refs = gen.concat(
                    gen.strided_sweep(w_base, w_n),
                    gen.reduction_accumulate(self.array_base("weights"), 2,
                                             rounds=2),
                    gen.random_gather(rng, part_base, part_total, n_mine),
                    gen.strided_sweep(my_part_base, own_slice, write=True),
                )
                kernel = "bt_resample_kernel"

            blocks = [
                BlockExec(self.block(f"bt_{inst.phase}_loop"), count=1),
                BlockExec(self.block(kernel), count=n_mine,
                          lines=refs[0], writes=refs[1]),
            ]
            if inst.param == 0:
                # The first annealing layer re-initializes per-particle
                # state (as real bodytrack does), which also makes the
                # coherence-cold layer-0 regions separable by BBV.
                blocks.insert(1, BlockExec(self.block("bt_anneal_init"),
                                           count=max(1, n_mine // 2)))
            return blocks

        if inst.phase == "estimate":
            w_base, w_n = self._partition("weights", thread_id)
            part_base, part_n = self._partition("particles", thread_id)
            refs = gen.concat(
                gen.strided_sweep(w_base, w_n),
                gen.strided_sweep(part_base, part_n),
            )
            return [
                BlockExec(self.block("bt_estimate_loop"), count=1),
                BlockExec(self.block("bt_estimate_kernel"), count=w_n + part_n,
                          lines=refs[0], writes=refs[1]),
            ]

        if inst.phase == "blur":
            # Gaussian blur reads the image plane and writes a separate
            # output plane; the image itself stays in shared (S) state so
            # later per-particle gathers do not pay ownership transfers.
            refs = gen.concat(
                gen.stencil_sweep(img_base, img_n, radius=2,
                                  write_center=False),
                gen.strided_sweep(edge_base, edge_n, write=True),
            )
            return [
                BlockExec(self.block("bt_blur_loop"), count=1),
                BlockExec(self.block("bt_blur_kernel"), count=img_n,
                          lines=refs[0], writes=refs[1]),
            ]

        if inst.phase == "update":
            part_base, part_n = self._partition("particles", thread_id)
            refs = gen.read_modify_write_sweep(part_base, part_n)
            return [
                BlockExec(self.block("bt_update_loop"), count=1),
                BlockExec(self.block("bt_update_kernel"), count=part_n,
                          lines=refs[0], writes=refs[1]),
            ]

        raise AssertionError(f"unknown phase {inst.phase!r}")
