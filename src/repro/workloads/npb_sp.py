"""npb-sp — Scalar Pentadiagonal solver synthetic analogue.

Structure: one initialization region, then 400 time steps of nine short
phases (compute_rhs, txinvr, x_solve, ninvr, y_solve, pinvr, z_solve,
tzetar, add) — 3601 dynamic barriers, the largest count in the suite
(Fig. 1 / Table III).  Regions are short and highly repetitive, which is
what gives sp the methodology's largest speedups: a handful of
barrierpoints with multipliers near 400 stand in for thousands of regions.
"""

from __future__ import annotations

from repro.trace import generators as gen
from repro.trace.program import BlockExec
from repro.workloads.base import PhaseInstance, Workload

_TIME_STEPS = 400
_U_LINES = 480
_RHS_LINES = 480

_PHASES = (
    "rhs", "txinvr", "x_solve", "ninvr", "y_solve",
    "pinvr", "z_solve", "tzetar", "add",
)


class NpbSP(Workload):
    """Synthetic npb-sp (class A): 3601 barriers, nine-phase ADI loop."""

    name = "npb-sp"
    input_size = "A"

    def _build(self) -> None:
        self._alloc("u", self._scaled(_U_LINES))
        self._alloc("rhs", self._scaled(_RHS_LINES))

        self._bb("sp_init_loop", instructions=40)
        self._bb("sp_init_fill", instructions=9, mlp=4.0)
        for phase in _PHASES:
            self._bb(f"sp_{phase}_loop", instructions=45)
        self._bb("sp_rhs_kernel", instructions=30, mlp=3.0, mispredict_rate=0.005)
        for phase in ("txinvr", "ninvr", "pinvr", "tzetar"):
            self._bb(f"sp_{phase}_kernel", instructions=18, mlp=4.0)
        for axis in "xyz":
            self._bb(
                f"sp_{axis}_solve_kernel",
                instructions={"x": 36, "y": 39, "z": 45}[axis],
                mlp={"x": 3.0, "y": 2.5, "z": 2.0}[axis],
                mispredict_rate=0.008,
            )
        self._bb("sp_add_kernel", instructions=12, mlp=4.0)

        self._schedule.append(PhaseInstance("init", 0))
        for step in range(_TIME_STEPS):
            for phase in _PHASES:
                self._schedule.append(PhaseInstance(phase, step))

    def _build_thread(
        self, inst: PhaseInstance, region_index: int, thread_id: int
    ) -> list[BlockExec]:
        u_base, u_n = self._partition("u", thread_id)
        rhs_base, rhs_n = self._partition("rhs", thread_id)

        if inst.phase == "init":
            refs = gen.concat(
                gen.strided_sweep(u_base, u_n, write=True),
                gen.strided_sweep(rhs_base, rhs_n, write=True),
            )
            return [
                BlockExec(self.block("sp_init_loop"), count=1),
                BlockExec(self.block("sp_init_fill"), count=u_n + rhs_n,
                          lines=refs[0], writes=refs[1]),
            ]

        jit = self._jitter(inst.phase, inst.iteration, 0.06)
        n = max(2, round(u_n * jit))
        loop = BlockExec(self.block(f"sp_{inst.phase}_loop"), count=1)

        if inst.phase == "rhs":
            refs = gen.concat(
                gen.stencil_sweep(u_base, n, radius=1, write_center=False),
                gen.strided_sweep(rhs_base, min(n, rhs_n), write=True),
            )
            return [loop, BlockExec(self.block("sp_rhs_kernel"), count=n,
                                    lines=refs[0], writes=refs[1])]

        if inst.phase in ("txinvr", "ninvr", "pinvr", "tzetar"):
            refs = gen.read_modify_write_sweep(rhs_base, min(n, rhs_n))
            return [loop, BlockExec(self.block(f"sp_{inst.phase}_kernel"),
                                    count=min(n, rhs_n),
                                    lines=refs[0], writes=refs[1])]

        if inst.phase in ("x_solve", "y_solve", "z_solve"):
            axis = inst.phase[0]
            stride = {"x": 1, "y": 2, "z": 3}[axis]
            span = max(2, n // stride)
            refs = gen.concat(
                gen.strided_sweep(rhs_base, min(span, rhs_n)),
                gen.read_modify_write_sweep(u_base, span, stride=stride),
            )
            return [loop, BlockExec(self.block(f"sp_{axis}_solve_kernel"),
                                    count=span,
                                    lines=refs[0], writes=refs[1])]

        if inst.phase == "add":
            refs = gen.concat(
                gen.strided_sweep(rhs_base, min(n, rhs_n)),
                gen.read_modify_write_sweep(u_base, n),
            )
            return [loop, BlockExec(self.block("sp_add_kernel"), count=n,
                                    lines=refs[0], writes=refs[1])]

        raise AssertionError(f"unknown phase {inst.phase!r}")
