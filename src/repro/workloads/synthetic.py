"""User-definable barrier-structured workloads.

:class:`SyntheticWorkload` lets downstream users describe their own
application as a list of :class:`PhaseSpec` kernels plus a schedule of
``(phase, iteration)`` regions, and run the full BarrierPoint methodology
on it — the ``examples/custom_workload.py`` script demonstrates this.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import WorkloadError
from repro.trace import generators as gen
from repro.trace.program import BlockExec
from repro.workloads.base import PhaseInstance, Workload

#: Reference patterns a phase may use.
PATTERNS = ("stream", "stencil", "gather", "scatter", "rmw")


@dataclass(frozen=True)
class PhaseSpec:
    """Declarative description of one phase kernel.

    ``footprint_lines`` is the total array footprint across threads,
    ``refs_per_thread`` the number of line references each thread issues
    per region (before strong-scaling division by thread count is applied
    to the footprint), and ``pattern`` one of :data:`PATTERNS`.
    ``imbalance`` skews per-thread work linearly across thread ids while
    preserving the total: thread 0 gets a ``1 - imbalance`` share and the
    last thread ``1 + imbalance`` (so 0.5 means the last thread does ~3x
    the first's work), modelling load imbalance between barriers.
    """

    name: str
    pattern: str
    footprint_lines: int
    refs_per_thread: int
    instructions_per_ref: int = 4
    mlp: float = 3.0
    mispredict_rate: float = 0.01
    write_fraction: float = 0.2
    shared: bool = False
    length_jitter: float = 0.0
    imbalance: float = 0.0

    def __post_init__(self) -> None:
        if self.pattern not in PATTERNS:
            raise WorkloadError(
                f"unknown pattern {self.pattern!r}; choose from {PATTERNS}"
            )
        if self.footprint_lines <= 0 or self.refs_per_thread <= 0:
            raise WorkloadError(f"phase {self.name!r}: sizes must be positive")
        if not 0.0 <= self.length_jitter < 1.0:
            raise WorkloadError(f"phase {self.name!r}: jitter must be in [0, 1)")
        if not 0.0 <= self.imbalance < 1.0:
            raise WorkloadError(
                f"phase {self.name!r}: imbalance must be in [0, 1)"
            )


@dataclass(frozen=True)
class SyntheticSpec:
    """A complete user workload: phases plus a region schedule."""

    name: str
    phases: tuple[PhaseSpec, ...]
    schedule: tuple[tuple[str, int], ...]
    input_size: str = "custom"

    def __post_init__(self) -> None:
        known = {p.name for p in self.phases}
        if len(known) != len(self.phases):
            raise WorkloadError("phase names must be unique")
        missing = {name for name, _ in self.schedule} - known
        if missing:
            raise WorkloadError(f"schedule references unknown phases: {sorted(missing)}")
        if not self.schedule:
            raise WorkloadError("schedule must contain at least one region")


@dataclass
class _PhaseState:
    spec: PhaseSpec
    array: str = ""
    loop_block: str = ""
    kernel_block: str = ""
    extra: dict = field(default_factory=dict)


class SyntheticWorkload(Workload):
    """Barrier-structured workload built from a :class:`SyntheticSpec`."""

    def __init__(self, spec: SyntheticSpec, num_threads: int, scale: float = 1.0):
        self._spec = spec
        self.name = spec.name
        self.input_size = spec.input_size
        self._states: dict[str, _PhaseState] = {}
        super().__init__(num_threads=num_threads, scale=scale)

    def _build(self) -> None:
        for phase in self._spec.phases:
            state = _PhaseState(spec=phase)
            state.array = f"data_{phase.name}"
            self._alloc(state.array, self._scaled(phase.footprint_lines))
            state.loop_block = f"{phase.name}_loop"
            state.kernel_block = f"{phase.name}_kernel"
            self._bb(state.loop_block, instructions=40)
            self._bb(
                state.kernel_block,
                instructions=phase.instructions_per_ref,
                mlp=phase.mlp,
                mispredict_rate=phase.mispredict_rate,
            )
            self._states[phase.name] = state
        for phase_name, iteration in self._spec.schedule:
            self._schedule.append(PhaseInstance(phase_name, iteration))

    def _build_thread(
        self, inst: PhaseInstance, region_index: int, thread_id: int
    ) -> list[BlockExec]:
        state = self._states[inst.phase]
        spec = state.spec
        skew = 1.0
        if spec.imbalance and self.num_threads > 1:
            # Linear ramp across thread ids: thread 0 light, last heavy,
            # averaging 1.0 so total work is imbalance-invariant.
            skew = 1.0 + spec.imbalance * (
                2.0 * thread_id / (self.num_threads - 1) - 1.0
            )
        refs_target = max(1, round(
            (self._per_thread(spec.refs_per_thread * self.num_threads)
             * self._jitter(inst.phase, inst.iteration, spec.length_jitter)
             if spec.length_jitter else
             self._per_thread(spec.refs_per_thread * self.num_threads))
            * skew
        ))

        if spec.shared:
            base = self.array_base(state.array)
            span = self.array_lines(state.array)
        else:
            base, span = self._partition(state.array, thread_id)
        rng = self._rng(inst.phase, inst.iteration, thread_id)

        if spec.pattern == "stream":
            n = min(refs_target, span)
            repeat = max(1, refs_target // max(n, 1))
            refs = gen.strided_sweep(base, n, repeat=repeat,
                                     write=spec.write_fraction > 0.5)
        elif spec.pattern == "stencil":
            n = min(max(1, refs_target // 3), span)
            refs = gen.stencil_sweep(base, n, radius=1)
        elif spec.pattern == "gather":
            refs = gen.random_gather(rng, base, span, refs_target,
                                     write_fraction=spec.write_fraction)
        elif spec.pattern == "scatter":
            n_keys = max(1, refs_target // 3)
            refs = gen.histogram_scatter(rng, base, n_keys, base, span)
        elif spec.pattern == "rmw":
            n = min(max(1, refs_target // 2), span)
            refs = gen.read_modify_write_sweep(base, n)
        else:  # pragma: no cover - guarded by PhaseSpec validation
            raise AssertionError(spec.pattern)

        return [
            BlockExec(self.block(state.loop_block), count=1),
            BlockExec(self.block(state.kernel_block),
                      count=max(1, refs[0].size // 2),
                      lines=refs[0], writes=refs[1]),
        ]
