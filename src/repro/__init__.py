"""repro — a full reproduction of *BarrierPoint: Sampled Simulation of
Multi-Threaded Applications* (Carlson, Heirman, Van Craeynest, Eeckhout;
ISPASS 2014).

Public API overview
-------------------

* :mod:`repro.workloads` — synthetic barrier-structured analogues of the
  paper's NPB + PARSEC suite (``get_workload``) and a builder for custom
  workloads.
* :mod:`repro.sim` — the detailed multi-core simulator (``Machine``).
* :mod:`repro.profiling` — the functional profiler (BBV / LDV / MRU).
* :mod:`repro.clustering` — SimPoint-style weighted k-means + BIC.
* :mod:`repro.core` — the BarrierPoint methodology
  (``BarrierPointPipeline``).
* :mod:`repro.config` — Table I machine presets and Table II SimPoint
  parameters.
* :mod:`repro.machines` — the named, data-driven machine registry the
  cross-architecture sweep iterates.
* :mod:`repro.experiments` — regenerators for every figure and table of
  the paper's evaluation.
"""

from repro._version import __version__
from repro.config import (
    MachineConfig,
    SimPointConfig,
    scaled,
    simpoint_defaults,
    table1_8core,
    table1_32core,
)
from repro.core import (
    BarrierPointPipeline,
    BarrierPointSelection,
    PipelineResult,
    SignatureConfig,
)
from repro.errors import (
    ClusteringError,
    ConfigError,
    ReconstructionError,
    ReproError,
    SimulationError,
    WorkloadError,
)
from repro.machines import get_machine, machine_names, register_machine
from repro.sim import Machine
from repro.workloads import WORKLOAD_NAMES, Workload, get_workload

__all__ = [
    "BarrierPointPipeline",
    "BarrierPointSelection",
    "ClusteringError",
    "ConfigError",
    "Machine",
    "MachineConfig",
    "PipelineResult",
    "ReconstructionError",
    "ReproError",
    "SignatureConfig",
    "SimPointConfig",
    "SimulationError",
    "WORKLOAD_NAMES",
    "Workload",
    "WorkloadError",
    "__version__",
    "get_machine",
    "get_workload",
    "machine_names",
    "register_machine",
    "scaled",
    "simpoint_defaults",
    "table1_8core",
    "table1_32core",
]
