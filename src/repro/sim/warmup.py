"""Microarchitectural warmup strategies for barrierpoint simulation.

The paper's technique (section IV): during a near-native profiling run,
capture each core's most-recently-used cache lines — with capacity equal to
the *largest shared LLC* that will ever be simulated — and replay them in
execution order before detailed simulation starts.  Replay rebuilds cache
*and* coherence state without any microarchitecture-specific snapshot
format, so one capture serves every machine configuration.

``ColdWarmup`` (empty caches) is provided as the ablation baseline.
"Perfect" warmup is not a strategy object: it is the evaluation protocol of
taking a barrierpoint's metrics directly from the full-program run
(section VI-A), implemented in :mod:`repro.core.pipeline`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.errors import SimulationError
from repro.mem.hierarchy import MemoryHierarchy


class WarmupStrategy(Protocol):
    """Prepares hierarchy state before detailed simulation of a region."""

    name: str
    #: Whether the machine should also touch the region's static code
    #: footprint (I-cache warmup) before detailed simulation starts.
    warm_code: bool

    def prepare(self, hierarchy: MemoryHierarchy, region_index: int) -> None:
        """Install warm state for the region starting at ``region_index``."""
        ...  # pragma: no cover - protocol signature


@dataclass
class ColdWarmup:
    """No warmup: simulate the barrierpoint from empty caches."""

    name: str = "cold"
    #: Cold runs pay compulsory instruction fetches too.
    warm_code: bool = False

    def prepare(self, hierarchy: MemoryHierarchy, region_index: int) -> None:
        """Flush everything; the region pays all compulsory misses."""
        hierarchy.flush_all()


@dataclass(frozen=True)
class MRUWarmupData:
    """Captured warmup state for one barrierpoint.

    ``per_core`` holds, for each core, the most-recently-used line
    addresses *in LRU-to-MRU order* paired with whether the line's most
    recent access was a write.  Capacity per core equals the largest shared
    LLC line count (paper section IV).
    """

    region_index: int
    per_core: tuple[tuple[tuple[int, bool], ...], ...]

    @property
    def total_lines(self) -> int:
        """Number of captured (core, line) replay entries."""
        return sum(len(c) for c in self.per_core)


@dataclass
class MRUWarmup:
    """Replay-based warmup from captured MRU access data."""

    data: MRUWarmupData
    name: str = "mru"
    #: Also touch the region's static code footprint before simulation.
    #: The paper's barrierpoints are millions of instructions, so I-cache
    #: warmup "is not normally required"; our scaled regions are short
    #: enough that cold instruction fetch would otherwise be visible.
    warm_code: bool = True
    #: Replay work in "equivalent instructions" per line, used only for
    #: speedup accounting (each replayed line costs about one memory
    #: instruction in the detailed simulator).
    replay_cost_per_line: float = field(default=1.0)

    def prepare(self, hierarchy: MemoryHierarchy, region_index: int) -> None:
        """Flush, then replay each core's MRU lines in execution order."""
        if region_index != self.data.region_index:
            raise SimulationError(
                f"warmup data is for region {self.data.region_index}, "
                f"not {region_index}"
            )
        if len(self.data.per_core) > hierarchy.machine.num_cores:
            raise SimulationError(
                f"warmup captured {len(self.data.per_core)} cores but the "
                f"machine has {hierarchy.machine.num_cores}"
            )
        hierarchy.flush_all()
        # Interleave the per-core replays round-robin, oldest first, so the
        # shared L3's recency order approximates the original interleaving.
        #
        # Dirty restoration is bounded: under LRU, a line is still resident
        # (hence possibly still dirty) only if fewer than one LLC's worth
        # of distinct lines were touched since its last write, so entries
        # older than ``llc_lines / sharers`` per core replay as clean reads —
        # their writeback already happened before the checkpoint.  The
        # capture holds one stream per *active thread*, and stream ``i``
        # replays onto core ``i``, so each socket's LLC was shared by the
        # number of active streams mapped to it (capped at its core
        # count), not by every core the machine has — an 8-thread capture
        # replayed on a wider machine must not shrink the window, and a
        # half-populated socket keeps its wider per-writer share.
        machine = hierarchy.machine
        llc_lines = machine.l3.num_lines
        # Stream i replays onto core i (checked against num_cores above),
        # so each socket structurally holds at most cores_per_socket
        # streams — the per-socket count needs no further clamping.
        streams_per_socket = [0] * machine.num_sockets
        for stream_index in range(len(self.data.per_core)):
            streams_per_socket[machine.socket_of(stream_index)] += 1
        streams: list[tuple[list[int], list[bool]]] = []
        for stream_index, core_data in enumerate(self.data.per_core):
            sharers = max(
                1, streams_per_socket[machine.socket_of(stream_index)]
            )
            dirty_window = max(1, llc_lines // sharers)
            clean_until = len(core_data) - dirty_window
            streams.append((
                [line for line, _ in core_data],
                [
                    (was_write if i >= clean_until else False)
                    for i, (_, was_write) in enumerate(core_data)
                ],
            ))
        # Consecutive same-core entries of the interleaving are replayed
        # through the batched path in one call.
        replay_block = hierarchy.replay_block
        group_core = -1
        group_lines: list[int] = []
        group_writes: list[bool] = []
        rounds = max((len(s[0]) for s in streams), default=0)
        for cursor in range(rounds):
            for core, (lines, writes) in enumerate(streams):
                if cursor >= len(lines):
                    continue
                if core != group_core:
                    if group_lines:
                        replay_block(group_core, group_lines, group_writes)
                    group_core = core
                    group_lines = []
                    group_writes = []
                group_lines.append(lines[cursor])
                group_writes.append(writes[cursor])
        if group_lines:
            replay_block(group_core, group_lines, group_writes)
