"""Multi-core detailed simulator: machine model, metrics, warmup."""

from repro.sim.barrier import barrier_cost_cycles
from repro.sim.machine import FullRunResult, Machine
from repro.sim.results import AppMetrics, RegionMetrics
from repro.sim.warmup import (
    ColdWarmup,
    MRUWarmup,
    MRUWarmupData,
    WarmupStrategy,
)

__all__ = [
    "AppMetrics",
    "ColdWarmup",
    "FullRunResult",
    "MRUWarmup",
    "MRUWarmupData",
    "Machine",
    "RegionMetrics",
    "WarmupStrategy",
    "barrier_cost_cycles",
]
