"""Simulation result records: per-region and whole-application metrics."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.mem.hierarchy import AccessCounters


@dataclass(frozen=True)
class RegionMetrics:
    """Detailed-simulation outcome of one inter-barrier region.

    ``cycles`` is the region's wall-clock duration (max over threads, plus
    barrier release, stretched to the DRAM bandwidth bound if needed);
    per-instruction metrics derived from it are the quantities BarrierPoint
    assumes constant within a cluster (section III-D).
    """

    region_index: int
    phase: str
    instructions: int
    cycles: float
    per_thread_cycles: tuple[float, ...]
    counters: AccessCounters
    barrier_cycles: float
    bandwidth_limited: bool
    frequency_ghz: float

    def __post_init__(self) -> None:
        if self.instructions <= 0:
            raise SimulationError(
                f"region {self.region_index}: non-positive instruction count"
            )
        if self.cycles <= 0:
            raise SimulationError(f"region {self.region_index}: non-positive cycles")

    @property
    def time_seconds(self) -> float:
        """Region duration in seconds at the configured core frequency."""
        return self.cycles / (self.frequency_ghz * 1e9)

    @property
    def aggregate_ipc(self) -> float:
        """Whole-machine IPC: all instructions over region duration."""
        return self.instructions / self.cycles

    @property
    def cpi(self) -> float:
        """Aggregate cycles per instruction (reciprocal of IPC)."""
        return self.cycles / self.instructions

    @property
    def dram_apki(self) -> float:
        """DRAM accesses per kilo-instruction (the paper's APKI metric)."""
        return 1000.0 * self.counters.dram_accesses / self.instructions

    def to_state(self) -> dict:
        """Serialize to a plain dict (artifact-store payload).

        Returns:
            A dict of scalars, tuples, and the nested counter dict,
            consumed by :meth:`from_state`.
        """
        return {
            "region_index": self.region_index,
            "phase": self.phase,
            "instructions": self.instructions,
            "cycles": self.cycles,
            "per_thread_cycles": tuple(self.per_thread_cycles),
            "counters": self.counters.to_state(),
            "barrier_cycles": self.barrier_cycles,
            "bandwidth_limited": self.bandwidth_limited,
            "frequency_ghz": self.frequency_ghz,
        }

    @classmethod
    def from_state(cls, state: dict) -> RegionMetrics:
        """Rebuild region metrics from a :meth:`to_state` dict.

        Args:
            state: A dict produced by :meth:`to_state`.

        Returns:
            An equivalent :class:`RegionMetrics`.
        """
        kwargs = dict(state)
        kwargs["per_thread_cycles"] = tuple(kwargs["per_thread_cycles"])
        kwargs["counters"] = AccessCounters.from_state(kwargs["counters"])
        return cls(**kwargs)


@dataclass(frozen=True)
class AppMetrics:
    """Whole-application metrics, measured or reconstructed."""

    instructions: float
    cycles: float
    dram_accesses: float
    frequency_ghz: float
    num_regions: int = 0

    def __post_init__(self) -> None:
        if self.instructions <= 0 or self.cycles <= 0:
            raise SimulationError("application metrics must be positive")

    @property
    def time_seconds(self) -> float:
        """Total execution time in seconds."""
        return self.cycles / (self.frequency_ghz * 1e9)

    @property
    def aggregate_ipc(self) -> float:
        """Whole-machine IPC over the full run."""
        return self.instructions / self.cycles

    @property
    def dram_apki(self) -> float:
        """DRAM accesses per kilo-instruction over the full run."""
        return 1000.0 * self.dram_accesses / self.instructions

    @staticmethod
    def from_regions(regions: list[RegionMetrics]) -> AppMetrics:
        """Aggregate measured per-region metrics into app totals."""
        if not regions:
            raise SimulationError("cannot aggregate an empty region list")
        return AppMetrics(
            instructions=float(sum(r.instructions for r in regions)),
            cycles=float(sum(r.cycles for r in regions)),
            dram_accesses=float(sum(r.counters.dram_accesses for r in regions)),
            frequency_ghz=regions[0].frequency_ghz,
            num_regions=len(regions),
        )
