"""The multi-core machine simulator.

A :class:`Machine` couples interval cores to a :class:`MemoryHierarchy`
and simulates inter-barrier regions: threads are interleaved at basic-block
granularity in simulated-time order (a priority queue keyed on per-thread
clocks), so shared-cache mixing and coherence interactions happen in a
plausible global order while remaining deterministic.

Region duration is the slowest thread's clock (passive barrier wait) plus
the barrier release cost, stretched if the region's DRAM traffic would
exceed any socket's sustained bandwidth — or, on topology machines that
declare an interconnect bandwidth, if its cross-complex/cross-socket
line traffic would exceed the fabric's.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.config import MachineConfig
from repro.cpu.interval import IntervalCore
from repro.errors import SimulationError
from repro.mem.hierarchy import MemoryHierarchy
from repro.sim.barrier import barrier_cost_cycles
from repro.sim.results import AppMetrics, RegionMetrics
from repro.sim.warmup import WarmupStrategy
from repro.trace.program import RegionTrace
from repro.workloads.base import Workload


@dataclass(frozen=True)
class FullRunResult:
    """Outcome of simulating every region of an application in order."""

    workload_name: str
    num_threads: int
    machine_name: str
    regions: tuple[RegionMetrics, ...]

    @property
    def app(self) -> AppMetrics:
        """Aggregate application metrics."""
        return AppMetrics.from_regions(list(self.regions))

    def region(self, index: int) -> RegionMetrics:
        """Metrics of one region by original region index."""
        found = self.regions[index]
        if found.region_index != index:
            raise SimulationError(
                f"region list out of order at {index}"
            )  # pragma: no cover - guarded by construction
        return found

    def to_state(self) -> dict:
        """Serialize to a plain dict (artifact-store payload).

        Returns:
            A dict of identifying fields plus one state dict per region,
            consumed by :meth:`from_state`.
        """
        return {
            "workload_name": self.workload_name,
            "num_threads": self.num_threads,
            "machine_name": self.machine_name,
            "regions": tuple(r.to_state() for r in self.regions),
        }

    @classmethod
    def from_state(cls, state: dict) -> FullRunResult:
        """Rebuild a full-run result from a :meth:`to_state` dict.

        Args:
            state: A dict produced by :meth:`to_state`.

        Returns:
            An equivalent :class:`FullRunResult`.
        """
        return cls(
            workload_name=state["workload_name"],
            num_threads=state["num_threads"],
            machine_name=state["machine_name"],
            regions=tuple(
                RegionMetrics.from_state(r) for r in state["regions"]
            ),
        )


class Machine:
    """A simulated shared-memory machine (Table I parameters).

    The memory-hierarchy implementation defaults to the backend named by
    ``config.hierarchy`` (resolved through
    :mod:`repro.mem.backends`, so machine specs pick their backend by
    name); an explicit ``hierarchy_factory`` overrides it — the perf
    benchmarks use that to run the reference/seed hierarchy side by side
    with the fast one.  A factory must accept a
    :class:`~repro.config.MachineConfig`.
    """

    def __init__(
        self,
        config: MachineConfig,
        hierarchy_factory: type[MemoryHierarchy] | None = None,
    ) -> None:
        if hierarchy_factory is None:
            from repro.mem.backends import hierarchy_backend

            hierarchy_factory = hierarchy_backend(config.hierarchy)
        self.config = config
        self._hierarchy_factory = hierarchy_factory
        self.hierarchy = hierarchy_factory(config)
        self.cores = [IntervalCore(config.core) for _ in range(config.num_cores)]

    def reset(self) -> None:
        """Return to a cold, just-booted state."""
        self.hierarchy = self._hierarchy_factory(self.config)
        for core in self.cores:
            core.reset()

    # ------------------------------------------------------------------
    # Region simulation
    # ------------------------------------------------------------------

    def simulate_region(self, trace: RegionTrace) -> RegionMetrics:
        """Simulate one inter-barrier region from the *current* state."""
        num_threads = trace.num_threads
        if num_threads > self.config.num_cores:
            raise SimulationError(
                f"trace has {num_threads} threads but machine "
                f"{self.config.name!r} has {self.config.num_cores} cores"
            )
        hierarchy = self.hierarchy
        cores = self.cores
        before = hierarchy.snapshot()

        clocks = [0.0] * num_threads
        # (clock, thread, next-block-index); thread id breaks ties so the
        # interleaving is deterministic.
        heap: list[tuple[float, int, int]] = []
        for tid in range(num_threads):
            if trace.threads[tid].blocks:
                heap.append((0.0, tid, 0))
        heapq.heapify(heap)

        while heap:
            clock, tid, idx = heapq.heappop(heap)
            thread = trace.threads[tid]
            exec_ = thread.blocks[idx]
            block = exec_.block
            fetch_stall = hierarchy.access_code(tid, block.code_lines)
            mem_stall = hierarchy.access_block(
                tid, exec_.lines, exec_.writes, block.mlp
            )
            clock += cores[tid].block_cycles(exec_, mem_stall, fetch_stall)
            clocks[tid] = clock
            if idx + 1 < len(thread.blocks):
                heapq.heappush(heap, (clock, tid, idx + 1))

        duration = max(clocks) if clocks else 0.0
        if duration <= 0.0:
            raise SimulationError(
                f"region {trace.region_index} produced no work"
            )

        counters = hierarchy.snapshot().delta(before)
        bw_floor = hierarchy.dram.min_cycles_for_traffic(
            list(counters.dram_reads_per_socket),
            list(counters.dram_writebacks_per_socket),
        )
        if self.config.topology.interconnect_gbps is not None:
            from repro.mem.topology import fabric_min_cycles

            fabric_floor = fabric_min_cycles(
                self.config,
                counters.cross_complex_transfers
                + counters.cross_socket_transfers,
            )
            if fabric_floor > bw_floor:
                bw_floor = fabric_floor
        bandwidth_limited = bw_floor > duration
        if bandwidth_limited:
            duration = bw_floor
        barrier_cycles = barrier_cost_cycles(self.config, num_threads)

        return RegionMetrics(
            region_index=trace.region_index,
            phase=trace.phase,
            instructions=trace.instructions,
            cycles=duration + barrier_cycles,
            per_thread_cycles=tuple(clocks),
            counters=counters,
            barrier_cycles=barrier_cycles,
            bandwidth_limited=bandwidth_limited,
            frequency_ghz=self.config.core.frequency_ghz,
        )

    # ------------------------------------------------------------------
    # Whole-program and sampled entry points
    # ------------------------------------------------------------------

    def run_full(self, workload: Workload) -> FullRunResult:
        """Cold-start, then simulate every region in program order.

        This is the reference ("detailed simulation of the complete
        benchmark") against which BarrierPoint's estimates are scored.
        """
        self.reset()
        regions = tuple(
            self.simulate_region(trace) for trace in workload.iter_regions()
        )
        return FullRunResult(
            workload_name=workload.name,
            num_threads=workload.num_threads,
            machine_name=self.config.name,
            regions=regions,
        )

    def simulate_barrierpoint(
        self,
        workload: Workload,
        region_index: int,
        warmup: WarmupStrategy,
    ) -> RegionMetrics:
        """Simulate one barrierpoint independently, after ``warmup``.

        The hierarchy is prepared by the warmup strategy (checkpoint-style:
        no functional simulation of the preceding program), then the single
        region is simulated and its metrics returned.
        """
        warmup.prepare(self.hierarchy, region_index)
        trace = workload.region_trace(region_index)
        if warmup.warm_code:
            for thread in trace.threads:
                for exec_ in thread.blocks:
                    self.hierarchy.access_code(
                        thread.thread_id, exec_.block.code_lines
                    )
        return self.simulate_region(trace)
