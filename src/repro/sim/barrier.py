"""Barrier synchronization cost model.

We model the passive OpenMP wait policy used in the paper (waiting threads
consume no CPU): threads that arrive early simply idle until the last
arrival, and the barrier release itself costs a logarithmic combining-tree
latency on top.
"""

from __future__ import annotations

import math

from repro.config import MachineConfig


def barrier_cost_cycles(machine: MachineConfig, num_threads: int) -> float:
    """Release latency of one global barrier across ``num_threads``.

    A combining tree performs ``ceil(log2(n))`` hop rounds; with multiple
    sockets the final round crosses the interconnect.
    """
    if num_threads <= 1:
        return 0.0
    rounds = math.ceil(math.log2(num_threads))
    cost = rounds * machine.barrier_hop_cycles
    if machine.num_sockets > 1:
        cost += machine.remote_socket_extra_cycles
    return float(cost)
