"""Regenerators for every table and figure of the paper's evaluation.

Each ``figN_*`` / ``table3_*`` module exposes two functions:

* ``compute(runner)`` — produce the experiment's data rows, and
* ``render(data)`` — format them as the paper-style ASCII table,

plus a ``run(runner)`` convenience that does both.  ``python -m
repro.experiments`` executes the full battery and prints everything;
``benchmarks/`` wraps each module in a pytest-benchmark.
"""

from repro.experiments.common import ExperimentRunner

__all__ = ["ExperimentRunner"]
