"""Fig. 1 — dynamic barrier counts at 8 and 32 threads.

The paper's observation: barrier counts are large (up to thousands) and
*invariant* in thread count, which is what makes inter-barrier regions
fixed units of work.
"""

from __future__ import annotations

from repro.experiments import paper_data
from repro.experiments.common import CORE_COUNTS, ExperimentRunner
from repro.util.tables import format_table


def compute(runner: ExperimentRunner) -> list[dict]:
    """One row per benchmark: measured counts at both thread counts."""
    rows = []
    for name in runner.benchmarks:
        counts = {
            nt: runner.workload(name, nt).barrier_count for nt in CORE_COUNTS
        }
        rows.append(
            {
                "benchmark": name,
                "barriers_8": counts[8],
                "barriers_32": counts[32],
                "paper": paper_data.BARRIER_COUNTS[name],
                "invariant": counts[8] == counts[32],
            }
        )
    return rows


def render(rows: list[dict]) -> str:
    """Paper-style table with the published counts alongside."""
    table = format_table(
        ["benchmark", "8 threads", "32 threads", "paper", "thread-invariant"],
        [
            [r["benchmark"], r["barriers_8"], r["barriers_32"], r["paper"],
             "yes" if r["invariant"] else "NO"]
            for r in rows
        ],
        title="Fig. 1 — dynamically executed barriers",
    )
    return table


def run(runner: ExperimentRunner) -> str:
    """Compute and render."""
    return render(compute(runner))
