"""Fig. 3 — aggregate IPC trace vs BarrierPoint reconstruction (npb-ft, 32).

The paper plots per-region aggregate IPC over time for the unsampled run,
the trace rebuilt by substituting each region's representative, and the
selected barrierpoints.  We report the two series, their agreement
(weighted mean absolute deviation and correlation), and the barrierpoint
positions.
"""

from __future__ import annotations

import numpy as np

from repro.core.reconstruction import reconstructed_ipc_trace
from repro.experiments.common import ExperimentRunner
from repro.util.tables import format_table

BENCHMARK = "npb-ft"
CORES = 32


def compute(runner: ExperimentRunner) -> dict:
    """IPC series, reconstruction and selected barrierpoints."""
    full = runner.full(BENCHMARK, CORES)
    selection = runner.selection(BENCHMARK, CORES)
    actual = np.array([r.aggregate_ipc for r in full.regions])
    recon = reconstructed_ipc_trace(selection, full.regions)
    durations = np.array([r.cycles for r in full.regions])
    weights = durations / durations.sum()
    mad = float(np.sum(np.abs(actual - recon) * weights))
    if actual.std() > 0 and recon.std() > 0:
        corr = float(np.corrcoef(actual, recon)[0, 1])
    else:  # pragma: no cover - degenerate constant series
        corr = 1.0
    return {
        "actual_ipc": actual,
        "reconstructed_ipc": recon,
        "barrierpoints": selection.selected_regions,
        "weighted_mad": mad,
        "correlation": corr,
    }


def render(data: dict) -> str:
    """Condensed view of the two IPC series plus agreement stats."""
    actual = data["actual_ipc"]
    recon = data["reconstructed_ipc"]
    marks = set(data["barrierpoints"])
    rows = [
        [i, f"{actual[i]:.2f}", f"{recon[i]:.2f}",
         "*" if i in marks else ""]
        for i in range(len(actual))
    ]
    table = format_table(
        ["region", "IPC (full)", "IPC (reconstructed)", "barrierpoint"],
        rows,
        title=f"Fig. 3 — {BENCHMARK} aggregate IPC on {CORES} cores",
    )
    summary = (
        f"\nweighted |IPC - reconstruction|: {data['weighted_mad']:.3f}"
        f"\ncorrelation(full, reconstructed): {data['correlation']:.4f}"
        f"\nselected barrierpoints: {list(data['barrierpoints'])}"
    )
    return table + summary


def run(runner: ExperimentRunner) -> str:
    """Compute and render."""
    return render(compute(runner))
