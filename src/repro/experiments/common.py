"""Shared infrastructure for the experiment harness.

The expensive artifacts — functional profiles and full detailed runs per
(benchmark, core count) — are computed once, memoized on the runner, *and*
persisted through the content-keyed :class:`~repro.store.ArtifactStore`,
so regenerating figures after a partial failure, in another process, or
after a figure-only code change reuses everything whose inputs are
unchanged instead of paying the full two-pass cost again.

The per-(benchmark, core-count) passes are embarrassingly parallel;
:meth:`ExperimentRunner.prefetch` fans them out across a process pool.
Every pass is a deterministic function of ``(benchmark, threads, scale)``,
so results are byte-identical regardless of worker count or scheduling.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.config import (
    MachineConfig,
    SimPointConfig,
    scaled,
    simpoint_defaults,
    table1_8core,
    table1_32core,
)
from repro.machines import get_machine
from repro.core.pipeline import BarrierPointPipeline, PipelineResult
from repro.core.selection import BarrierPointSelection
from repro.core.signatures import SIGNATURE_VARIANTS, SignatureConfig
from repro.errors import ConfigError
from repro.profiling.profiler import RegionProfile
from repro.sim.machine import FullRunResult
from repro.store import ArtifactStore, code_fingerprint
from repro.workloads import WORKLOAD_NAMES, Workload, get_workload

CORE_COUNTS = (8, 32)

#: Default machine set of the cross-architecture sweep (``repro sweep``):
#: the paper's two Table I machines plus one of each new hierarchy
#: backend.  The Table I entries share artifact-store keys with the
#: battery figures, so a sweep after a battery run (or vice versa) reuses
#: those passes.
DEFAULT_SWEEP_MACHINES = (
    "table1-8core",
    "table1-32core",
    "table1-8core-noninclusive",
    "table1-8core-prefetch",
)


def experiment_machine(num_threads: int) -> MachineConfig:
    """The evaluation machine for a core count (scaled Table I config)."""
    if num_threads == 8:
        return scaled(table1_8core())
    if num_threads == 32:
        return scaled(table1_32core())
    raise ConfigError(f"evaluation uses 8 or 32 cores, not {num_threads}")


def sweep_machine(name: str) -> MachineConfig:
    """The cache-scaled evaluation variant of a registry machine.

    Applies the same :func:`~repro.config.scaled` transform the battery's
    evaluation machines use, so ``sweep_machine("table1-8core")`` equals
    ``experiment_machine(8)`` — and shares its artifact-store keys.

    Args:
        name: A machine-registry name (see :func:`repro.machines.machine_names`).

    Returns:
        The scaled machine configuration.
    """
    return scaled(get_machine(name))


def _resolve_machine(num_threads: int, machine: str | None) -> MachineConfig:
    """Evaluation machine for a pass: registry name, or the nt default."""
    if machine is None:
        return experiment_machine(num_threads)
    return sweep_machine(machine)


def _default_workers() -> int:
    """Worker-count default: ``$REPRO_WORKERS``, else 0 (in-process)."""
    return int(os.environ.get("REPRO_WORKERS", "0"))


def _workload_identity(name: str) -> str:
    """The store-key identity of a workload name.

    Registry and fuzzer names identify their traces by construction (the
    code fingerprint covers generator changes).  Trace-backed names
    (``trace:<path>``) identify by the trace file's *content* fingerprint
    instead of its path, so moving or re-recording a trace behaves
    correctly: same bytes hit, different bytes miss.
    """
    from repro.workloads import TRACE_NAME_PREFIX

    if name.startswith(TRACE_NAME_PREFIX):
        from repro.trace.capture import trace_fingerprint

        return f"trace:{trace_fingerprint(name[len(TRACE_NAME_PREFIX):])}"
    return name


def _pair_key(
    scale: float, name: str, num_threads: int, machine: str | None = None
) -> str:
    """Artifact key for one (benchmark, machine) pass at ``scale``.

    The key covers the workload identity and scale, the evaluation
    machine's full configuration (which fingerprints its hierarchy
    backend too), and the package code fingerprint — everything a profile
    or full run is a deterministic function of.
    """
    return ArtifactStore.derive_key(
        workload=_workload_identity(name),
        threads=num_threads,
        scale=scale,
        machine=_resolve_machine(num_threads, machine).fingerprint(),
        code=code_fingerprint(),
    )


def _compute_pair(task: tuple) -> tuple[str, int, str | None, dict]:
    """Pool worker: compute the expensive passes for one (benchmark, machine).

    Args:
        task: ``(name, num_threads, scale, store_root, want_profiles,
            want_full, machine)``.  ``store_root`` of ``None`` skips
            persistence; ``machine`` of ``None`` selects the default
            evaluation machine for ``num_threads``.

    Returns:
        ``(name, num_threads, machine, states)`` where ``states`` maps
        ``"profiles"`` to a list of :meth:`RegionProfile.to_state` dicts
        and/or ``"full"`` to a :meth:`FullRunResult.to_state` dict.
    """
    name, num_threads, scale, store_root, want_profiles, want_full, machine = task
    workload = get_workload(name, num_threads, scale)
    pipe = BarrierPointPipeline(_resolve_machine(num_threads, machine))
    store = ArtifactStore(root=store_root) if store_root is not None else None
    key = _pair_key(scale, name, num_threads, machine)
    states: dict = {}
    if want_profiles:
        profiles = pipe.profile(workload)
        states["profiles"] = [p.to_state() for p in profiles]
        if store is not None:
            store.put("profiles", key, states["profiles"])
    if want_full:
        full = pipe.full_run(workload)
        states["full"] = full.to_state()
        if store is not None:
            store.put("full", key, states["full"])
    return name, num_threads, machine, states


@dataclass
class ExperimentRunner:
    """Memoizing, store-backed driver for all experiments.

    ``scale`` shrinks workloads uniformly (1.0 = the calibrated default
    used for all reported numbers; tests use smaller values for speed).
    ``benchmarks`` defaults to the paper's full suite.  ``workers`` > 1
    enables the process-parallel prefetch of profile/full-run passes
    (default from ``$REPRO_WORKERS``; results are identical either way).
    ``store`` persists the expensive artifacts across processes and runs;
    pass ``None`` to keep everything in memory.  ``sweep_machines`` names
    the registry machines the cross-architecture sweep iterates.
    """

    scale: float = 1.0
    benchmarks: tuple[str, ...] = WORKLOAD_NAMES
    simpoint: SimPointConfig = field(default_factory=simpoint_defaults)
    workers: int = field(default_factory=_default_workers)
    store: ArtifactStore | None = field(default_factory=ArtifactStore)
    sweep_machines: tuple[str, ...] = DEFAULT_SWEEP_MACHINES
    _workloads: dict = field(default_factory=dict, repr=False)
    _profiles: dict = field(default_factory=dict, repr=False)
    _fulls: dict = field(default_factory=dict, repr=False)
    _selections: dict = field(default_factory=dict, repr=False)
    _warmups: dict = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    # Store plumbing
    # ------------------------------------------------------------------

    def fingerprint(self) -> str:
        """Digest of the runner's result-determining configuration.

        Covers scale, benchmark suite, and SimPoint parameters — the
        inputs a rendered figure depends on beyond the code itself.
        ``workers`` and the store are excluded: they never change
        results.  ``sweep_machines`` is excluded too — only the sweep
        figure consults it, and its cache key mixes the machine set in
        separately (see ``battery.figure_key``) so a ``--machines``
        change cannot spuriously invalidate the battery figures.
        """
        return ArtifactStore.derive_key(
            scale=self.scale,
            benchmarks=[_workload_identity(b) for b in self.benchmarks],
            simpoint=self.simpoint.fingerprint(),
        )

    def _store_get(self, kind: str, key: str) -> object | None:
        """Store lookup that tolerates a disabled/absent store."""
        if self.store is None:
            return None
        return self.store.get(kind, key)

    def _store_put(self, kind: str, key: str, payload: object) -> None:
        """Store write that tolerates a disabled/absent store."""
        if self.store is not None:
            self.store.put(kind, key, payload)

    # ------------------------------------------------------------------
    # Parallel prefetch
    # ------------------------------------------------------------------

    def sweep_pairs(
        self,
        machines: tuple[str, ...] | None = None,
        benchmarks: tuple[str, ...] | None = None,
    ) -> list[tuple[str, int, str]]:
        """The (benchmark, threads, machine) passes a sweep needs.

        Args:
            machines: Registry machine names (default ``sweep_machines``).
            benchmarks: Workload names (default ``benchmarks``).

        Returns:
            One triple per (benchmark, machine) cell; each machine runs
            the workload at its own full core count.
        """
        machines = self.sweep_machines if machines is None else machines
        benchmarks = self.benchmarks if benchmarks is None else benchmarks
        return [
            (b, get_machine(m).num_cores, m)
            for b in benchmarks
            for m in machines
        ]

    def prefetch(
        self,
        pairs: list[tuple] | None = None,
        kinds: tuple[str, ...] = ("profiles", "full"),
    ) -> int:
        """Fan the missing profile/full-run passes out across processes.

        Every (benchmark, machine) pass not already memoized or in the
        store is computed in a :class:`~concurrent.futures.ProcessPoolExecutor`
        with ``self.workers`` workers; results land in the in-memory memo
        and (when a store is configured) on disk, where other processes
        can reuse them.  Each pass is deterministic, so the outcome is
        identical to computing serially.

        Args:
            pairs: ``(benchmark, num_threads)`` pairs — or ``(benchmark,
                num_threads, machine_name)`` triples for sweep passes on
                registry machines — to cover; defaults to ``benchmarks``
                × ``CORE_COUNTS`` on the default evaluation machines.
            kinds: Which pass kinds to cover, from ``("profiles",
                "full")``; callers that know they only need one kind
                (e.g. selection-only figures) restrict the fan-out.

        Returns:
            Number of passes computed by the pool (0 when everything was
            already available or ``workers`` <= 1).
        """
        if pairs is None:
            pairs = [(b, nt) for b in self.benchmarks for nt in CORE_COUNTS]
        normalized = [
            pair if len(pair) == 3 else (*pair, None) for pair in pairs
        ]
        tasks = []
        store_root = None
        if self.store is not None and self.store.enabled:
            store_root = str(self.store.root)
        for name, num_threads, machine in normalized:
            memo_key = (name, num_threads, machine)
            akey = _pair_key(self.scale, name, num_threads, machine)
            want_profiles = "profiles" in kinds and (
                memo_key not in self._profiles
                and not (
                    self.store is not None
                    and self.store.has("profiles", akey)
                )
            )
            want_full = "full" in kinds and (
                memo_key not in self._fulls
                and not (
                    self.store is not None and self.store.has("full", akey)
                )
            )
            if want_profiles or want_full:
                tasks.append(
                    (name, num_threads, self.scale, store_root,
                     want_profiles, want_full, machine)
                )
        if not tasks or self.workers <= 1:
            return 0
        from repro.machines import MACHINE_SPECS

        runtime_only = sorted({
            task[6] for task in tasks
            if task[6] is not None and task[6] not in MACHINE_SPECS
        })
        if runtime_only:
            # Runtime registrations are per-process; pool workers would
            # fail with a misleading "unknown machine".  Fail fast here.
            raise ConfigError(
                f"machines {runtime_only} are runtime-registered and not "
                f"visible to worker processes; run with workers <= 1 or "
                f"add them to repro.machines.specs.MACHINE_SPECS"
            )
        computed = 0
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            for name, num_threads, machine, states in pool.map(
                _compute_pair, tasks
            ):
                memo_key = (name, num_threads, machine)
                if "profiles" in states:
                    self._profiles[memo_key] = [
                        RegionProfile.from_state(s) for s in states["profiles"]
                    ]
                    computed += 1
                if "full" in states:
                    self._fulls[memo_key] = FullRunResult.from_state(
                        states["full"]
                    )
                    computed += 1
        return computed

    # ------------------------------------------------------------------
    # Cached building blocks
    # ------------------------------------------------------------------

    def workload(self, name: str, num_threads: int) -> Workload:
        """Workload instance (cached)."""
        key = (name, num_threads)
        if key not in self._workloads:
            self._workloads[key] = get_workload(name, num_threads, self.scale)
        return self._workloads[key]

    def pipeline(
        self, num_threads: int, signature: SignatureConfig | None = None,
        simpoint: SimPointConfig | None = None,
        machine: str | None = None,
    ) -> BarrierPointPipeline:
        """A pipeline bound to an evaluation machine.

        Args:
            num_threads: Core count selecting the default evaluation
                machine (ignored when ``machine`` is given).
            signature: Signature variant override.
            simpoint: SimPoint parameter override.
            machine: Registry machine name (sweep passes); ``None`` keeps
                the default Table I machine for ``num_threads``.

        Returns:
            The configured pipeline.
        """
        return BarrierPointPipeline(
            _resolve_machine(num_threads, machine),
            signature=signature,
            simpoint=simpoint or self.simpoint,
        )

    def profiles(
        self, name: str, num_threads: int, machine: str | None = None
    ) -> list[RegionProfile]:
        """Functional profiles (one expensive pass; memo + store cached)."""
        key = (name, num_threads, machine)
        if key not in self._profiles:
            akey = _pair_key(self.scale, name, num_threads, machine)
            states = self._store_get("profiles", akey)
            if states is not None:
                self._profiles[key] = [
                    RegionProfile.from_state(s) for s in states
                ]
            else:
                pipe = self.pipeline(num_threads, machine=machine)
                computed = pipe.profile(self.workload(name, num_threads))
                self._store_put(
                    "profiles", akey, [p.to_state() for p in computed]
                )
                self._profiles[key] = computed
        return self._profiles[key]

    def full(
        self, name: str, num_threads: int, machine: str | None = None
    ) -> FullRunResult:
        """Full detailed reference run (one expensive pass; memo + store)."""
        key = (name, num_threads, machine)
        if key not in self._fulls:
            akey = _pair_key(self.scale, name, num_threads, machine)
            state = self._store_get("full", akey)
            if state is not None:
                self._fulls[key] = FullRunResult.from_state(state)
            else:
                pipe = self.pipeline(num_threads, machine=machine)
                computed = pipe.full_run(self.workload(name, num_threads))
                self._store_put("full", akey, computed.to_state())
                self._fulls[key] = computed
        return self._fulls[key]

    def selection(
        self,
        name: str,
        num_threads: int,
        variant: str = "combine",
        max_k: int | None = None,
        machine: str | None = None,
    ) -> BarrierPointSelection:
        """Barrierpoint selection for a signature variant (cached)."""
        key = (name, num_threads, variant, max_k, machine)
        if key not in self._selections:
            signature = SIGNATURE_VARIANTS[variant]
            simpoint = self.simpoint
            if max_k is not None:
                from dataclasses import replace

                simpoint = replace(simpoint, max_k=max_k)
            pipe = self.pipeline(num_threads, signature, simpoint, machine)
            self._selections[key] = pipe.select(
                self.workload(name, num_threads),
                self.profiles(name, num_threads, machine),
            )
        return self._selections[key]

    # ------------------------------------------------------------------
    # Evaluations
    # ------------------------------------------------------------------

    def evaluate_perfect(
        self,
        name: str,
        num_threads: int,
        variant: str = "combine",
        max_k: int | None = None,
        scaling: bool = True,
    ) -> PipelineResult:
        """Perfect-warmup evaluation (section VI-A protocol)."""
        sel = self.selection(name, num_threads, variant, max_k)
        pipe = self.pipeline(num_threads, SIGNATURE_VARIANTS[variant])
        return pipe.evaluate_perfect(sel, self.full(name, num_threads), scaling)

    def evaluate_warmup(
        self, name: str, num_threads: int, warmup_kind: str = "mru"
    ) -> PipelineResult:
        """Independent barrierpoint simulation with warmup (Fig. 7); cached."""
        key = (name, num_threads, warmup_kind)
        if key not in self._warmups:
            sel = self.selection(name, num_threads)
            pipe = self.pipeline(num_threads)
            self._warmups[key] = pipe.evaluate_with_warmup(
                sel,
                self.workload(name, num_threads),
                self.full(name, num_threads),
                warmup_kind,
            )
        return self._warmups[key]
