"""Shared infrastructure for the experiment harness.

The expensive artifacts — functional profiles and full detailed runs per
(benchmark, core count) — are computed once, memoized on the runner, *and*
persisted through the content-keyed :class:`~repro.store.ArtifactStore`,
so regenerating figures after a partial failure, in another process, or
after a figure-only code change reuses everything whose inputs are
unchanged instead of paying the full two-pass cost again.

The per-(benchmark, core-count) passes are embarrassingly parallel;
:meth:`ExperimentRunner.prefetch` fans them out across a process pool.
Every pass is a deterministic function of ``(benchmark, threads, scale)``,
so results are byte-identical regardless of worker count or scheduling.

The fan-out is fault tolerant (see ``docs/robustness.md``): failed tasks
are retried with exponential backoff and deterministic jitter under a
bounded attempt budget (:class:`RetryPolicy`), each task runs under an
optional in-worker timeout, a worker crash (``BrokenProcessPool``)
respawns the pool and resubmits only the incomplete tasks, repeated pool
failures degrade gracefully to serial in-process execution, and every
completed pass is checkpointed to a crash-tolerant journal so a killed
battery resumed with ``resume=True`` recomputes only unfinished work.
Because every pass is deterministic, all recovery paths preserve the
byte-identical-to-serial guarantee.
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.config import (
    MachineConfig,
    SimPointConfig,
    scaled,
    simpoint_defaults,
    table1_8core,
    table1_32core,
)
from repro.machines import get_machine
from repro.core.pipeline import BarrierPointPipeline, PipelineResult
from repro.core.selection import BarrierPointSelection
from repro.core.signatures import SIGNATURE_VARIANTS, SignatureConfig
from repro.errors import (
    ConfigError,
    RetryExhaustedError,
    TaskTimeoutError,
    WorkloadError,
)
from repro.experiments.journal import RunJournal
from repro.faults import mark_process_sacrificial, maybe_inject
from repro.profiling.profiler import RegionProfile
from repro.sim.machine import FullRunResult
from repro.store import ArtifactStore, code_fingerprint
from repro.util import jit
from repro.workloads import WORKLOAD_NAMES, Workload, get_workload

CORE_COUNTS = (8, 32)

#: Default machine set of the cross-architecture sweep (``repro sweep``):
#: the paper's two Table I machines plus one of each new hierarchy
#: backend.  The Table I entries share artifact-store keys with the
#: battery figures, so a sweep after a battery run (or vice versa) reuses
#: those passes.
DEFAULT_SWEEP_MACHINES = (
    "table1-8core",
    "table1-32core",
    "table1-8core-noninclusive",
    "table1-8core-prefetch",
)


def experiment_machine(num_threads: int) -> MachineConfig:
    """The evaluation machine for a core count (scaled Table I config)."""
    if num_threads == 8:
        return scaled(table1_8core())
    if num_threads == 32:
        return scaled(table1_32core())
    raise ConfigError(f"evaluation uses 8 or 32 cores, not {num_threads}")


def sweep_machine(name: str) -> MachineConfig:
    """The cache-scaled evaluation variant of a registry machine.

    Applies the same :func:`~repro.config.scaled` transform the battery's
    evaluation machines use, so ``sweep_machine("table1-8core")`` equals
    ``experiment_machine(8)`` — and shares its artifact-store keys.

    Args:
        name: A machine-registry name (see :func:`repro.machines.machine_names`).

    Returns:
        The scaled machine configuration.
    """
    return scaled(get_machine(name))


def _resolve_machine(num_threads: int, machine: str | None) -> MachineConfig:
    """Evaluation machine for a pass: registry name, or the nt default."""
    if machine is None:
        return experiment_machine(num_threads)
    return sweep_machine(machine)


def _default_workers() -> int:
    """Worker-count default: ``$REPRO_WORKERS``, else 0 (in-process)."""
    return int(os.environ.get("REPRO_WORKERS", "0"))


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/backoff/timeout budget for the runner's expensive passes.

    Attributes:
        max_retries: Retries after the first attempt (so a task runs at
            most ``max_retries + 1`` times).
        backoff_base: First-retry backoff in seconds; doubles per retry.
        backoff_max: Backoff ceiling in seconds.
        jitter: Extra backoff fraction in [0, 1], drawn deterministically
            from the task key and attempt (reproducible, but decorrelated
            across tasks).
        timeout: Per-task time budget in seconds, enforced *inside* the
            task via ``SIGALRM`` (``None`` = no limit; a no-op on
            platforms without ``SIGALRM``).
        max_pool_failures: Pool crashes (``BrokenProcessPool``) tolerated
            before degrading to serial in-process execution.
    """

    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_max: float = 2.0
    jitter: float = 0.5
    timeout: float | None = None
    max_pool_failures: int = 2

    @classmethod
    def from_env(cls, **overrides) -> RetryPolicy:
        """Policy with ``$REPRO_TASK_TIMEOUT``/``$REPRO_MAX_RETRIES`` defaults.

        Args:
            **overrides: Field overrides that win over the environment.

        Returns:
            The configured policy.
        """
        kwargs: dict = {}
        if os.environ.get("REPRO_TASK_TIMEOUT"):
            kwargs["timeout"] = float(os.environ["REPRO_TASK_TIMEOUT"])
        if os.environ.get("REPRO_MAX_RETRIES"):
            kwargs["max_retries"] = int(os.environ["REPRO_MAX_RETRIES"])
        kwargs.update(overrides)
        return cls(**kwargs)

    def backoff_seconds(self, key: str, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based) of task ``key``.

        Exponential in the attempt with deterministic jitter: the same
        (key, attempt) always waits the same time, but different tasks
        retrying together are decorrelated instead of thundering in
        lockstep.

        Args:
            key: Stable task identity.
            attempt: 1-based retry attempt.

        Returns:
            Seconds to sleep.
        """
        base = min(
            self.backoff_max, self.backoff_base * (2 ** max(0, attempt - 1))
        )
        digest = hashlib.sha256(f"{key}|{attempt}".encode()).digest()
        fraction = int.from_bytes(digest[:8], "little") / 2**64
        return base * (1.0 + self.jitter * fraction)


#: Exceptions retrying cannot fix: the configuration or workload request
#: itself is wrong, so every attempt would fail identically.
_NON_RETRYABLE = (ConfigError, WorkloadError)


def _is_retryable(exc: BaseException) -> bool:
    """Whether a failed attempt is worth retrying."""
    return isinstance(exc, Exception) and not isinstance(exc, _NON_RETRYABLE)


@dataclass
class TaskReport:
    """End-of-run disposition of one fanned-out task.

    Attributes:
        label: Human identity of the task (e.g. ``"npb-is/8t"`` for a
            battery pass, ``"shard[3:6]"`` for a shard replay).
        attempts: Attempts actually executed.
        disposition: ``"completed"``, ``"failed"``, or ``"resumed"``
            (skipped because the checkpoint journal had it).
        errors: Stringified error per failed attempt, in order (these
            are the fault sites hit, when the failures were injected).
    """

    label: str
    attempts: int = 0
    disposition: str = "pending"
    errors: list[str] = field(default_factory=list)


@dataclass
class RunReport:
    """Structured end-of-run failure/recovery report for one runner.

    Accumulated across :meth:`ExperimentRunner.prefetch` calls; rendered
    at the end of ``repro run`` when anything noteworthy happened.

    Attributes:
        tasks: Per-pass reports (only passes the fan-out touched).
        pool_failures: Worker-pool crashes survived.
        serial_fallback: Whether execution degraded to serial.
        resumed: Passes skipped thanks to the checkpoint journal.
        notes: Environment degradations worth surfacing (e.g. the JIT
            kernel tier was requested but numba is unavailable).
    """

    tasks: list[TaskReport] = field(default_factory=list)
    pool_failures: int = 0
    serial_fallback: bool = False
    resumed: int = 0
    notes: list[str] = field(default_factory=list)

    def note(self, message: str | None) -> None:
        """Append a degradation note (idempotent; ``None`` ignored)."""
        if message is not None and message not in self.notes:
            self.notes.append(message)

    def noteworthy(self) -> bool:
        """Whether there is anything beyond a clean first-try run."""
        return bool(
            self.pool_failures
            or self.serial_fallback
            or self.resumed
            or self.notes
            or any(t.attempts > 1 or t.disposition == "failed"
                   for t in self.tasks)
        )

    def to_dict(self) -> dict:
        """JSON-ready form of the report."""
        return {
            "pool_failures": self.pool_failures,
            "serial_fallback": self.serial_fallback,
            "resumed": self.resumed,
            "notes": list(self.notes),
            "tasks": [
                {
                    "task": t.label,
                    "attempts": t.attempts,
                    "disposition": t.disposition,
                    "errors": list(t.errors),
                }
                for t in self.tasks
            ],
        }

    def render(self) -> str:
        """Human summary (one line per touched pass)."""
        lines = [
            f"run report: {self.resumed} resumed, "
            f"{self.pool_failures} pool failure(s)"
            + (", degraded to serial" if self.serial_fallback else "")
        ]
        for message in self.notes:
            lines.append(f"  note: {message}")
        for t in self.tasks:
            detail = f"  {t.label}: {t.disposition} after {t.attempts} attempt(s)"
            if t.errors:
                detail += f" ({'; '.join(t.errors)})"
            lines.append(detail)
        return "\n".join(lines)


@dataclass(frozen=True)
class FanoutTask:
    """One unit of work for :class:`FaultTolerantFanout`.

    Attributes:
        key: Stable task identity — the retry-backoff/journal key (for
            battery passes this is the artifact-store key; for trace
            shards it covers the shard's content fingerprint and range).
        label: Human identity used in reports and error messages.
        args: Positional arguments of the worker function; the fan-out
            appends ``(attempt, timeout)`` per attempt, so workers can
            report fault-injection attempts and enforce time budgets.
        meta: Opaque caller bookkeeping, handed back untouched with the
            task in the ``on_result`` callback (never pickled).
    """

    key: str
    label: str
    args: tuple
    meta: object = None


@dataclass
class _TaskState:
    """Parent-side bookkeeping for one in-flight fan-out task."""

    task: FanoutTask
    report: TaskReport
    attempt: int = 0


def _task_fault_key(name: str, num_threads: int, machine: str | None) -> str:
    """The ``runner.task`` fault-site identity of one pass."""
    suffix = f"@{machine}" if machine else ""
    return f"{name}/{num_threads}t{suffix}"


def _worker_init() -> None:
    """Pool-worker initializer: workers are expendable for crash faults."""
    mark_process_sacrificial()


@contextmanager
def _time_limit(seconds: float | None, what: str):
    """Enforce a wall-clock budget on the enclosed block via ``SIGALRM``.

    Raises :class:`~repro.errors.TaskTimeoutError` when the budget is
    exceeded.  A no-op when ``seconds`` is ``None`` or the platform has
    no ``SIGALRM`` (the timeout is then best-effort-unsupported).

    Args:
        seconds: Time budget, or ``None`` for unlimited.
        what: Task description for the error message.
    """
    if seconds is None or not hasattr(signal, "SIGALRM"):
        yield
        return

    def _on_alarm(signum, frame):
        """Translate the alarm into the runner's timeout error."""
        raise TaskTimeoutError(
            f"task {what} exceeded its {seconds:g}s time budget"
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@dataclass
class FaultTolerantFanout:
    """Reusable fault-tolerant task fan-out over a process pool.

    The execution engine behind :meth:`ExperimentRunner.prefetch`,
    :class:`repro.trace.shard.ShardedReplay`, and the corpus conformance
    sweep: tasks run in a :class:`~concurrent.futures.ProcessPoolExecutor`
    (or serially in-process when ``workers`` <= 1), failed attempts are
    retried with deterministic backoff under :class:`RetryPolicy`, a
    broken pool is respawned with only the incomplete tasks resubmitted,
    repeated pool failures degrade to serial execution, and a task that
    exhausts its budget raises
    :class:`~repro.errors.RetryExhaustedError` only after every other
    task has been drained.

    ``fn`` must be a picklable module-level callable taking one tuple:
    ``(*task.args, attempt, timeout)``.  It is responsible for honoring
    the timeout (see :func:`_time_limit`) and reporting ``attempt`` to
    fault-injection hooks, the convention :func:`compute_pair` and the
    shard-replay workers follow.

    Attributes:
        fn: The worker function.
        workers: Process count; <= 1 executes serially in-process.
        retry: Retry/backoff/timeout budget.
        report: Structured report accumulating per-task dispositions,
            pool failures, and the serial-fallback flag.
    """

    fn: object
    workers: int = 0
    retry: RetryPolicy = field(default_factory=RetryPolicy.from_env)
    report: RunReport = field(default_factory=RunReport)

    def run(self, tasks: list[FanoutTask], on_result=None) -> dict:
        """Execute every task to completion, with retries and recovery.

        Args:
            tasks: The work units.  One :class:`TaskReport` per task is
                appended to :attr:`report` up front.
            on_result: Optional callback ``(task, result)`` invoked in
                completion order, in the parent process, once per
                successfully completed task (e.g. to memoize/journal).

        Returns:
            ``{task.key: result}`` for every completed task.

        Raises:
            RetryExhaustedError: After draining everything, when any
                task ran out of attempts.
        """
        states = [_TaskState(task=t, report=TaskReport(label=t.label))
                  for t in tasks]
        self.report.tasks.extend(s.report for s in states)
        results: dict = {}
        failed: list[_TaskState] = []
        if self.workers <= 1:
            self._run_serial(states, results, on_result, failed)
        else:
            self._run_pool(states, results, on_result, failed)
        if failed:
            raise RetryExhaustedError(
                "gave up on "
                + ", ".join(
                    f"{s.report.label} after {s.report.attempts} attempt(s)"
                    f" [{s.report.errors[-1]}]"
                    for s in failed
                )
            )
        return results

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _attempt_args(self, state: _TaskState) -> tuple:
        """The worker-function argument tuple for a task's next attempt."""
        return (*state.task.args, state.attempt, self.retry.timeout)

    def _record_failure(self, state: _TaskState, exc: BaseException) -> bool:
        """Charge a failed attempt; return whether to retry.

        Args:
            state: The failed task (its attempt counter is advanced).
            exc: The failure.

        Returns:
            ``True`` when the task should be resubmitted.
        """
        state.attempt += 1
        state.report.attempts = state.attempt
        state.report.errors.append(f"{type(exc).__name__}: {exc}")
        if not _is_retryable(exc) or state.attempt > self.retry.max_retries:
            state.report.disposition = "failed"
            return False
        time.sleep(self.retry.backoff_seconds(state.task.key, state.attempt))
        return True

    def _complete(
        self, state: _TaskState, result: object, results: dict, on_result
    ) -> None:
        """Absorb one completed task: report, collect, notify."""
        state.report.attempts = state.attempt + 1
        state.report.disposition = "completed"
        results[state.task.key] = result
        if on_result is not None:
            on_result(state.task, result)

    def _run_serial(
        self,
        states: list[_TaskState],
        results: dict,
        on_result,
        failed: list[_TaskState],
    ) -> int:
        """Serial executor: finish tasks in-process with retries.

        ``crash`` faults degrade to exceptions here (the parent process
        is not sacrificial), so even a crash-faulting plan completes.

        Args:
            states: Tasks still to run.
            results: Sink for completed results (keyed by task key).
            on_result: Completion callback (see :meth:`run`).
            failed: Sink for tasks that exhaust their budget.

        Returns:
            Number of tasks completed.
        """
        completed = 0
        for state in states:
            while True:
                try:
                    result = self.fn(self._attempt_args(state))
                except Exception as exc:
                    if self._record_failure(state, exc):
                        continue
                    failed.append(state)
                    break
                self._complete(state, result, results, on_result)
                completed += 1
                break
        return completed

    def _run_pool(
        self,
        states: list[_TaskState],
        results: dict,
        on_result,
        failed: list[_TaskState],
    ) -> None:
        """Drive the process-pool fan-out with retry and pool recovery."""
        pending = deque(states)
        while pending:
            if self.report.pool_failures > self.retry.max_pool_failures:
                # The pool keeps dying — stop burning workers and finish
                # the remainder serially in this process.
                self.report.serial_fallback = True
                self._run_serial(list(pending), results, on_result, failed)
                pending.clear()
                break
            pool = ProcessPoolExecutor(
                max_workers=self.workers, initializer=_worker_init
            )
            broken = False
            try:
                futures = {
                    pool.submit(self.fn, self._attempt_args(s)): s
                    for s in pending
                }
                pending.clear()
                while futures:
                    done, _ = wait(
                        list(futures), return_when=FIRST_COMPLETED
                    )
                    for future in done:
                        state = futures.pop(future)
                        try:
                            result = future.result()
                        except BrokenProcessPool:
                            # A worker died (crash fault, OOM kill, ...).
                            # Charge the attempt to every task still in
                            # flight — the culprit is indistinguishable —
                            # and respawn for the incomplete remainder.
                            broken = True
                            self.report.pool_failures += 1
                            victims = [state, *futures.values()]
                            futures.clear()
                            for victim in victims:
                                if self._record_failure(
                                    victim, BrokenProcessPool(
                                        "worker process died"
                                    )
                                ):
                                    pending.append(victim)
                                else:
                                    failed.append(victim)
                            break
                        except Exception as exc:
                            if self._record_failure(state, exc):
                                futures[pool.submit(
                                    self.fn, self._attempt_args(state)
                                )] = state
                            else:
                                failed.append(state)
                        else:
                            self._complete(state, result, results, on_result)
                    if broken:
                        break
            finally:
                # cancel_futures so a KeyboardInterrupt (or fatal error)
                # tears the pool down instead of waiting out queued work.
                pool.shutdown(wait=not broken, cancel_futures=True)


def _workload_identity(name: str) -> str:
    """The store-key identity of a workload name.

    Registry and fuzzer names identify their traces by construction (the
    code fingerprint covers generator changes).  Trace-backed names
    (``trace:<path>``) identify by the trace file's *content* fingerprint
    instead of its path, so moving or re-recording a trace behaves
    correctly: same bytes hit, different bytes miss.
    """
    from repro.workloads import TRACE_NAME_PREFIX

    if name.startswith(TRACE_NAME_PREFIX):
        from repro.trace.capture import trace_fingerprint

        return f"trace:{trace_fingerprint(name[len(TRACE_NAME_PREFIX):])}"
    return name


def pair_key(
    scale: float, name: str, num_threads: int, machine: str | None = None
) -> str:
    """Artifact key for one (benchmark, machine) pass at ``scale``.

    The key covers the workload identity and scale, the evaluation
    machine's full configuration (which fingerprints its hierarchy
    backend too), and the package code fingerprint — everything a profile
    or full run is a deterministic function of.

    Public fan-out submission hook: callers outside the runner (the
    ``repro serve`` supervisor) use this to predict where a pass's
    artifacts land — for warm-store short-circuiting and for coalescing
    identical requests onto one computation.
    """
    return ArtifactStore.derive_key(
        workload=_workload_identity(name),
        threads=num_threads,
        scale=scale,
        machine=_resolve_machine(num_threads, machine).fingerprint(),
        code=code_fingerprint(),
    )


def compute_pair(task: tuple) -> tuple[str, int, str | None, dict]:
    """Pool worker: compute the expensive passes for one (benchmark, machine).

    Public fan-out submission hook: a picklable module-level callable in
    the :class:`FaultTolerantFanout` worker convention, shared by
    :meth:`ExperimentRunner.prefetch` and the ``repro serve`` job
    supervisor — both submit the same function, so a served job inherits
    the retry/timeout/fault-injection semantics (and the byte-identical
    results) of the batch path.

    Args:
        task: ``(name, num_threads, scale, store_root, want_profiles,
            want_full, machine[, attempt, timeout])``.  ``store_root`` of
            ``None`` skips persistence; ``machine`` of ``None`` selects
            the default evaluation machine for ``num_threads``;
            ``attempt`` is the 0-based retry attempt (fault-injection
            identity); ``timeout`` is the per-task budget in seconds.

    Returns:
        ``(name, num_threads, machine, states)`` where ``states`` maps
        ``"profiles"`` to a list of :meth:`RegionProfile.to_state` dicts
        and/or ``"full"`` to a :meth:`FullRunResult.to_state` dict.
    """
    (name, num_threads, scale, store_root, want_profiles, want_full,
     machine, *rest) = task
    attempt = rest[0] if rest else 0
    timeout = rest[1] if len(rest) > 1 else None
    fault_key = _task_fault_key(name, num_threads, machine)
    with _time_limit(timeout, fault_key):
        maybe_inject("runner.task", key=fault_key, attempt=attempt)
        workload = get_workload(name, num_threads, scale)
        pipe = BarrierPointPipeline(_resolve_machine(num_threads, machine))
        store = (
            ArtifactStore(root=store_root) if store_root is not None else None
        )
        key = pair_key(scale, name, num_threads, machine)
        states: dict = {}
        if want_profiles:
            profiles = pipe.profile(workload)
            states["profiles"] = [p.to_state() for p in profiles]
            if store is not None:
                store.put("profiles", key, states["profiles"])
        if want_full:
            full = pipe.full_run(workload)
            states["full"] = full.to_state()
            if store is not None:
                store.put("full", key, states["full"])
    return name, num_threads, machine, states


#: Backward-compatible private aliases (pre-``repro serve`` callers).
_pair_key = pair_key
_compute_pair = compute_pair


@dataclass
class ExperimentRunner:
    """Memoizing, store-backed driver for all experiments.

    ``scale`` shrinks workloads uniformly (1.0 = the calibrated default
    used for all reported numbers; tests use smaller values for speed).
    ``benchmarks`` defaults to the paper's full suite.  ``workers`` > 1
    enables the process-parallel prefetch of profile/full-run passes
    (default from ``$REPRO_WORKERS``; results are identical either way).
    ``store`` persists the expensive artifacts across processes and runs;
    pass ``None`` to keep everything in memory.  ``sweep_machines`` names
    the registry machines the cross-architecture sweep iterates.

    Fault tolerance: ``retry`` bounds per-task retries/backoff/timeouts,
    ``resume`` makes the runner trust the checkpoint journal of an
    earlier (killed) run with the same configuration, and ``report``
    accumulates the structured end-of-run failure report.  None of these
    affect results — every recovery path recomputes the same
    deterministic function.
    """

    scale: float = 1.0
    benchmarks: tuple[str, ...] = WORKLOAD_NAMES
    simpoint: SimPointConfig = field(default_factory=simpoint_defaults)
    workers: int = field(default_factory=_default_workers)
    store: ArtifactStore | None = field(default_factory=ArtifactStore)
    sweep_machines: tuple[str, ...] = DEFAULT_SWEEP_MACHINES
    retry: RetryPolicy = field(default_factory=RetryPolicy.from_env)
    resume: bool = False
    report: RunReport = field(default_factory=RunReport, repr=False)
    _workloads: dict = field(default_factory=dict, repr=False)
    _profiles: dict = field(default_factory=dict, repr=False)
    _fulls: dict = field(default_factory=dict, repr=False)
    _selections: dict = field(default_factory=dict, repr=False)
    _warmups: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        """Record environment degradations the moment the runner exists.

        ``prefetch`` notes them too, but serial runs (``workers`` <= 1)
        never reach the fan-out — the note must not depend on the path.
        """
        self.report.note(jit.degradation_note())

    # ------------------------------------------------------------------
    # Store plumbing
    # ------------------------------------------------------------------

    def fingerprint(self) -> str:
        """Digest of the runner's result-determining configuration.

        Covers scale, benchmark suite, and SimPoint parameters — the
        inputs a rendered figure depends on beyond the code itself.
        ``workers``, the store, and the fault-tolerance knobs (``retry``,
        ``resume``) are excluded: they never change results.  ``sweep_machines`` is excluded too — only the sweep
        figure consults it, and its cache key mixes the machine set in
        separately (see ``battery.figure_key``) so a ``--machines``
        change cannot spuriously invalidate the battery figures.
        """
        return ArtifactStore.derive_key(
            scale=self.scale,
            benchmarks=[_workload_identity(b) for b in self.benchmarks],
            simpoint=self.simpoint.fingerprint(),
        )

    def _store_get(self, kind: str, key: str) -> object | None:
        """Store lookup that tolerates a disabled/absent store."""
        if self.store is None:
            return None
        return self.store.get(kind, key)

    def _store_put(self, kind: str, key: str, payload: object) -> None:
        """Store write that tolerates a disabled/absent store."""
        if self.store is not None:
            self.store.put(kind, key, payload)

    def journal(self) -> RunJournal | None:
        """The checkpoint journal for this configuration (if storable)."""
        return RunJournal.for_runner(self.store, self.fingerprint())

    # ------------------------------------------------------------------
    # Parallel prefetch
    # ------------------------------------------------------------------

    def sweep_pairs(
        self,
        machines: tuple[str, ...] | None = None,
        benchmarks: tuple[str, ...] | None = None,
    ) -> list[tuple[str, int, str]]:
        """The (benchmark, threads, machine) passes a sweep needs.

        Args:
            machines: Registry machine names (default ``sweep_machines``).
            benchmarks: Workload names (default ``benchmarks``).

        Returns:
            One triple per (benchmark, machine) cell; each machine runs
            the workload at its own full core count.
        """
        machines = self.sweep_machines if machines is None else machines
        benchmarks = self.benchmarks if benchmarks is None else benchmarks
        return [
            (b, get_machine(m).num_cores, m)
            for b in benchmarks
            for m in machines
        ]

    def prefetch(
        self,
        pairs: list[tuple] | None = None,
        kinds: tuple[str, ...] = ("profiles", "full"),
    ) -> int:
        """Fan the missing profile/full-run passes out across processes.

        Every (benchmark, machine) pass not already memoized, in the
        store, or (under ``resume``) checkpointed by a previous run is
        computed in a :class:`~concurrent.futures.ProcessPoolExecutor`
        with ``self.workers`` workers; results land in the in-memory memo
        and (when a store is configured) on disk, where other processes
        can reuse them.  Each pass is deterministic, so the outcome is
        identical to computing serially.

        Failures are retried under :attr:`retry`; a broken pool is
        respawned (only incomplete tasks are resubmitted) and repeated
        pool failures degrade to serial in-process execution.  Completed
        passes are journaled as they land, and a task that exhausts its
        retry budget raises
        :class:`~repro.errors.RetryExhaustedError` *after* every other
        task has been drained — one bad pass never discards the rest of
        the battery's work.

        Args:
            pairs: ``(benchmark, num_threads)`` pairs — or ``(benchmark,
                num_threads, machine_name)`` triples for sweep passes on
                registry machines — to cover; defaults to ``benchmarks``
                × ``CORE_COUNTS`` on the default evaluation machines.
            kinds: Which pass kinds to cover, from ``("profiles",
                "full")``; callers that know they only need one kind
                (e.g. selection-only figures) restrict the fan-out.

        Returns:
            Number of passes computed by the fan-out (0 when everything
            was already available or ``workers`` <= 1).

        Raises:
            RetryExhaustedError: When at least one task kept failing
                through its whole attempt budget.
        """
        self.report.note(jit.degradation_note())
        if pairs is None:
            pairs = [(b, nt) for b in self.benchmarks for nt in CORE_COUNTS]
        normalized = [
            pair if len(pair) == 3 else (*pair, None) for pair in pairs
        ]
        journal = self.journal()
        checkpointed: dict[str, set[str]] = {}
        if self.resume and journal is not None:
            checkpointed = journal.completed_passes()
        tasks: list[FanoutTask] = []
        store_root = None
        if self.store is not None and self.store.enabled:
            store_root = str(self.store.root)
        for name, num_threads, machine in normalized:
            memo_key = (name, num_threads, machine)
            akey = pair_key(self.scale, name, num_threads, machine)
            want_profiles = "profiles" in kinds and (
                memo_key not in self._profiles
                and not (
                    self.store is not None
                    and self.store.has("profiles", akey)
                )
            )
            want_full = "full" in kinds and (
                memo_key not in self._fulls
                and not (
                    self.store is not None and self.store.has("full", akey)
                )
            )
            # A journaled pass whose artifacts vanished from the store is
            # recomputed — the journal is trusted only together with the
            # artifacts it points at (want_* above already checked those).
            if not (want_profiles or want_full):
                if checkpointed.get(akey):
                    self.report.resumed += 1
                continue
            tasks.append(FanoutTask(
                key=akey,
                label=_task_fault_key(name, num_threads, machine),
                args=(name, num_threads, self.scale, store_root,
                      want_profiles, want_full, machine),
                meta=memo_key,
            ))
        if not tasks or self.workers <= 1:
            return 0
        from repro.machines import MACHINE_SPECS

        runtime_only = sorted({
            t.meta[2] for t in tasks
            if t.meta[2] is not None and t.meta[2] not in MACHINE_SPECS
        })
        if runtime_only:
            # Runtime registrations are per-process; pool workers would
            # fail with a misleading "unknown machine".  Fail fast here.
            raise ConfigError(
                f"machines {runtime_only} are runtime-registered and not "
                f"visible to worker processes; run with workers <= 1 or "
                f"add them to repro.machines.specs.MACHINE_SPECS"
            )
        completed = 0

        def _absorb(task: FanoutTask, result: tuple) -> None:
            """Memoize/journal one completed pass as it lands."""
            nonlocal completed
            _, _, _, payload = result
            completed += self._ingest(task, payload, journal)

        fanout = FaultTolerantFanout(
            fn=compute_pair, workers=self.workers,
            retry=self.retry, report=self.report,
        )
        fanout.run(tasks, on_result=_absorb)
        return completed

    def _ingest(
        self, task: FanoutTask, states: dict, journal: RunJournal | None
    ) -> int:
        """Absorb one completed pass: memoize and journal it.

        Args:
            task: The completed fan-out task (``meta`` is the memo key).
            states: The worker's ``{"profiles": ..., "full": ...}`` payload.
            journal: Checkpoint journal (``None`` = no checkpointing).

        Returns:
            Number of pass kinds completed (for the prefetch count).
        """
        name, num_threads, machine = task.meta
        completed = 0
        kinds: list[str] = []
        if "profiles" in states:
            self._profiles[task.meta] = [
                RegionProfile.from_state(s) for s in states["profiles"]
            ]
            completed += 1
            kinds.append("profiles")
        if "full" in states:
            self._fulls[task.meta] = FullRunResult.from_state(states["full"])
            completed += 1
            kinds.append("full")
        if journal is not None:
            journal.record_pass(
                task.key, name, num_threads, machine, tuple(kinds)
            )
        return completed

    # ------------------------------------------------------------------
    # Cached building blocks
    # ------------------------------------------------------------------

    def workload(self, name: str, num_threads: int) -> Workload:
        """Workload instance (cached)."""
        key = (name, num_threads)
        if key not in self._workloads:
            self._workloads[key] = get_workload(name, num_threads, self.scale)
        return self._workloads[key]

    def pipeline(
        self, num_threads: int, signature: SignatureConfig | None = None,
        simpoint: SimPointConfig | None = None,
        machine: str | None = None,
    ) -> BarrierPointPipeline:
        """A pipeline bound to an evaluation machine.

        Args:
            num_threads: Core count selecting the default evaluation
                machine (ignored when ``machine`` is given).
            signature: Signature variant override.
            simpoint: SimPoint parameter override.
            machine: Registry machine name (sweep passes); ``None`` keeps
                the default Table I machine for ``num_threads``.

        Returns:
            The configured pipeline.
        """
        return BarrierPointPipeline(
            _resolve_machine(num_threads, machine),
            signature=signature,
            simpoint=simpoint or self.simpoint,
        )

    def profiles(
        self, name: str, num_threads: int, machine: str | None = None
    ) -> list[RegionProfile]:
        """Functional profiles (one expensive pass; memo + store cached)."""
        key = (name, num_threads, machine)
        if key not in self._profiles:
            akey = pair_key(self.scale, name, num_threads, machine)
            states = self._store_get("profiles", akey)
            if states is not None:
                self._profiles[key] = [
                    RegionProfile.from_state(s) for s in states
                ]
            else:
                pipe = self.pipeline(num_threads, machine=machine)
                computed = pipe.profile(self.workload(name, num_threads))
                self._store_put(
                    "profiles", akey, [p.to_state() for p in computed]
                )
                self._profiles[key] = computed
        return self._profiles[key]

    def full(
        self, name: str, num_threads: int, machine: str | None = None
    ) -> FullRunResult:
        """Full detailed reference run (one expensive pass; memo + store)."""
        key = (name, num_threads, machine)
        if key not in self._fulls:
            akey = pair_key(self.scale, name, num_threads, machine)
            state = self._store_get("full", akey)
            if state is not None:
                self._fulls[key] = FullRunResult.from_state(state)
            else:
                pipe = self.pipeline(num_threads, machine=machine)
                computed = pipe.full_run(self.workload(name, num_threads))
                self._store_put("full", akey, computed.to_state())
                self._fulls[key] = computed
        return self._fulls[key]

    def selection(
        self,
        name: str,
        num_threads: int,
        variant: str = "combine",
        max_k: int | None = None,
        machine: str | None = None,
    ) -> BarrierPointSelection:
        """Barrierpoint selection for a signature variant (cached)."""
        key = (name, num_threads, variant, max_k, machine)
        if key not in self._selections:
            signature = SIGNATURE_VARIANTS[variant]
            simpoint = self.simpoint
            if max_k is not None:
                from dataclasses import replace

                simpoint = replace(simpoint, max_k=max_k)
            pipe = self.pipeline(num_threads, signature, simpoint, machine)
            self._selections[key] = pipe.select(
                self.workload(name, num_threads),
                self.profiles(name, num_threads, machine),
            )
        return self._selections[key]

    # ------------------------------------------------------------------
    # Evaluations
    # ------------------------------------------------------------------

    def evaluate_perfect(
        self,
        name: str,
        num_threads: int,
        variant: str = "combine",
        max_k: int | None = None,
        scaling: bool = True,
    ) -> PipelineResult:
        """Perfect-warmup evaluation (section VI-A protocol)."""
        sel = self.selection(name, num_threads, variant, max_k)
        pipe = self.pipeline(num_threads, SIGNATURE_VARIANTS[variant])
        return pipe.evaluate_perfect(sel, self.full(name, num_threads), scaling)

    def evaluate_warmup(
        self, name: str, num_threads: int, warmup_kind: str = "mru"
    ) -> PipelineResult:
        """Independent barrierpoint simulation with warmup (Fig. 7); cached."""
        key = (name, num_threads, warmup_kind)
        if key not in self._warmups:
            sel = self.selection(name, num_threads)
            pipe = self.pipeline(num_threads)
            self._warmups[key] = pipe.evaluate_with_warmup(
                sel,
                self.workload(name, num_threads),
                self.full(name, num_threads),
                warmup_kind,
            )
        return self._warmups[key]
