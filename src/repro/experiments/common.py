"""Shared infrastructure for the experiment harness.

The expensive artifacts — functional profiles and full detailed runs per
(benchmark, core count) — are computed once and memoized on the runner, so
regenerating all nine figures/tables costs two full passes per benchmark
configuration, exactly like the paper's own evaluation protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import (
    MachineConfig,
    SimPointConfig,
    scaled,
    simpoint_defaults,
    table1_8core,
    table1_32core,
)
from repro.core.pipeline import BarrierPointPipeline, PipelineResult
from repro.core.selection import BarrierPointSelection
from repro.core.signatures import SIGNATURE_VARIANTS, SignatureConfig
from repro.errors import ConfigError
from repro.profiling.profiler import RegionProfile
from repro.sim.machine import FullRunResult
from repro.workloads import WORKLOAD_NAMES, Workload, get_workload

CORE_COUNTS = (8, 32)


def experiment_machine(num_threads: int) -> MachineConfig:
    """The evaluation machine for a core count (scaled Table I config)."""
    if num_threads == 8:
        return scaled(table1_8core())
    if num_threads == 32:
        return scaled(table1_32core())
    raise ConfigError(f"evaluation uses 8 or 32 cores, not {num_threads}")


@dataclass
class ExperimentRunner:
    """Memoizing driver for all experiments.

    ``scale`` shrinks workloads uniformly (1.0 = the calibrated default
    used for all reported numbers; tests use smaller values for speed).
    ``benchmarks`` defaults to the paper's full suite.
    """

    scale: float = 1.0
    benchmarks: tuple[str, ...] = WORKLOAD_NAMES
    simpoint: SimPointConfig = field(default_factory=simpoint_defaults)
    _workloads: dict = field(default_factory=dict, repr=False)
    _profiles: dict = field(default_factory=dict, repr=False)
    _fulls: dict = field(default_factory=dict, repr=False)
    _selections: dict = field(default_factory=dict, repr=False)
    _warmups: dict = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    # Cached building blocks
    # ------------------------------------------------------------------

    def workload(self, name: str, num_threads: int) -> Workload:
        """Workload instance (cached)."""
        key = (name, num_threads)
        if key not in self._workloads:
            self._workloads[key] = get_workload(name, num_threads, self.scale)
        return self._workloads[key]

    def pipeline(
        self, num_threads: int, signature: SignatureConfig | None = None,
        simpoint: SimPointConfig | None = None,
    ) -> BarrierPointPipeline:
        """A pipeline bound to the evaluation machine for ``num_threads``."""
        return BarrierPointPipeline(
            experiment_machine(num_threads),
            signature=signature,
            simpoint=simpoint or self.simpoint,
        )

    def profiles(self, name: str, num_threads: int) -> list[RegionProfile]:
        """Functional profiles (one expensive pass, cached)."""
        key = (name, num_threads)
        if key not in self._profiles:
            pipe = self.pipeline(num_threads)
            self._profiles[key] = pipe.profile(self.workload(name, num_threads))
        return self._profiles[key]

    def full(self, name: str, num_threads: int) -> FullRunResult:
        """Full detailed reference run (one expensive pass, cached)."""
        key = (name, num_threads)
        if key not in self._fulls:
            pipe = self.pipeline(num_threads)
            self._fulls[key] = pipe.full_run(self.workload(name, num_threads))
        return self._fulls[key]

    def selection(
        self,
        name: str,
        num_threads: int,
        variant: str = "combine",
        max_k: int | None = None,
    ) -> BarrierPointSelection:
        """Barrierpoint selection for a signature variant (cached)."""
        key = (name, num_threads, variant, max_k)
        if key not in self._selections:
            signature = SIGNATURE_VARIANTS[variant]
            simpoint = self.simpoint
            if max_k is not None:
                from dataclasses import replace

                simpoint = replace(simpoint, max_k=max_k)
            pipe = self.pipeline(num_threads, signature, simpoint)
            self._selections[key] = pipe.select(
                self.workload(name, num_threads),
                self.profiles(name, num_threads),
            )
        return self._selections[key]

    # ------------------------------------------------------------------
    # Evaluations
    # ------------------------------------------------------------------

    def evaluate_perfect(
        self,
        name: str,
        num_threads: int,
        variant: str = "combine",
        max_k: int | None = None,
        scaling: bool = True,
    ) -> PipelineResult:
        """Perfect-warmup evaluation (section VI-A protocol)."""
        sel = self.selection(name, num_threads, variant, max_k)
        pipe = self.pipeline(num_threads, SIGNATURE_VARIANTS[variant])
        return pipe.evaluate_perfect(sel, self.full(name, num_threads), scaling)

    def evaluate_warmup(
        self, name: str, num_threads: int, warmup_kind: str = "mru"
    ) -> PipelineResult:
        """Independent barrierpoint simulation with warmup (Fig. 7); cached."""
        key = (name, num_threads, warmup_kind)
        if key not in self._warmups:
            sel = self.selection(name, num_threads)
            pipe = self.pipeline(num_threads)
            self._warmups[key] = pipe.evaluate_with_warmup(
                sel,
                self.workload(name, num_threads),
                self.full(name, num_threads),
                warmup_kind,
            )
        return self._warmups[key]
