"""Fig. 4 — runtime % error and DRAM APKI difference, perfect warmup.

Evaluates barrierpoint *selection* quality in isolation (section VI-A):
barrierpoint metrics come from the full detailed run, so reconstruction is
the only error source.  Also computes the §VI-A scaling ablation (errors
without instruction-count multipliers).
"""

from __future__ import annotations

import numpy as np

from repro.experiments import paper_data
from repro.experiments.common import CORE_COUNTS, ExperimentRunner
from repro.util.tables import format_table


def compute(runner: ExperimentRunner) -> dict:
    """Per (benchmark, cores) errors plus suite aggregates."""
    rows = []
    for name in runner.benchmarks:
        for nt in CORE_COUNTS:
            result = runner.evaluate_perfect(name, nt)
            ablation = runner.evaluate_perfect(name, nt, scaling=False)
            rows.append(
                {
                    "benchmark": name,
                    "cores": nt,
                    "runtime_error_pct": result.runtime_error_pct,
                    "apki_diff": result.apki_difference,
                    "no_scaling_error_pct": ablation.runtime_error_pct,
                }
            )
    errors = [r["runtime_error_pct"] for r in rows]
    apki = [r["apki_diff"] for r in rows]
    noscale = [r["no_scaling_error_pct"] for r in rows]
    return {
        "rows": rows,
        "avg_error": float(np.mean(errors)),
        "max_error": float(np.max(errors)),
        "avg_apki": float(np.mean(apki)),
        "max_apki": float(np.max(apki)),
        "avg_no_scaling": float(np.mean(noscale)),
    }


def render(data: dict) -> str:
    """Both panels of Fig. 4 plus the scaling ablation."""
    table = format_table(
        ["benchmark", "cores", "abs runtime % error", "abs DRAM APKI diff",
         "% error w/o scaling"],
        [
            [r["benchmark"], r["cores"], f"{r['runtime_error_pct']:.2f}",
             f"{r['apki_diff']:.3f}", f"{r['no_scaling_error_pct']:.1f}"]
            for r in data["rows"]
        ],
        title="Fig. 4 — BarrierPoint accuracy with perfect warmup",
    )
    summary = (
        f"\navg runtime error: {data['avg_error']:.2f}% "
        f"(paper: {paper_data.PERFECT_AVG_RUNTIME_ERROR_PCT}%)"
        f"\nmax runtime error: {data['max_error']:.2f}% "
        f"(paper: {paper_data.PERFECT_MAX_RUNTIME_ERROR_PCT}%)"
        f"\navg APKI diff: {data['avg_apki']:.3f} "
        f"(paper: {paper_data.PERFECT_AVG_APKI_DIFF})"
        f"\navg error without multiplier scaling: "
        f"{data['avg_no_scaling']:.1f}% "
        f"(paper: {paper_data.NO_SCALING_AVG_ERROR_PCT}%)"
    )
    return table + summary


def run(runner: ExperimentRunner) -> str:
    """Compute and render."""
    return render(compute(runner))
