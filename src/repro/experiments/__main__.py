"""Run the complete evaluation battery: ``python -m repro.experiments``.

This is a thin alias for ``repro run`` (see :mod:`repro.experiments.battery`
and ``docs/cli.md``).  Options:

    --scale S      workload scale factor (default 1.0)
    --quick        small-scale smoke run (scale 0.3, npb-ft/cg/is)
    --only NAMES   comma-separated experiment names (fig1,...,ablations)
    --workers N    parallel worker processes for the expensive passes
    --no-store     bypass the artifact store

The output of a default run is what EXPERIMENTS.md records.
"""

from __future__ import annotations

import sys

from repro.experiments.battery import main

if __name__ == "__main__":
    sys.exit(main(prog="python -m repro.experiments"))
