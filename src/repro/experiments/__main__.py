"""Run the complete evaluation battery: ``python -m repro.experiments``.

Options:
    --scale S      workload scale factor (default 1.0)
    --quick        small-scale smoke run (scale 0.3, npb-ft + npb-cg only)
    --only NAMES   comma-separated experiment names (fig1,fig3,...,ablations)

The output of a default run is what EXPERIMENTS.md records.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.config import simpoint_defaults, table1_8core, table1_32core
from repro.experiments import paper_data
from repro.experiments.common import ExperimentRunner, experiment_machine
from repro.experiments import (
    ablations,
    fig1_barrier_counts,
    fig3_ipc_trace,
    fig4_perfect_warmup,
    fig5_maxk_methods,
    fig6_cross_validation,
    fig7_warmup_error,
    fig8_relative_scaling,
    fig9_speedups,
    table3_barrierpoints,
)

EXPERIMENTS = {
    "fig1": fig1_barrier_counts,
    "fig3": fig3_ipc_trace,
    "fig4": fig4_perfect_warmup,
    "fig5": fig5_maxk_methods,
    "fig6": fig6_cross_validation,
    "fig7": fig7_warmup_error,
    "fig8": fig8_relative_scaling,
    "fig9": fig9_speedups,
    "table3": table3_barrierpoints,
    "ablations": ablations,
}


def show_configs() -> str:
    """Print Table I and Table II as configured."""
    lines = ["Table I — simulated system characteristics (paper scale)"]
    for cfg in (table1_8core(), table1_32core()):
        lines.append(
            f"  {cfg.name}: {cfg.num_sockets} socket(s) x "
            f"{cfg.cores_per_socket} cores @ {cfg.core.frequency_ghz} GHz, "
            f"{cfg.core.dispatch_width}-wide, ROB {cfg.core.rob_entries}, "
            f"branch penalty {cfg.core.branch_miss_penalty}"
        )
        lines.append(
            f"    L1-I {cfg.l1i.size_bytes // 1024} KB/{cfg.l1i.associativity}w"
            f"/{cfg.l1i.latency_cycles}c, "
            f"L1-D {cfg.l1d.size_bytes // 1024} KB/{cfg.l1d.associativity}w"
            f"/{cfg.l1d.latency_cycles}c, "
            f"L2 {cfg.l2.size_bytes // 1024} KB/{cfg.l2.associativity}w"
            f"/{cfg.l2.latency_cycles}c, "
            f"L3 {cfg.l3.size_bytes // (1024 * 1024)} MB/"
            f"{cfg.l3.associativity}w/{cfg.l3.latency_cycles}c per socket"
        )
        lines.append(
            f"    DRAM {cfg.mem.latency_ns} ns, "
            f"{cfg.mem.bandwidth_gbps_per_socket} GB/s per socket"
        )
    lines.append("  evaluation machines (cache-scaled):")
    for nt in (8, 32):
        cfg = experiment_machine(nt)
        lines.append(
            f"    {cfg.name}: L1-D {cfg.l1d.num_lines} lines, "
            f"L2 {cfg.l2.num_lines} lines, L3 {cfg.l3.num_lines} "
            f"lines/socket"
        )
    sp = simpoint_defaults()
    lines.append("Table II — SimPoint parameters")
    lines.append(
        f"  -dim {sp.projected_dims}  -maxK {sp.max_k}  "
        f"-fixedLength {'on' if sp.fixed_length else 'off'}  "
        f"-coveragePct {sp.coverage_pct:.0%}"
    )
    for key, value in paper_data.SIMPOINT_PARAMETERS.items():
        lines.append(f"  (paper {key} = {value})")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(prog="python -m repro.experiments")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--only", type=str, default="")
    args = parser.parse_args(argv)

    if args.quick:
        runner = ExperimentRunner(
            scale=0.3, benchmarks=("npb-ft", "npb-cg", "npb-is")
        )
    else:
        runner = ExperimentRunner(scale=args.scale)

    selected = (
        [name.strip() for name in args.only.split(",") if name.strip()]
        if args.only
        else list(EXPERIMENTS)
    )
    unknown = [name for name in selected if name not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments {unknown}; known: {list(EXPERIMENTS)}")

    print(show_configs())
    print()
    for name in selected:
        start = time.time()
        output = EXPERIMENTS[name].run(runner)
        elapsed = time.time() - start
        print(output)
        print(f"[{name} regenerated in {elapsed:.1f}s]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
