"""Fig. 9 — simulation speedups: serial (resources) and parallel (latency).

Speedups use aggregate instruction count as the simulation-work proxy, as
in section VI-D: serial = total / sum over barrierpoints, parallel =
total / max barrierpoint.  The machine-resource reduction versus
simulating every inter-barrier region (Bryan et al.) is reported alongside.
"""

from __future__ import annotations

import numpy as np

from repro.core.speedup import speedup_report
from repro.experiments import paper_data
from repro.experiments.common import CORE_COUNTS, ExperimentRunner
from repro.util.stats import harmonic_mean
from repro.util.tables import format_table


def compute(runner: ExperimentRunner) -> dict:
    """Speedup report per (benchmark, cores) plus suite aggregates."""
    rows = []
    for name in runner.benchmarks:
        for nt in CORE_COUNTS:
            selection = runner.selection(name, nt)
            mru = runner.evaluate_warmup(name, nt, "mru")
            report = speedup_report(selection, warmup_lines=mru.warmup_lines)
            rows.append(
                {
                    "benchmark": name,
                    "cores": nt,
                    "serial": report.serial_speedup,
                    "parallel": report.parallel_speedup,
                    "resource_reduction": report.resource_reduction,
                    "num_barrierpoints": report.num_barrierpoints,
                    "num_regions": report.num_regions,
                }
            )
    parallel = [r["parallel"] for r in rows]
    return {
        "rows": rows,
        "hmean_parallel": harmonic_mean(parallel),
        "max_parallel": float(np.max(parallel)),
        "min_parallel": float(np.min(parallel)),
        "avg_resource_reduction": float(
            np.mean([r["resource_reduction"] for r in rows])
        ),
    }


def render(data: dict) -> str:
    """Per-benchmark bars plus the headline aggregates."""
    table = format_table(
        ["benchmark", "cores", "serial speedup", "parallel speedup",
         "resource reduction", "barrierpoints / regions"],
        [
            [r["benchmark"], r["cores"], f"{r['serial']:.1f}",
             f"{r['parallel']:.1f}", f"{r['resource_reduction']:.1f}",
             f"{r['num_barrierpoints']} / {r['num_regions']}"]
            for r in data["rows"]
        ],
        title="Fig. 9 — simulation speedups (instruction-count proxy, "
              "including warmup replay cost)",
    )
    summary = (
        f"\nharmonic-mean parallel speedup: {data['hmean_parallel']:.1f}x "
        f"(paper: {paper_data.HMEAN_PARALLEL_SPEEDUP}x)"
        f"\nmax parallel speedup: {data['max_parallel']:.1f}x "
        f"(paper: {paper_data.MAX_PARALLEL_SPEEDUP}x)"
        f"\nmin parallel speedup: {data['min_parallel']:.1f}x "
        f"(paper: {paper_data.MIN_PARALLEL_SPEEDUP}x)"
        f"\navg machine-resource reduction: "
        f"{data['avg_resource_reduction']:.1f}x "
        f"(paper: {paper_data.AVG_RESOURCE_REDUCTION}x)"
    )
    return table + summary


def run(runner: ExperimentRunner) -> str:
    """Compute and render."""
    return render(compute(runner))
