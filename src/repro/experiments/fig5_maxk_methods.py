"""Fig. 5 — average error vs maxK and signature/clustering method.

Sweeps maxK over {1, 5, 10, 20} and the seven signature variants of
section III-A (BBV-only, LDV-only with/without 2^(n/v) weighting, and
combined), averaging the perfect-warmup runtime error over all benchmarks
and both core counts, as the paper does.
"""

from __future__ import annotations

import numpy as np

from repro.core.signatures import SIGNATURE_VARIANTS
from repro.experiments import paper_data
from repro.experiments.common import CORE_COUNTS, ExperimentRunner
from repro.util.tables import format_table

MAX_K_SWEEP = (1, 5, 10, 20)
VARIANTS = tuple(SIGNATURE_VARIANTS)


def compute(runner: ExperimentRunner) -> dict:
    """avg abs %% error per (variant, maxK)."""
    grid: dict[tuple[str, int], float] = {}
    for variant in VARIANTS:
        for max_k in MAX_K_SWEEP:
            errors = []
            for name in runner.benchmarks:
                for nt in CORE_COUNTS:
                    result = runner.evaluate_perfect(
                        name, nt, variant=variant, max_k=max_k
                    )
                    errors.append(result.runtime_error_pct)
            grid[(variant, max_k)] = float(np.mean(errors))
    best = min(grid, key=grid.get)
    return {"grid": grid, "best_variant": best[0], "best_max_k": best[1]}


def render(data: dict) -> str:
    """Variant x maxK error matrix, as in the paper's grouped bars."""
    grid = data["grid"]
    rows = [
        [variant] + [f"{grid[(variant, k)]:.2f}" for k in MAX_K_SWEEP]
        for variant in VARIANTS
    ]
    table = format_table(
        ["method"] + [f"maxK={k}" for k in MAX_K_SWEEP],
        rows,
        title="Fig. 5 — avg abs % runtime error by clustering method",
    )
    summary = (
        f"\nbest configuration: {data['best_variant']} @ maxK="
        f"{data['best_max_k']} "
        f"(paper: {paper_data.BEST_VARIANT} @ maxK={paper_data.BEST_MAX_K})"
    )
    return table + summary


def run(runner: ExperimentRunner) -> str:
    """Compute and render."""
    return render(compute(runner))
