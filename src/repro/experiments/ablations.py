"""Design-choice ablations called out in the paper's text.

* Section III-A4: per-thread signature *concatenation* vs summation —
  concatenation exposes heterogeneous thread behaviour to clustering.
* Section III-D: multiplier scaling on/off (also shown in Fig. 4's module).
* Table III: simulating significant barrierpoints only — the speedup and
  accuracy cost of dropping sub-0.1% clusters.
"""

from __future__ import annotations

import numpy as np

from repro.core.signatures import SignatureConfig
from repro.core.speedup import speedup_report
from repro.experiments.common import CORE_COUNTS, ExperimentRunner
from repro.util.tables import format_table


def compute_thread_combining(runner: ExperimentRunner) -> list[dict]:
    """Concat-vs-sum error per benchmark (averaged over core counts)."""
    rows = []
    for name in runner.benchmarks:
        errors = {"concat": [], "sum": []}
        for mode in ("concat", "sum"):
            signature = SignatureConfig(kind="combined", thread_mode=mode)
            for nt in CORE_COUNTS:
                pipe = runner.pipeline(nt, signature)
                sel = pipe.select(
                    runner.workload(name, nt), runner.profiles(name, nt)
                )
                result = pipe.evaluate_perfect(sel, runner.full(name, nt))
                errors[mode].append(result.runtime_error_pct)
        rows.append(
            {
                "benchmark": name,
                "concat_error": float(np.mean(errors["concat"])),
                "sum_error": float(np.mean(errors["sum"])),
            }
        )
    return rows


def compute_significant_only(runner: ExperimentRunner) -> list[dict]:
    """Speedup gained by dropping insignificant barrierpoints."""
    rows = []
    for name in runner.benchmarks:
        for nt in CORE_COUNTS:
            sel = runner.selection(name, nt)
            all_points = speedup_report(sel)
            significant = speedup_report(sel, significant_only=True)
            rows.append(
                {
                    "benchmark": name,
                    "cores": nt,
                    "dropped": len(sel.insignificant_points),
                    "coverage_pct": 100.0
                    * sel.coverage_of(sel.significant_points),
                    "serial_all": all_points.serial_speedup,
                    "serial_significant": significant.serial_speedup,
                }
            )
    return rows


def render(thread_rows: list[dict], sig_rows: list[dict]) -> str:
    """Both ablation tables."""
    t1 = format_table(
        ["benchmark", "concat SV error %", "summed SV error %"],
        [
            [r["benchmark"], f"{r['concat_error']:.2f}",
             f"{r['sum_error']:.2f}"]
            for r in thread_rows
        ],
        title="Ablation (III-A4) — per-thread concatenation vs summation",
    )
    t2 = format_table(
        ["benchmark", "cores", "insignificant dropped", "coverage %",
         "serial speedup (all)", "serial speedup (significant only)"],
        [
            [r["benchmark"], r["cores"], r["dropped"],
             f"{r['coverage_pct']:.2f}", f"{r['serial_all']:.1f}",
             f"{r['serial_significant']:.1f}"]
            for r in sig_rows
        ],
        title="Ablation (Table III) — dropping sub-0.1% barrierpoints",
    )
    return t1 + "\n\n" + t2


def run(runner: ExperimentRunner) -> str:
    """Compute and render both ablations."""
    return render(compute_thread_combining(runner),
                  compute_significant_only(runner))
