"""Cross-architecture sweep: machines × workloads transfer-error matrix.

The generalization of Fig. 6 (section VI-A3) along the machine axis: for
every workload, barrierpoints selected from each registry machine's
profile run are applied to every other machine's detailed reference —
core-count, cache-geometry, DRAM-tier, *and* hierarchy-backend variants —
and scored by absolute runtime error.  Low, uniform off-diagonal errors
are the paper's microarchitecture-independence claim, exercised across
far more than the original single (8-core, 32-core) pair.

The expensive per-(workload, machine) passes go through the runner's
store-backed, process-parallel path, so a warm rerun is pure store hits
and a sweep after a battery run reuses the Table I machine passes.
Driven by ``repro sweep`` (or ``repro run --only sweep``).
"""

from __future__ import annotations

import numpy as np

from repro.core.crossarch import TransferCell, transfer_cell
from repro.experiments.common import ExperimentRunner, sweep_machine
from repro.machines import get_machine
from repro.util.tables import format_table


def compute(
    runner: ExperimentRunner,
    machines: tuple[str, ...] | None = None,
    workloads: tuple[str, ...] | None = None,
) -> list[TransferCell]:
    """Score every (workload, source machine, target machine) cell.

    Args:
        runner: The configured experiment runner (supplies scale, store,
            workers, and the default machine/workload sets).
        machines: Registry machine names (default ``runner.sweep_machines``).
        workloads: Workload names (default ``runner.benchmarks``).

    Returns:
        Cells in (workload, source, target) iteration order.
    """
    machines = runner.sweep_machines if machines is None else machines
    workloads = runner.benchmarks if workloads is None else workloads
    threads = {m: get_machine(m).num_cores for m in machines}
    if runner.workers > 1:
        runner.prefetch(runner.sweep_pairs(machines, workloads))
    cells: list[TransferCell] = []
    for name in workloads:
        selections = {
            m: runner.selection(name, threads[m], machine=m) for m in machines
        }
        for target in machines:
            full = runner.full(name, threads[target], machine=target)
            pipe = runner.pipeline(threads[target], machine=target)
            for source in machines:
                cells.append(
                    transfer_cell(
                        selections[source], source, target, full, pipe
                    )
                )
    return cells


def _machine_label(name: str) -> str:
    """Column label for a machine (the common ``table1-`` prefix drops)."""
    return name.removeprefix("table1-")


def render(cells: list[TransferCell], machines: tuple[str, ...]) -> str:
    """Render the sweep as per-workload matrices plus a summary.

    Args:
        cells: Output of :func:`compute`.
        machines: Machine names in sweep order (matrix axis order).

    Returns:
        The figure text.
    """
    by_key = {
        (c.workload, c.source_machine, c.target_machine): c for c in cells
    }
    workloads = sorted({c.workload for c in cells})
    blocks = ["Sweep — cross-architecture transfer: abs runtime % error"]
    blocks.append("machines: " + ", ".join(
        f"{m} ({get_machine(m).num_cores}c, "
        f"{get_machine(m).hierarchy})" for m in machines
    ))
    headers = ["source \\ target", *(_machine_label(m) for m in machines)]
    for name in workloads:
        rows = [
            [
                _machine_label(source),
                *(
                    f"{by_key[(name, source, target)].error_pct:.2f}"
                    for target in machines
                ),
            ]
            for source in machines
        ]
        blocks.append(format_table(headers, rows, title=name))
    avg_rows = [
        [
            _machine_label(source),
            *(
                "{:.2f}".format(np.mean([
                    by_key[(w, source, target)].error_pct for w in workloads
                ]))
                for target in machines
            ),
        ]
        for source in machines
    ]
    blocks.append(
        format_table(headers, avg_rows, title="average over workloads")
    )
    native = [c.error_pct for c in cells if c.native]
    crossed = [c.error_pct for c in cells if not c.native]
    summary = [
        f"matrix: {len(machines)} machines x {len(workloads)} workloads "
        f"({len(cells)} cells)",
        f"avg error, native selections: {np.mean(native):.2f}%",
    ]
    if crossed:
        summary.append(
            f"avg error, transferred selections: {np.mean(crossed):.2f}%"
        )
    return "\n\n".join(blocks) + "\n" + "\n".join(summary)


def run(runner: ExperimentRunner) -> str:
    """Compute and render with the runner's machine/workload defaults."""
    for name in runner.sweep_machines:
        sweep_machine(name)  # fail fast on unknown names
    return render(compute(runner), runner.sweep_machines)
