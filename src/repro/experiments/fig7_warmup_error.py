"""Fig. 7 — accuracy with the MRU replay warmup technique.

Unlike Fig. 4, every barrierpoint is simulated *independently*, from a
fresh machine warmed by replaying the captured most-recently-used lines
(section IV).  The error therefore combines selection and warmup effects.
A cold-start ablation is included for contrast.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import paper_data
from repro.experiments.common import CORE_COUNTS, ExperimentRunner
from repro.util.tables import format_table


def compute(runner: ExperimentRunner) -> dict:
    """Per (benchmark, cores) warmup errors plus aggregates."""
    rows = []
    for name in runner.benchmarks:
        for nt in CORE_COUNTS:
            mru = runner.evaluate_warmup(name, nt, "mru")
            cold = runner.evaluate_warmup(name, nt, "cold")
            rows.append(
                {
                    "benchmark": name,
                    "cores": nt,
                    "runtime_error_pct": mru.runtime_error_pct,
                    "apki_diff": mru.apki_difference,
                    "cold_error_pct": cold.runtime_error_pct,
                }
            )
    errors = [r["runtime_error_pct"] for r in rows]
    cold_errors = [r["cold_error_pct"] for r in rows]
    return {
        "rows": rows,
        "avg_error": float(np.mean(errors)),
        "max_error": float(np.max(errors)),
        "avg_apki": float(np.mean([r["apki_diff"] for r in rows])),
        "avg_cold_error": float(np.mean(cold_errors)),
    }


def render(data: dict) -> str:
    """Both panels of Fig. 7 plus the cold-start ablation."""
    table = format_table(
        ["benchmark", "cores", "abs runtime % error", "abs DRAM APKI diff",
         "% error cold start"],
        [
            [r["benchmark"], r["cores"], f"{r['runtime_error_pct']:.2f}",
             f"{r['apki_diff']:.3f}", f"{r['cold_error_pct']:.2f}"]
            for r in data["rows"]
        ],
        title="Fig. 7 — BarrierPoint accuracy with MRU replay warmup",
    )
    summary = (
        f"\navg runtime error: {data['avg_error']:.2f}% "
        f"(paper: {paper_data.WARMUP_AVG_RUNTIME_ERROR_PCT}%)"
        f"\nmax runtime error: {data['max_error']:.2f}% "
        f"(paper: {paper_data.WARMUP_MAX_RUNTIME_ERROR_PCT}%)"
        f"\navg error with cold start (no warmup): "
        f"{data['avg_cold_error']:.2f}%"
    )
    return table + summary


def run(runner: ExperimentRunner) -> str:
    """Compute and render."""
    return render(compute(runner))
