"""Fig. 8 — relative scaling: predicting the 8- vs 32-core speedup.

Architects mostly care about *relative* accuracy between design points.
Actual speedup = full-run time ratio; predicted = ratio of the
BarrierPoint-reconstructed times.  The paper notes three super-linear
benchmarks, npb-cg most prominently (LLC capacity effects).
"""

from __future__ import annotations

from repro.experiments import paper_data
from repro.experiments.common import ExperimentRunner
from repro.util.tables import format_table


def compute(runner: ExperimentRunner) -> list[dict]:
    """Actual vs predicted 8->32 speedup per benchmark."""
    rows = []
    for name in runner.benchmarks:
        t8 = runner.full(name, 8).app.time_seconds
        t32 = runner.full(name, 32).app.time_seconds
        p8 = runner.evaluate_perfect(name, 8).estimate.time_seconds
        p32 = runner.evaluate_perfect(name, 32).estimate.time_seconds
        rows.append(
            {
                "benchmark": name,
                "actual": t8 / t32,
                "predicted": p8 / p32,
            }
        )
    return rows


def render(rows: list[dict]) -> str:
    """Speedup bars plus the super-linearity observation."""
    table = format_table(
        ["benchmark", "actual speedup", "predicted speedup", "pred/actual"],
        [
            [r["benchmark"], f"{r['actual']:.2f}", f"{r['predicted']:.2f}",
             f"{r['predicted'] / r['actual']:.3f}"]
            for r in rows
        ],
        title="Fig. 8 — 8-core vs 32-core speedup, actual vs predicted",
    )
    superlinear = [r["benchmark"] for r in rows if r["actual"] > 4.0]
    most = max(rows, key=lambda r: r["actual"])["benchmark"]
    summary = (
        f"\nsuper-linear (> 4x) benchmarks: {superlinear} "
        f"(paper: {paper_data.SUPERLINEAR_COUNT}, most notable "
        f"{paper_data.MOST_SUPERLINEAR})"
        f"\nmost super-linear here: {most}"
    )
    return table + summary


def run(runner: ExperimentRunner) -> str:
    """Compute and render."""
    return render(compute(runner))
