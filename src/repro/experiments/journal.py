"""Crash-tolerant run journal: the checkpoint behind ``repro run --resume``.

The journal is an append-only JSONL file under the artifact store's
root, one per runner configuration (the file name is the runner's
fingerprint, so a ``--scale`` change never resumes from the wrong run).
Each line records one completed expensive pass — ``(workload, threads,
machine)`` plus which artifact kinds were produced — flushed and fsynced
as it happens, so a SIGKILLed battery leaves a journal describing
exactly what finished.

On ``--resume`` the runner loads the journal and skips every journaled
pass whose artifacts are still present in the store, recomputing only
the unfinished remainder.  Loading tolerates a torn final line (the
crash may have landed mid-append) by ignoring it.
"""

from __future__ import annotations

import json
import os
import pathlib

#: Journal directory name under the store root.
JOURNAL_DIR = "journal"


class RunJournal:
    """Append-only completion journal for one runner configuration.

    Args:
        path: The journal file (created on first append).
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = pathlib.Path(path)

    @classmethod
    def for_runner(cls, store, runner_fingerprint: str) -> RunJournal | None:
        """The journal a runner configuration checkpoints into.

        Args:
            store: The runner's :class:`~repro.store.ArtifactStore`
                (``None`` or disabled means no journaling).
            runner_fingerprint: The runner's configuration fingerprint.

        Returns:
            The journal, or ``None`` when there is nowhere durable to
            put one.
        """
        if store is None or not store.enabled:
            return None
        return cls(store.root / JOURNAL_DIR / f"{runner_fingerprint}.jsonl")

    def record_pass(
        self,
        key: str,
        name: str,
        num_threads: int,
        machine: str | None,
        kinds: tuple[str, ...],
    ) -> None:
        """Append one completed pass (durably: flush + fsync).

        Args:
            key: The pass's artifact-store key.
            name: Workload name.
            num_threads: Thread count of the pass.
            machine: Registry machine name, or ``None`` for the default
                evaluation machine.
            kinds: Artifact kinds completed (``"profiles"``/``"full"``).
        """
        entry = {
            "event": "pass",
            "key": key,
            "name": name,
            "nt": num_threads,
            "machine": machine,
            "kinds": sorted(kinds),
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(entry, sort_keys=True) + "\n"
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())

    def completed_passes(self) -> dict[str, set[str]]:
        """Load the journal: artifact key -> set of completed kinds.

        A truncated final line (crash mid-append) and any unparsable
        line are skipped — the journal under-promises rather than lies.

        Returns:
            The completion map (empty when no journal exists yet).
        """
        completed: dict[str, set[str]] = {}
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return completed
        for line in text.splitlines():
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(entry, dict) or entry.get("event") != "pass":
                continue
            key = entry.get("key")
            kinds = entry.get("kinds")
            if isinstance(key, str) and isinstance(kinds, list):
                completed.setdefault(key, set()).update(
                    k for k in kinds if isinstance(k, str)
                )
        return completed

    def clear(self) -> None:
        """Delete the journal file (fresh non-resumed runs start clean)."""
        try:
            self.path.unlink()
        except OSError:
            pass
