"""The evaluation battery: every figure/table, store-cached and parallel.

This module is the single driver behind both ``repro run`` and
``python -m repro.experiments``.  It knows three things:

* the registry of experiments (:data:`EXPERIMENTS`),
* how to build an :class:`ExperimentRunner` from CLI options, and
* how to regenerate a set of figures *incrementally*: each rendered
  figure is cached in the artifact store under a key covering the runner
  configuration, the package code fingerprint, and the source of the
  figure's own module — so a figure-only edit recomputes exactly that
  figure, and an unchanged second invocation is pure store hits.
"""

from __future__ import annotations

import argparse
import os
import time

from repro.config import simpoint_defaults, table1_8core, table1_32core
from repro.errors import ConfigError
from repro.experiments import paper_data
from repro.experiments import common as _common
from repro.experiments.common import (
    ExperimentRunner,
    RetryPolicy,
    experiment_machine,
)
from repro.experiments import (
    ablations,
    fig1_barrier_counts,
    fig3_ipc_trace,
    fig4_perfect_warmup,
    fig5_maxk_methods,
    fig6_cross_validation,
    fig7_warmup_error,
    fig8_relative_scaling,
    fig9_speedups,
    sweep,
    table3_barrierpoints,
)
from repro.machines import machine_names
from repro.store import (
    ArtifactStore,
    code_fingerprint,
    gc_from_env,
    module_fingerprint,
)

EXPERIMENTS = {
    "fig1": fig1_barrier_counts,
    "fig3": fig3_ipc_trace,
    "fig4": fig4_perfect_warmup,
    "fig5": fig5_maxk_methods,
    "fig6": fig6_cross_validation,
    "fig7": fig7_warmup_error,
    "fig8": fig8_relative_scaling,
    "fig9": fig9_speedups,
    "table3": table3_barrierpoints,
    "ablations": ablations,
    "sweep": sweep,
}

#: What ``repro run`` / ``repro figures`` regenerate by default: the
#: paper's evaluation.  The cross-architecture sweep is opt-in (``repro
#: sweep`` or ``--only sweep``) because its machine matrix goes beyond
#: the paper's figures.
DEFAULT_BATTERY = tuple(n for n in EXPERIMENTS if n != "sweep")

#: Expensive pass kinds each experiment consumes (via the runner's
#: ``profiles``/``full``/``selection``/``evaluate_*`` methods — selection
#: and the warmup/perfect evaluations derive from profiles and full runs).
#: Drives the parallel prefetch so ``--only fig1`` never computes passes
#: no selected figure needs.
EXPERIMENT_NEEDS: dict[str, tuple[str, ...]] = {
    "fig1": (),
    "fig3": ("profiles", "full"),
    "fig4": ("profiles", "full"),
    "fig5": ("profiles", "full"),
    "fig6": ("profiles", "full"),
    "fig7": ("profiles", "full"),
    "fig8": ("profiles", "full"),
    "fig9": ("profiles", "full"),
    "table3": ("profiles",),
    "ablations": ("profiles", "full"),
    # The sweep fans out its own (workload, machine) passes inside
    # ``sweep.compute`` — the default-machine prefetch would miss them.
    "sweep": (),
}

#: The benchmarks/scale the ``--quick`` smoke configuration runs.
QUICK_SCALE = 0.3
QUICK_BENCHMARKS = ("npb-ft", "npb-cg", "npb-is")


def add_runner_options(parser: argparse.ArgumentParser) -> None:
    """Attach the shared runner options to an argparse parser.

    Args:
        parser: The (sub)parser for a command that builds a runner.
    """
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="workload scale factor (1.0 = the recorded numbers)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help=f"small-scale smoke run (scale {QUICK_SCALE}, "
             f"{', '.join(QUICK_BENCHMARKS)})",
    )
    parser.add_argument(
        "--only", type=str, default="",
        help="comma-separated experiment names "
             f"({','.join(EXPERIMENTS)})",
    )
    parser.add_argument(
        "--workers", "-j", type=int, default=None,
        help="worker processes for the profile/full-run fan-out "
             "(default $REPRO_WORKERS or in-process)",
    )
    parser.add_argument(
        "--no-store", action="store_true",
        help="bypass the artifact store (compute everything in memory)",
    )
    parser.add_argument(
        "--machines", type=str, default="",
        help="comma-separated registry machines for the sweep experiment "
             "(default: the built-in sweep set; see `repro machines`)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="resume a killed run: skip passes the checkpoint journal "
             "recorded as complete (artifacts must still be in the store)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None,
        help="per-task time budget in seconds for the parallel fan-out "
             "(default $REPRO_TASK_TIMEOUT or unlimited)",
    )
    parser.add_argument(
        "--max-retries", type=int, default=None,
        help="retry budget per failed task "
             "(default $REPRO_MAX_RETRIES or 2)",
    )
    parser.add_argument(
        "--faults", type=str, default=None,
        help="fault-injection plan, e.g. "
             "'runner.task:exception;store.put:io_error:rate=0.3' "
             "(default $REPRO_FAULTS; see docs/robustness.md)",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=None,
        help="seed for the fault plan's deterministic coin "
             "(default $REPRO_FAULT_SEED or 0)",
    )


def runner_from_args(args: argparse.Namespace) -> ExperimentRunner:
    """Build the :class:`ExperimentRunner` an options namespace describes.

    Args:
        args: Parsed options from a parser prepared with
            :func:`add_runner_options`.

    Returns:
        A configured runner (``--quick`` wins over ``--scale``).
    """
    kwargs: dict = {}
    if args.workers is not None:
        kwargs["workers"] = args.workers
    if args.no_store:
        kwargs["store"] = None
    retry_overrides: dict = {}
    if getattr(args, "timeout", None) is not None:
        retry_overrides["timeout"] = args.timeout
    if getattr(args, "max_retries", None) is not None:
        retry_overrides["max_retries"] = args.max_retries
    if retry_overrides:
        kwargs["retry"] = RetryPolicy.from_env(**retry_overrides)
    if getattr(args, "resume", False):
        kwargs["resume"] = True
    if getattr(args, "faults", None) is not None:
        from repro.faults import ENV_SEED, FaultPlan, install_plan

        seed = args.fault_seed
        if seed is None:
            seed = int(os.environ.get(ENV_SEED, "0"))
        install_plan(FaultPlan.parse(args.faults, seed=seed))
    if getattr(args, "machines", ""):
        selected = tuple(
            name.strip() for name in args.machines.split(",") if name.strip()
        )
        unknown = [m for m in selected if m not in machine_names()]
        if unknown:
            raise ConfigError(
                f"unknown machines {unknown}; known: {list(machine_names())}"
            )
        kwargs["sweep_machines"] = selected
    if args.quick:
        return ExperimentRunner(
            scale=QUICK_SCALE, benchmarks=QUICK_BENCHMARKS, **kwargs
        )
    return ExperimentRunner(scale=args.scale, **kwargs)


def select_experiments(
    parser: argparse.ArgumentParser, only: str
) -> list[str]:
    """Resolve an ``--only`` string into experiment names.

    Args:
        parser: Parser used to report unknown names.
        only: Comma-separated experiment names, or empty for all.

    Returns:
        Names in battery order.
    """
    selected = (
        [name.strip() for name in only.split(",") if name.strip()]
        if only
        else list(DEFAULT_BATTERY)
    )
    unknown = [name for name in selected if name not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments {unknown}; known: {list(EXPERIMENTS)}")
    return selected


def figure_key(runner: ExperimentRunner, name: str) -> str:
    """Artifact key for one rendered figure.

    The key covers the runner's result-determining configuration, the
    package code fingerprint, and the source of the figure's module plus
    the shared harness modules — so editing one figure module invalidates
    only that figure's cached output.  The sweep figure additionally
    keys on the runner's machine set (the only figure that consults it),
    so a ``--machines`` change recomputes the sweep and nothing else.

    Args:
        runner: The runner the figure would be computed with.
        name: Experiment name in :data:`EXPERIMENTS`.

    Returns:
        A hex key string.
    """
    extra = {}
    if name == "sweep":
        extra["machines"] = list(runner.sweep_machines)
    return ArtifactStore.derive_key(
        figure=name,
        runner=runner.fingerprint(),
        code=code_fingerprint(),
        deps=[
            module_fingerprint(EXPERIMENTS[name]),
            module_fingerprint(_common),
            module_fingerprint(paper_data),
        ],
        **extra,
    )


def run_experiments(
    runner: ExperimentRunner,
    names: list[str] | None = None,
    on_result=None,
) -> dict[str, str]:
    """Regenerate figures, reusing cached outputs and prefetching the rest.

    Figures whose rendered output is already in the store are served from
    it; if any figure must be computed and the runner has ``workers`` > 1,
    the missing profile/full-run passes are first fanned out across the
    process pool.  Output text is byte-identical however it was obtained.

    Args:
        runner: The configured experiment runner.
        names: Experiments to run, in order (default: the default
            battery, i.e. everything except the opt-in sweep).
        on_result: Optional callback ``(name, output, seconds, cached)``
            invoked after each figure.

    Returns:
        Mapping of experiment name to rendered output text.
    """
    if names is None:
        names = list(DEFAULT_BATTERY)
    try:
        cached: dict[str, str] = {}
        for name in names:
            text = runner._store_get("figure", figure_key(runner, name))
            if isinstance(text, str):
                cached[name] = text
        needed_kinds = sorted({
            kind
            for name in names
            if name not in cached
            for kind in EXPERIMENT_NEEDS.get(name, ("profiles", "full"))
        })
        if needed_kinds and runner.workers > 1:
            runner.prefetch(kinds=tuple(needed_kinds))
        outputs: dict[str, str] = {}
        for name in names:
            start = time.perf_counter()
            if name in cached:
                output = cached[name]
            else:
                output = EXPERIMENTS[name].run(runner)
                runner._store_put("figure", figure_key(runner, name), output)
            outputs[name] = output
            if on_result is not None:
                on_result(
                    name, output, time.perf_counter() - start, name in cached
                )
        return outputs
    finally:
        # Runner-exit janitor hook: with REPRO_STORE_GC=1 every battery
        # invocation ends with an env-configured GC sweep of its store.
        if runner.store is not None:
            gc_from_env(runner.store)


def show_configs() -> str:
    """Render Table I and Table II as configured."""
    lines = ["Table I — simulated system characteristics (paper scale)"]
    for cfg in (table1_8core(), table1_32core()):
        lines.append(
            f"  {cfg.name}: {cfg.num_sockets} socket(s) x "
            f"{cfg.cores_per_socket} cores @ {cfg.core.frequency_ghz} GHz, "
            f"{cfg.core.dispatch_width}-wide, ROB {cfg.core.rob_entries}, "
            f"branch penalty {cfg.core.branch_miss_penalty}"
        )
        lines.append(
            f"    L1-I {cfg.l1i.size_bytes // 1024} KB/{cfg.l1i.associativity}w"
            f"/{cfg.l1i.latency_cycles}c, "
            f"L1-D {cfg.l1d.size_bytes // 1024} KB/{cfg.l1d.associativity}w"
            f"/{cfg.l1d.latency_cycles}c, "
            f"L2 {cfg.l2.size_bytes // 1024} KB/{cfg.l2.associativity}w"
            f"/{cfg.l2.latency_cycles}c, "
            f"L3 {cfg.l3.size_bytes // (1024 * 1024)} MB/"
            f"{cfg.l3.associativity}w/{cfg.l3.latency_cycles}c per socket"
        )
        lines.append(
            f"    DRAM {cfg.mem.latency_ns} ns, "
            f"{cfg.mem.bandwidth_gbps_per_socket} GB/s per socket"
        )
    lines.append("  evaluation machines (cache-scaled):")
    for nt in (8, 32):
        cfg = experiment_machine(nt)
        lines.append(
            f"    {cfg.name}: L1-D {cfg.l1d.num_lines} lines, "
            f"L2 {cfg.l2.num_lines} lines, L3 {cfg.l3.num_lines} "
            f"lines/socket"
        )
    sp = simpoint_defaults()
    lines.append("Table II — SimPoint parameters")
    lines.append(
        f"  -dim {sp.projected_dims}  -maxK {sp.max_k}  "
        f"-fixedLength {'on' if sp.fixed_length else 'off'}  "
        f"-coveragePct {sp.coverage_pct:.0%}"
    )
    for key, value in paper_data.SIMPOINT_PARAMETERS.items():
        lines.append(f"  (paper {key} = {value})")
    return "\n".join(lines)


def main(argv: list[str] | None = None, prog: str = "repro run") -> int:
    """Run the battery from CLI options and print every output.

    Args:
        argv: Argument list (default ``sys.argv[1:]``).
        prog: Program name for help text.

    Returns:
        Process exit code.
    """
    parser = argparse.ArgumentParser(prog=prog)
    add_runner_options(parser)
    args = parser.parse_args(argv)
    runner = runner_from_args(args)
    selected = select_experiments(parser, args.only)

    print(show_configs())
    print()

    def _report(name: str, output: str, seconds: float, cached: bool) -> None:
        source = "store" if cached else "computed"
        print(output)
        print(f"[{name} regenerated in {seconds:.1f}s ({source})]")
        print()

    run_experiments(runner, selected, on_result=_report)
    return 0
