"""Table III — the selected barrierpoints and their multipliers.

Per (benchmark, cores): total dynamic barriers, significant barrierpoints
(>= 0.1% of instructions) with their multipliers, and the insignificant
remainder summarized as count / combined multiplier / total weight, in the
paper's format.
"""

from __future__ import annotations

from repro.experiments import paper_data
from repro.experiments.common import CORE_COUNTS, ExperimentRunner
from repro.util.tables import format_table


def compute(runner: ExperimentRunner) -> list[dict]:
    """One row per (benchmark, cores) with the full selection summary."""
    rows = []
    for name in runner.benchmarks:
        for nt in CORE_COUNTS:
            sel = runner.selection(name, nt)
            workload = runner.workload(name, nt)
            insig = sel.insignificant_points
            rows.append(
                {
                    "benchmark": name,
                    "input_size": workload.input_size,
                    "cores": nt,
                    "num_barriers": sel.num_regions,
                    "num_significant": len(sel.significant_points),
                    "num_insignificant": len(insig),
                    "insig_combined_multiplier": sum(
                        p.multiplier for p in insig
                    ),
                    "insig_total_weight": sum(p.weight for p in insig),
                    "points": [
                        (p.region_index, p.multiplier)
                        for p in sel.significant_points
                    ],
                    "paper_significant": paper_data.SIGNIFICANT_BARRIERPOINTS[
                        (name, nt)
                    ],
                }
            )
    return rows


def render(rows: list[dict]) -> str:
    """The paper's Table III layout (condensed)."""
    body = []
    for r in rows:
        points = " ".join(
            f"{idx}({mult:.1f})" for idx, mult in r["points"][:8]
        )
        if len(r["points"]) > 8:
            points += " ..."
        body.append(
            [r["benchmark"], r["input_size"], r["cores"], r["num_barriers"],
             r["num_significant"], r["paper_significant"],
             f"{r['num_insignificant']} / "
             f"{r['insig_combined_multiplier']:.1f} / "
             f"{r['insig_total_weight']:.1e}",
             points]
        )
    return format_table(
        ["application", "input", "cores", "barriers", "significant bps",
         "paper bps", "insignificant (n / mult / weight)",
         "barrierpoint (multiplier)"],
        body,
        title="Table III — selected barrierpoints and multipliers",
    )


def run(runner: ExperimentRunner) -> str:
    """Compute and render."""
    return render(compute(runner))
