"""The paper's reported numbers, for side-by-side comparison.

Values are transcribed from the ISPASS 2014 text and Table III.  Where the
paper only shows a bar chart (Figs. 4-9) the stated aggregates are stored;
our harness compares *shapes* (who wins, orderings, thresholds), not exact
bar heights, since the substrate differs (see DESIGN.md section 2).
"""

from __future__ import annotations

#: Fig. 1 / Table III: dynamic barrier counts (thread-count invariant).
BARRIER_COUNTS: dict[str, int] = {
    "parsec-bodytrack": 89,
    "npb-bt": 1001,
    "npb-cg": 46,
    "npb-ft": 34,
    "npb-is": 11,
    "npb-lu": 503,
    "npb-mg": 245,
    "npb-sp": 3601,
}

#: Table III: number of significant barrierpoints per (benchmark, cores).
SIGNIFICANT_BARRIERPOINTS: dict[tuple[str, int], int] = {
    ("npb-bt", 8): 11, ("npb-bt", 32): 11,
    ("npb-cg", 8): 3, ("npb-cg", 32): 3,
    ("npb-ft", 8): 9, ("npb-ft", 32): 9,
    ("npb-is", 8): 10, ("npb-is", 32): 10,
    ("npb-lu", 8): 7, ("npb-lu", 32): 2,
    ("npb-mg", 8): 8, ("npb-mg", 32): 10,
    ("npb-sp", 8): 16, ("npb-sp", 32): 12,
    ("parsec-bodytrack", 8): 13, ("parsec-bodytrack", 32): 7,
}

#: Section VI-A / Fig. 4: perfect-warmup accuracy aggregates.
PERFECT_AVG_RUNTIME_ERROR_PCT = 0.6
PERFECT_MAX_RUNTIME_ERROR_PCT = 2.8
PERFECT_AVG_APKI_DIFF = 0.1
PERFECT_MAX_APKI_DIFF = 0.6

#: Section VI-B / Fig. 7: accuracy including the MRU warmup technique.
WARMUP_AVG_RUNTIME_ERROR_PCT = 0.9
WARMUP_MAX_RUNTIME_ERROR_PCT = 2.9

#: Section VI-A: error without multiplier scaling (the ablation).
NO_SCALING_AVG_ERROR_PCT = 19.4

#: Section VI-D / Fig. 9 aggregates.
HMEAN_PARALLEL_SPEEDUP = 24.7
MAX_PARALLEL_SPEEDUP = 866.6
MIN_PARALLEL_SPEEDUP = 10.0
AVG_RESOURCE_REDUCTION = 78.0

#: Fig. 8: benchmarks with super-linear 8->32 speedup; cg most notable.
SUPERLINEAR_COUNT = 3
MOST_SUPERLINEAR = "npb-cg"

#: Fig. 5: the winning signature/clustering configuration.
BEST_VARIANT = "combine"
BEST_MAX_K = 20

#: Table II parameters (for display).
SIMPOINT_PARAMETERS = {
    "-dim": 15,
    "-maxK": 20,
    "-fixedLength": "off",
    "-coveragePct": 1.0,
}
