"""Fig. 6 — barrierpoint cross-validation across core counts.

Barrierpoints chosen from the 8-thread run's signatures are applied to the
32-core reference and vice versa (multipliers recomputed on the target, as
the fixed-unit-of-work property allows).  Similar errors in all four cells
demonstrate transferability.
"""

from __future__ import annotations

import numpy as np

from repro.core.crossarch import apply_selection_across
from repro.experiments.common import CORE_COUNTS, ExperimentRunner
from repro.util.tables import format_table


def compute(runner: ExperimentRunner) -> list[dict]:
    """One row per benchmark with all four (target, source) errors."""
    rows = []
    for name in runner.benchmarks:
        cells = {}
        for target in CORE_COUNTS:
            full = runner.full(name, target)
            pipe = runner.pipeline(target)
            for source in CORE_COUNTS:
                selection = runner.selection(name, source)
                result = apply_selection_across(selection, full, pipe)
                cells[(target, source)] = result.runtime_error_pct
        rows.append({"benchmark": name, "cells": cells})
    return rows


def render(rows: list[dict]) -> str:
    """Four bars per benchmark, as in the figure."""
    table = format_table(
        ["benchmark", "8c w/ 8c SVs", "8c w/ 32c SVs",
         "32c w/ 8c SVs", "32c w/ 32c SVs"],
        [
            [r["benchmark"],
             f"{r['cells'][(8, 8)]:.2f}", f"{r['cells'][(8, 32)]:.2f}",
             f"{r['cells'][(32, 8)]:.2f}", f"{r['cells'][(32, 32)]:.2f}"]
            for r in rows
        ],
        title="Fig. 6 — cross-validation: abs runtime % error by SV source",
    )
    native = [r["cells"][(t, t)] for r in rows for t in CORE_COUNTS]
    crossed = [r["cells"][(t, s)] for r in rows
               for t in CORE_COUNTS for s in CORE_COUNTS if t != s]
    summary = (
        f"\navg error, native SVs: {np.mean(native):.2f}%"
        f"\navg error, transferred SVs: {np.mean(crossed):.2f}%"
    )
    return table + summary


def run(runner: ExperimentRunner) -> str:
    """Compute and render."""
    return render(compute(runner))
