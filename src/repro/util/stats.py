"""Statistical helpers used by the evaluation harness."""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean of strictly positive values.

    The paper reports its headline 24.7x speedup as a harmonic mean.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("harmonic_mean of an empty sequence")
    if np.any(arr <= 0):
        raise ValueError("harmonic_mean requires strictly positive values")
    return float(arr.size / np.sum(1.0 / arr))


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of strictly positive values."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("geometric_mean of an empty sequence")
    if np.any(arr <= 0):
        raise ValueError("geometric_mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(arr))))


def weighted_mean(values: Sequence[float], weights: Sequence[float]) -> float:
    """Arithmetic mean of ``values`` weighted by ``weights``."""
    vals = np.asarray(values, dtype=float)
    wts = np.asarray(weights, dtype=float)
    if vals.shape != wts.shape:
        raise ValueError(f"shape mismatch: {vals.shape} vs {wts.shape}")
    total = wts.sum()
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    return float(np.dot(vals, wts) / total)


def abs_pct_error(estimate: float, reference: float) -> float:
    """Absolute percentage error of ``estimate`` against ``reference``.

    This is the paper's headline accuracy metric ("abs runtime % error").
    """
    if reference == 0:
        raise ValueError("reference value must be non-zero")
    return abs(estimate - reference) / abs(reference) * 100.0
