"""Plain-text table rendering for the experiment harness.

Every figure/table regenerator prints its rows through :func:`format_table`
so bench output reads like the paper's tables.
"""

from __future__ import annotations

from collections.abc import Sequence


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    if any(len(row) != len(headers) for row in rows):
        raise ValueError("every row must have one cell per header")
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_line(list(headers)))
    lines.append(fmt_line(["-" * w for w in widths]))
    lines.extend(fmt_line(row) for row in str_rows)
    return "\n".join(lines)
