"""Runtime dispatch between the interpreted and numba-compiled kernel tiers.

The hot simulation loops exist in two forms: the dict/vectorized Python
engines (the ``py`` tier, always available) and flat-array kernels written
as pure functions (``repro.mem.kernels`` / ``repro.profiling.kernels``)
whose ``@njit(cache=True)`` twins form the ``nb`` tier.  This module is
the single policy point deciding which tier runs:

* ``REPRO_JIT=auto`` (default) — use ``nb`` when numba imports, ``py``
  otherwise.
* ``REPRO_JIT=on`` — request ``nb``; if numba is absent the system still
  runs on ``py`` but the degradation is *loud*: :func:`degradation_note`
  returns a message that ``repro serve`` ``/stats``, the bench harness,
  and :class:`~repro.experiments.common.RunReport` all surface.
* ``REPRO_JIT=off`` — force ``py`` (also what ``--no-jit`` style tooling
  sets).

Tier selection is consulted when an engine object is *constructed* (zero
per-access overhead afterwards), so :func:`forced_tier` overrides must
wrap construction.  The extra ``kernel-py`` tier runs the kernel sources
interpreted — useless for speed, essential for testing the kernels
without numba — and is reachable only through :func:`forced_tier`.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.errors import ConfigError

#: Recognised ``REPRO_JIT`` values.
MODES = ("auto", "on", "off")

#: Tiers :func:`active_tier` can report.  ``kernel-py`` is test-only.
TIERS = ("py", "nb", "kernel-py")

#: :func:`forced_tier` override; ``None`` defers to the environment.
_FORCED: str | None = None

#: Cached numba probe result (``None`` = not probed yet).
_NUMBA_OK: bool | None = None


def numba_available() -> bool:
    """Whether numba imports in this interpreter (probed once, cached)."""
    global _NUMBA_OK
    if _NUMBA_OK is None:
        try:
            import numba  # noqa: F401
        except Exception:
            _NUMBA_OK = False
        else:  # pragma: no cover - exercised only on the numba CI leg
            _NUMBA_OK = True
    return _NUMBA_OK


def requested_mode() -> str:
    """The ``REPRO_JIT`` mode in effect (default ``auto``); loud if bad."""
    raw = os.environ.get("REPRO_JIT", "auto").strip().lower() or "auto"
    if raw not in MODES:
        raise ConfigError(
            f"REPRO_JIT must be one of {'|'.join(MODES)}, got {raw!r}"
        )
    return raw


def active_tier() -> str:
    """The kernel tier new engines will use: ``py``, ``nb`` or ``kernel-py``."""
    if _FORCED is not None:
        return _FORCED
    if requested_mode() == "off":
        return "py"
    return "nb" if numba_available() else "py"


def kernel_tier() -> str | None:
    """The active tier if it routes through the flat-array kernels, else None.

    Returns:
        ``"nb"`` or ``"kernel-py"`` when kernel objects should be built,
        ``None`` when the dict/vectorized ``py`` engines should run.
    """
    tier = active_tier()
    return tier if tier != "py" else None


@contextmanager
def forced_tier(tier: str | None) -> Iterator[None]:
    """Pin :func:`active_tier` to ``tier`` while the context is open.

    Args:
        tier: One of :data:`TIERS`, or ``None`` to restore environment
            dispatch.  Forcing ``nb`` without numba raises at kernel
            compilation, so tests gate it on :func:`numba_available`.
    """
    global _FORCED
    if tier is not None and tier not in TIERS:
        raise ConfigError(f"unknown JIT tier {tier!r}; known: {TIERS}")
    prev = _FORCED
    _FORCED = tier
    try:
        yield
    finally:
        _FORCED = prev


def compile_kernel(py_fn: Callable) -> Callable:
    """The ``@njit(cache=True)`` twin of a pure-function kernel source.

    Args:
        py_fn: The ``*_py`` kernel (flat numpy arrays and scalars only).

    Returns:
        The compiled ``*_nb`` twin.

    Raises:
        ConfigError: When numba is not importable (callers normally gate
            on :func:`kernel_tier` first).
    """
    if not numba_available():
        raise ConfigError(
            "the nb kernel tier needs numba, which is not importable"
        )
    import numba  # pragma: no cover - numba CI leg only

    return numba.njit(cache=True)(py_fn)  # pragma: no cover - numba CI leg


def degradation_note() -> str | None:
    """The loud-degradation message, or None when nothing is degraded.

    Non-None exactly when ``REPRO_JIT=on`` explicitly requested the numba
    tier but numba is absent; ``auto`` falls back silently by design.
    """
    if _FORCED is None and requested_mode() == "on" and not numba_available():
        return (
            "REPRO_JIT=on requested the numba kernel tier, but numba is not "
            "importable; running the interpreted 'py' tier instead"
        )
    return None


def jit_status() -> dict:
    """Dispatch state for ``/stats``, ``repro bench``, and run reports.

    Returns:
        A JSON-ready dict: the requested mode, numba availability, the
        tier newly built engines use, and whether an explicit ``on``
        request degraded to ``py``.
    """
    return {
        "mode": requested_mode(),
        "numba": numba_available(),
        "tier": active_tier(),
        "degraded": degradation_note() is not None,
    }


def warm_kernels() -> list[str]:
    """Compile every kernel on tiny inputs, outside any timed region.

    ``@njit(cache=True)`` twins compile on first call; benchmarks call
    this first so ``fast_seconds`` never includes compilation.  A no-op
    on the ``py`` tier.

    Returns:
        Names of the kernel groups that were warmed (empty on ``py``).
    """
    if kernel_tier() is None:
        return []
    from repro.mem import kernels as mem_kernels
    from repro.profiling import kernels as prof_kernels

    return [*prof_kernels.warm(), *mem_kernels.warm()]
