"""Small support utilities shared across the library."""

from repro.util.fenwick import FenwickTree
from repro.util.stats import (
    abs_pct_error,
    geometric_mean,
    harmonic_mean,
    weighted_mean,
)
from repro.util.tables import format_table
from repro.util.timing import BenchmarkReport, PhaseTiming, time_call

__all__ = [
    "BenchmarkReport",
    "FenwickTree",
    "PhaseTiming",
    "abs_pct_error",
    "format_table",
    "geometric_mean",
    "harmonic_mean",
    "time_call",
    "weighted_mean",
]
