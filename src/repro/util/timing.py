"""Micro-benchmark timing helpers for the perf harness.

``benchmarks/test_perf.py`` uses these to time the fast engines against
their seed references and to persist a machine-readable perf trajectory in
``benchmarks/results/BENCH_perf.json`` that future PRs must not regress.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Callable


@dataclass(frozen=True)
class TimedResult:
    """Wall-clock seconds (best of ``repeat``) plus the last return value."""

    seconds: float
    value: Any


def time_call(fn: Callable[[], Any], repeat: int = 1) -> TimedResult:
    """Time ``fn()`` with ``perf_counter``; keeps the best of ``repeat``."""
    best = float("inf")
    value = None
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return TimedResult(seconds=best, value=value)


@dataclass
class PhaseTiming:
    """One (workload, phase) fast-vs-reference measurement."""

    workload: str
    phase: str
    fast_seconds: float
    reference_seconds: float

    @property
    def speedup(self) -> float:
        """Reference time over fast time; inf if fast rounds to zero."""
        if self.fast_seconds <= 0.0:
            return float("inf")
        return self.reference_seconds / self.fast_seconds


@dataclass
class BenchmarkReport:
    """Accumulates phase timings and serializes the perf trajectory."""

    scale: float
    records: list[PhaseTiming] = field(default_factory=list)

    def add(
        self,
        workload: str,
        phase: str,
        fast_seconds: float,
        reference_seconds: float,
    ) -> PhaseTiming:
        """Record one measurement and return it."""
        record = PhaseTiming(workload, phase, fast_seconds, reference_seconds)
        self.records.append(record)
        return record

    def combined_speedup(self, phases: tuple[str, ...]) -> float:
        """Aggregate speedup over the given phases, all workloads pooled."""
        fast = sum(r.fast_seconds for r in self.records if r.phase in phases)
        ref = sum(
            r.reference_seconds for r in self.records if r.phase in phases
        )
        if fast <= 0.0:
            return float("inf")
        return ref / fast

    def to_dict(self) -> dict:
        """The JSON-ready report structure."""
        phases = tuple(sorted({r.phase for r in self.records}))
        return {
            "scale": self.scale,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "records": [
                {**asdict(r), "speedup": round(r.speedup, 3)}
                for r in self.records
            ],
            "combined": {
                "profile+full_run": round(
                    self.combined_speedup(("profile", "full_run")), 3
                ),
                "all_phases": round(self.combined_speedup(phases), 3),
            },
        }

    def write(self, path: Path) -> dict:
        """Serialize to ``path``; returns the written structure."""
        payload = self.to_dict()
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2) + "\n")
        return payload
