"""Micro-benchmark timing helpers for the perf harness.

``benchmarks/test_perf.py`` uses these to time the fast engines against
their seed references and to persist a machine-readable perf trajectory in
``benchmarks/results/BENCH_perf.json`` that future PRs must not regress.

Timings can carry an execution *tier* label (``py`` for the pure-Python
engines, ``nb`` for the numba-compiled kernels; see
:mod:`repro.util.jit`), and :func:`time_call` supports explicit warmup
calls so one-time costs — JIT compilation above all — never land inside
the timed region.
"""

from __future__ import annotations

import json
import platform
from dataclasses import asdict, dataclass, field
from pathlib import Path
import time
from typing import Any, Callable

#: Trajectory entries kept in the report file (oldest dropped first).
MAX_TRAJECTORY = 50


@dataclass(frozen=True)
class TimedResult:
    """Wall-clock seconds (best of ``repeat``) plus the last return value."""

    seconds: float
    value: Any


def time_call(
    fn: Callable[[], Any], repeat: int = 1, warmup: int = 0
) -> TimedResult:
    """Time ``fn()`` with ``perf_counter``; keeps the best of ``repeat``.

    Args:
        fn: Zero-argument callable to measure.
        repeat: Timed invocations; the fastest one wins (damps scheduler
            and turbo noise).
        warmup: Untimed invocations run first.  Use ``warmup >= 1``
            whenever ``fn`` may trigger one-time work — JIT compilation,
            cache population, lazy imports — that must not pollute the
            measurement.

    Returns:
        The best wall-clock time and the value of the last *timed* call.
    """
    for _ in range(max(0, warmup)):
        fn()
    best = float("inf")
    value = None
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return TimedResult(seconds=best, value=value)


@dataclass
class PhaseTiming:
    """One (workload, phase, tier) fast-vs-reference measurement."""

    workload: str
    phase: str
    fast_seconds: float
    reference_seconds: float
    tier: str = "py"

    @property
    def speedup(self) -> float:
        """Reference time over fast time; inf if fast rounds to zero."""
        if self.fast_seconds <= 0.0:
            return float("inf")
        return self.reference_seconds / self.fast_seconds


@dataclass
class BenchmarkReport:
    """Accumulates phase timings and serializes the perf trajectory."""

    scale: float
    records: list[PhaseTiming] = field(default_factory=list)

    def add(
        self,
        workload: str,
        phase: str,
        fast_seconds: float,
        reference_seconds: float,
        tier: str = "py",
    ) -> PhaseTiming:
        """Record one measurement and return it."""
        record = PhaseTiming(
            workload, phase, fast_seconds, reference_seconds, tier
        )
        self.records.append(record)
        return record

    def tiers(self) -> tuple[str, ...]:
        """Distinct tiers measured, sorted."""
        return tuple(sorted({r.tier for r in self.records}))

    def combined_speedup(
        self, phases: tuple[str, ...], tier: str = "py"
    ) -> float:
        """Aggregate speedup over the given phases, all workloads pooled.

        Args:
            phases: Phase names to pool.
            tier: Which tier's ``fast_seconds`` to pool; the reference
                side is tier-independent.

        Returns:
            Pooled reference seconds over pooled fast seconds.
        """
        rows = [
            r for r in self.records if r.phase in phases and r.tier == tier
        ]
        fast = sum(r.fast_seconds for r in rows)
        ref = sum(r.reference_seconds for r in rows)
        if fast <= 0.0:
            return float("inf")
        return ref / fast

    def tier_speedup(self, phases: tuple[str, ...], tier: str) -> float:
        """Additional pooled speedup of ``tier`` over the py tier.

        Ratio of pooled py-tier ``fast_seconds`` to pooled ``tier``
        ``fast_seconds`` over matching (workload, phase) rows — the
        *extra* factor the tier buys on top of the Python engines.
        """
        base = {
            (r.workload, r.phase): r.fast_seconds
            for r in self.records
            if r.phase in phases and r.tier == "py"
        }
        rows = [
            r for r in self.records
            if r.phase in phases and r.tier == tier
            and (r.workload, r.phase) in base
        ]
        fast = sum(r.fast_seconds for r in rows)
        py = sum(base[(r.workload, r.phase)] for r in rows)
        if fast <= 0.0:
            return float("inf")
        return py / fast

    def _combined(self) -> dict:
        """Per-tier combined-speedup block of the report."""
        phases = tuple(sorted({r.phase for r in self.records}))
        out: dict = {}
        for tier in self.tiers():
            entry = {
                "profile+full_run": round(
                    self.combined_speedup(("profile", "full_run"), tier), 3
                ),
                "all_phases": round(self.combined_speedup(phases, tier), 3),
            }
            if tier != "py":
                entry["vs_py"] = round(
                    self.tier_speedup(("profile", "full_run"), tier), 3
                )
            out[tier] = entry
        return out

    def to_dict(self) -> dict:
        """The JSON-ready report structure.

        Records are sorted by (workload, phase, tier) so the file is
        byte-stable across runs that measure the same grid, keeping
        diffs reviewable.
        """
        ordered = sorted(
            self.records, key=lambda r: (r.workload, r.phase, r.tier)
        )
        return {
            "scale": self.scale,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "records": [
                {**asdict(r), "speedup": round(r.speedup, 3)}
                for r in ordered
            ],
            "combined": self._combined(),
        }

    def write(self, path: Path) -> dict:
        """Serialize to ``path``, extending its perf trajectory.

        Instead of wholesale-rewriting history, the previous file's
        ``trajectory`` list is carried over and the current run's
        summary appended (bounded by :data:`MAX_TRAJECTORY`), so the
        committed file accumulates a per-tier speedup record across
        PRs.  Returns the written structure.
        """
        payload = self.to_dict()
        trajectory: list[dict] = []
        if path.exists():
            try:
                previous = json.loads(path.read_text())
            except (OSError, ValueError):
                previous = {}
            trajectory = list(previous.get("trajectory", []))
        trajectory.append({
            "scale": payload["scale"],
            "python": payload["python"],
            "machine": payload["machine"],
            "combined": payload["combined"],
        })
        payload["trajectory"] = trajectory[-MAX_TRAJECTORY:]
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return payload
