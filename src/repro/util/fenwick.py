"""Fenwick (binary indexed) tree over integer slots.

Used by the LRU stack-distance profiler: one slot per dynamic access time;
a slot holds 1 while it is the *most recent* access to some line, so a
suffix sum counts the distinct lines touched since a given time.
"""

from __future__ import annotations


class FenwickTree:
    """Prefix-sum tree over ``size`` integer slots, all initially zero.

    Supports point updates and prefix queries in O(log n).  Grows are not
    supported: callers size the tree to the number of accesses up front.
    """

    __slots__ = ("_size", "_tree")

    def __init__(self, size: int) -> None:
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        self._size = size
        self._tree = [0] * (size + 1)

    @property
    def size(self) -> int:
        """Number of addressable slots."""
        return self._size

    def add(self, index: int, delta: int) -> None:
        """Add ``delta`` to slot ``index`` (0-based)."""
        if not 0 <= index < self._size:
            raise IndexError(f"index {index} out of range [0, {self._size})")
        tree = self._tree
        i = index + 1
        while i <= self._size:
            tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, index: int) -> int:
        """Sum of slots ``[0, index]``; ``index == -1`` yields 0."""
        if index >= self._size:
            raise IndexError(f"index {index} out of range [0, {self._size})")
        tree = self._tree
        total = 0
        i = index + 1
        while i > 0:
            total += tree[i]
            i -= i & (-i)
        return total

    def range_sum(self, lo: int, hi: int) -> int:
        """Sum of slots ``[lo, hi]`` inclusive; empty ranges yield 0."""
        if lo > hi:
            return 0
        upper = self.prefix_sum(hi)
        lower = self.prefix_sum(lo - 1) if lo > 0 else 0
        return upper - lower

    def total(self) -> int:
        """Sum over all slots."""
        if self._size == 0:
            return 0
        return self.prefix_sum(self._size - 1)
