"""Persistent, content-keyed artifact store for the evaluation pipeline.

The store decouples *computing* the paper's expensive artifacts (functional
profiles, full detailed runs, rendered figures) from *consuming* them:
every artifact is written to disk under a key derived from the workload,
scale, machine configuration, and a fingerprint of the package source, so
any run — serial, parallel, or in a fresh process — transparently reuses
whatever is still valid and recomputes only what changed.

See :mod:`repro.store.artifacts` for the file format and durability
guarantees and :mod:`repro.store.fingerprint` for key derivation.
"""

from repro.store.artifacts import (
    DEFAULT_ROOT,
    SCHEMA_VERSION,
    ArtifactStore,
    put_count,
)
from repro.store.fingerprint import (
    code_fingerprint,
    config_fingerprint,
    module_fingerprint,
)
from repro.store.janitor import GCStats, collect_garbage, gc_from_env

__all__ = [
    "ArtifactStore",
    "DEFAULT_ROOT",
    "GCStats",
    "SCHEMA_VERSION",
    "code_fingerprint",
    "collect_garbage",
    "config_fingerprint",
    "gc_from_env",
    "module_fingerprint",
    "put_count",
]
