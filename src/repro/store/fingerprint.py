"""Stable fingerprints for artifact-store cache keys.

Artifacts are valid only for the exact (workload, scale, machine config,
code) combination that produced them.  This module provides the three
fingerprint primitives the store keys are built from:

* :func:`config_fingerprint` — a canonical hash of configuration values
  (frozen dataclasses, dicts, sequences, scalars);
* :func:`code_fingerprint` — a hash of every compute-relevant source file
  of the ``repro`` package, so any code change invalidates cached results;
* :func:`module_fingerprint` — a hash of a single module's source, used to
  invalidate one figure's cached output when only that figure changed.

All fingerprints are hex digests; they appear in key derivations only, so
their exact length is an implementation detail.
"""

from __future__ import annotations

import dataclasses
import hashlib
import pathlib
from types import ModuleType

#: Package subtrees that never affect stored *computation* results: the
#: experiment/figure harness gets per-module fingerprints instead (so a
#: figure-only edit does not invalidate profiles), and the ``_reference``
#: seed engines only feed the parity/perf benchmarks.
_EXCLUDED_SUBTREES = ("experiments", "_reference")

_PACKAGE_ROOT = pathlib.Path(__file__).resolve().parents[1]

_code_fingerprint_cache: str | None = None


def _canonical(obj: object) -> object:
    """Reduce ``obj`` to a deterministic, repr-stable structure.

    Args:
        obj: A configuration value — a (possibly nested) frozen dataclass,
            dict, sequence, or scalar.

    Returns:
        A nested tuple structure whose ``repr`` is stable across processes
        and insertion orders.

    Raises:
        TypeError: If ``obj`` contains a value with no canonical form.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return (
            type(obj).__name__,
            tuple(
                (f.name, _canonical(getattr(obj, f.name)))
                for f in dataclasses.fields(obj)
            ),
        )
    if isinstance(obj, dict):
        return (
            "dict",
            tuple(sorted((str(k), _canonical(v)) for k, v in obj.items())),
        )
    if isinstance(obj, (list, tuple)):
        return ("seq", tuple(_canonical(v) for v in obj))
    if isinstance(obj, float):
        return ("float", repr(obj))
    if obj is None or isinstance(obj, (str, int, bool, bytes)):
        return obj
    raise TypeError(
        f"cannot fingerprint {type(obj).__name__!r}; pass dataclasses, "
        f"dicts, sequences, or scalars"
    )


def config_fingerprint(*objs: object) -> str:
    """Hash configuration values into a stable hex digest.

    Args:
        *objs: Configuration values (frozen dataclasses, dicts, sequences,
            scalars), hashed in order.

    Returns:
        A 16-character hex digest, identical across processes and runs for
        equal inputs.
    """
    blob = repr(tuple(_canonical(o) for o in objs)).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


def code_fingerprint() -> str:
    """Hash the compute-relevant source of the ``repro`` package.

    Walks every ``.py`` file under the installed package except the
    :data:`_EXCLUDED_SUBTREES`, in sorted path order.  Cached per process
    (source files do not change underneath a running interpreter).

    Returns:
        A 16-character hex digest of (path, content) pairs.
    """
    global _code_fingerprint_cache
    if _code_fingerprint_cache is None:
        digest = hashlib.sha256()
        for path in sorted(_PACKAGE_ROOT.rglob("*.py")):
            rel = path.relative_to(_PACKAGE_ROOT)
            if rel.parts[0] in _EXCLUDED_SUBTREES:
                continue
            digest.update(str(rel).encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _code_fingerprint_cache = digest.hexdigest()[:16]
    return _code_fingerprint_cache


def module_fingerprint(module: ModuleType) -> str:
    """Hash one module's source file.

    Args:
        module: An imported module backed by a ``.py`` file.

    Returns:
        A 16-character hex digest of the module's source bytes.
    """
    source = pathlib.Path(module.__file__).read_bytes()
    return hashlib.sha256(source).hexdigest()[:16]
