"""Disk-backed, content-keyed artifact store.

Expensive evaluation artifacts — functional profiles, full detailed-run
results, rendered figure outputs — are persisted under a root directory,
keyed by a digest of everything that determines their content (workload,
scale, machine config, code fingerprint; see
:mod:`repro.store.fingerprint`).  Re-running the experiment battery after
a partial failure, in another process, or after a figure-only change then
reuses every artifact whose inputs are unchanged instead of recomputing
two full passes per benchmark configuration.

File format and guarantees:

* every artifact file is ``magic + sha256(body) + body`` where ``body``
  is the pickled payload, so truncated or corrupted files are *detected*
  on load and treated as misses (and unlinked), never crashes;
* writes go through a temporary file and :func:`os.replace`, so
  concurrent writers — the parallel experiment runner's worker processes —
  can never leave a half-written artifact behind;
* a schema version participates in key derivation, so format changes
  simply miss old artifacts rather than misreading them.

Environment knobs (read at store construction):

* ``REPRO_STORE_DIR`` — root directory (default ``.repro-store``);
* ``REPRO_STORE=0`` — disable the store entirely (compute everything);
* ``REPRO_STORE_IO_RETRIES`` — transient-I/O retry count (default 2).

Robustness: reads and writes retry transient ``OSError``\\ s with a short
backoff (flaky network filesystems, injected faults); a read that still
fails after the retries is a *miss*, never a crash.  Successful reads
touch the artifact's mtime, which is the recency signal the janitor's
LRU eviction uses (:mod:`repro.store.janitor`).
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import pickle
import shutil
import tempfile
import time

from repro.faults import maybe_corrupt, maybe_inject
from repro.store.fingerprint import config_fingerprint

#: Bumped whenever the on-disk artifact encoding changes; participates in
#: key derivation so old files become unreachable, not misread.
SCHEMA_VERSION = 1

_MAGIC = b"RPROSTORE1\n"
_DIGEST_BYTES = 32

#: Default store root, relative to the working directory.
DEFAULT_ROOT = ".repro-store"

#: Transient-I/O retry schedule: attempts beyond the first, and the base
#: backoff doubled per retry.  Overridable via ``REPRO_STORE_IO_RETRIES``.
DEFAULT_IO_RETRIES = 2
_IO_BACKOFF_SECONDS = 0.01


#: Process-wide artifact-write counter (monotonic, across *all* store
#: instances).  The serve layer's coalescing proof reads it: N identical
#: concurrent submissions must advance it by the artifact count of one
#: computation, not N.  Read it through :func:`put_count`.
_PUT_COUNT = 0


def put_count() -> int:
    """Total successful artifact writes in this process (all stores).

    Counts every :meth:`ArtifactStore.put` / :meth:`ArtifactStore.put_file`
    that actually wrote a file.  Callers snapshot it before and after an
    operation to assert how many computations hit the disk (the request
    coalescing invariant of ``repro serve``).

    Returns:
        The monotonic write count.
    """
    return _PUT_COUNT


def _count_put() -> None:
    """Advance the process-wide write counter (GIL-atomic increment)."""
    global _PUT_COUNT
    _PUT_COUNT += 1


def _io_retries() -> int:
    """Configured transient-I/O retry count (``$REPRO_STORE_IO_RETRIES``)."""
    return int(os.environ.get("REPRO_STORE_IO_RETRIES", DEFAULT_IO_RETRIES))


def _with_io_retries(operation):
    """Run an I/O operation, retrying transient ``OSError`` with backoff.

    ``operation`` receives the 0-based attempt index (so fault hooks
    inside it can report which attempt they faulted).  A missing file is
    not transient: ``FileNotFoundError`` propagates immediately, keeping
    cold-store misses free.  The final attempt's ``OSError`` propagates
    to the caller, which decides whether that means "miss" (reads) or a
    real failure (writes).

    Args:
        operation: Callable taking the attempt index and doing the I/O.

    Returns:
        ``operation(attempt)``'s result.
    """
    retries = _io_retries()
    for attempt in range(retries + 1):
        try:
            return operation(attempt)
        except FileNotFoundError:
            raise
        except OSError:
            if attempt >= retries:
                raise
            time.sleep(_IO_BACKOFF_SECONDS * (2 ** attempt))


class ArtifactStore:
    """A content-keyed persistent cache of evaluation artifacts.

    Parameters
    ----------
    root:
        Store root directory.  Defaults to ``$REPRO_STORE_DIR`` or
        ``.repro-store`` under the current working directory.
    enabled:
        Force the store on/off.  Defaults to ``$REPRO_STORE != "0"``.

    A disabled store misses every ``get`` and drops every ``put``, so
    callers never need to special-case it.
    """

    def __init__(
        self,
        root: str | os.PathLike | None = None,
        enabled: bool | None = None,
    ) -> None:
        if root is None:
            root = os.environ.get("REPRO_STORE_DIR", DEFAULT_ROOT)
        if enabled is None:
            enabled = os.environ.get("REPRO_STORE", "1") != "0"
        self.root = pathlib.Path(root)
        self.enabled = enabled
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # Keys and paths
    # ------------------------------------------------------------------

    @staticmethod
    def derive_key(**parts: object) -> str:
        """Digest keyword parts into an artifact key.

        Args:
            **parts: Everything that determines the artifact's content
                (fingerprints, scalars, sequences).  ``SCHEMA_VERSION``
                is mixed in automatically.

        Returns:
            A hex key string.
        """
        return config_fingerprint(dict(parts, _schema=SCHEMA_VERSION))

    def path_for(self, kind: str, key: str) -> pathlib.Path:
        """Filesystem path of the artifact ``(kind, key)``."""
        return self.root / kind / f"{key}.pkl"

    def path_for_file(
        self, kind: str, key: str, suffix: str = ".rpt"
    ) -> pathlib.Path:
        """Filesystem path of a raw file artifact ``(kind, key)``.

        File artifacts (recorded traces) keep their native format — with
        its own integrity checking — instead of the pickled envelope.

        Args:
            kind: Artifact namespace (``"traces"``, ...).
            key: Key from :meth:`derive_key`.
            suffix: File extension, including the dot.

        Returns:
            The artifact's path.
        """
        return self.root / kind / f"{key}{suffix}"

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------

    def has(self, kind: str, key: str) -> bool:
        """Whether an artifact file exists (without validating it)."""
        return self.enabled and self.path_for(kind, key).is_file()

    def get(self, kind: str, key: str) -> object | None:
        """Load an artifact, or ``None`` on miss or corruption.

        A file that is missing, truncated, or fails its integrity check
        counts as a miss; corrupt files are unlinked so the subsequent
        ``put`` heals the store.

        Args:
            kind: Artifact namespace (``"profiles"``, ``"full"``, ...).
            key: Key from :meth:`derive_key`.

        Returns:
            The stored payload, or ``None``.
        """
        loaded = self._load(kind, key)
        return None if loaded is None else loaded[0]

    def put(self, kind: str, key: str, payload: object) -> pathlib.Path | None:
        """Persist an artifact atomically.

        Args:
            kind: Artifact namespace.
            key: Key from :meth:`derive_key`.
            payload: Any picklable object.

        Returns:
            The artifact's path, or ``None`` when the store is disabled.
        """
        if not self.enabled:
            return None
        path = self.path_for(kind, key)
        body = pickle.dumps((payload,), protocol=4)
        blob = _MAGIC + hashlib.sha256(body).digest() + body
        # A torn-write fault truncates the bytes here; the checksum makes
        # the damage detectable, so a later read misses and recomputes.
        blob = maybe_corrupt("store.put", f"{kind}/{key}", blob)
        self._atomic_write(path, key, lambda handle: handle.write(blob),
                           fault_key=f"{kind}/{key}")
        _count_put()
        return path

    @staticmethod
    def _atomic_write(
        path: pathlib.Path, key: str, writer, fault_key: str = "",
    ) -> None:
        """Write an artifact file atomically (temp file + ``os.replace``).

        Shared by :meth:`put` and :meth:`put_file` so the
        concurrent-writer guarantees stay in one place.  Transient write
        errors (including injected ``store.put`` faults, which fire
        between the temp-file write and the rename — where a real crash
        strands an orphan ``.tmp`` for the janitor) are retried.

        Args:
            path: Final artifact path (parent dirs are created).
            key: Artifact key (used for the temp-file prefix).
            writer: Callable receiving the open binary file object.
            fault_key: Identity reported to the ``store.put`` fault site
                (defaults to ``key``).
        """
        path.parent.mkdir(parents=True, exist_ok=True)

        def write_once(attempt: int) -> None:
            """One atomic write attempt (temp file, fault hook, rename)."""
            fd, tmp_name = tempfile.mkstemp(
                prefix=f".{key}.", suffix=".tmp", dir=path.parent
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    writer(handle)
                maybe_inject(
                    "store.put", key=fault_key or key, attempt=attempt
                )
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise

        _with_io_retries(write_once)

    def put_file(
        self, kind: str, key: str, source: str | os.PathLike,
        suffix: str = ".rpt",
    ) -> pathlib.Path | None:
        """Persist a raw file artifact atomically (copy into the store).

        Unlike :meth:`put`, the file is stored byte-for-byte in its native
        format; validation on retrieval is delegated to the caller's
        ``validate`` callback (the format's own checksums).

        Args:
            kind: Artifact namespace.
            key: Key from :meth:`derive_key`.
            source: Path of the file to copy in.
            suffix: Stored file extension, including the dot.

        Returns:
            The artifact's path, or ``None`` when the store is disabled.
        """
        if not self.enabled:
            return None
        path = self.path_for_file(kind, key, suffix)

        def copy_source(handle) -> None:
            """Stream ``source``'s bytes into the open artifact file."""
            with open(source, "rb") as src:
                shutil.copyfileobj(src, handle)

        self._atomic_write(path, key, copy_source, fault_key=f"{kind}/{key}")
        _count_put()
        return path

    def get_file(
        self, kind: str, key: str, suffix: str = ".rpt", validate=None,
    ) -> pathlib.Path | None:
        """Look up a raw file artifact, or ``None`` on miss or corruption.

        Args:
            kind: Artifact namespace.
            key: Key from :meth:`derive_key`.
            suffix: Stored file extension, including the dot.
            validate: Optional callable taking the path; it must raise
                (any exception) for an invalid file.  A failing file is
                counted as a miss and unlinked, exactly like a corrupt
                pickled artifact — e.g. pass
                :func:`repro.trace.capture.validate_trace` so a trace
                with a corrupt chunk reads as a miss, never as garbage.

        Returns:
            The artifact's path, or ``None``.
        """
        if not self.enabled:
            return None
        path = self.path_for_file(kind, key, suffix)
        if not path.is_file():
            self.misses += 1
            return None
        if validate is not None:
            try:
                result = validate(path)
            except Exception:
                self.misses += 1
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - racing cleanup is fine
                    pass
                return None
            close = getattr(result, "close", None)
            if callable(close):
                close()
        self.hits += 1
        self._touch(path)
        return path

    def payload_bytes(self, kind: str, key: str) -> bytes | None:
        """Validated raw payload bytes of an artifact, with miss semantics.

        The artifact-by-key read path of the serve layer: returns the
        pickled payload *body* (the bytes after the magic and checksum
        header) only after the whole-body SHA-256 check passes, so an
        HTTP client can never be handed a torn or corrupted body — a
        file that is missing, truncated, or fails its checksum is a miss
        (``None``), and corrupt files are unlinked so the next ``put``
        heals the store.  Exactly one full read is performed; callers
        stream the returned bytes out in chunks.

        Args:
            kind: Artifact namespace (``"profiles"``, ``"figure"``, ...).
            key: Key from :meth:`derive_key`.

        Returns:
            The validated payload bytes, or ``None`` on miss/corruption.
        """
        if not self.enabled:
            return None
        path = self.path_for(kind, key)

        def read_once(attempt: int) -> bytes:
            """One read attempt, preceded by the ``store.get`` fault hook."""
            maybe_inject("store.get", key=f"{kind}/{key}", attempt=attempt)
            return path.read_bytes()

        try:
            blob = _with_io_retries(read_once)
        except OSError:
            self.misses += 1
            return None
        body = self._validated_body(blob)
        if body is None:
            self.misses += 1
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing cleanup is fine
                pass
            return None
        self.hits += 1
        self._touch(path)
        return body

    def get_or_compute(self, kind: str, key: str, compute) -> object:
        """Return the cached artifact, computing and storing it on miss.

        A stored ``None`` payload is a hit (the one-tuple wrapper on disk
        distinguishes it from a genuine miss).

        Args:
            kind: Artifact namespace.
            key: Key from :meth:`derive_key`.
            compute: Zero-argument callable producing the payload.

        Returns:
            The cached or freshly computed payload.
        """
        loaded = self._load(kind, key)
        if loaded is not None:
            return loaded[0]
        payload = compute()
        self.put(kind, key, payload)
        return payload

    def clear(self) -> int:
        """Delete every stored artifact.

        Returns:
            Number of bytes freed.
        """
        freed = 0
        if not self.root.is_dir():
            return freed
        # Concurrent writers (parallel-runner workers) may add or remove
        # entries while we walk; every step tolerates the race.
        for path in sorted(self.root.rglob("*"), reverse=True):
            try:
                if path.is_file():
                    size = path.stat().st_size
                    path.unlink()
                    freed += size
                elif path.is_dir():
                    path.rmdir()
            except OSError:
                continue
        try:
            self.root.rmdir()
        except OSError:  # pragma: no cover - root non-empty or in use
            pass
        return freed

    def size_bytes(self) -> int:
        """Total bytes currently stored."""
        if not self.root.is_dir():
            return 0
        return sum(p.stat().st_size for p in self.root.rglob("*") if p.is_file())

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------

    def _load(self, kind: str, key: str) -> tuple[object] | None:
        """Load the wrapped payload one-tuple, or ``None`` on miss.

        Keeps the stored-``None``-vs-miss distinction the one-tuple file
        format preserves; corrupt files are unlinked.
        """
        if not self.enabled:
            return None
        path = self.path_for(kind, key)

        def read_once(attempt: int) -> bytes:
            """One read attempt, preceded by the ``store.get`` fault hook."""
            maybe_inject("store.get", key=f"{kind}/{key}", attempt=attempt)
            return path.read_bytes()

        try:
            blob = _with_io_retries(read_once)
        except OSError:
            # Missing file, or an I/O error that survived the retries:
            # either way the artifact is unavailable — a miss, not a crash.
            self.misses += 1
            return None
        payload = self._decode(blob)
        if payload is None:
            self.misses += 1
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing cleanup is fine
                pass
            return None
        self.hits += 1
        self._touch(path)
        return payload

    @staticmethod
    def _touch(path: pathlib.Path) -> None:
        """Bump an artifact's mtime on hit (best effort).

        The mtime is the recency signal the janitor's LRU-by-mtime
        eviction orders by (:func:`repro.store.janitor.collect_garbage`),
        so hot artifacts survive a size-quota sweep.
        """
        try:
            os.utime(path)
        except OSError:  # pragma: no cover - recency is advisory
            pass

    @staticmethod
    def _validated_body(blob: bytes) -> bytes | None:
        """Checksum-validate an artifact file's bytes (``None`` = bad).

        Returns the payload body (the bytes the stored SHA-256 covers)
        only when the magic and digest both check out.
        """
        header = len(_MAGIC) + _DIGEST_BYTES
        if len(blob) < header or not blob.startswith(_MAGIC):
            return None
        digest = blob[len(_MAGIC):header]
        body = blob[header:]
        if hashlib.sha256(body).digest() != digest:
            return None
        return body

    @classmethod
    def _decode(cls, blob: bytes) -> tuple[object] | None:
        """Validate and unpickle an artifact file's bytes (``None`` = bad)."""
        body = cls._validated_body(blob)
        if body is None:
            return None
        try:
            payload = pickle.loads(body)
        except Exception:
            return None
        if not isinstance(payload, tuple) or len(payload) != 1:
            return None
        return payload
