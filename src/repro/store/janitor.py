"""Store GC/janitor: orphan reaping, TTL expiry, and size-quota eviction.

Long-lived stores accumulate three kinds of garbage:

* **orphan temp files** — a worker SIGKILLed (or crash-faulted) between
  writing its ``.tmp`` file and the atomic rename strands the temp file
  forever;
* **stale artifacts** — code and config changes move the content keys,
  so old artifacts become unreachable but are never deleted;
* **unbounded growth** — a busy store (the ``repro serve`` north star)
  needs a size quota with a sane eviction order.

:func:`collect_garbage` handles all three in one mtime-ordered sweep:
reap orphans past a grace period, expire artifacts past a TTL, then
evict least-recently-used artifacts (the store touches mtimes on read
hits) until the total is under the quota.  Eviction is per-file
``unlink`` — atomic with respect to concurrent readers, which see either
a valid artifact or a plain miss, never a torn one — and every step
tolerates races with concurrent writers.

Run it standalone (``repro clean --gc ...``) or as a runner-exit hook
(``REPRO_STORE_GC=1`` plus ``REPRO_STORE_TTL`` / ``REPRO_STORE_MAX_BYTES``;
see :func:`gc_from_env`).
"""

from __future__ import annotations

import os
import pathlib
import time
from dataclasses import dataclass, field

from repro.errors import ConfigError

#: Orphan ``.tmp`` files younger than this many seconds are left alone —
#: they may belong to a write still in flight.
DEFAULT_TMP_GRACE_SECONDS = 3600.0

_SIZE_UNITS = {
    "b": 1, "k": 1024, "kb": 1024, "m": 1024**2, "mb": 1024**2,
    "g": 1024**3, "gb": 1024**3, "t": 1024**4, "tb": 1024**4,
}
_DURATION_UNITS = {
    "s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0, "w": 604800.0,
}


def parse_size(text: str) -> int:
    """Parse a human size string (``"512M"``, ``"2GB"``, ``"1024"``).

    Args:
        text: Size with an optional B/K/M/G/T suffix (case-insensitive).

    Returns:
        The size in bytes.

    Raises:
        ConfigError: If the string is not a valid size.
    """
    cleaned = text.strip().lower()
    suffix = cleaned.lstrip("0123456789.")
    number = cleaned[: len(cleaned) - len(suffix)]
    unit = _SIZE_UNITS.get(suffix or "b")
    try:
        value = float(number)
    except ValueError:
        value = None
    if value is None or value < 0 or unit is None:
        raise ConfigError(
            f"bad size {text!r}; expected e.g. 1024, 512K, 100M, 2G"
        )
    return int(value * unit)


def parse_duration(text: str) -> float:
    """Parse a human duration string (``"7d"``, ``"90m"``, ``"3600"``).

    Args:
        text: Duration with an optional s/m/h/d/w suffix; a bare number
            is seconds.

    Returns:
        The duration in seconds.

    Raises:
        ConfigError: If the string is not a valid duration.
    """
    cleaned = text.strip().lower()
    suffix = cleaned.lstrip("0123456789.")
    number = cleaned[: len(cleaned) - len(suffix)]
    unit = _DURATION_UNITS.get(suffix or "s")
    try:
        value = float(number)
    except ValueError:
        value = None
    if value is None or value < 0 or unit is None:
        raise ConfigError(
            f"bad duration {text!r}; expected e.g. 3600, 90m, 12h, 7d"
        )
    return value * unit


@dataclass
class GCStats:
    """Outcome of one janitor sweep.

    Attributes:
        reaped_tmp: Orphan temp files removed (or, dry run, removable).
        expired: Artifacts past the TTL.
        evicted: Artifacts evicted by the size quota (LRU-by-mtime).
        freed_bytes: Bytes freed by all of the above.
        kept_files: Artifact files surviving the sweep.
        kept_bytes: Their total size.
        dry_run: Whether the sweep only reported (nothing deleted).
    """

    reaped_tmp: int = 0
    expired: int = 0
    evicted: int = 0
    freed_bytes: int = 0
    kept_files: int = 0
    kept_bytes: int = 0
    dry_run: bool = False
    #: Paths removed (or removable), relative to the store root.
    removed: list[str] = field(default_factory=list, repr=False)

    def render(self, root) -> str:
        """One-line human summary for the CLI.

        Args:
            root: The store root the sweep ran over.

        Returns:
            The summary line.
        """
        verb = "would remove" if self.dry_run else "removed"
        return (
            f"{root}: {verb} {self.reaped_tmp} orphan temp file(s), "
            f"{self.expired} expired, {self.evicted} evicted "
            f"({self.freed_bytes} bytes); kept {self.kept_files} "
            f"artifact(s), {self.kept_bytes} bytes"
        )


def _remove(path: pathlib.Path, size: int, stats: GCStats, root) -> bool:
    """Delete one file for the sweep (or just record it in a dry run)."""
    if not stats.dry_run:
        try:
            path.unlink()
        except OSError:
            # A concurrent writer/reader beat us to it (or replaced it);
            # skip rather than fail the sweep.
            return False
    stats.freed_bytes += size
    stats.removed.append(str(path.relative_to(root)))
    return True


def collect_garbage(
    store,
    ttl_seconds: float | None = None,
    max_bytes: int | None = None,
    reap_tmp: bool = True,
    tmp_grace_seconds: float = DEFAULT_TMP_GRACE_SECONDS,
    dry_run: bool = False,
    now: float | None = None,
) -> GCStats:
    """Run one janitor sweep over a store.

    Args:
        store: The :class:`~repro.store.ArtifactStore` to sweep.
        ttl_seconds: Expire artifacts whose mtime is older than this
            (``None`` disables TTL expiry).
        max_bytes: After reaping and expiry, evict least-recently-used
            artifacts until the total size is at most this (``None``
            disables the quota).
        reap_tmp: Remove orphan ``.tmp`` files older than the grace
            period.
        tmp_grace_seconds: Orphan age threshold (in-flight writes are
            younger than this).
        dry_run: Report what would be removed without deleting.
        now: Reference time (defaults to ``time.time()``; injectable for
            tests).

    Returns:
        The sweep's :class:`GCStats`.
    """
    stats = GCStats(dry_run=dry_run)
    root = store.root
    if not root.is_dir():
        return stats
    if now is None:
        now = time.time()

    artifacts: list[tuple[float, int, pathlib.Path]] = []
    for path in sorted(root.rglob("*")):
        try:
            if not path.is_file():
                continue
            stat = path.stat()
        except OSError:
            continue
        if path.name.endswith(".tmp"):
            if reap_tmp and now - stat.st_mtime >= tmp_grace_seconds:
                if _remove(path, stat.st_size, stats, root):
                    stats.reaped_tmp += 1
            continue
        artifacts.append((stat.st_mtime, stat.st_size, path))

    survivors: list[tuple[float, int, pathlib.Path]] = []
    for mtime, size, path in artifacts:
        if ttl_seconds is not None and now - mtime >= ttl_seconds:
            if _remove(path, size, stats, root):
                stats.expired += 1
                continue
        survivors.append((mtime, size, path))

    if max_bytes is not None:
        total = sum(size for _, size, _ in survivors)
        survivors.sort()  # oldest mtime first = least recently used
        kept: list[tuple[float, int, pathlib.Path]] = []
        for index, (mtime, size, path) in enumerate(survivors):
            if total > max_bytes:
                if _remove(path, size, stats, root):
                    stats.evicted += 1
                    total -= size
                    continue
            kept.append((mtime, size, path))
        survivors = kept

    stats.kept_files = len(survivors)
    stats.kept_bytes = sum(size for _, size, _ in survivors)

    if not dry_run:
        # Prune now-empty kind directories (bottom-up), tolerating races.
        for path in sorted(root.rglob("*"), reverse=True):
            if path.is_dir():
                try:
                    path.rmdir()
                except OSError:
                    pass
    return stats


def gc_from_env(store, environ=os.environ) -> GCStats | None:
    """Run the env-configured janitor sweep, if one is configured.

    This is the runner-exit hook: when ``REPRO_STORE_GC=1``, every
    battery invocation ends with a sweep using ``REPRO_STORE_TTL``
    (duration syntax) and/or ``REPRO_STORE_MAX_BYTES`` (size syntax).

    Args:
        store: The store to sweep.
        environ: Environment mapping (injectable for tests).

    Returns:
        The sweep's stats, or ``None`` when the hook is not enabled or
        the store is disabled.
    """
    if environ.get("REPRO_STORE_GC", "0") != "1" or not store.enabled:
        return None
    ttl = environ.get("REPRO_STORE_TTL", "")
    quota = environ.get("REPRO_STORE_MAX_BYTES", "")
    return collect_garbage(
        store,
        ttl_seconds=parse_duration(ttl) if ttl else None,
        max_bytes=parse_size(quota) if quota else None,
    )
