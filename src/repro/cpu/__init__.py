"""Core timing models: statistical branch predictor + interval core."""

from repro.cpu.branch import BranchPredictor
from repro.cpu.interval import IntervalCore

__all__ = ["BranchPredictor", "IntervalCore"]
