"""Interval-style superscalar core timing model.

This is the modelling approach of the paper's own simulator (Sniper): a
core dispatches ``width`` instructions per cycle in the absence of miss
events, and miss events (branch mispredictions, cache misses) insert stall
intervals.  Memory stalls arrive pre-aggregated from the hierarchy, already
scaled by the block's memory-level parallelism; instruction-fetch stalls
are charged unscaled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import CoreConfig
from repro.cpu.branch import BranchPredictor
from repro.trace.program import BlockExec


@dataclass
class IntervalCore:
    """Timing state for one simulated core."""

    config: CoreConfig
    branch: BranchPredictor = field(init=False)

    def __post_init__(self) -> None:
        self.branch = BranchPredictor(self.config)
        self.instructions_retired = 0
        self.cycles_busy = 0.0

    def block_cycles(self, exec_: BlockExec, mem_stall: float, fetch_stall: float) -> float:
        """Cycles to execute one :class:`BlockExec` given its memory stalls."""
        dispatch = exec_.instructions / self.config.dispatch_width
        branch = self.branch.penalty_cycles(exec_.block, exec_.count)
        cycles = dispatch + branch + mem_stall + fetch_stall
        self.instructions_retired += exec_.instructions
        self.cycles_busy += cycles
        return cycles

    def reset(self) -> None:
        """Clear retirement counters (a fresh simulation context)."""
        self.instructions_retired = 0
        self.cycles_busy = 0.0
        self.branch.mispredictions = 0.0
