"""Statistical branch predictor model.

The paper's machine uses a Pentium M (Dothan) predictor with an 8-cycle
penalty (Table I).  Reverse-engineered predictor tables are unavailable, so
each static block carries a calibrated misprediction rate (loop-closing
branches predict well; data-dependent branches in gather/scatter kernels
predict poorly) and the model charges the *expected* penalty.  Expectation
rather than sampling keeps the simulator fully deterministic, which region
reconstruction relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import CoreConfig
from repro.trace.program import BasicBlock


@dataclass
class BranchPredictor:
    """Expected-penalty branch model for one core."""

    core: CoreConfig

    def __post_init__(self) -> None:
        self.mispredictions = 0.0

    def penalty_cycles(self, block: BasicBlock, executions: int) -> float:
        """Expected misprediction stall for ``executions`` runs of ``block``."""
        expected_misses = block.mispredict_rate * executions
        self.mispredictions += expected_misses
        return expected_misses * self.core.branch_miss_penalty
