"""``python -m repro`` — the ``repro`` CLI without installation.

Equivalent to the ``repro`` console script; see :mod:`repro.cli` and
``docs/cli.md``.
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
