"""Next-line prefetching hierarchy backend.

A classic tagged next-line prefetcher at the L2: every demand L2 miss on
line ``L`` issues prefetches for ``L+1 .. L+degree`` into the core's L2
(and the socket's shared L3, keeping inclusion intact).  Prefetches are
modeled as timing-free — their latency is assumed hidden behind the
triggering demand miss — but they are *not* free in the memory system:

* a prefetch that misses the L3 consumes DRAM read bandwidth on the
  socket (and shows up in ``dram_reads_per_socket`` / ``l3_misses``,
  where the region bandwidth model will account for it);
* prefetch fills evict LRU victims from L2 and L3 exactly like demand
  fills, so a useless prefetcher pollutes caches in the model just as it
  does in hardware;
* every issued prefetch increments ``AccessCounters.prefetches``.

Lines owned Modified by another core are never prefetched (no coherence
traffic is speculated), and already-resident lines are skipped without
touching LRU state (a "tagged" prefetcher does not promote).

Construct with ``degree=0`` to disable the distinguishing feature — the
instance is then behaviorally identical to the reference hierarchy, which
the backend parity suite asserts.
"""

from __future__ import annotations

from repro.config import MachineConfig
from repro.errors import ConfigError
from repro.mem.hierarchy import MemoryHierarchy


class NextLinePrefetchHierarchy(MemoryHierarchy):
    """Reference hierarchy plus an L2 next-line prefetcher."""

    prefetch_degree = 1

    def __init__(self, machine: MachineConfig, degree: int = 1) -> None:
        if degree < 0:
            raise ConfigError(f"prefetch degree must be >= 0, got {degree}")
        super().__init__(machine)
        # Instance attribute shadows the class seam, so one class serves
        # both the backend and its feature-disabled parity twin.
        self.prefetch_degree = degree

    def _prefetch_after_miss(self, core: int, line: int) -> None:
        """Issue next-line prefetches for one demand L2 miss.

        Runs off the hot path (only on L2 misses of this backend), so it
        favors clarity over the inlined style of ``access_block``.
        """
        socket = self._socket_of[core]
        l2 = self.l2[core]
        l3 = self.l3[socket]
        l2_sets, l2_mask, l2_assoc = l2._sets, l2._set_mask, l2._assoc
        l3_sets, l3_mask, l3_assoc = l3._sets, l3._set_mask, l3._assoc
        owner = self.directory._owner
        sharers = self.directory._sharers
        my_bit = 1 << core
        issued = 0
        for delta in range(1, self.prefetch_degree + 1):
            pline = line + delta
            s2 = l2_sets[pline & l2_mask]
            if pline in s2:
                continue  # already resident: tagged prefetchers stay quiet
            powner = owner.get(pline, -1)
            if powner >= 0 and powner != core:
                continue  # modified elsewhere: never speculate coherence
            s3 = l3_sets[pline & l3_mask]
            if pline not in s3:
                # Fill the shared L3 from DRAM (bandwidth is charged, the
                # latency is hidden); the victim is handled exactly like a
                # demand fill's via the shared helper (inclusion purge,
                # owner writeback and all).
                self._dram_reads[socket] += 1
                if len(s3) >= l3_assoc:
                    self._evict_l3_victim(socket, s3)
                s3[pline] = None
            if len(s2) >= l2_assoc:
                old = next(iter(s2))
                del s2[old]
                l2.stats.evictions += 1
            s2[pline] = None
            sharers[pline] = sharers.get(pline, 0) | my_bit
            issued += 1
        self._prefetches += issued
