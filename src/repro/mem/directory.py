"""MSI directory coherence bookkeeping.

The directory tracks, per line, a bitmask of cores whose *private* caches
(L1/L2) may hold the line, plus the single core owning it in Modified
state, if any.  Private caches evict silently, so sharer bits can be stale
— exactly as in real sparse directories — which only costs spurious (cheap)
invalidation messages, never correctness of the timing model.

Two organisations share that per-line contract:

* :class:`Directory` — one monolithic node, logically co-located with the
  socket's shared L3 (the paper's flat machines).
* :class:`DistributedDirectory` — address-interleaved **home nodes**, one
  per core complex, as in CCX/chiplet parts where each complex's L3 slice
  carries a directory slice.  State for a line lives only at its home, so
  the ``complex`` backend's coherence walk goes through the same fabric
  hops it charges latency for.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class DirectoryStats:
    """Coherence event counters."""

    invalidations_sent: int = 0
    downgrades: int = 0
    cache_to_cache: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.invalidations_sent = 0
        self.downgrades = 0
        self.cache_to_cache = 0


class Directory:
    """Sharer/owner tracking for an MSI protocol over private caches.

    When the kernel tier (:mod:`repro.util.jit`) holds this directory's
    state in flat arrays, the owning hierarchy installs ``_sync_hook``;
    the ``stats`` / ``_sharers`` / ``_owner`` properties fire it first,
    so callers always observe materialized dict state.  The hook is a
    cheap no-op whenever the dicts already hold authority.
    """

    #: Kernel-tier materialization seam (class default: no kernel state).
    _sync_hook = None

    def __init__(
        self, num_cores: int, stats: DirectoryStats | None = None
    ) -> None:
        self.num_cores = num_cores
        self._stats = stats if stats is not None else DirectoryStats()
        self._sharers_map: dict[int, int] = {}
        self._owner_map: dict[int, int] = {}

    @property
    def stats(self) -> DirectoryStats:
        """Coherence counters (kernel-tier deltas flushed first)."""
        hook = self._sync_hook
        if hook is not None:
            hook()
        return self._stats

    @property
    def _sharers(self) -> dict[int, int]:
        """The live line → sharer-mask map (kernel state materialized)."""
        hook = self._sync_hook
        if hook is not None:
            hook()
        return self._sharers_map

    @property
    def _owner(self) -> dict[int, int]:
        """The live line → M-owner map (kernel state materialized)."""
        hook = self._sync_hook
        if hook is not None:
            hook()
        return self._owner_map

    def sharers(self, line: int) -> int:
        """Bitmask of cores that may hold ``line``."""
        return self._sharers.get(line, 0)

    def owner(self, line: int) -> int:
        """Core owning ``line`` in M state, or -1."""
        return self._owner.get(line, -1)

    def note_read(self, line: int, core: int) -> int:
        """Record a read by ``core``; returns previous M owner (or -1).

        If another core owned the line Modified, it is downgraded to Shared
        (the caller charges the cache-to-cache transfer latency).
        """
        prev = self._owner.get(line, -1)
        if prev >= 0 and prev != core:
            del self._owner[line]
            self.stats.downgrades += 1
            self.stats.cache_to_cache += 1
        self._sharers[line] = self._sharers.get(line, 0) | (1 << core)
        return prev if prev != core else -1

    def note_write(self, line: int, core: int) -> int:
        """Record a write by ``core``; returns bitmask of cores to invalidate.

        The caller must remove the line from those cores' private caches and
        charge the upgrade latency when the mask is non-zero.
        """
        mask = self._sharers.get(line, 0) & ~(1 << core)
        if mask:
            self.stats.invalidations_sent += bin(mask).count("1")
        self._sharers[line] = 1 << core
        self._owner[line] = core
        return mask

    def drop(self, line: int) -> None:
        """Forget a line entirely (e.g. after last-level eviction)."""
        self._sharers.pop(line, None)
        self._owner.pop(line, None)

    def is_modified(self, line: int) -> bool:
        """True if some core owns the line in M state."""
        return line in self._owner

    def flush(self) -> None:
        """Drop all directory state (counters preserved)."""
        self._sharers.clear()
        self._owner.clear()


class DistributedDirectory:
    """Address-interleaved MSI directory over per-complex home nodes.

    Lines are statically interleaved across ``num_homes`` nodes
    (``home_of(line) = line % num_homes``), each an ordinary
    :class:`Directory`.  The per-line API is identical to the monolithic
    directory — every query/update is simply delegated to the line's home
    — so callers that already speak :class:`Directory` work unchanged;
    the split only matters to the backend that charges a fabric hop for
    reaching a non-local home.
    """

    def __init__(self, num_cores: int, num_homes: int) -> None:
        if num_homes <= 0:
            raise ValueError(f"num_homes must be positive, got {num_homes}")
        self.num_cores = num_cores
        self.num_homes = num_homes
        self.homes = tuple(
            Directory(num_cores=num_cores) for _ in range(num_homes)
        )

    def home_of(self, line: int) -> int:
        """Home-node index for ``line`` (static address interleaving)."""
        return line % self.num_homes

    @property
    def stats(self) -> DirectoryStats:
        """Aggregate coherence counters summed over all home nodes."""
        total = DirectoryStats()
        for home in self.homes:
            total.invalidations_sent += home.stats.invalidations_sent
            total.downgrades += home.stats.downgrades
            total.cache_to_cache += home.stats.cache_to_cache
        return total

    @property
    def _sharers(self) -> dict[int, int]:
        """Merged line → sharer-mask view (tests/debugging; copies)."""
        merged: dict[int, int] = {}
        for home in self.homes:
            merged.update(home._sharers)
        return merged

    @property
    def _owner(self) -> dict[int, int]:
        """Merged line → M-owner view (tests/debugging; copies)."""
        merged: dict[int, int] = {}
        for home in self.homes:
            merged.update(home._owner)
        return merged

    def sharers(self, line: int) -> int:
        """Bitmask of cores that may hold ``line``."""
        return self.homes[line % self.num_homes].sharers(line)

    def owner(self, line: int) -> int:
        """Core owning ``line`` in M state, or -1."""
        return self.homes[line % self.num_homes].owner(line)

    def note_read(self, line: int, core: int) -> int:
        """Record a read at the line's home; returns previous M owner."""
        return self.homes[line % self.num_homes].note_read(line, core)

    def note_write(self, line: int, core: int) -> int:
        """Record a write at the line's home; returns invalidation mask."""
        return self.homes[line % self.num_homes].note_write(line, core)

    def drop(self, line: int) -> None:
        """Forget a line entirely (e.g. after last-level eviction)."""
        self.homes[line % self.num_homes].drop(line)

    def is_modified(self, line: int) -> bool:
        """True if some core owns the line in M state."""
        return self.homes[line % self.num_homes].is_modified(line)

    def flush(self) -> None:
        """Drop all directory state at every home (counters preserved)."""
        for home in self.homes:
            home.flush()
