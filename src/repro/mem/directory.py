"""MSI directory coherence bookkeeping.

The directory tracks, per line, a bitmask of cores whose *private* caches
(L1/L2) may hold the line, plus the single core owning it in Modified
state, if any.  Private caches evict silently, so sharer bits can be stale
— exactly as in real sparse directories — which only costs spurious (cheap)
invalidation messages, never correctness of the timing model.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class DirectoryStats:
    """Coherence event counters."""

    invalidations_sent: int = 0
    downgrades: int = 0
    cache_to_cache: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.invalidations_sent = 0
        self.downgrades = 0
        self.cache_to_cache = 0


@dataclass
class Directory:
    """Sharer/owner tracking for an MSI protocol over private caches."""

    num_cores: int
    stats: DirectoryStats = field(default_factory=DirectoryStats)

    def __post_init__(self) -> None:
        self._sharers: dict[int, int] = {}
        self._owner: dict[int, int] = {}

    def sharers(self, line: int) -> int:
        """Bitmask of cores that may hold ``line``."""
        return self._sharers.get(line, 0)

    def owner(self, line: int) -> int:
        """Core owning ``line`` in M state, or -1."""
        return self._owner.get(line, -1)

    def note_read(self, line: int, core: int) -> int:
        """Record a read by ``core``; returns previous M owner (or -1).

        If another core owned the line Modified, it is downgraded to Shared
        (the caller charges the cache-to-cache transfer latency).
        """
        prev = self._owner.get(line, -1)
        if prev >= 0 and prev != core:
            del self._owner[line]
            self.stats.downgrades += 1
            self.stats.cache_to_cache += 1
        self._sharers[line] = self._sharers.get(line, 0) | (1 << core)
        return prev if prev != core else -1

    def note_write(self, line: int, core: int) -> int:
        """Record a write by ``core``; returns bitmask of cores to invalidate.

        The caller must remove the line from those cores' private caches and
        charge the upgrade latency when the mask is non-zero.
        """
        mask = self._sharers.get(line, 0) & ~(1 << core)
        if mask:
            self.stats.invalidations_sent += bin(mask).count("1")
        self._sharers[line] = 1 << core
        self._owner[line] = core
        return mask

    def drop(self, line: int) -> None:
        """Forget a line entirely (e.g. after last-level eviction)."""
        self._sharers.pop(line, None)
        self._owner.pop(line, None)

    def is_modified(self, line: int) -> bool:
        """True if some core owns the line in M state."""
        return line in self._owner

    def flush(self) -> None:
        """Drop all directory state (counters preserved)."""
        self._sharers.clear()
        self._owner.clear()
