"""Named memory-hierarchy backends behind ``Machine``'s factory seam.

:class:`~repro.sim.machine.Machine` resolves
``MachineConfig.hierarchy`` through this registry when no explicit
``hierarchy_factory`` is given, so machine specs
(:mod:`repro.machines`) select a backend by name and the choice flows
through pipelines, the experiment runner, the artifact-store fingerprint,
and the cross-architecture sweep without any call-site changes.

Every backend must be constructible as ``backend(machine_config)`` and
behave identically to the reference hierarchy when its distinguishing
feature is disabled (asserted by ``tests/test_mem_backends.py``).
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.mem.complexes import ComplexHierarchy
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.noninclusive import NonInclusiveHierarchy
from repro.mem.prefetch import NextLinePrefetchHierarchy

#: Backend name -> hierarchy class.  ``"inclusive"`` is the paper's
#: reference hierarchy and the default of ``MachineConfig.hierarchy``.
HIERARCHY_BACKENDS: dict[str, type[MemoryHierarchy]] = {
    "inclusive": MemoryHierarchy,
    "noninclusive": NonInclusiveHierarchy,
    "prefetch-nl": NextLinePrefetchHierarchy,
    "complex": ComplexHierarchy,
}


def hierarchy_backend(name: str) -> type[MemoryHierarchy]:
    """Resolve a backend name to its hierarchy class.

    Args:
        name: A key of :data:`HIERARCHY_BACKENDS`.

    Returns:
        The hierarchy class (a ``MemoryHierarchy`` subclass).

    Raises:
        ConfigError: For unknown names.
    """
    try:
        return HIERARCHY_BACKENDS[name]
    except KeyError:
        raise ConfigError(
            f"unknown hierarchy backend {name!r}; "
            f"known backends: {sorted(HIERARCHY_BACKENDS)}"
        ) from None


def backend_names() -> tuple[str, ...]:
    """All registered backend names, sorted."""
    return tuple(sorted(HIERARCHY_BACKENDS))
