"""Set-associative LRU cache model.

Each set is an insertion-ordered dict mapping resident line address to
``None``: dict order is LRU (oldest entry) to MRU (newest), so hit
promotion is a delete + reinsert and eviction pops the first key — all
O(1) amortized, where the seed's list-based sets paid an O(associativity)
scan per probe.  Lines are cache-line addresses (already divided by the
64-byte line size).  The model tracks presence and dirtiness only — data
values never matter to timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import CacheConfig

#: Sentinel distinguishing "absent" from a stored value in ``dict.pop``.
_MISS = object()


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    invalidations: int = 0

    @property
    def accesses(self) -> int:
        """Total lookups observed."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Miss fraction; 0.0 when no accesses were made."""
        total = self.accesses
        return self.misses / total if total else 0.0

    def reset(self) -> None:
        """Zero all counters."""
        self.hits = self.misses = self.evictions = 0
        self.dirty_evictions = self.invalidations = 0


@dataclass
class _EvictedLine:
    """An evicted line and whether it was dirty."""

    line: int
    dirty: bool


class SetAssocCache:
    """LRU set-associative cache of line addresses.

    The per-set dicts hold resident lines in LRU-to-MRU insertion order;
    dirty lines are tracked in a side set, so hit paths stay one dict
    operation.

    When the kernel tier (:mod:`repro.util.jit`) manages this cache's
    content in flat arrays, the owning hierarchy installs ``_sync_hook``;
    every public entry point fires it first, so the dict state is
    materialized from the arrays before anything reads or mutates it.
    The hook is a cheap no-op whenever the dicts already hold authority.
    """

    #: Kernel-tier materialization seam (class default: no kernel state).
    _sync_hook = None

    def __init__(
        self, config: CacheConfig, stats: CacheStats | None = None
    ) -> None:
        self.config = config
        self._stats = stats if stats is not None else CacheStats()
        self._num_sets = config.num_sets
        self._set_mask = self._num_sets - 1
        self._assoc = config.associativity
        self._sets: list[dict[int, None]] = [
            {} for _ in range(self._num_sets)
        ]
        self._dirty: set[int] = set()

    @property
    def stats(self) -> CacheStats:
        """Hit/miss/eviction counters (kernel-tier deltas flushed first)."""
        hook = self._sync_hook
        if hook is not None:
            hook()
        return self._stats

    @property
    def latency(self) -> int:
        """Access latency in core cycles (from the config)."""
        return self.config.latency_cycles

    def lookup(self, line: int) -> bool:
        """Probe for ``line``; on hit, promote to MRU. Updates stats."""
        hook = self._sync_hook
        if hook is not None:
            hook()
        s = self._sets[line & self._set_mask]
        if s.pop(line, _MISS) is not _MISS:
            s[line] = None  # reinsert at MRU position
            self._stats.hits += 1
            return True
        self._stats.misses += 1
        return False

    def contains(self, line: int) -> bool:
        """Presence check without LRU update or stats."""
        hook = self._sync_hook
        if hook is not None:
            hook()
        return line in self._sets[line & self._set_mask]

    def fill(self, line: int, dirty: bool = False) -> _EvictedLine | None:
        """Insert ``line`` at MRU; return the victim if one was evicted."""
        hook = self._sync_hook
        if hook is not None:
            hook()
        s = self._sets[line & self._set_mask]
        if s.pop(line, _MISS) is not _MISS:
            s[line] = None
            if dirty:
                self._dirty.add(line)
            return None
        victim = None
        if len(s) >= self._assoc:
            old = next(iter(s))
            del s[old]
            was_dirty = old in self._dirty
            if was_dirty:
                self._dirty.discard(old)
                self._stats.dirty_evictions += 1
            self._stats.evictions += 1
            victim = _EvictedLine(old, was_dirty)
        s[line] = None
        if dirty:
            self._dirty.add(line)
        return victim

    def mark_dirty(self, line: int) -> None:
        """Flag a resident line as modified (no-op if absent)."""
        if self.contains(line):
            self._dirty.add(line)

    def is_dirty(self, line: int) -> bool:
        """True if the line is resident and modified."""
        hook = self._sync_hook
        if hook is not None:
            hook()
        return line in self._dirty

    def remove(self, line: int) -> bool:
        """Invalidate ``line`` (coherence); returns True if it was present."""
        hook = self._sync_hook
        if hook is not None:
            hook()
        s = self._sets[line & self._set_mask]
        if s.pop(line, _MISS) is not _MISS:
            self._dirty.discard(line)
            self._stats.invalidations += 1
            return True
        return False

    def flush(self) -> None:
        """Drop all contents (counters preserved)."""
        hook = self._sync_hook
        if hook is not None:
            hook()
        for s in self._sets:
            s.clear()
        self._dirty.clear()

    def resident_lines(self) -> list[int]:
        """All resident lines, set by set, LRU to MRU within a set."""
        hook = self._sync_hook
        if hook is not None:
            hook()
        out: list[int] = []
        for s in self._sets:
            out.extend(s)
        return out

    @property
    def occupancy(self) -> int:
        """Number of resident lines."""
        hook = self._sync_hook
        if hook is not None:
            hook()
        return sum(len(s) for s in self._sets)
