"""Non-inclusive L3 hierarchy backend.

Identical to the reference :class:`~repro.mem.hierarchy.MemoryHierarchy`
except at L3 eviction time: the victim silently leaves the shared cache
while private L1/L2 copies — and the directory entry tracking them —
survive.  Modified lines therefore stay writable in their owner's private
hierarchy across L3 victimization (their writeback happens later, on
downgrade), and a line evicted from the L3 can still be served
cache-to-cache from a private copy, exactly the behavior that
distinguishes non-inclusive parts.

Coherence stays correct because the directory in this model is logically
global (unbounded sharer/owner maps), not embedded in L3 tags; inclusion
was an eviction *policy* of the reference hierarchy, not a prerequisite
for the protocol.

Construct with ``inclusive=True`` to disable the distinguishing feature —
the instance is then behaviorally identical to the reference hierarchy,
which the backend parity suite asserts.
"""

from __future__ import annotations

from repro.config import MachineConfig
from repro.mem.hierarchy import MemoryHierarchy


class NonInclusiveHierarchy(MemoryHierarchy):
    """Three-level hierarchy whose L3 does not back-invalidate privates."""

    inclusive_l3 = False

    def __init__(self, machine: MachineConfig, inclusive: bool = False) -> None:
        super().__init__(machine)
        # Instance attribute shadows the class seam, so one class serves
        # both the backend and its feature-disabled parity twin.
        self.inclusive_l3 = inclusive
