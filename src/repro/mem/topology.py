"""Machine topology: the core → complex → socket axis of the memory system.

This module is the single owner of the "which cores share what" questions
the memory layer used to answer with ad-hoc ``cores_per_socket``
arithmetic.  A :class:`Topology` is a *view* of a
:class:`~repro.config.MachineConfig` grouping cores into **domains** — the
units that own a last-level-cache structure:

* :meth:`Topology.socket_view` — one domain per socket.  This is what the
  flat hierarchy backends (inclusive, non-inclusive, prefetching) consume:
  they model one shared L3 per socket regardless of any finer complex
  structure the machine declares.
* :meth:`Topology.complex_view` — one domain per core complex (CCX).  The
  ``complex`` backend consumes this: each domain owns an L3 slice and a
  directory home node, and cross-domain transfers are charged by latency
  class.

Every hop between two domains falls into one of three **latency classes**
(:data:`LATENCY_CLASSES`): intra-complex (free beyond the base L3
latency), cross-complex (two complexes of one socket, through the on-die
fabric), and cross-socket (through the inter-socket link).  The socket
view only ever produces the first and last class, which is exactly the
binary local/remote split the flat hierarchy always had — the refactor is
behavior-preserving by construction, and the ``_reference`` parity
battery asserts it.
"""

from __future__ import annotations

from repro.config import CACHE_LINE_BYTES, MachineConfig

#: The three hop classes a cross-core transfer can fall into, cheapest
#: first.  ``AccessCounters`` tracks one traffic counter per class.
LATENCY_CLASSES = ("intra-complex", "cross-complex", "cross-socket")

INTRA_COMPLEX, CROSS_COMPLEX, CROSS_SOCKET = LATENCY_CLASSES


class Topology:
    """One grouping of a machine's cores into cache-owning domains.

    Attributes:
        machine: The machine configuration this view was built from.
        domains: Per-domain tuples of the core ids it contains.
        domain_of: Per-core domain index (indexable by core id).
        domain_socket: Per-domain socket index.
        domain_mask: Per-domain bitmask over core ids.
        num_domains: Number of domains (``len(domains)``).
    """

    def __init__(
        self, machine: MachineConfig, domains: list[list[int]]
    ) -> None:
        self.machine = machine
        self.domains = tuple(tuple(cores) for cores in domains)
        self.num_domains = len(self.domains)
        self.domain_of = [0] * machine.num_cores
        for index, cores in enumerate(self.domains):
            for core in cores:
                self.domain_of[core] = index
        self.domain_socket = tuple(
            machine.socket_of(cores[0]) for cores in self.domains
        )
        self.domain_mask = tuple(
            sum(1 << core for core in cores) for cores in self.domains
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def socket_view(cls, machine: MachineConfig) -> Topology:
        """One domain per socket — the flat backends' grouping."""
        per_socket = machine.cores_per_socket
        return cls(machine, [
            list(range(s * per_socket, (s + 1) * per_socket))
            for s in range(machine.num_sockets)
        ])

    @classmethod
    def complex_view(cls, machine: MachineConfig) -> Topology:
        """One domain per core complex — the ``complex`` backend's grouping."""
        sizes = machine.socket_complex_sizes
        domains: list[list[int]] = []
        for s in range(machine.num_sockets):
            core = s * machine.cores_per_socket
            for size in sizes:
                domains.append(list(range(core, core + size)))
                core += size
        return cls(machine, domains)

    # ------------------------------------------------------------------
    # Latency classes
    # ------------------------------------------------------------------

    def hop_class(self, from_domain: int, to_domain: int) -> str:
        """The :data:`LATENCY_CLASSES` entry for a domain-to-domain hop."""
        if from_domain == to_domain:
            return INTRA_COMPLEX
        if self.domain_socket[from_domain] == self.domain_socket[to_domain]:
            return CROSS_COMPLEX
        return CROSS_SOCKET

    def hop_extra_cycles(self, from_domain: int, to_domain: int) -> int:
        """Extra cycles beyond the base L3 latency for one hop."""
        hop = self.hop_class(from_domain, to_domain)
        if hop == INTRA_COMPLEX:
            return 0
        if hop == CROSS_COMPLEX:
            return self.machine.topology.cross_complex_extra_cycles
        return self.machine.remote_socket_extra_cycles

    def hop_extra_table(self) -> list[list[int]]:
        """Dense ``[from][to]`` extra-cycle table (hot-path binding)."""
        return [
            [self.hop_extra_cycles(a, b) for b in range(self.num_domains)]
            for a in range(self.num_domains)
        ]


def fabric_min_cycles(machine: MachineConfig, transfers: int) -> float:
    """Minimum region duration the interconnect bandwidth allows (cycles).

    Mirrors :meth:`repro.mem.dram.Dram.min_cycles_for_traffic` for the
    fabric carrying cross-complex and cross-socket line transfers: the
    same line-sized units, charged against the machine's configured
    sustained interconnect bandwidth.  Machines without an
    ``interconnect_gbps`` (every flat machine) are unconstrained.

    Args:
        machine: The machine configuration.
        transfers: Cross-complex plus cross-socket line transfers in the
            region.

    Returns:
        The bandwidth floor in cycles (0.0 when unconstrained).
    """
    gbps = machine.topology.interconnect_gbps
    if gbps is None or transfers <= 0:
        return 0.0
    bytes_per_cycle = gbps / machine.core.frequency_ghz
    return transfers * CACHE_LINE_BYTES / bytes_per_cycle
