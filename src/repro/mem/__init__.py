"""Memory-system substrate: caches, MSI directory, DRAM, full hierarchy."""

from repro.mem.cache import CacheStats, SetAssocCache
from repro.mem.directory import Directory
from repro.mem.dram import Dram
from repro.mem.hierarchy import AccessCounters, MemoryHierarchy

__all__ = [
    "AccessCounters",
    "CacheStats",
    "Directory",
    "Dram",
    "MemoryHierarchy",
    "SetAssocCache",
]
