"""Memory-system substrate: caches, MSI directory, DRAM, full hierarchy.

Besides the reference inclusive hierarchy, :mod:`repro.mem.backends`
registers pluggable variants (non-inclusive L3, next-line prefetching,
per-complex L3 slices) selectable by name through
``MachineConfig.hierarchy``; :mod:`repro.mem.topology` owns the
core → complex → socket grouping every backend consumes.
"""

from repro.mem.backends import (
    HIERARCHY_BACKENDS,
    backend_names,
    hierarchy_backend,
)
from repro.mem.cache import CacheStats, SetAssocCache
from repro.mem.complexes import ComplexHierarchy
from repro.mem.directory import Directory, DistributedDirectory
from repro.mem.dram import Dram
from repro.mem.hierarchy import AccessCounters, MemoryHierarchy
from repro.mem.noninclusive import NonInclusiveHierarchy
from repro.mem.prefetch import NextLinePrefetchHierarchy
from repro.mem.topology import LATENCY_CLASSES, Topology, fabric_min_cycles

__all__ = [
    "AccessCounters",
    "CacheStats",
    "ComplexHierarchy",
    "Directory",
    "DistributedDirectory",
    "Dram",
    "HIERARCHY_BACKENDS",
    "LATENCY_CLASSES",
    "MemoryHierarchy",
    "NextLinePrefetchHierarchy",
    "NonInclusiveHierarchy",
    "SetAssocCache",
    "Topology",
    "backend_names",
    "fabric_min_cycles",
    "hierarchy_backend",
]
