"""Memory-system substrate: caches, MSI directory, DRAM, full hierarchy.

Besides the reference inclusive hierarchy, :mod:`repro.mem.backends`
registers pluggable variants (non-inclusive L3, next-line prefetching)
selectable by name through ``MachineConfig.hierarchy``.
"""

from repro.mem.backends import (
    HIERARCHY_BACKENDS,
    backend_names,
    hierarchy_backend,
)
from repro.mem.cache import CacheStats, SetAssocCache
from repro.mem.directory import Directory
from repro.mem.dram import Dram
from repro.mem.hierarchy import AccessCounters, MemoryHierarchy
from repro.mem.noninclusive import NonInclusiveHierarchy
from repro.mem.prefetch import NextLinePrefetchHierarchy

__all__ = [
    "AccessCounters",
    "CacheStats",
    "Directory",
    "Dram",
    "HIERARCHY_BACKENDS",
    "MemoryHierarchy",
    "NextLinePrefetchHierarchy",
    "NonInclusiveHierarchy",
    "SetAssocCache",
    "backend_names",
    "hierarchy_backend",
]
