"""Core-complex (CCX-style) hierarchy backend.

Each complex owns a private slice of the socket's L3 (an equal split of
the socket capacity across its complexes) and a home node of an
address-interleaved :class:`~repro.mem.directory.DistributedDirectory`.
Cross-core transfers are charged by latency class — free within a
complex, ``cross_complex_extra_cycles`` between complexes of one socket,
``remote_socket_extra_cycles`` between sockets — and counted per class in
``AccessCounters`` so the region bandwidth model can bound the fabric.

The semantics are the flat inclusive hierarchy's, generalized from
sockets to topology domains (:meth:`Topology.complex_view`): probe my
domain's L3 slice, serve dirty lines cache-to-cache from their owner's
private hierarchy, keep the slice inclusive of its domain's private
caches, and charge DRAM traffic to the *socket* whose memory controller
moves the line.  Directory state is sharded by line across per-complex
home nodes; home lookup itself is charged no extra latency (the flat
model folds directory access into the L3 latency, and this backend keeps
that convention — only actual line movement pays fabric hops).  With one
complex per socket the domains *are* the sockets, every hop resolves to
the old local/remote split, and the backend is bit-identical to the flat
inclusive hierarchy — asserted by the degeneracy battery in
``tests/test_mem_backends.py``.

This access path favors readability over the inlined style of the base
``access_block``: topology machines are sweep subjects, not the
benchmarked hot path.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.config import MachineConfig
from repro.errors import ConfigError, SimulationError
from repro.mem.directory import DistributedDirectory
from repro.mem.hierarchy import _MISS, _STORE_STALL_FRACTION, MemoryHierarchy
from repro.mem.topology import Topology


class ComplexHierarchy(MemoryHierarchy):
    """Three-level hierarchy with per-complex L3 slices and directory homes."""

    def __init__(self, machine: MachineConfig) -> None:
        super().__init__(machine)
        per_socket = machine.complexes_per_socket
        if machine.l3.size_bytes % per_socket != 0:
            raise ConfigError(
                f"socket L3 of {machine.l3.size_bytes} bytes does not split "
                f"into {per_socket} equal complex slices"
            )
        topo = Topology.complex_view(machine)
        self.topology = topo
        # Replace the per-socket L3s with one slice per complex; CacheConfig
        # validation keeps the slice geometry honest (power-of-two sets).
        slice_config = replace(
            machine.l3, size_bytes=machine.l3.size_bytes // per_socket
        )
        self.l3 = [self.cache_cls(slice_config) for _ in range(topo.num_domains)]
        self.directory = DistributedDirectory(
            num_cores=machine.num_cores, num_homes=topo.num_domains
        )
        self._domain_of = list(topo.domain_of)
        self._domain_mask = list(topo.domain_mask)
        self._domain_socket = list(topo.domain_socket)
        self._hop_extra = topo.hop_extra_table()
        self._l3_lat = slice_config.latency_cycles

    def _kernel_params(self) -> dict:
        """Kernel parameters in this backend's own domain generality.

        Unlike the flat backends' socket view, every kernel axis is live
        here: per-complex L3 slices as separate tag rows, the full
        three-class hop table, and address-interleaved directory homes
        (``home = line % num_homes``).
        """
        homes = self.directory.homes
        return {
            "domain_of": np.asarray(self._domain_of, dtype=np.int64),
            "domain_socket": np.asarray(self._domain_socket, dtype=np.int64),
            "domain_mask": np.asarray(self._domain_mask, dtype=np.int64),
            "hop_extra": np.asarray(self._hop_extra, dtype=np.int64),
            "l3_lat": self._l3_lat,
            "num_homes": self.directory.num_homes,
            "home_stats": tuple(home._stats for home in homes),
            "home_route": lambda line: homes[line % len(homes)],
        }

    # ------------------------------------------------------------------
    # Helpers (domain-generalized twins of the base class's)
    # ------------------------------------------------------------------

    def _invalidate_mask(self, line: int, mask: int, my_domain: int) -> int:
        """Purge ``line`` from the private caches of every core in ``mask``.

        Returns:
            The worst extra hop cycles among the invalidated cores (0 when
            every one shares ``my_domain``).
        """
        worst = 0
        hop_row = self._hop_extra[my_domain]
        domain_of = self._domain_of
        miss = _MISS
        while mask:
            low = mask & -mask
            mask ^= low
            core = low.bit_length() - 1
            (p1_sets, p1_mask, p1_stats, p1_dirty,
             p2_sets, p2_mask, p2_stats, p2_dirty) = self._purge[core]
            s = p1_sets[line & p1_mask]
            if s.pop(line, miss) is not miss:
                p1_dirty.discard(line)
                p1_stats.invalidations += 1
            s = p2_sets[line & p2_mask]
            if s.pop(line, miss) is not miss:
                p2_dirty.discard(line)
                p2_stats.invalidations += 1
            hop = hop_row[domain_of[core]]
            if hop > worst:
                worst = hop
        return worst

    def _evict_slice_victim(self, domain: int, s3: dict) -> None:
        """Evict the LRU victim of one L3-slice set, keeping inclusion.

        The domain-scoped twin of the base ``_evict_l3_victim``: a local
        Modified owner writes back through the domain's socket, and the
        victim is purged from the domain's private caches (sharers outside
        the domain keep their copies and directory bits).
        """
        l3 = self.l3[domain]
        vline = next(iter(s3))
        del s3[vline]
        l3.stats.evictions += 1
        if vline in l3._dirty:  # defensive: empty on the fast paths
            l3._dirty.discard(vline)
            l3.stats.dirty_evictions += 1
        home = self.directory.homes[vline % self.directory.num_homes]
        vowner = home._owner.get(vline, -1)
        if vowner >= 0 and self._domain_of[vowner] == domain:
            self._dram_wbs[self._domain_socket[domain]] += 1
            self._writebacks += 1
            del home._owner[vline]
        vmask = home._sharers.get(vline, 0)
        if vmask:
            local = vmask & self._domain_mask[domain]
            if local:
                self._invalidate_mask(vline, local, domain)
            rest = vmask & ~self._domain_mask[domain]
            if rest:
                home._sharers[vline] = rest
            else:
                del home._sharers[vline]

    # ------------------------------------------------------------------
    # Access path
    # ------------------------------------------------------------------

    def access_block(self, core, lines, writes, mlp: float) -> float:
        """Process one block's reference stream; returns stall cycles.

        Same contract as the base implementation, with transfers charged
        by topology latency class and counted per class.
        """
        if mlp < 1.0:
            raise SimulationError(f"mlp must be >= 1, got {mlp}")
        if self._kernel_fns is not None:
            return self._kernel_access_block(core, lines, writes, mlp)
        socket = self._socket_of[core]
        domain = self._domain_of[core]
        domain_of = self._domain_of
        hop_row = self._hop_extra[domain]
        l1 = self.l1d[core]
        l2 = self.l2[core]
        l3 = self.l3[domain]
        l1_stats, l2_stats, l3_stats = l1.stats, l2.stats, l3.stats
        l1_sets, l1_mask, l1_assoc = l1._sets, l1._set_mask, l1._assoc
        l2_sets, l2_mask, l2_assoc = l2._sets, l2._set_mask, l2._assoc
        l3_sets, l3_mask, l3_assoc = l3._sets, l3._set_mask, l3._assoc
        l2_lat = l2.config.latency_cycles
        l3_lat = self._l3_lat
        dram_lat = self.dram.latency_cycles
        homes = self.directory.homes
        num_homes = self.directory.num_homes
        num_domains = len(self.l3)
        dram_reads = self._dram_reads
        dram_wbs = self._dram_wbs
        my_bit = 1 << core
        miss = _MISS

        loads = stores = l1d_misses = l2_misses = c2c = writebacks = 0
        intra_c2c = xcomplex_c2c = xsocket_c2c = 0
        stall = 0.0

        if type(lines) is not list:
            lines = lines.tolist()
        if type(writes) is not list:
            writes = writes.tolist()
        for line, w in zip(lines, writes):
            extra = 0
            home = homes[line % num_homes]
            dir_sharers = home._sharers
            dir_owner = home._owner
            if w:
                stores += 1
                prev_owner = dir_owner.get(line, -1)
                if prev_owner != core:
                    mask = dir_sharers.get(line, 0) & ~my_bit
                    if mask or prev_owner >= 0:
                        worst_hop = 0
                        if mask:
                            home.stats.invalidations_sent += mask.bit_count()
                            worst_hop = self._invalidate_mask(
                                line, mask, domain
                            )
                        if prev_owner >= 0:
                            # Remote M copy: transfer + writeback on downgrade.
                            prev_domain = domain_of[prev_owner]
                            dram_wbs[self._domain_socket[prev_domain]] += 1
                            writebacks += 1
                            hop = hop_row[prev_domain]
                            if hop > worst_hop:
                                worst_hop = hop
                            c2c += 1
                            if prev_domain == domain:
                                intra_c2c += 1
                            elif (
                                self._domain_socket[prev_domain] == socket
                            ):
                                xcomplex_c2c += 1
                            else:
                                xsocket_c2c += 1
                        if num_domains > 1:
                            for d in range(num_domains):
                                if d != domain:
                                    self.l3[d].remove(line)
                        extra = l3_lat + worst_hop
                    dir_sharers[line] = my_bit
                    dir_owner[line] = core
            else:
                loads += 1

            # L1D probe.
            s = l1_sets[line & l1_mask]
            if s.pop(line, miss) is not miss:
                s[line] = None  # promote to MRU
                l1_stats.hits += 1
                if w and extra:
                    stall += extra * _STORE_STALL_FRACTION
                continue
            l1_stats.misses += 1
            l1d_misses += 1

            # L2 probe.
            s2 = l2_sets[line & l2_mask]
            if s2.pop(line, miss) is not miss:
                s2[line] = None
                l2_stats.hits += 1
                extra += l2_lat
            else:
                l2_stats.misses += 1
                l2_misses += 1
                # L3-slice probe (my complex's slice only).
                s3 = l3_sets[line & l3_mask]
                if s3.pop(line, miss) is not miss:
                    s3[line] = None
                    l3_stats.hits += 1
                    extra += l3_lat
                else:
                    l3_stats.misses += 1
                    owner = dir_owner.get(line, -1)
                    if owner >= 0 and owner != core:
                        # Dirty in another private hierarchy: cache-to-cache
                        # transfer plus MSI downgrade writeback.
                        owner_domain = domain_of[owner]
                        if owner_domain == domain:
                            extra += l3_lat + l2_lat
                            intra_c2c += 1
                        else:
                            extra += l3_lat + hop_row[owner_domain]
                            if self._domain_socket[owner_domain] == socket:
                                xcomplex_c2c += 1
                            else:
                                xsocket_c2c += 1
                        if not w:
                            del dir_owner[line]
                            home.stats.downgrades += 1
                            dram_wbs[self._domain_socket[owner_domain]] += 1
                            writebacks += 1
                        home.stats.cache_to_cache += 1
                        c2c += 1
                    else:
                        extra += dram_lat
                        dram_reads[socket] += 1
                    # Fill my slice, keeping it inclusive of the domain.
                    if len(s3) >= l3_assoc:
                        self._evict_slice_victim(domain, s3)
                    s3[line] = None
                # Fill L2.
                if len(s2) >= l2_assoc:
                    old = next(iter(s2))
                    del s2[old]
                    l2_stats.evictions += 1
                s2[line] = None

            # Fill L1.
            if len(s) >= l1_assoc:
                old = next(iter(s))
                del s[old]
                l1_stats.evictions += 1
            s[line] = None

            if not w:
                dir_sharers[line] = dir_sharers.get(line, 0) | my_bit
                prev_owner = dir_owner.get(line, -1)
                if prev_owner >= 0 and prev_owner != core:
                    del dir_owner[line]
                    home.stats.downgrades += 1
                stall += extra
            else:
                stall += extra * _STORE_STALL_FRACTION

        self._loads += loads
        self._stores += stores
        self._l1d_misses += l1d_misses
        self._l2_misses += l2_misses
        self._c2c += c2c
        self._writebacks += writebacks
        self._intra_c2c += intra_c2c
        self._xcomplex_c2c += xcomplex_c2c
        self._xsocket_c2c += xsocket_c2c
        return stall / mlp
