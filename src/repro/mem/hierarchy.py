"""Three-level cache hierarchy with MSI coherence and DRAM backing.

Topology (Table I): per-core private L1-I/L1-D/L2, one shared L3 per
socket, a directory over private caches, and DRAM behind the L3s.  The
hierarchy is *inclusive at L3*: an L3 eviction invalidates the line in the
socket's private caches, which is what lets the directory live logically at
the L3 and keeps coherence state reconstructible by data replay alone (the
property the paper's warmup scheme depends on).

Dirtiness is tracked at the L3/directory level (private caches are modeled
write-through to L3 for accounting); store *timing* is still charged at the
core via the interval model, and DRAM writeback bandwidth is charged when a
modified line leaves an L3 or is downgraded by a remote reader.

``access_block`` is the hot path: it processes a whole reference stream of
one :class:`~repro.trace.program.BlockExec` against dict-based O(1) LRU
sets, with all per-core invariants (set tables, masks, latencies) bound
once per core in ``_ctx`` and all statistics accumulated in locals that
are flushed once per call.  Keep it free of per-access allocations and
attribute lookups.
"""

from __future__ import annotations

import numpy as np

from repro.config import MachineConfig
from repro.errors import SimulationError
from repro.mem import kernels as mem_kernels
from repro.mem.cache import SetAssocCache
from repro.mem.directory import Directory
from repro.mem.dram import Dram
from repro.mem.topology import Topology

_STORE_STALL_FRACTION = 0.3  # store misses retire through the store buffer

#: Sentinel distinguishing "absent" from a stored value in ``dict.pop``.
_MISS = object()


class AccessCounters:
    """Aggregate access/miss counters snapshot (see ``MemoryHierarchy.snapshot``)."""

    __slots__ = (
        "loads", "stores", "l1d_misses", "l2_misses", "l3_misses",
        "cache_to_cache", "writebacks", "l1i_misses", "prefetches",
        "intra_complex_transfers", "cross_complex_transfers",
        "cross_socket_transfers",
        "dram_reads_per_socket", "dram_writebacks_per_socket",
    )

    #: Fields holding per-socket tuples rather than scalar ints.
    _TUPLE_FIELDS = ("dram_reads_per_socket", "dram_writebacks_per_socket")

    def __init__(
        self,
        loads: int = 0,
        stores: int = 0,
        l1d_misses: int = 0,
        l2_misses: int = 0,
        l3_misses: int = 0,
        cache_to_cache: int = 0,
        writebacks: int = 0,
        l1i_misses: int = 0,
        prefetches: int = 0,
        intra_complex_transfers: int = 0,
        cross_complex_transfers: int = 0,
        cross_socket_transfers: int = 0,
        dram_reads_per_socket: tuple[int, ...] = (),
        dram_writebacks_per_socket: tuple[int, ...] = (),
    ) -> None:
        self.loads = loads
        self.stores = stores
        self.l1d_misses = l1d_misses
        self.l2_misses = l2_misses
        self.l3_misses = l3_misses
        self.cache_to_cache = cache_to_cache
        self.writebacks = writebacks
        self.l1i_misses = l1i_misses
        self.prefetches = prefetches
        self.intra_complex_transfers = intra_complex_transfers
        self.cross_complex_transfers = cross_complex_transfers
        self.cross_socket_transfers = cross_socket_transfers
        self.dram_reads_per_socket = dram_reads_per_socket
        self.dram_writebacks_per_socket = dram_writebacks_per_socket

    @property
    def accesses(self) -> int:
        """Total data references (loads + stores)."""
        return self.loads + self.stores

    @property
    def dram_accesses(self) -> int:
        """Line transfers on the DRAM bus (fills + writebacks)."""
        return self.l3_misses + self.writebacks

    def to_state(self) -> dict:
        """Serialize to a plain dict (artifact-store payload).

        Returns:
            A dict of counter names to ints/tuples, consumed by
            :meth:`from_state`.
        """
        return {
            name: getattr(self, name) for name in AccessCounters.__slots__
        }

    @classmethod
    def from_state(cls, state: dict) -> AccessCounters:
        """Rebuild counters from a :meth:`to_state` dict.

        Tolerant of counters the producing version did not know about:
        artifacts stored before a counter existed decode it as zero (the
        per-latency-class transfer counters post-date the PR-7 store
        format, and old entries must keep loading).  Unknown keys in
        ``state`` are ignored for the symmetric forward case.

        Args:
            state: A dict produced by :meth:`to_state` (any version).

        Returns:
            An equivalent :class:`AccessCounters`.
        """
        tuples = cls._TUPLE_FIELDS
        return cls(**{
            name: (
                tuple(state.get(name, ()))
                if name in tuples
                else state.get(name, 0)
            )
            for name in cls.__slots__
        })

    def delta(self, earlier: AccessCounters) -> AccessCounters:
        """Counter difference ``self - earlier`` (for per-region metrics)."""
        return AccessCounters(
            loads=self.loads - earlier.loads,
            stores=self.stores - earlier.stores,
            l1d_misses=self.l1d_misses - earlier.l1d_misses,
            l2_misses=self.l2_misses - earlier.l2_misses,
            l3_misses=self.l3_misses - earlier.l3_misses,
            cache_to_cache=self.cache_to_cache - earlier.cache_to_cache,
            writebacks=self.writebacks - earlier.writebacks,
            l1i_misses=self.l1i_misses - earlier.l1i_misses,
            prefetches=self.prefetches - earlier.prefetches,
            intra_complex_transfers=(
                self.intra_complex_transfers - earlier.intra_complex_transfers
            ),
            cross_complex_transfers=(
                self.cross_complex_transfers - earlier.cross_complex_transfers
            ),
            cross_socket_transfers=(
                self.cross_socket_transfers - earlier.cross_socket_transfers
            ),
            dram_reads_per_socket=tuple(
                a - b for a, b in zip(
                    self.dram_reads_per_socket, earlier.dram_reads_per_socket)
            ),
            dram_writebacks_per_socket=tuple(
                a - b for a, b in zip(
                    self.dram_writebacks_per_socket,
                    earlier.dram_writebacks_per_socket)
            ),
        )


class MemoryHierarchy:
    """Caches + directory + DRAM for one simulated machine.

    Backend variants (see :mod:`repro.mem.backends`) subclass this and
    flip the two feature seams below; with both at their defaults every
    subclass is behaviorally identical to this reference hierarchy, which
    is what the backend parity tests assert.
    """

    #: Cache model class; the reference (seed) implementation swaps in the
    #: list-based variant for parity tests and perf baselines.
    cache_cls = SetAssocCache

    #: Whether an L3 eviction back-invalidates the socket's private caches
    #: (the paper's inclusive hierarchy).  ``False`` = non-inclusive: the
    #: victim drops from the L3 only and the directory keeps its entry.
    inclusive_l3 = True

    #: Next-line prefetch depth triggered by demand L2 misses; 0 disables
    #: the hook entirely (subclasses that set it > 0 must implement
    #: ``_prefetch_after_miss``).
    prefetch_degree = 0

    def __init__(self, machine: MachineConfig) -> None:
        self.machine = machine
        n_cores = machine.num_cores
        cache_cls = self.cache_cls
        self.l1i = [cache_cls(machine.l1i) for _ in range(n_cores)]
        self.l1d = [cache_cls(machine.l1d) for _ in range(n_cores)]
        self.l2 = [cache_cls(machine.l2) for _ in range(n_cores)]
        self.l3 = [cache_cls(machine.l3) for _ in range(machine.num_sockets)]
        self.directory = Directory(num_cores=n_cores)
        self.dram = Dram(machine)
        # The flat backends group cores by socket regardless of any finer
        # complex structure: one shared L3 per socket is the paper's
        # machine, and the socket view reproduces the historical
        # core-arithmetic tables exactly (asserted by the parity battery).
        topo = Topology.socket_view(machine)
        self.topology = topo
        self._socket_of = list(topo.domain_of)
        self._cores_of_socket = [list(cores) for cores in topo.domains]
        self._socket_mask = list(topo.domain_mask)
        self._num_sockets = machine.num_sockets
        self._dram_reads = self.dram.stats.reads_per_socket
        self._dram_wbs = self.dram.stats.writebacks_per_socket
        self._loads = 0
        self._stores = 0
        self._l1d_misses = 0
        self._l2_misses = 0
        self._c2c = 0
        self._writebacks = 0
        self._l1i_misses = 0
        self._prefetches = 0
        # Cache-to-cache transfers split by latency class.  The socket
        # view has no cross-complex hops, so the middle class stays zero
        # here; the ``complex`` backend populates all three.
        self._intra_c2c = 0
        self._xcomplex_c2c = 0
        self._xsocket_c2c = 0
        # Kernel tier (repro.util.jit): when active — and the machine's
        # sharer masks fit an int64 — access_block routes through the
        # flat-array kernels instead of the dict loop below.  State is
        # built lazily on first use; the reference subclass keeps its own
        # access paths, so the seam stays dict-only there.
        self._kstate = None
        self._kernel_fns = None
        if (
            self.cache_cls is SetAssocCache
            and n_cores <= mem_kernels.MAX_KERNEL_CORES
        ):
            self._kernel_fns = mem_kernels.kernel_bundle()
        # Per-core hot-path context: everything ``access_block`` needs,
        # bound once (caches are flushed in place, never replaced, so the
        # bindings stay valid for the hierarchy's lifetime).
        remote_lat = (
            machine.l3.latency_cycles + machine.remote_socket_extra_cycles
        )
        # Inclusion-purge context, indexed by core: the set tables and
        # stats of the private caches the inlined L3 eviction must probe.
        self._purge = [
            (
                self.l1d[core]._sets, self.l1d[core]._set_mask,
                self.l1d[core].stats, self.l1d[core]._dirty,
                self.l2[core]._sets, self.l2[core]._set_mask,
                self.l2[core].stats, self.l2[core]._dirty,
            )
            for core in range(n_cores)
        ]
        self._ctx = []
        for core in range(n_cores):
            socket = self._socket_of[core]
            l1 = self.l1d[core]
            l2 = self.l2[core]
            l3 = self.l3[socket]
            self._ctx.append((
                socket,
                l1.stats, l1._sets, l1._set_mask, l1._assoc,
                l2.stats, l2._sets, l2._set_mask, l2._assoc,
                l3.stats, l3._sets, l3._set_mask, l3._assoc, l3._dirty,
                l2.config.latency_cycles,
                l3.config.latency_cycles,
                self.dram.latency_cycles,
                remote_lat,
                1 << core,
                self._socket_mask[socket],
            ))

    # ------------------------------------------------------------------
    # Counter management
    # ------------------------------------------------------------------

    def snapshot(self) -> AccessCounters:
        """Copy all cumulative counters (cheap; used per region)."""
        if self._kstate is not None:
            self._kstate.flush_stats()
        return AccessCounters(
            loads=self._loads,
            stores=self._stores,
            l1d_misses=self._l1d_misses,
            l2_misses=self._l2_misses,
            l3_misses=sum(self.dram.stats.reads_per_socket),
            cache_to_cache=self._c2c,
            writebacks=self._writebacks,
            l1i_misses=self._l1i_misses,
            prefetches=self._prefetches,
            intra_complex_transfers=self._intra_c2c,
            cross_complex_transfers=self._xcomplex_c2c,
            cross_socket_transfers=self._xsocket_c2c,
            dram_reads_per_socket=tuple(self.dram.stats.reads_per_socket),
            dram_writebacks_per_socket=tuple(self.dram.stats.writebacks_per_socket),
        )

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------

    def _evict_l3_victim(self, socket: int, s3: dict) -> None:
        """Evict the LRU victim of one L3 set (off-hot-path form).

        The shared, readable counterpart of the victim handling that
        ``access_block`` keeps inlined for speed (see the "keep in sync"
        note there): dirty-set bookkeeping, then — on the inclusive
        backend — the local-owner writeback and the inclusion purge of
        the socket's private caches.  Non-demand fill paths (the
        prefetching backend today) must call this instead of growing
        further hand copies.  L3-level dirtiness is tracked at the
        directory owner in this hierarchy (the cache ``_dirty`` side-set
        stays empty on the fast paths), so a non-inclusive victim drops
        with no DRAM charge here — its writeback is charged later, at
        downgrade.

        Args:
            socket: The socket owning the L3.
            s3: The set dict (``l3._sets[index]``) about to be filled.
        """
        l3 = self.l3[socket]
        vline = next(iter(s3))
        del s3[vline]
        l3.stats.evictions += 1
        if vline in l3._dirty:  # defensive: empty on the fast paths
            l3._dirty.discard(vline)
            l3.stats.dirty_evictions += 1
        if not self.inclusive_l3:
            return
        owner = self.directory._owner
        sharers = self.directory._sharers
        vowner = owner.get(vline, -1)
        if vowner >= 0 and self._socket_of[vowner] == socket:
            self._dram_wbs[socket] += 1
            self._writebacks += 1
            del owner[vline]
        vmask = sharers.get(vline, 0)
        if vmask:
            socket_mask = self._socket_mask[socket]
            local = vmask & socket_mask
            if local:
                self._invalidate_remote(vline, local, socket)
            rest = vmask & ~socket_mask
            if rest:
                sharers[vline] = rest
            else:
                del sharers[vline]

    def _invalidate_remote(self, line: int, mask: int, my_socket: int) -> bool:
        """Remove ``line`` from all cores in ``mask``; True if any was remote."""
        remote = False
        purge = self._purge
        socket_of = self._socket_of
        miss = _MISS
        while mask:
            low = mask & -mask
            mask ^= low
            core = low.bit_length() - 1
            (p1_sets, p1_mask, p1_stats, p1_dirty,
             p2_sets, p2_mask, p2_stats, p2_dirty) = purge[core]
            s = p1_sets[line & p1_mask]
            if s.pop(line, miss) is not miss:
                p1_dirty.discard(line)
                p1_stats.invalidations += 1
            s = p2_sets[line & p2_mask]
            if s.pop(line, miss) is not miss:
                p2_dirty.discard(line)
                p2_stats.invalidations += 1
            if socket_of[core] != my_socket:
                remote = True
        return remote

    # ------------------------------------------------------------------
    # Kernel tier (flat-array access path)
    # ------------------------------------------------------------------

    def _kernel_params(self) -> dict:
        """Topology/latency parameters for the unified hierarchy kernel.

        The flat backends hand the kernel the socket view: domains *are*
        sockets, every off-diagonal hop costs the remote-socket extra,
        and a single directory home serves all lines — under which the
        generalized kernel arithmetic reduces exactly to this class's
        local/remote split (asserted by the three-way parity battery).
        """
        num_sockets = self._num_sockets
        hop = np.full(
            (num_sockets, num_sockets),
            self.machine.remote_socket_extra_cycles,
            dtype=np.int64,
        )
        np.fill_diagonal(hop, 0)
        return {
            "domain_of": np.asarray(self._socket_of, dtype=np.int64),
            "domain_socket": np.arange(num_sockets, dtype=np.int64),
            "domain_mask": np.asarray(self._socket_mask, dtype=np.int64),
            "hop_extra": hop,
            "l3_lat": self.machine.l3.latency_cycles,
            "num_homes": 1,
            "home_stats": (self.directory._stats,),
            "home_route": lambda line: self.directory,
        }

    def _kernel_directories(self):
        """The concrete :class:`Directory` nodes the kernel state mirrors."""
        homes = getattr(self.directory, "homes", None)
        return homes if homes is not None else (self.directory,)

    def _materialize_kernel_state(self) -> None:
        """``_sync_hook`` target: hand authority back to the dict engines."""
        kstate = self._kstate
        if kstate is not None:
            kstate.materialize()

    def _kernel_access_block(self, core, lines, writes, mlp: float) -> float:
        """Kernel-tier twin of ``access_block`` (state built on first use)."""
        kstate = self._kstate
        if kstate is None:
            kstate = self._kstate = mem_kernels.HierarchyKernelState(self)
            hook = self._materialize_kernel_state
            for cache in (*self.l1d, *self.l2, *self.l3):
                cache._sync_hook = hook
            for node in self._kernel_directories():
                node._sync_hook = hook
        return kstate.run(
            core,
            np.ascontiguousarray(lines, dtype=np.int64),
            np.ascontiguousarray(writes, dtype=np.bool_),
            mlp,
            self.prefetch_degree,
        )

    # ------------------------------------------------------------------
    # Access paths
    # ------------------------------------------------------------------

    def access(self, core: int, line: int, is_write: bool) -> int:
        """One data reference; returns the extra latency beyond L1 (cycles)."""
        return round(self.access_block(core, [line], [bool(is_write)], mlp=1.0))

    def access_block(self, core, lines, writes, mlp: float) -> float:
        """Process one block's reference stream; returns stall cycles.

        ``lines``/``writes`` may be numpy arrays or plain lists.  The
        returned stalls are the sum of beyond-L1 latencies divided by
        the block's memory-level parallelism (interval-model style); store
        latencies are further scaled by the store-buffer fraction.
        """
        if mlp < 1.0:
            raise SimulationError(f"mlp must be >= 1, got {mlp}")
        if self._kernel_fns is not None:
            return self._kernel_access_block(core, lines, writes, mlp)
        (socket,
         l1_stats, l1_sets, l1_mask, l1_assoc,
         l2_stats, l2_sets, l2_mask, l2_assoc,
         l3_stats, l3_sets, l3_mask, l3_assoc, l3_dirty,
         l2_lat, l3_lat, dram_lat, remote_lat, my_bit,
         socket_mask) = self._ctx[core]
        directory = self.directory
        dir_sharers = directory._sharers
        dir_owner = directory._owner
        sharers_get = dir_sharers.get
        owner_get = dir_owner.get
        dir_stats = directory.stats
        num_sockets = self._num_sockets
        dram_reads = self._dram_reads
        dram_wbs = self._dram_wbs
        socket_of = self._socket_of
        purge = self._purge
        l3_caches = self.l3
        miss = _MISS
        inclusive = self.inclusive_l3
        pf_degree = self.prefetch_degree

        loads = stores = l1d_misses = l2_misses = c2c = writebacks = 0
        intra_c2c = xsocket_c2c = 0
        l1_hits = l1_missc = l1_evic = 0
        l2_hits = l2_missc = l2_evic = 0
        l3_hits = l3_missc = l3_evic = l3_dirty_evic = 0
        invals_sent = downgrades = c2c_dir = 0
        stall = 0.0

        if type(lines) is not list:
            lines = lines.tolist()
        if type(writes) is not list:
            writes = writes.tolist()
        for line, w in zip(lines, writes):
            extra = 0
            if w:
                stores += 1
                prev_owner = owner_get(line, -1)
                if prev_owner != core:
                    mask = sharers_get(line, 0) & ~my_bit
                    if mask or prev_owner >= 0:
                        if mask:
                            invals_sent += mask.bit_count()
                            remote = self._invalidate_remote(line, mask, socket)
                        else:
                            remote = False
                        if prev_owner >= 0:
                            # Remote M copy: transfer + writeback on downgrade.
                            prev_socket = socket_of[prev_owner]
                            dram_wbs[prev_socket] += 1
                            writebacks += 1
                            remote = remote or prev_socket != socket
                            c2c += 1
                            if prev_socket != socket:
                                xsocket_c2c += 1
                            else:
                                intra_c2c += 1
                        if num_sockets > 1:
                            for sk in range(num_sockets):
                                if sk != socket:
                                    l3_caches[sk].remove(line)
                        extra = remote_lat if remote else l3_lat
                    dir_sharers[line] = my_bit
                    dir_owner[line] = core
            else:
                loads += 1

            # L1D probe.
            s = l1_sets[line & l1_mask]
            if s.pop(line, miss) is not miss:
                s[line] = None  # promote to MRU
                l1_hits += 1
                if w and extra:
                    stall += extra * _STORE_STALL_FRACTION
                continue
            l1_missc += 1
            l1d_misses += 1

            # L2 probe.
            s2 = l2_sets[line & l2_mask]
            if s2.pop(line, miss) is not miss:
                s2[line] = None
                l2_hits += 1
                extra += l2_lat
            else:
                l2_missc += 1
                l2_misses += 1
                # L3 probe.
                s3 = l3_sets[line & l3_mask]
                if s3.pop(line, miss) is not miss:
                    s3[line] = None
                    l3_hits += 1
                    extra += l3_lat
                else:
                    l3_missc += 1
                    owner = owner_get(line, -1)
                    if owner >= 0 and owner != core:
                        # Dirty in a remote private hierarchy: cache-to-cache
                        # transfer plus MSI downgrade writeback.
                        owner_socket = socket_of[owner]
                        if owner_socket != socket:
                            extra += remote_lat
                            xsocket_c2c += 1
                        else:
                            extra += l3_lat + l2_lat
                            intra_c2c += 1
                        if not w:
                            del dir_owner[line]
                            downgrades += 1
                            dram_wbs[owner_socket] += 1
                            writebacks += 1
                        c2c_dir += 1
                        c2c += 1
                    else:
                        extra += dram_lat
                        dram_reads[socket] += 1
                    # Fill L3 (inlined), handling the victim per backend.
                    # Non-inclusive backends drop the victim from the L3
                    # alone: private copies and directory state survive,
                    # and — since dirtiness is tracked at the directory
                    # owner, not in the L3 ``_dirty`` side-set — no DRAM
                    # writeback is due here (it is charged at downgrade).
                    if len(s3) >= l3_assoc:
                        vline = next(iter(s3))
                        del s3[vline]
                        if vline in l3_dirty:
                            l3_dirty.discard(vline)
                            l3_dirty_evic += 1
                        l3_evic += 1
                        if inclusive:
                            vowner = owner_get(vline, -1)
                            if vowner >= 0 and socket_of[vowner] == socket:
                                dram_wbs[socket] += 1
                                writebacks += 1
                                del dir_owner[vline]
                            # Inclusion: purge the victim from this socket's
                            # private caches.  The directory sharer mask tells
                            # us which cores can possibly hold it, so streaming
                            # victims (one sharer) cost one probe, not 2*cores.
                            # NOTE: this bit-scan purge is a deliberate inline
                            # copy of _invalidate_remote's body (minus the
                            # remote-socket test), and this whole victim block
                            # is the hot-path twin of _evict_l3_victim — keep
                            # all three in sync.
                            vmask = sharers_get(vline, 0)
                            if vmask:
                                local = vmask & socket_mask
                                while local:
                                    low = local & -local
                                    local ^= low
                                    (p1_sets, p1_mask, p1_stats, p1_dirty,
                                     p2_sets, p2_mask, p2_stats,
                                     p2_dirty) = purge[low.bit_length() - 1]
                                    ps = p1_sets[vline & p1_mask]
                                    if ps.pop(vline, miss) is not miss:
                                        p1_dirty.discard(vline)
                                        p1_stats.invalidations += 1
                                    ps = p2_sets[vline & p2_mask]
                                    if ps.pop(vline, miss) is not miss:
                                        p2_dirty.discard(vline)
                                        p2_stats.invalidations += 1
                                rest = vmask & ~socket_mask
                                if rest:
                                    dir_sharers[vline] = rest
                                else:
                                    del dir_sharers[vline]
                    s3[line] = None
                # Fill L2.
                if len(s2) >= l2_assoc:
                    old = next(iter(s2))
                    del s2[old]
                    l2_evic += 1
                s2[line] = None
                if pf_degree:
                    self._prefetch_after_miss(core, line)

            # Fill L1.
            if len(s) >= l1_assoc:
                old = next(iter(s))
                del s[old]
                l1_evic += 1
            s[line] = None

            if not w:
                dir_sharers[line] = sharers_get(line, 0) | my_bit
                prev_owner = owner_get(line, -1)
                if prev_owner >= 0 and prev_owner != core:
                    del dir_owner[line]
                    downgrades += 1
                stall += extra
            else:
                stall += extra * _STORE_STALL_FRACTION

        self._loads += loads
        self._stores += stores
        self._l1d_misses += l1d_misses
        self._l2_misses += l2_misses
        self._c2c += c2c
        self._writebacks += writebacks
        self._intra_c2c += intra_c2c
        self._xsocket_c2c += xsocket_c2c
        l1_stats.hits += l1_hits
        l1_stats.misses += l1_missc
        l1_stats.evictions += l1_evic
        l2_stats.hits += l2_hits
        l2_stats.misses += l2_missc
        l2_stats.evictions += l2_evic
        l3_stats.hits += l3_hits
        l3_stats.misses += l3_missc
        l3_stats.evictions += l3_evic
        l3_stats.dirty_evictions += l3_dirty_evic
        dir_stats.invalidations_sent += invals_sent
        dir_stats.downgrades += downgrades
        dir_stats.cache_to_cache += c2c_dir
        return stall / mlp

    def access_code(self, core: int, code_lines: tuple[int, ...]) -> int:
        """Instruction-fetch touch of a block's code lines; returns stalls."""
        l1i = self.l1i[core]
        sets = l1i._sets
        set_mask = l1i._set_mask
        stats = l1i.stats
        miss = _MISS
        extra = 0
        for line in code_lines:
            s = sets[line & set_mask]
            if s.pop(line, miss) is not miss:
                s[line] = None
                stats.hits += 1
            else:
                stats.misses += 1
                self._l1i_misses += 1
                if len(s) >= l1i._assoc:
                    old = next(iter(s))
                    del s[old]
                    stats.evictions += 1
                s[line] = None
                extra += self.l2[core].config.latency_cycles
        return extra

    # ------------------------------------------------------------------
    # Warmup / state management
    # ------------------------------------------------------------------

    def replay(self, core: int, line: int, was_write: bool) -> None:
        """Warmup replay of one captured line (latency discarded)."""
        self.replay_block(core, [line], [was_write])

    def replay_block(self, core: int, lines, writes) -> None:
        """Warmup replay of a batch of captured lines for one core.

        ``lines``/``writes`` may be lists or numpy arrays; semantically
        identical to calling :meth:`replay` per entry, without the
        per-line call overhead.  Prefetching backends are suppressed for
        the duration: replay is checkpoint-style state *reconstruction*,
        so only the captured lines themselves may be installed — a
        speculative next-line fill would evict genuinely captured state.
        """
        saved_degree = self.prefetch_degree
        self.prefetch_degree = 0
        try:
            self.access_block(core, lines, writes, mlp=1.0)
        finally:
            self.prefetch_degree = saved_degree

    def flush_all(self) -> None:
        """Cold-start: empty every cache and the directory."""
        if self._kstate is not None:
            # Drop kernel-held content first (stats deltas are preserved
            # by flushing them into the counters), so the dict clears
            # below act on materialized-equivalent state.
            self._kstate.reset()
        for cache in (*self.l1i, *self.l1d, *self.l2, *self.l3):
            cache.flush()
        self.directory.flush()
