"""Three-level cache hierarchy with MSI coherence and DRAM backing.

Topology (Table I): per-core private L1-I/L1-D/L2, one shared L3 per
socket, a directory over private caches, and DRAM behind the L3s.  The
hierarchy is *inclusive at L3*: an L3 eviction invalidates the line in the
socket's private caches, which is what lets the directory live logically at
the L3 and keeps coherence state reconstructible by data replay alone (the
property the paper's warmup scheme depends on).

Dirtiness is tracked at the L3/directory level (private caches are modeled
write-through to L3 for accounting); store *timing* is still charged at the
core via the interval model, and DRAM writeback bandwidth is charged when a
modified line leaves an L3 or is downgraded by a remote reader.

``access_block`` is the hot path: it processes a whole reference stream of
one :class:`~repro.trace.program.BlockExec` with locals bound outside the
loop.  Keep it free of per-access allocations.
"""

from __future__ import annotations

import numpy as np

from repro.config import MachineConfig
from repro.errors import SimulationError
from repro.mem.cache import SetAssocCache
from repro.mem.directory import Directory
from repro.mem.dram import Dram

_STORE_STALL_FRACTION = 0.3  # store misses retire through the store buffer


class AccessCounters:
    """Aggregate access/miss counters snapshot (see ``MemoryHierarchy.snapshot``)."""

    __slots__ = (
        "loads", "stores", "l1d_misses", "l2_misses", "l3_misses",
        "cache_to_cache", "writebacks", "l1i_misses",
        "dram_reads_per_socket", "dram_writebacks_per_socket",
    )

    def __init__(
        self,
        loads: int = 0,
        stores: int = 0,
        l1d_misses: int = 0,
        l2_misses: int = 0,
        l3_misses: int = 0,
        cache_to_cache: int = 0,
        writebacks: int = 0,
        l1i_misses: int = 0,
        dram_reads_per_socket: tuple[int, ...] = (),
        dram_writebacks_per_socket: tuple[int, ...] = (),
    ) -> None:
        self.loads = loads
        self.stores = stores
        self.l1d_misses = l1d_misses
        self.l2_misses = l2_misses
        self.l3_misses = l3_misses
        self.cache_to_cache = cache_to_cache
        self.writebacks = writebacks
        self.l1i_misses = l1i_misses
        self.dram_reads_per_socket = dram_reads_per_socket
        self.dram_writebacks_per_socket = dram_writebacks_per_socket

    @property
    def accesses(self) -> int:
        """Total data references (loads + stores)."""
        return self.loads + self.stores

    @property
    def dram_accesses(self) -> int:
        """Line transfers on the DRAM bus (fills + writebacks)."""
        return self.l3_misses + self.writebacks

    def delta(self, earlier: AccessCounters) -> AccessCounters:
        """Counter difference ``self - earlier`` (for per-region metrics)."""
        return AccessCounters(
            loads=self.loads - earlier.loads,
            stores=self.stores - earlier.stores,
            l1d_misses=self.l1d_misses - earlier.l1d_misses,
            l2_misses=self.l2_misses - earlier.l2_misses,
            l3_misses=self.l3_misses - earlier.l3_misses,
            cache_to_cache=self.cache_to_cache - earlier.cache_to_cache,
            writebacks=self.writebacks - earlier.writebacks,
            l1i_misses=self.l1i_misses - earlier.l1i_misses,
            dram_reads_per_socket=tuple(
                a - b for a, b in zip(
                    self.dram_reads_per_socket, earlier.dram_reads_per_socket)
            ),
            dram_writebacks_per_socket=tuple(
                a - b for a, b in zip(
                    self.dram_writebacks_per_socket,
                    earlier.dram_writebacks_per_socket)
            ),
        )


class MemoryHierarchy:
    """Caches + directory + DRAM for one simulated machine."""

    def __init__(self, machine: MachineConfig) -> None:
        self.machine = machine
        n_cores = machine.num_cores
        self.l1i = [SetAssocCache(machine.l1i) for _ in range(n_cores)]
        self.l1d = [SetAssocCache(machine.l1d) for _ in range(n_cores)]
        self.l2 = [SetAssocCache(machine.l2) for _ in range(n_cores)]
        self.l3 = [SetAssocCache(machine.l3) for _ in range(machine.num_sockets)]
        self.directory = Directory(num_cores=n_cores)
        self.dram = Dram(machine)
        self._socket_of = [machine.socket_of(c) for c in range(n_cores)]
        self._cores_of_socket = [
            [c for c in range(n_cores) if self._socket_of[c] == s]
            for s in range(machine.num_sockets)
        ]
        self._socket_mask = [
            sum(1 << c for c in cores) for cores in self._cores_of_socket
        ]
        self._loads = 0
        self._stores = 0
        self._l1d_misses = 0
        self._l2_misses = 0
        self._c2c = 0
        self._writebacks = 0
        self._l1i_misses = 0

    # ------------------------------------------------------------------
    # Counter management
    # ------------------------------------------------------------------

    def snapshot(self) -> AccessCounters:
        """Copy all cumulative counters (cheap; used per region)."""
        return AccessCounters(
            loads=self._loads,
            stores=self._stores,
            l1d_misses=self._l1d_misses,
            l2_misses=self._l2_misses,
            l3_misses=sum(self.dram.stats.reads_per_socket),
            cache_to_cache=self._c2c,
            writebacks=self._writebacks,
            l1i_misses=self._l1i_misses,
            dram_reads_per_socket=tuple(self.dram.stats.reads_per_socket),
            dram_writebacks_per_socket=tuple(self.dram.stats.writebacks_per_socket),
        )

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------

    def _l3_fill(self, socket: int, line: int) -> None:
        """Fill ``line`` into a socket's L3, handling inclusive eviction."""
        victim = self.l3[socket].fill(line)
        if victim is None:
            return
        vline = victim.line
        dir_sharers = self.directory._sharers
        dir_owner = self.directory._owner
        owner = dir_owner.get(vline, -1)
        if owner >= 0 and self._socket_of[owner] == socket:
            self.dram.writeback(socket)
            self._writebacks += 1
            del dir_owner[vline]
        # Inclusion: purge the victim from this socket's private caches.
        # The directory sharer mask tells us which cores can possibly hold
        # it, so streaming victims (one sharer) cost one probe, not 2*cores.
        mask = dir_sharers.get(vline, 0)
        if mask:
            local = mask & self._socket_mask[socket]
            core = 0
            while local:
                if local & 1:
                    self.l1d[core].remove(vline)
                    self.l2[core].remove(vline)
                local >>= 1
                core += 1
            rest = mask & ~self._socket_mask[socket]
            if rest:
                dir_sharers[vline] = rest
            else:
                del dir_sharers[vline]

    def _invalidate_remote(self, line: int, mask: int, my_socket: int) -> bool:
        """Remove ``line`` from all cores in ``mask``; True if any was remote."""
        remote = False
        core = 0
        while mask:
            if mask & 1:
                self.l1d[core].remove(line)
                self.l2[core].remove(line)
                if self._socket_of[core] != my_socket:
                    remote = True
            mask >>= 1
            core += 1
        return remote

    # ------------------------------------------------------------------
    # Access paths
    # ------------------------------------------------------------------

    def access(self, core: int, line: int, is_write: bool) -> int:
        """One data reference; returns the extra latency beyond L1 (cycles)."""
        lines = np.array([line], dtype=np.int64)
        writes = np.array([is_write], dtype=bool)
        return round(self.access_block(core, lines, writes, mlp=1.0))

    def access_block(self, core, lines, writes, mlp: float) -> float:
        """Process one block's reference stream; returns stall cycles.

        The returned stalls are the sum of beyond-L1 latencies divided by
        the block's memory-level parallelism (interval-model style); store
        latencies are further scaled by the store-buffer fraction.
        """
        if mlp < 1.0:
            raise SimulationError(f"mlp must be >= 1, got {mlp}")
        socket = self._socket_of[core]
        l1 = self.l1d[core]
        l2 = self.l2[core]
        l3 = self.l3[socket]
        l1_sets = l1._sets
        l1_mask = l1._set_mask
        l1_assoc = l1._assoc
        l2_sets = l2._sets
        l2_mask = l2._set_mask
        l2_assoc = l2._assoc
        l2_lat = l2.config.latency_cycles
        l3_lat = l3.config.latency_cycles
        dram_lat = self.dram.latency_cycles
        remote_lat = l3_lat + self.machine.remote_socket_extra_cycles
        directory = self.directory
        dir_sharers = directory._sharers
        dir_owner = directory._owner
        dir_stats = directory.stats
        my_bit = 1 << core
        num_sockets = self.machine.num_sockets
        dram_reads = self.dram.stats.reads_per_socket

        loads = stores = l1d_misses = l2_misses = c2c = 0
        stall = 0.0

        for line, w in zip(lines.tolist(), writes.tolist()):
            extra = 0
            if w:
                stores += 1
                prev_owner = dir_owner.get(line, -1)
                if prev_owner != core:
                    mask = dir_sharers.get(line, 0) & ~my_bit
                    if mask or prev_owner >= 0:
                        if mask:
                            dir_stats.invalidations_sent += bin(mask).count("1")
                            remote = self._invalidate_remote(line, mask, socket)
                        else:
                            remote = False
                        if prev_owner >= 0:
                            # Remote M copy: transfer + writeback on downgrade.
                            self.dram.writeback(self._socket_of[prev_owner])
                            self._writebacks += 1
                            remote = remote or self._socket_of[prev_owner] != socket
                            c2c += 1
                        if num_sockets > 1:
                            l3s = self.l3
                            for s in range(num_sockets):
                                if s != socket:
                                    l3s[s].remove(line)
                        extra = remote_lat if remote else l3_lat
                    dir_sharers[line] = my_bit
                    dir_owner[line] = core
            else:
                loads += 1

            # L1D probe.
            s = l1_sets[line & l1_mask]
            if line in s:
                s.remove(line)
                s.append(line)
                l1.stats.hits += 1
                if w and extra:
                    stall += extra * _STORE_STALL_FRACTION
                continue
            l1.stats.misses += 1
            l1d_misses += 1

            # L2 probe.
            s2 = l2_sets[line & l2_mask]
            if line in s2:
                s2.remove(line)
                s2.append(line)
                l2.stats.hits += 1
                extra += l2_lat
            else:
                l2.stats.misses += 1
                l2_misses += 1
                # L3 probe.
                if l3.lookup(line):
                    extra += l3_lat
                else:
                    owner = dir_owner.get(line, -1)
                    if owner >= 0 and owner != core:
                        # Dirty in a remote private hierarchy: cache-to-cache
                        # transfer plus MSI downgrade writeback.
                        extra += (
                            remote_lat
                            if self._socket_of[owner] != socket
                            else l3_lat + l2_lat
                        )
                        if not w:
                            del dir_owner[line]
                            dir_stats.downgrades += 1
                            self.dram.writeback(self._socket_of[owner])
                            self._writebacks += 1
                        dir_stats.cache_to_cache += 1
                        c2c += 1
                    else:
                        extra += dram_lat
                        dram_reads[socket] += 1
                    self._l3_fill(socket, line)
                # Fill L2.
                if len(s2) >= l2_assoc:
                    s2.pop(0)
                    l2.stats.evictions += 1
                s2.append(line)

            # Fill L1.
            if len(s) >= l1_assoc:
                s.pop(0)
                l1.stats.evictions += 1
            s.append(line)

            if not w:
                dir_sharers[line] = dir_sharers.get(line, 0) | my_bit
                prev_owner = dir_owner.get(line, -1)
                if prev_owner >= 0 and prev_owner != core:
                    del dir_owner[line]
                    dir_stats.downgrades += 1
                stall += extra
            else:
                stall += extra * _STORE_STALL_FRACTION

        self._loads += loads
        self._stores += stores
        self._l1d_misses += l1d_misses
        self._l2_misses += l2_misses
        self._c2c += c2c
        return stall / mlp

    def access_code(self, core: int, code_lines: tuple[int, ...]) -> int:
        """Instruction-fetch touch of a block's code lines; returns stalls."""
        l1i = self.l1i[core]
        extra = 0
        for line in code_lines:
            if not l1i.lookup(line):
                self._l1i_misses += 1
                l1i.fill(line)
                extra += self.l2[core].config.latency_cycles
        return extra

    # ------------------------------------------------------------------
    # Warmup / state management
    # ------------------------------------------------------------------

    def replay(self, core: int, line: int, was_write: bool) -> None:
        """Warmup replay of one captured line (latency discarded)."""
        self.access_block(
            core,
            np.array([line], dtype=np.int64),
            np.array([was_write], dtype=bool),
            mlp=1.0,
        )

    def flush_all(self) -> None:
        """Cold-start: empty every cache and the directory."""
        for cache in (*self.l1i, *self.l1d, *self.l2, *self.l3):
            cache.flush()
        self.directory.flush()
