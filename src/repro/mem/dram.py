"""Main-memory model: fixed access latency plus per-socket bandwidth.

Latency is charged per access by the hierarchy; bandwidth is enforced at
region granularity by the machine model, which stretches a region's
duration if the aggregate DRAM traffic of any socket would exceed the
socket's sustained bandwidth (Table I: 65 ns, 8 GB/s per socket).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import CACHE_LINE_BYTES, MachineConfig


@dataclass
class DramStats:
    """Per-socket DRAM traffic counters (lines, not bytes)."""

    reads_per_socket: list[int] = field(default_factory=list)
    writebacks_per_socket: list[int] = field(default_factory=list)

    def reset(self) -> None:
        """Zero all counters in place."""
        for i in range(len(self.reads_per_socket)):
            self.reads_per_socket[i] = 0
            self.writebacks_per_socket[i] = 0


@dataclass
class Dram:
    """DRAM latency/bandwidth model shared by all sockets."""

    machine: MachineConfig

    def __post_init__(self) -> None:
        n = self.machine.num_sockets
        self.stats = DramStats([0] * n, [0] * n)
        self.latency_cycles = self.machine.dram_latency_cycles

    def read(self, socket: int) -> int:
        """Record a line fetch from DRAM; returns the latency in cycles."""
        self.stats.reads_per_socket[socket] += 1
        return self.latency_cycles

    def writeback(self, socket: int) -> None:
        """Record a dirty line written back to DRAM (bandwidth only)."""
        self.stats.writebacks_per_socket[socket] += 1

    def total_accesses(self) -> int:
        """All DRAM line transfers (reads plus writebacks)."""
        return sum(self.stats.reads_per_socket) + sum(self.stats.writebacks_per_socket)

    def min_cycles_for_traffic(
        self, reads: list[int], writebacks: list[int]
    ) -> float:
        """Minimum region duration (cycles) the bandwidth allows.

        ``reads``/``writebacks`` are per-socket line counts for the region.
        The constraint is evaluated per socket and the tightest one wins.
        """
        bytes_per_cycle = (
            self.machine.mem.bandwidth_gbps_per_socket
            / self.machine.core.frequency_ghz
        )
        worst = 0.0
        for r, w in zip(reads, writebacks):
            traffic_bytes = (r + w) * CACHE_LINE_BYTES
            worst = max(worst, traffic_bytes / bytes_per_cycle)
        return worst
