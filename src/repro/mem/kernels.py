"""Flat-array kernel tier for the cache-hierarchy hot path.

:func:`hier_access_block_py` is the per-access probe/fill/invalidate loop
of ``MemoryHierarchy.access_block`` — generalized, like the ``complex``
backend, from sockets to topology *domains* — as one pure function over
flat numpy arrays, with an ``@njit(cache=True)`` twin compiled through
:mod:`repro.util.jit`.  All four hierarchy backends route through it:

* flat backends (inclusive / non-inclusive / prefetch-nl) pass the socket
  view — domains are sockets, the hop table is 0 on the diagonal and
  ``remote_socket_extra_cycles`` off it — which provably reduces to the
  dict implementation's local/remote arithmetic;
* the ``complex`` backend passes its domain arrays, per-complex L3-slice
  geometry, fabric hop table and directory home count.

State layout: each cache level is an int64 tag matrix of shape
``(instances, num_sets * assoc)``; within a set's segment, occupied slots
are packed left, index 0 the LRU way — exactly the iteration order of the
dict engines' insertion-ordered sets, so LRU victims and promotions are
bit-identical.  The directory is an open-addressing hash over three
int64 arrays (line, M-owner, sharer bitmask); entries are never deleted,
only zeroed (absent ≡ owner −1 and empty mask), so lookups need no
tombstones and growth is a rehash that drops inert entries.  Statistics
accumulate in flat delta arrays, flushed lazily into the existing counter
objects at ``snapshot()`` / materialization — the kernels never touch a
Python object.

The sharer bitmask lives in one int64, so the kernel tier engages only
for machines with at most 62 cores (every registry machine; larger ones
fall back to the dict engines automatically).
"""

from __future__ import annotations

import numpy as np

from repro.util import jit

#: Free-slot sentinel (int64 min; not a representable cache line).
_EMPTY = -(1 << 63)

#: Knuth multiplicative hash constant; the product is masked to the
#: table's low bits immediately, so Python's arbitrary-precision multiply
#: and numba's wrapping int64 multiply agree bit-for-bit.
_HASH_K = 2654435761

#: Widest sharer bitmask an int64 holds without sign trouble.
MAX_KERNEL_CORES = 62

_SBF = 0.3  # _STORE_STALL_FRACTION (kept in sync with mem.hierarchy)

# Global-counter delta indices.
(_C_LOADS, _C_STORES, _C_L1D_MISS, _C_L2_MISS, _C_C2C, _C_WB,
 _C_INTRA, _C_XCOMPLEX, _C_XSOCKET, _C_PREFETCH) = range(10)
# Per-cache stats columns (CacheStats field order).
_S_HIT, _S_MISS, _S_EVIC, _S_DEVIC, _S_INVAL = range(5)
# Per-home directory stats columns (DirectoryStats field order).
_D_INVALS, _D_DOWN, _D_C2C = range(3)


def hier_access_block_py(
    lines, writes, core, mlp,
    l1_tags, l2_tags, l3_tags,
    l1_mask, l1_assoc, l2_mask, l2_assoc, l3_mask, l3_assoc,
    domain_of, domain_socket, domain_mask, hop_extra,
    dir_keys, dir_owner, dir_sharers, dir_meta,
    num_homes, l2_lat, l3_lat, dram_lat, inclusive, pf_degree,
    counts, l1_stats, l2_stats, l3_stats, home_stats,
    dram_reads, dram_wbs,
):
    """One block's reference stream through the full hierarchy.

    The flat-array twin of ``MemoryHierarchy.access_block`` /
    ``ComplexHierarchy.access_block``; see the module docstring for the
    state layout.  The caller guarantees spare directory capacity for
    ``len(lines) * (1 + pf_degree)`` inserts.

    Args:
        lines: int64[n] line addresses.
        writes: bool[n] write flags.
        core: Issuing core index.
        mlp: Memory-level parallelism divisor (>= 1).
        l1_tags: int64[cores, l1_sets * l1_assoc] private L1D tags.
        l2_tags: int64[cores, l2_sets * l2_assoc] private L2 tags.
        l3_tags: int64[domains, l3_sets * l3_assoc] shared L3 tags.
        l1_mask: L1 set mask (``num_sets - 1``); likewise ``l2_mask`` /
            ``l3_mask``.
        l1_assoc: L1 associativity; likewise ``l2_assoc`` / ``l3_assoc``.
        domain_of: int64[cores] topology domain per core.
        domain_socket: int64[domains] socket per domain.
        domain_mask: int64[domains] core bitmask per domain.
        hop_extra: int64[domains, domains] extra cycles per domain hop.
        dir_keys: int64[cap] directory hash keys (``_EMPTY`` free).
        dir_owner: int64[cap] M-state owner per entry (-1 none).
        dir_sharers: int64[cap] sharer bitmask per entry.
        dir_meta: int64[1]: occupied-entry count.
        num_homes: Directory home-node count (1 for flat backends).
        l2_lat: L2 hit latency; ``l3_lat`` / ``dram_lat`` likewise.
        inclusive: 1 when L3 evictions back-invalidate private caches.
        pf_degree: Next-line prefetch depth (0 disables).
        counts: int64[10] global-counter deltas.
        l1_stats: int64[cores, 5] per-L1D stat deltas; ``l2_stats`` /
            ``l3_stats`` likewise (L3 rows are per domain).
        home_stats: int64[homes, 3] per-home directory stat deltas.
        dram_reads: int64[sockets] DRAM fill deltas.
        dram_wbs: int64[sockets] DRAM writeback deltas.

    Returns:
        Stall cycles (beyond-L1 latency sum / ``mlp``), bit-identical to
        the dict engines.
    """
    my_domain = domain_of[core]
    my_socket = domain_socket[my_domain]
    my_bit = 1 << core
    num_domains = l3_tags.shape[0]
    dmask = dir_keys.shape[0] - 1
    l1_row = l1_tags[core]
    l2_row = l2_tags[core]
    l3_row = l3_tags[my_domain]
    stall = 0.0
    for i in range(lines.shape[0]):
        line = lines[i]
        w = writes[i]
        extra = 0
        home = line % num_homes
        if w:
            counts[_C_STORES] += 1
            # Directory slot (insert when absent: the store writes it).
            h = (line * _HASH_K) & dmask
            while True:
                k = dir_keys[h]
                if k == line:
                    break
                if k == _EMPTY:
                    dir_keys[h] = line
                    dir_owner[h] = -1
                    dir_sharers[h] = 0
                    dir_meta[0] += 1
                    break
                h = (h + 1) & dmask
            slot = h
            prev_owner = dir_owner[slot]
            if prev_owner != core:
                mask = dir_sharers[slot] & ~my_bit
                if mask != 0 or prev_owner >= 0:
                    worst_hop = 0
                    if mask != 0:
                        m = mask
                        sent = 0
                        while m != 0:
                            low = m & (-m)
                            m ^= low
                            c = 0
                            v = low >> 1
                            while v != 0:
                                c += 1
                                v >>= 1
                            # Purge line from core c's L1D and L2.
                            row = l1_tags[c]
                            base = (line & l1_mask) * l1_assoc
                            j = 0
                            found = -1
                            while j < l1_assoc:
                                t = row[base + j]
                                if t == line:
                                    found = j
                                    break
                                if t == _EMPTY:
                                    break
                                j += 1
                            if found >= 0:
                                j = found
                                while j + 1 < l1_assoc:
                                    nt = row[base + j + 1]
                                    if nt == _EMPTY:
                                        break
                                    row[base + j] = nt
                                    j += 1
                                row[base + j] = _EMPTY
                                l1_stats[c, _S_INVAL] += 1
                            row = l2_tags[c]
                            base = (line & l2_mask) * l2_assoc
                            j = 0
                            found = -1
                            while j < l2_assoc:
                                t = row[base + j]
                                if t == line:
                                    found = j
                                    break
                                if t == _EMPTY:
                                    break
                                j += 1
                            if found >= 0:
                                j = found
                                while j + 1 < l2_assoc:
                                    nt = row[base + j + 1]
                                    if nt == _EMPTY:
                                        break
                                    row[base + j] = nt
                                    j += 1
                                row[base + j] = _EMPTY
                                l2_stats[c, _S_INVAL] += 1
                            hop = hop_extra[my_domain, domain_of[c]]
                            if hop > worst_hop:
                                worst_hop = hop
                            sent += 1
                        home_stats[home, _D_INVALS] += sent
                    if prev_owner >= 0:
                        # Remote M copy: transfer + writeback on downgrade.
                        prev_domain = domain_of[prev_owner]
                        dram_wbs[domain_socket[prev_domain]] += 1
                        counts[_C_WB] += 1
                        hop = hop_extra[my_domain, prev_domain]
                        if hop > worst_hop:
                            worst_hop = hop
                        counts[_C_C2C] += 1
                        if prev_domain == my_domain:
                            counts[_C_INTRA] += 1
                        elif domain_socket[prev_domain] == my_socket:
                            counts[_C_XCOMPLEX] += 1
                        else:
                            counts[_C_XSOCKET] += 1
                    if num_domains > 1:
                        for d in range(num_domains):
                            if d == my_domain:
                                continue
                            row = l3_tags[d]
                            base = (line & l3_mask) * l3_assoc
                            j = 0
                            found = -1
                            while j < l3_assoc:
                                t = row[base + j]
                                if t == line:
                                    found = j
                                    break
                                if t == _EMPTY:
                                    break
                                j += 1
                            if found >= 0:
                                j = found
                                while j + 1 < l3_assoc:
                                    nt = row[base + j + 1]
                                    if nt == _EMPTY:
                                        break
                                    row[base + j] = nt
                                    j += 1
                                row[base + j] = _EMPTY
                                l3_stats[d, _S_INVAL] += 1
                    extra = l3_lat + worst_hop
                dir_sharers[slot] = my_bit
                dir_owner[slot] = core
        else:
            counts[_C_LOADS] += 1

        # L1D probe (hit promotes to MRU: shift left, append at tail).
        base1 = (line & l1_mask) * l1_assoc
        hit = False
        j = 0
        while j < l1_assoc:
            t = l1_row[base1 + j]
            if t == line:
                jj = j
                while jj + 1 < l1_assoc:
                    nt = l1_row[base1 + jj + 1]
                    if nt == _EMPTY:
                        break
                    l1_row[base1 + jj] = nt
                    jj += 1
                l1_row[base1 + jj] = line
                hit = True
                break
            if t == _EMPTY:
                break
            j += 1
        if hit:
            l1_stats[core, _S_HIT] += 1
            if w and extra != 0:
                stall += extra * _SBF
            continue
        l1_stats[core, _S_MISS] += 1
        counts[_C_L1D_MISS] += 1

        # L2 probe.
        base2 = (line & l2_mask) * l2_assoc
        hit = False
        j = 0
        while j < l2_assoc:
            t = l2_row[base2 + j]
            if t == line:
                jj = j
                while jj + 1 < l2_assoc:
                    nt = l2_row[base2 + jj + 1]
                    if nt == _EMPTY:
                        break
                    l2_row[base2 + jj] = nt
                    jj += 1
                l2_row[base2 + jj] = line
                hit = True
                break
            if t == _EMPTY:
                break
            j += 1
        if hit:
            l2_stats[core, _S_HIT] += 1
            extra += l2_lat
        else:
            l2_stats[core, _S_MISS] += 1
            counts[_C_L2_MISS] += 1
            # L3 probe (my domain's shared cache / slice).
            base3 = (line & l3_mask) * l3_assoc
            hit = False
            j = 0
            while j < l3_assoc:
                t = l3_row[base3 + j]
                if t == line:
                    jj = j
                    while jj + 1 < l3_assoc:
                        nt = l3_row[base3 + jj + 1]
                        if nt == _EMPTY:
                            break
                        l3_row[base3 + jj] = nt
                        jj += 1
                    l3_row[base3 + jj] = line
                    hit = True
                    break
                if t == _EMPTY:
                    break
                j += 1
            if hit:
                l3_stats[my_domain, _S_HIT] += 1
                extra += l3_lat
            else:
                l3_stats[my_domain, _S_MISS] += 1
                # Directory owner lookup (read-only).
                h = (line * _HASH_K) & dmask
                slot = -1
                while True:
                    k = dir_keys[h]
                    if k == line:
                        slot = h
                        break
                    if k == _EMPTY:
                        break
                    h = (h + 1) & dmask
                owner = -1
                if slot >= 0:
                    owner = dir_owner[slot]
                if owner >= 0 and owner != core:
                    # Dirty in a remote private hierarchy: cache-to-cache
                    # transfer plus MSI downgrade writeback.
                    owner_domain = domain_of[owner]
                    if owner_domain == my_domain:
                        extra += l3_lat + l2_lat
                        counts[_C_INTRA] += 1
                    else:
                        extra += l3_lat + hop_extra[my_domain, owner_domain]
                        if domain_socket[owner_domain] == my_socket:
                            counts[_C_XCOMPLEX] += 1
                        else:
                            counts[_C_XSOCKET] += 1
                    if not w:
                        dir_owner[slot] = -1
                        home_stats[home, _D_DOWN] += 1
                        dram_wbs[domain_socket[owner_domain]] += 1
                        counts[_C_WB] += 1
                    home_stats[home, _D_C2C] += 1
                    counts[_C_C2C] += 1
                else:
                    extra += dram_lat
                    dram_reads[my_socket] += 1
                # Fill L3, handling the victim per backend (inclusive
                # back-invalidation vs non-inclusive silent drop).
                j = 0
                while j < l3_assoc and l3_row[base3 + j] != _EMPTY:
                    j += 1
                if j >= l3_assoc:
                    vline = l3_row[base3]
                    for jj in range(l3_assoc - 1):
                        l3_row[base3 + jj] = l3_row[base3 + jj + 1]
                    l3_row[base3 + l3_assoc - 1] = line
                    l3_stats[my_domain, _S_EVIC] += 1
                    if inclusive != 0:
                        hh = (vline * _HASH_K) & dmask
                        vslot = -1
                        while True:
                            k = dir_keys[hh]
                            if k == vline:
                                vslot = hh
                                break
                            if k == _EMPTY:
                                break
                            hh = (hh + 1) & dmask
                        if vslot >= 0:
                            vowner = dir_owner[vslot]
                            if vowner >= 0 and domain_of[vowner] == my_domain:
                                dram_wbs[my_socket] += 1
                                counts[_C_WB] += 1
                                dir_owner[vslot] = -1
                            vmask = dir_sharers[vslot]
                            if vmask != 0:
                                local = vmask & domain_mask[my_domain]
                                while local != 0:
                                    low = local & (-local)
                                    local ^= low
                                    c = 0
                                    v = low >> 1
                                    while v != 0:
                                        c += 1
                                        v >>= 1
                                    row = l1_tags[c]
                                    base = (vline & l1_mask) * l1_assoc
                                    j = 0
                                    found = -1
                                    while j < l1_assoc:
                                        t = row[base + j]
                                        if t == vline:
                                            found = j
                                            break
                                        if t == _EMPTY:
                                            break
                                        j += 1
                                    if found >= 0:
                                        j = found
                                        while j + 1 < l1_assoc:
                                            nt = row[base + j + 1]
                                            if nt == _EMPTY:
                                                break
                                            row[base + j] = nt
                                            j += 1
                                        row[base + j] = _EMPTY
                                        l1_stats[c, _S_INVAL] += 1
                                    row = l2_tags[c]
                                    base = (vline & l2_mask) * l2_assoc
                                    j = 0
                                    found = -1
                                    while j < l2_assoc:
                                        t = row[base + j]
                                        if t == vline:
                                            found = j
                                            break
                                        if t == _EMPTY:
                                            break
                                        j += 1
                                    if found >= 0:
                                        j = found
                                        while j + 1 < l2_assoc:
                                            nt = row[base + j + 1]
                                            if nt == _EMPTY:
                                                break
                                            row[base + j] = nt
                                            j += 1
                                        row[base + j] = _EMPTY
                                        l2_stats[c, _S_INVAL] += 1
                                dir_sharers[vslot] = (
                                    vmask & ~domain_mask[my_domain]
                                )
                else:
                    l3_row[base3 + j] = line
            # Fill L2.
            j = 0
            while j < l2_assoc and l2_row[base2 + j] != _EMPTY:
                j += 1
            if j >= l2_assoc:
                for jj in range(l2_assoc - 1):
                    l2_row[base2 + jj] = l2_row[base2 + jj + 1]
                l2_row[base2 + l2_assoc - 1] = line
                l2_stats[core, _S_EVIC] += 1
            else:
                l2_row[base2 + j] = line
            if pf_degree > 0:
                # Tagged next-line prefetch into L2 + L3 (flat-backend
                # semantics: domains are sockets here).
                issued = 0
                for delta in range(1, pf_degree + 1):
                    pline = line + delta
                    pbase2 = (pline & l2_mask) * l2_assoc
                    resident = False
                    j = 0
                    while j < l2_assoc:
                        t = l2_row[pbase2 + j]
                        if t == pline:
                            resident = True
                            break
                        if t == _EMPTY:
                            break
                        j += 1
                    if resident:
                        continue  # tagged prefetchers stay quiet
                    hh = (pline * _HASH_K) & dmask
                    pslot = -1
                    while True:
                        k = dir_keys[hh]
                        if k == pline:
                            pslot = hh
                            break
                        if k == _EMPTY:
                            break
                        hh = (hh + 1) & dmask
                    powner = -1
                    if pslot >= 0:
                        powner = dir_owner[pslot]
                    if powner >= 0 and powner != core:
                        continue  # never speculate coherence traffic
                    pbase3 = (pline & l3_mask) * l3_assoc
                    in_l3 = False
                    j = 0
                    while j < l3_assoc:
                        t = l3_row[pbase3 + j]
                        if t == pline:
                            in_l3 = True
                            break
                        if t == _EMPTY:
                            break
                        j += 1
                    if not in_l3:
                        dram_reads[my_socket] += 1
                        j = 0
                        while (j < l3_assoc
                               and l3_row[pbase3 + j] != _EMPTY):
                            j += 1
                        if j >= l3_assoc:
                            vline = l3_row[pbase3]
                            for jj in range(l3_assoc - 1):
                                l3_row[pbase3 + jj] = (
                                    l3_row[pbase3 + jj + 1]
                                )
                            l3_row[pbase3 + l3_assoc - 1] = pline
                            l3_stats[my_domain, _S_EVIC] += 1
                            if inclusive != 0:
                                hh = (vline * _HASH_K) & dmask
                                vslot = -1
                                while True:
                                    k = dir_keys[hh]
                                    if k == vline:
                                        vslot = hh
                                        break
                                    if k == _EMPTY:
                                        break
                                    hh = (hh + 1) & dmask
                                if vslot >= 0:
                                    vowner = dir_owner[vslot]
                                    if (vowner >= 0 and
                                            domain_of[vowner]
                                            == my_domain):
                                        dram_wbs[my_socket] += 1
                                        counts[_C_WB] += 1
                                        dir_owner[vslot] = -1
                                    vmask = dir_sharers[vslot]
                                    if vmask != 0:
                                        local = (
                                            vmask
                                            & domain_mask[my_domain]
                                        )
                                        while local != 0:
                                            low = local & (-local)
                                            local ^= low
                                            c = 0
                                            v = low >> 1
                                            while v != 0:
                                                c += 1
                                                v >>= 1
                                            row = l1_tags[c]
                                            base = ((vline & l1_mask)
                                                    * l1_assoc)
                                            j = 0
                                            found = -1
                                            while j < l1_assoc:
                                                t = row[base + j]
                                                if t == vline:
                                                    found = j
                                                    break
                                                if t == _EMPTY:
                                                    break
                                                j += 1
                                            if found >= 0:
                                                j = found
                                                while j + 1 < l1_assoc:
                                                    nt = row[base + j + 1]
                                                    if nt == _EMPTY:
                                                        break
                                                    row[base + j] = nt
                                                    j += 1
                                                row[base + j] = _EMPTY
                                                l1_stats[c, _S_INVAL] += 1
                                            row = l2_tags[c]
                                            base = ((vline & l2_mask)
                                                    * l2_assoc)
                                            j = 0
                                            found = -1
                                            while j < l2_assoc:
                                                t = row[base + j]
                                                if t == vline:
                                                    found = j
                                                    break
                                                if t == _EMPTY:
                                                    break
                                                j += 1
                                            if found >= 0:
                                                j = found
                                                while j + 1 < l2_assoc:
                                                    nt = row[base + j + 1]
                                                    if nt == _EMPTY:
                                                        break
                                                    row[base + j] = nt
                                                    j += 1
                                                row[base + j] = _EMPTY
                                                l2_stats[c, _S_INVAL] += 1
                                        dir_sharers[vslot] = (
                                            vmask
                                            & ~domain_mask[my_domain]
                                        )
                        else:
                            l3_row[pbase3 + j] = pline
                    # Fill L2 with the prefetched line.
                    j = 0
                    while j < l2_assoc and l2_row[pbase2 + j] != _EMPTY:
                        j += 1
                    if j >= l2_assoc:
                        for jj in range(l2_assoc - 1):
                            l2_row[pbase2 + jj] = l2_row[pbase2 + jj + 1]
                        l2_row[pbase2 + l2_assoc - 1] = pline
                        l2_stats[core, _S_EVIC] += 1
                    else:
                        l2_row[pbase2 + j] = pline
                    # Record the prefetcher as a sharer (insert).
                    hh = (pline * _HASH_K) & dmask
                    while True:
                        k = dir_keys[hh]
                        if k == pline:
                            break
                        if k == _EMPTY:
                            dir_keys[hh] = pline
                            dir_owner[hh] = -1
                            dir_sharers[hh] = 0
                            dir_meta[0] += 1
                            break
                        hh = (hh + 1) & dmask
                    dir_sharers[hh] |= my_bit
                    issued += 1
                counts[_C_PREFETCH] += issued

        # Fill L1 (miss path only).
        j = 0
        while j < l1_assoc and l1_row[base1 + j] != _EMPTY:
            j += 1
        if j >= l1_assoc:
            for jj in range(l1_assoc - 1):
                l1_row[base1 + jj] = l1_row[base1 + jj + 1]
            l1_row[base1 + l1_assoc - 1] = line
            l1_stats[core, _S_EVIC] += 1
        else:
            l1_row[base1 + j] = line

        if not w:
            # Load bookkeeping: become a sharer, downgrade a remote owner.
            h = (line * _HASH_K) & dmask
            while True:
                k = dir_keys[h]
                if k == line:
                    break
                if k == _EMPTY:
                    dir_keys[h] = line
                    dir_owner[h] = -1
                    dir_sharers[h] = 0
                    dir_meta[0] += 1
                    break
                h = (h + 1) & dmask
            dir_sharers[h] |= my_bit
            prev_owner = dir_owner[h]
            if prev_owner >= 0 and prev_owner != core:
                dir_owner[h] = -1
                home_stats[home, _D_DOWN] += 1
            stall += extra
        else:
            stall += extra * _SBF
    return stall / mlp


def dir_rehash_py(old_keys, old_owner, old_sharers, keys, owner, sharers):
    """Rehash live directory entries into a fresh (larger) table.

    Inert entries (no owner, empty mask — semantically absent) are
    dropped, which is what keeps the no-deletion table from growing
    without bound.

    Args:
        old_keys: int64[old_cap] source keys (``_EMPTY`` free).
        old_owner: int64[old_cap] source owners.
        old_sharers: int64[old_cap] source sharer masks.
        keys: int64[cap] destination keys, pre-filled with ``_EMPTY``.
        owner: int64[cap] destination owners.
        sharers: int64[cap] destination sharer masks.

    Returns:
        The number of live entries carried over.
    """
    mask = keys.shape[0] - 1
    cnt = 0
    for i in range(old_keys.shape[0]):
        line = old_keys[i]
        if line == _EMPTY:
            continue
        ow = old_owner[i]
        sh = old_sharers[i]
        if ow < 0 and sh == 0:
            continue
        h = (line * _HASH_K) & mask
        while keys[h] != _EMPTY:
            h = (h + 1) & mask
        keys[h] = line
        owner[h] = ow
        sharers[h] = sh
        cnt += 1
    return cnt


class HierarchyKernels:
    """One tier's callable pair for the hierarchy kernels."""

    __slots__ = ("tier", "access_block", "dir_rehash")

    def __init__(self, tier, access_block, dir_rehash) -> None:
        self.tier = tier
        self.access_block = access_block
        self.dir_rehash = dir_rehash


_PY_BUNDLE = HierarchyKernels("kernel-py", hier_access_block_py, dir_rehash_py)

_NB_BUNDLE: HierarchyKernels | None = None


def _nb_bundle() -> HierarchyKernels:  # pragma: no cover - numba CI leg
    """Compile (once) and return the ``nb`` twins."""
    global _NB_BUNDLE
    if _NB_BUNDLE is None:
        _NB_BUNDLE = HierarchyKernels(
            "nb",
            jit.compile_kernel(hier_access_block_py),
            jit.compile_kernel(dir_rehash_py),
        )
    return _NB_BUNDLE


def kernel_bundle() -> HierarchyKernels | None:
    """The active tier's kernel set, or None when the dict engines run."""
    tier = jit.kernel_tier()
    if tier is None:
        return None
    if tier == "kernel-py":
        return _PY_BUNDLE
    return _nb_bundle()  # pragma: no cover - numba CI leg


class HierarchyKernelState:
    """Flat-array mirror of one hierarchy's mutable simulation state.

    Created lazily on the first kernel-dispatched ``access_block`` call.
    ``arrays_live`` tracks authority: while True, the flat arrays are
    ahead of the dict engines' state; :meth:`materialize` flushes stats
    and rebuilds the dicts (handing authority back), after which the next
    kernel call re-seeds the arrays from the dicts.  That round-trip
    keeps *any* interleaving of kernel execution with dict-level
    inspection or mutation — parity tests read ``resident_lines()`` and
    directory maps mid-run — exactly consistent.
    """

    _DIR_MIN_CAP = 1 << 13

    def __init__(self, hier) -> None:
        self.hier = hier
        self.fns = hier._kernel_fns
        params = hier._kernel_params()
        self.domain_of = params["domain_of"]
        self.domain_socket = params["domain_socket"]
        self.domain_mask = params["domain_mask"]
        self.hop_extra = params["hop_extra"]
        self.l3_lat = int(params["l3_lat"])
        self.num_homes = int(params["num_homes"])
        self.home_stats_objs = params["home_stats"]
        self.home_route = params["home_route"]
        l1 = hier.l1d[0]
        l2 = hier.l2[0]
        l3 = hier.l3[0]
        self.l1_mask, self.l1_assoc = l1._set_mask, l1._assoc
        self.l2_mask, self.l2_assoc = l2._set_mask, l2._assoc
        self.l3_mask, self.l3_assoc = l3._set_mask, l3._assoc
        self.l2_lat = l2.config.latency_cycles
        self.dram_lat = hier.dram.latency_cycles
        cores = len(hier.l1d)
        domains = len(hier.l3)
        sockets = hier._num_sockets
        self.l1_tags = np.full(
            (cores, (self.l1_mask + 1) * self.l1_assoc), _EMPTY, np.int64
        )
        self.l2_tags = np.full(
            (cores, (self.l2_mask + 1) * self.l2_assoc), _EMPTY, np.int64
        )
        self.l3_tags = np.full(
            (domains, (self.l3_mask + 1) * self.l3_assoc), _EMPTY, np.int64
        )
        self.dir_keys = np.full(self._DIR_MIN_CAP, _EMPTY, np.int64)
        self.dir_owner = np.full(self._DIR_MIN_CAP, -1, np.int64)
        self.dir_sharers = np.zeros(self._DIR_MIN_CAP, np.int64)
        self.dir_meta = np.zeros(1, np.int64)
        self.counts = np.zeros(10, np.int64)
        self.l1_stats = np.zeros((cores, 5), np.int64)
        self.l2_stats = np.zeros((cores, 5), np.int64)
        self.l3_stats = np.zeros((domains, 5), np.int64)
        self.home_stats = np.zeros((self.num_homes, 3), np.int64)
        self.dram_reads = np.zeros(sockets, np.int64)
        self.dram_wbs = np.zeros(sockets, np.int64)
        self.arrays_live = False

    # -- dispatch -------------------------------------------------------

    def run(self, core, lines, writes, mlp, pf_degree) -> float:
        """One kernel-dispatched ``access_block`` call."""
        if not self.arrays_live:
            self._seed()
            self.arrays_live = True
        self._ensure_dir(int(lines.shape[0]) * (1 + pf_degree))
        with np.errstate(over="ignore"):  # int64 hash wrap is the design
            stall = self.fns.access_block(
                lines, writes, core, float(mlp),
                self.l1_tags, self.l2_tags, self.l3_tags,
                self.l1_mask, self.l1_assoc, self.l2_mask, self.l2_assoc,
                self.l3_mask, self.l3_assoc,
                self.domain_of, self.domain_socket, self.domain_mask,
                self.hop_extra,
                self.dir_keys, self.dir_owner, self.dir_sharers,
                self.dir_meta,
                self.num_homes, self.l2_lat, self.l3_lat, self.dram_lat,
                1 if self.hier.inclusive_l3 else 0, pf_degree,
                self.counts, self.l1_stats, self.l2_stats, self.l3_stats,
                self.home_stats, self.dram_reads, self.dram_wbs,
            )
        return float(stall)

    def _ensure_dir(self, incoming: int) -> None:
        """Grow (and prune) the directory hash before it can fill up."""
        cap = self.dir_keys.shape[0]
        if (int(self.dir_meta[0]) + incoming) * 4 < cap * 3:
            return
        new_cap = cap
        while (int(self.dir_meta[0]) + incoming) * 4 >= new_cap * 3:
            new_cap *= 2
        keys = np.full(new_cap, _EMPTY, np.int64)
        owner = np.full(new_cap, -1, np.int64)
        sharers = np.zeros(new_cap, np.int64)
        with np.errstate(over="ignore"):  # int64 hash wrap is the design
            live = self.fns.dir_rehash(
                self.dir_keys, self.dir_owner, self.dir_sharers,
                keys, owner, sharers,
            )
        self.dir_keys = keys
        self.dir_owner = owner
        self.dir_sharers = sharers
        self.dir_meta[0] = live

    # -- dict <-> array state transfer ----------------------------------

    def _levels(self):
        """(tag matrix, cache list, assoc) triples for the managed levels."""
        h = self.hier
        return (
            (self.l1_tags, h.l1d, self.l1_assoc),
            (self.l2_tags, h.l2, self.l2_assoc),
            (self.l3_tags, h.l3, self.l3_assoc),
        )

    def _dir_insert(self, line: int, ow: int, sh: int) -> None:
        """Seed-time python-side insert into the directory hash."""
        mask = self.dir_keys.shape[0] - 1
        h = (line * _HASH_K) & mask
        while True:
            k = self.dir_keys[h]
            if k == _EMPTY:
                self.dir_keys[h] = line
                self.dir_meta[0] += 1
                break
            if k == line:
                break
            h = (h + 1) & mask
        if ow >= 0:
            self.dir_owner[h] = ow
        if sh:
            self.dir_sharers[h] = sh

    def _seed(self) -> None:
        """Load the flat arrays from the current dict-engine state."""
        for tags, caches, assoc in self._levels():
            tags.fill(_EMPTY)
            for idx, cache in enumerate(caches):
                row = tags[idx]
                for si, s in enumerate(cache._sets):
                    base = si * assoc
                    for j, ln in enumerate(s):
                        row[base + j] = ln
        self.dir_keys.fill(_EMPTY)
        self.dir_owner.fill(-1)
        self.dir_sharers.fill(0)
        self.dir_meta[0] = 0
        entries: dict[int, list[int]] = {}
        for d in self.hier._kernel_directories():
            for line, sh in d._sharers_map.items():
                entries.setdefault(line, [-1, 0])[1] = sh
            for line, ow in d._owner_map.items():
                entries.setdefault(line, [-1, 0])[0] = ow
        self._ensure_dir(len(entries))
        for line, (ow, sh) in entries.items():
            self._dir_insert(line, ow, sh)

    def flush_stats(self) -> None:
        """Fold the delta arrays into the dict engines' counter objects."""
        h = self.hier
        c = self.counts
        if c.any():
            h._loads += int(c[_C_LOADS])
            h._stores += int(c[_C_STORES])
            h._l1d_misses += int(c[_C_L1D_MISS])
            h._l2_misses += int(c[_C_L2_MISS])
            h._c2c += int(c[_C_C2C])
            h._writebacks += int(c[_C_WB])
            h._intra_c2c += int(c[_C_INTRA])
            h._xcomplex_c2c += int(c[_C_XCOMPLEX])
            h._xsocket_c2c += int(c[_C_XSOCKET])
            h._prefetches += int(c[_C_PREFETCH])
            c.fill(0)
        for arr, caches in (
            (self.l1_stats, h.l1d), (self.l2_stats, h.l2),
            (self.l3_stats, h.l3),
        ):
            if not arr.any():
                continue
            for idx, cache in enumerate(caches):
                row = arr[idx]
                st = cache._stats
                st.hits += int(row[_S_HIT])
                st.misses += int(row[_S_MISS])
                st.evictions += int(row[_S_EVIC])
                st.dirty_evictions += int(row[_S_DEVIC])
                st.invalidations += int(row[_S_INVAL])
            arr.fill(0)
        if self.home_stats.any():
            for idx, st in enumerate(self.home_stats_objs):
                row = self.home_stats[idx]
                st.invalidations_sent += int(row[_D_INVALS])
                st.downgrades += int(row[_D_DOWN])
                st.cache_to_cache += int(row[_D_C2C])
            self.home_stats.fill(0)
        if self.dram_reads.any() or self.dram_wbs.any():
            for s in range(self.dram_reads.shape[0]):
                h._dram_reads[s] += int(self.dram_reads[s])
                h._dram_wbs[s] += int(self.dram_wbs[s])
            self.dram_reads.fill(0)
            self.dram_wbs.fill(0)

    def materialize(self) -> None:
        """Flush stats and rebuild the dict-engine state from the arrays.

        Idempotent; a no-op while the dicts already hold authority.
        """
        if not self.arrays_live:
            return
        self.flush_stats()
        for tags, caches, assoc in self._levels():
            for idx, cache in enumerate(caches):
                row = tags[idx]
                for si, s in enumerate(cache._sets):
                    s.clear()
                    base = si * assoc
                    for j in range(assoc):
                        t = row[base + j]
                        if t == _EMPTY:
                            break
                        s[int(t)] = None
        for d in self.hier._kernel_directories():
            d._sharers_map.clear()
            d._owner_map.clear()
        for i in np.flatnonzero(self.dir_keys != _EMPTY).tolist():
            line = int(self.dir_keys[i])
            ow = int(self.dir_owner[i])
            sh = int(self.dir_sharers[i])
            home = self.home_route(line)
            if sh:
                home._sharers_map[line] = sh
            if ow >= 0:
                home._owner_map[line] = ow
        self.arrays_live = False

    def reset(self) -> None:
        """Cold-start twin of ``flush_all``: drop contents, keep counters."""
        self.flush_stats()
        self.l1_tags.fill(_EMPTY)
        self.l2_tags.fill(_EMPTY)
        self.l3_tags.fill(_EMPTY)
        self.dir_keys.fill(_EMPTY)
        self.dir_owner.fill(-1)
        self.dir_sharers.fill(0)
        self.dir_meta[0] = 0
        self.arrays_live = False


def warm() -> list[str]:
    """Run the hierarchy kernel once on a tiny machine (compile warmup).

    Returns:
        Warmed kernel-group names (empty when no kernel tier is active).
    """
    if kernel_bundle() is None:
        return []
    from repro.config import CacheConfig, CoreConfig, MachineConfig
    from repro.mem.backends import HIERARCHY_BACKENDS

    machine = MachineConfig(
        name="jit-warm", num_sockets=2, cores_per_socket=2,
        core=CoreConfig(),
        l1i=CacheConfig(4 * 256, 4, 4), l1d=CacheConfig(4 * 256, 4, 4),
        l2=CacheConfig(8 * 256, 4, 8), l3=CacheConfig(16 * 256, 4, 30),
    )
    lines = np.array([1, 2, 3, 1, 65, 129, 2], dtype=np.int64)
    writes = np.array([0, 1, 0, 1, 0, 1, 0], dtype=np.bool_)
    for factory in HIERARCHY_BACKENDS.values():
        hier = factory(machine)
        for core in (0, 3):
            hier.access_block(core, lines, writes, mlp=1.0)
        hier.snapshot()
    return ["mem.hierarchy"]
