"""Functional profiling: the library's stand-in for the paper's Pintool.

Collects, per inter-barrier region and per thread, the two
microarchitecture-independent signatures of section III-A — Basic Block
Vectors and LRU stack-distance vectors — plus the most-recently-used line
capture that feeds the warmup technique of section IV.
"""

from repro.profiling.bbv import collect_region_bbv
from repro.profiling.ldv import LruStackProfiler, NUM_LDV_BUCKETS
from repro.profiling.mru import MRUTracker
from repro.profiling.profiler import FunctionalProfiler, RegionProfile
from repro.profiling.stackdist import OlkenStackProfiler, StackDistanceEngine

__all__ = [
    "FunctionalProfiler",
    "LruStackProfiler",
    "MRUTracker",
    "NUM_LDV_BUCKETS",
    "OlkenStackProfiler",
    "RegionProfile",
    "StackDistanceEngine",
    "collect_region_bbv",
]
