"""Flat-array kernel tier for the profiling hot loops.

Two pure-function kernels (``*_py``), each with an ``@njit(cache=True)``
twin compiled lazily through :mod:`repro.util.jit`:

* :func:`stackdist_observe_py` — the Olken exact-stack-distance loop over
  flat arrays: an open-addressing hash (line → last-access time) plus a
  Fenwick tree laid out in one int64 array.  Distances are bit-identical
  to :class:`~repro.profiling.stackdist.StackDistanceEngine` and
  :class:`~repro.profiling.stackdist.OlkenStackProfiler`.
* :func:`mru_observe_py` — the capacity-bounded sticky-dirty MRU capture
  loop (the seed ``ReferenceMRUTracker`` semantics) over a hash table and
  an intrusive doubly-linked recency list in flat int64 arrays.

Kernels stay in the most conservative numba subset — int64/float64/bool
arrays, scalars, and loops; no dicts, closures, or helper calls — so the
``py`` twin exercised by the tier-1 suite covers exactly the code the
``nb`` twin compiles.  Rehashing/compaction lives python-side (amortized,
vectorized where it matters) to keep the kernels allocation-free.

Line addresses may be any int64 except the reserved ``_EMPTY`` sentinel
(``-2**63``, unreachable for real cache lines).
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from repro.profiling.stackdist import StackDistanceEngine
from repro.util import jit

#: Reserved hash-slot sentinels (int64 min is not a representable line).
_EMPTY = -(1 << 63)
_TOMB = _EMPTY + 1

#: Knuth multiplicative hash constant; the product is masked to the
#: table's low bits immediately, so Python's arbitrary-precision multiply
#: and numba's wrapping int64 multiply agree bit-for-bit.
_HASH_K = 2654435761


# ----------------------------------------------------------------------
# Kernel sources (the *_py twins; numba compiles these exact functions)
# ----------------------------------------------------------------------


def stackdist_observe_py(chunk, out, keys, last, tree, meta):
    """Olken stack distances for one chunk, updating flat state in place.

    Args:
        chunk: int64[n] line addresses.
        out: int64[n] output; exact distance per access, -1 when cold.
        keys: int64[cap] open-addressing table (``_EMPTY`` = free slot);
            power-of-two ``cap`` with spare capacity for ``n`` inserts.
        last: int64[cap] last-access timestamp per occupied key slot.
        tree: int64[size + 1] Fenwick tree over timestamps ``0..size-1``;
            the caller guarantees ``meta[1] + n <= size``.
        meta: int64[2] scalars: ``[0]`` distinct-line count, ``[1]`` clock.
    """
    mask = keys.shape[0] - 1
    tree_size = tree.shape[0] - 1
    count = meta[0]
    clock = meta[1]
    for i in range(chunk.shape[0]):
        line = chunk[i]
        h = (line * _HASH_K) & mask
        while True:
            k = keys[h]
            if k == line:
                break
            if k == _EMPTY:
                keys[h] = line
                last[h] = -1
                count += 1
                break
            h = (h + 1) & mask
        tau = last[h]
        if tau < 0:
            out[i] = -1
        else:
            total = 0
            j = tau + 1
            while j > 0:
                total += tree[j]
                j -= j & (-j)
            out[i] = count - total
            j = tau + 1
            while j <= tree_size:
                tree[j] -= 1
                j += j & (-j)
        j = clock + 1
        while j <= tree_size:
            tree[j] += 1
            j += j & (-j)
        last[h] = clock
        clock += 1
    meta[0] = count
    meta[1] = clock


def stackdist_rehash_py(old_keys, old_last, keys, last):
    """Reinsert every occupied slot of one table into a larger one.

    Args:
        old_keys: int64[old_cap] source table (``_EMPTY`` = free).
        old_last: int64[old_cap] timestamps aligned with ``old_keys``.
        keys: int64[cap] destination table, pre-filled with ``_EMPTY``.
        last: int64[cap] destination timestamps.
    """
    mask = keys.shape[0] - 1
    for i in range(old_keys.shape[0]):
        line = old_keys[i]
        if line == _EMPTY:
            continue
        h = (line * _HASH_K) & mask
        while keys[h] != _EMPTY:
            h = (h + 1) & mask
        keys[h] = line
        last[h] = old_last[i]


def mru_observe_py(lines, writes, keys, vals, node_line, node_dirty,
                   node_prev, node_next, meta, capacity):
    """Sticky-dirty bounded MRU capture for one chunk, in place.

    Reproduces the seed semantics exactly: every access moves its line to
    most-recent, ORs in the write flag, and evicts the oldest line once
    more than ``capacity`` are tracked.

    Args:
        lines: int64[n] line addresses.
        writes: bool[n] write flags aligned with ``lines``.
        keys: int64[cap] open-addressing table (``_EMPTY`` free slot,
            ``_TOMB`` deleted); spare capacity for ``n`` inserts.
        vals: int64[cap] node index per occupied key slot.
        node_line: int64[nodes] line address per node.
        node_dirty: int64[nodes] sticky write flag per node (0/1).
        node_prev: int64[nodes] recency-list predecessor (-1 = none).
        node_next: int64[nodes] recency-list successor / free-list chain.
        meta: int64[5] scalars: head, tail, live, free_head, tombstones.
        capacity: int64 tracking capacity in lines.
    """
    mask = keys.shape[0] - 1
    head = meta[0]
    tail = meta[1]
    live = meta[2]
    free_head = meta[3]
    tombs = meta[4]
    for i in range(lines.shape[0]):
        line = lines[i]
        w = writes[i]
        h = (line * _HASH_K) & mask
        slot = -1
        first_tomb = -1
        while True:
            k = keys[h]
            if k == line:
                slot = h
                break
            if k == _EMPTY:
                break
            if k == _TOMB and first_tomb < 0:
                first_tomb = h
            h = (h + 1) & mask
        if slot >= 0:
            node = vals[slot]
            if w:
                node_dirty[node] = 1
            if node != tail:
                p = node_prev[node]
                nx = node_next[node]
                if p >= 0:
                    node_next[p] = nx
                else:
                    head = nx
                node_prev[nx] = p
                node_prev[node] = tail
                node_next[node] = -1
                node_next[tail] = node
                tail = node
        else:
            node = free_head
            free_head = node_next[node]
            node_line[node] = line
            node_dirty[node] = 1 if w else 0
            node_prev[node] = tail
            node_next[node] = -1
            if tail >= 0:
                node_next[tail] = node
            else:
                head = node
            tail = node
            if first_tomb >= 0:
                keys[first_tomb] = line
                vals[first_tomb] = node
                tombs -= 1
            else:
                keys[h] = line
                vals[h] = node
            live += 1
            if live > capacity:
                victim = head
                vline = node_line[victim]
                head = node_next[victim]
                if head >= 0:
                    node_prev[head] = -1
                else:
                    tail = -1
                node_next[victim] = free_head
                free_head = victim
                hh = (vline * _HASH_K) & mask
                while keys[hh] != vline:
                    hh = (hh + 1) & mask
                keys[hh] = _TOMB
                vals[hh] = -1
                tombs += 1
                live -= 1
    meta[0] = head
    meta[1] = tail
    meta[2] = live
    meta[3] = free_head
    meta[4] = tombs


def mru_rehash_py(keys, vals, node_line, node_next, meta):
    """Rebuild the MRU hash table (dropping tombstones) from the list.

    Args:
        keys: int64[cap] destination table, pre-filled with ``_EMPTY``.
        vals: int64[cap] destination node indices.
        node_line: int64[nodes] line address per node.
        node_next: int64[nodes] recency-list successor chain.
        meta: int64[5] scalars; reads head, zeroes the tombstone count.
    """
    mask = keys.shape[0] - 1
    node = meta[0]
    while node >= 0:
        line = node_line[node]
        h = (line * _HASH_K) & mask
        while keys[h] != _EMPTY:
            h = (h + 1) & mask
        keys[h] = line
        vals[h] = node
        node = node_next[node]
    meta[4] = 0


def mru_collect_py(node_line, node_dirty, node_next, head, out_lines,
                   out_dirty):
    """Copy the recency list (oldest first) into flat output arrays.

    Args:
        node_line: int64[nodes] line address per node.
        node_dirty: int64[nodes] sticky write flag per node.
        node_next: int64[nodes] recency-list successor chain.
        head: int64 index of the oldest node (-1 when empty).
        out_lines: int64[live] output lines, oldest first.
        out_dirty: int64[live] output dirty flags, aligned.
    """
    i = 0
    node = head
    while node >= 0:
        out_lines[i] = node_line[node]
        out_dirty[i] = node_dirty[node]
        node = node_next[node]
        i += 1


# ----------------------------------------------------------------------
# Tier bundles
# ----------------------------------------------------------------------


class ProfilingKernels(NamedTuple):
    """One tier's callable set for the profiling kernels."""

    tier: str
    stackdist_observe: object
    stackdist_rehash: object
    mru_observe: object
    mru_rehash: object
    mru_collect: object


_PY_BUNDLE = ProfilingKernels(
    "kernel-py", stackdist_observe_py, stackdist_rehash_py,
    mru_observe_py, mru_rehash_py, mru_collect_py,
)

_NB_BUNDLE: ProfilingKernels | None = None


def _nb_bundle() -> ProfilingKernels:  # pragma: no cover - numba CI leg
    """Compile (once) and return the ``nb`` twins of every kernel."""
    global _NB_BUNDLE
    if _NB_BUNDLE is None:
        _NB_BUNDLE = ProfilingKernels(
            "nb",
            jit.compile_kernel(stackdist_observe_py),
            jit.compile_kernel(stackdist_rehash_py),
            jit.compile_kernel(mru_observe_py),
            jit.compile_kernel(mru_rehash_py),
            jit.compile_kernel(mru_collect_py),
        )
    return _NB_BUNDLE


def kernel_bundle() -> ProfilingKernels | None:
    """The active tier's kernel set, or None when the ``py`` engines run."""
    tier = jit.kernel_tier()
    if tier is None:
        return None
    if tier == "kernel-py":
        return _PY_BUNDLE
    return _nb_bundle()  # pragma: no cover - numba CI leg


# ----------------------------------------------------------------------
# Engine wrappers
# ----------------------------------------------------------------------


class KernelChunk(NamedTuple):
    """Distances of one observed chunk (kernel-engine result view)."""

    distances: np.ndarray


class KernelDistanceEngine:
    """Drop-in exact-stack-distance engine backed by the flat kernels.

    Implements the slice of the :class:`StackDistanceEngine` surface the
    LDV consumers use (``observe(...).distances``, ``unique_lines``,
    ``reset``); distances are bit-identical.  Hash growth and timestamp
    compaction run python-side between kernel calls, amortized O(1).
    """

    __slots__ = ("_fns", "_keys", "_last", "_tree", "_meta")

    _MIN_CAP = 1024

    def __init__(self, fns: ProfilingKernels | None = None) -> None:
        self._fns = fns or kernel_bundle() or _PY_BUNDLE
        self.reset()

    @property
    def unique_lines(self) -> int:
        """Number of distinct lines ever observed."""
        return int(self._meta[0])

    def reset(self) -> None:
        """Forget all lines and restart the clock."""
        self._keys = np.full(self._MIN_CAP, _EMPTY, dtype=np.int64)
        self._last = np.zeros(self._MIN_CAP, dtype=np.int64)
        self._tree = np.zeros(2 * self._MIN_CAP + 1, dtype=np.int64)
        self._meta = np.zeros(2, dtype=np.int64)

    def _grow_hash(self, need: int) -> None:
        """Rehash into the next power-of-two table with room for ``need``."""
        cap = self._keys.shape[0]
        while (int(self._meta[0]) + need) * 4 >= cap * 3:
            cap *= 2
        keys = np.full(cap, _EMPTY, dtype=np.int64)
        last = np.zeros(cap, dtype=np.int64)
        with np.errstate(over="ignore"):  # int64 hash wrap is the design
            self._fns.stackdist_rehash(self._keys, self._last, keys, last)
        self._keys = keys
        self._last = last

    def _compact(self, incoming: int) -> None:
        """Re-number active timestamps 0..count-1 and resize the tree.

        Every distinct line's last timestamp is active (lines are never
        forgotten), so compaction is a dense re-ranking — vectorized, and
        rare enough (the clock doubles between compactions) to amortize.
        """
        occupied = np.flatnonzero(self._keys != _EMPTY)
        count = int(occupied.size)
        times = self._last[occupied]
        ranks = np.empty(count, dtype=np.int64)
        ranks[np.argsort(times)] = np.arange(count, dtype=np.int64)
        self._last[occupied] = ranks
        size = 2 * self._MIN_CAP
        while size < 2 * (count + incoming):
            size *= 2
        tree = np.zeros(size + 1, dtype=np.int64)
        j = np.arange(1, size + 1, dtype=np.int64)
        tree[1:] = np.clip(np.minimum(j, count) - (j - (j & -j)), 0, None)
        self._tree = tree
        self._meta[1] = count

    def observe(self, chunk: np.ndarray, distance_floor=None) -> KernelChunk:
        """Stream one chunk of line addresses; returns exact distances.

        ``distance_floor`` is accepted for signature compatibility and
        ignored: the kernel's distances are always exact, which trivially
        satisfies the floor contract.
        """
        chunk = np.ascontiguousarray(chunk, dtype=np.int64)
        n = int(chunk.size)
        out = np.empty(n, dtype=np.int64)
        if n == 0:
            return KernelChunk(out)
        if (int(self._meta[0]) + n) * 4 >= self._keys.shape[0] * 3:
            self._grow_hash(n)
        if int(self._meta[1]) + n > self._tree.shape[0] - 1:
            self._compact(n)
        with np.errstate(over="ignore"):  # int64 hash wrap is the design
            self._fns.stackdist_observe(
                chunk, out, self._keys, self._last, self._tree, self._meta
            )
        return KernelChunk(out)


def make_distance_engine():
    """The active tier's exact-distance engine for LDV consumers.

    Returns:
        A :class:`KernelDistanceEngine` when a kernel tier is active, the
        vectorized :class:`StackDistanceEngine` otherwise.
    """
    fns = kernel_bundle()
    if fns is None:
        return StackDistanceEngine()
    return KernelDistanceEngine(fns)


class MRUKernelState:
    """Flat-array MRU capture state for one core.

    Hash capacity is fixed relative to the (bounded) live-line count;
    evictions leave tombstones that a periodic in-place rebuild sweeps.
    """

    __slots__ = ("_fns", "capacity", "_keys", "_vals", "_line", "_dirty",
                 "_prev", "_next", "_meta")

    def __init__(self, capacity: int, fns: ProfilingKernels) -> None:
        self._fns = fns
        self.capacity = capacity
        nodes = capacity + 1  # one slack node between insert and evict
        cap = 2048
        while nodes * 4 >= cap * 3:
            cap *= 2
        self._keys = np.full(cap, _EMPTY, dtype=np.int64)
        self._vals = np.zeros(cap, dtype=np.int64)
        self._line = np.zeros(nodes, dtype=np.int64)
        self._dirty = np.zeros(nodes, dtype=np.int64)
        self._prev = np.zeros(nodes, dtype=np.int64)
        self._next = np.arange(1, nodes + 1, dtype=np.int64)
        self._next[-1] = -1
        # head, tail, live, free_head, tombstones
        self._meta = np.array([-1, -1, 0, 0, 0], dtype=np.int64)

    @property
    def live(self) -> int:
        """Number of lines currently tracked."""
        return int(self._meta[2])

    def observe(self, lines: np.ndarray, writes: np.ndarray) -> None:
        """Stream one chunk through the MRU kernel."""
        lines = np.ascontiguousarray(lines, dtype=np.int64)
        writes = np.ascontiguousarray(writes, dtype=np.bool_)
        n = int(lines.size)
        if n == 0:
            return
        live, tombs = int(self._meta[2]), int(self._meta[4])
        cap = self._keys.shape[0]
        if (live + tombs + n) * 4 >= cap * 3:
            while (live + n) * 4 >= cap * 3:
                cap *= 2
            if cap > self._keys.shape[0]:
                self._keys = np.full(cap, _EMPTY, dtype=np.int64)
                self._vals = np.zeros(cap, dtype=np.int64)
            else:
                self._keys.fill(_EMPTY)
            with np.errstate(over="ignore"):
                self._fns.mru_rehash(
                    self._keys, self._vals, self._line, self._next, self._meta
                )
        with np.errstate(over="ignore"):  # int64 hash wrap is the design
            self._fns.mru_observe(
                lines, writes, self._keys, self._vals, self._line,
                self._dirty, self._prev, self._next, self._meta,
                self.capacity,
            )

    def items(self) -> tuple:
        """Tracked ``(line, was_write)`` pairs, oldest first (seed order)."""
        live = self.live
        out_lines = np.empty(live, dtype=np.int64)
        out_dirty = np.empty(live, dtype=np.int64)
        if live:
            self._fns.mru_collect(
                self._line, self._dirty, self._next, int(self._meta[0]),
                out_lines, out_dirty,
            )
        return tuple(zip(
            out_lines.tolist(), out_dirty.astype(bool).tolist()
        ))


def warm() -> list[str]:
    """Run every profiling kernel once on tiny inputs (compile warmup).

    Returns:
        Warmed kernel-group names (empty when no kernel tier is active).
    """
    fns = kernel_bundle()
    if fns is None:
        return []
    engine = KernelDistanceEngine(fns)
    engine.observe(np.array([1, 2, 1], dtype=np.int64))
    engine._grow_hash(engine._keys.shape[0])
    engine._compact(1)
    mru = MRUKernelState(2, fns)
    mru.observe(
        np.array([1, 2, 3, 1], dtype=np.int64),
        np.array([True, False, False, False]),
    )
    mru.items()
    return ["profiling.stackdist", "profiling.mru"]
