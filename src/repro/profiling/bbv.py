"""Basic Block Vector collection (section III-A1).

A BBV has one entry per static basic block holding the number of
*instructions* contributed by that block during the region (SimPoint
convention: execution count times block size), collected per thread.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.trace.program import RegionTrace


def collect_region_bbv(trace: RegionTrace, num_static_blocks: int) -> np.ndarray:
    """Per-thread BBVs of one region, shape ``(threads, num_static_blocks)``.

    Raises if the trace references a block id outside the static program,
    which would indicate the trace and the workload disagree.
    """
    out = np.zeros((trace.num_threads, num_static_blocks), dtype=np.float64)
    for thread in trace.threads:
        row = out[thread.thread_id]
        for exec_ in thread.blocks:
            bb_id = exec_.block.bb_id
            if bb_id >= num_static_blocks:
                raise WorkloadError(
                    f"block id {bb_id} out of range for "
                    f"{num_static_blocks} static blocks"
                )
            row[bb_id] += exec_.instructions
    return out
