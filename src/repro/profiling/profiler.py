"""The functional profiler: one pass, all signatures.

This plays the role of the paper's Pin tool: it "runs" the application at
functional speed (here: walking the deterministic traces), maintaining one
persistent LRU stack per thread and emitting, per inter-barrier region,
the per-thread BBVs and LDVs that the clustering consumes.

A second, cheaper pass (:meth:`FunctionalProfiler.capture_warmup`) re-walks
the trace maintaining only per-core MRU state and snapshots it at the
entry of each selected barrierpoint — mirroring the paper's dedicated
warmup-capture run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.profiling.bbv import collect_region_bbv
from repro.profiling.ldv import NUM_LDV_BUCKETS, LruStackProfiler
from repro.profiling.mru import MRUTracker
from repro.sim.warmup import MRUWarmupData
from repro.workloads.base import Workload


@dataclass(frozen=True)
class RegionProfile:
    """Signatures and sizes of one inter-barrier region.

    ``bbv`` has shape ``(threads, static_blocks)`` and counts instructions
    per block; ``ldv`` has shape ``(threads, NUM_LDV_BUCKETS)`` and counts
    accesses per power-of-two stack-distance bin.
    """

    region_index: int
    phase: str
    instructions: int
    per_thread_instructions: tuple[int, ...]
    bbv: np.ndarray
    ldv: np.ndarray

    @property
    def num_threads(self) -> int:
        """Thread count the profile was collected with."""
        return self.bbv.shape[0]


class FunctionalProfiler:
    """Collects :class:`RegionProfile` s for a whole workload."""

    def __init__(self, workload: Workload) -> None:
        self.workload = workload

    def profile(self) -> list[RegionProfile]:
        """One functional pass over every region, in program order.

        LRU stacks persist across regions (the paper's Pintool behaviour),
        so first-touch iterations exhibit cold-dominated LDVs while later,
        code-identical iterations show finite reuse distances.
        """
        workload = self.workload
        num_blocks = workload.num_static_blocks
        stacks = [LruStackProfiler() for _ in range(workload.num_threads)]
        profiles: list[RegionProfile] = []
        for trace in workload.iter_regions():
            bbv = collect_region_bbv(trace, num_blocks)
            ldv = np.zeros(
                (workload.num_threads, NUM_LDV_BUCKETS), dtype=np.float64
            )
            for thread in trace.threads:
                stack = stacks[thread.thread_id]
                for exec_ in thread.blocks:
                    if exec_.lines.size:
                        stack.observe(exec_.lines)
                ldv[thread.thread_id] = stack.take_histogram()
            profiles.append(
                RegionProfile(
                    region_index=trace.region_index,
                    phase=trace.phase,
                    instructions=trace.instructions,
                    per_thread_instructions=tuple(
                        t.instructions for t in trace.threads
                    ),
                    bbv=bbv,
                    ldv=ldv,
                )
            )
        return profiles

    def capture_warmup(
        self, barrierpoint_regions: set[int], llc_capacity_lines: int
    ) -> dict[int, MRUWarmupData]:
        """Second pass: snapshot MRU state at each selected barrierpoint.

        ``llc_capacity_lines`` should be the *largest* shared-LLC line count
        of any machine that will simulate the barrierpoints (section IV:
        one capture serves all configurations).
        """
        workload = self.workload
        if not barrierpoint_regions:
            return {}
        bad = {
            r for r in barrierpoint_regions
            if not 0 <= r < workload.num_regions
        }
        if bad:
            raise WorkloadError(f"barrierpoint regions out of range: {sorted(bad)}")
        tracker = MRUTracker(workload.num_threads, llc_capacity_lines)
        snapshots: dict[int, MRUWarmupData] = {}
        last_needed = max(barrierpoint_regions)
        for trace in workload.iter_regions():
            idx = trace.region_index
            if idx in barrierpoint_regions:
                snapshots[idx] = tracker.snapshot(idx)
            if idx >= last_needed:
                break
            for thread in trace.threads:
                for exec_ in thread.blocks:
                    if exec_.lines.size:
                        tracker.observe(
                            thread.thread_id, exec_.lines, exec_.writes
                        )
        return snapshots
