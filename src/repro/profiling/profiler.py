"""The functional profiler: one pass, all signatures.

This plays the role of the paper's Pin tool: it "runs" the application at
functional speed (here: walking the deterministic traces), maintaining one
persistent LRU stack per thread and emitting, per inter-barrier region,
the per-thread BBVs and LDVs that the clustering consumes.

A second, cheaper pass (:meth:`FunctionalProfiler.capture_warmup`) re-walks
the trace maintaining only per-core MRU state and snapshots it at the
entry of each selected barrierpoint — mirroring the paper's dedicated
warmup-capture run.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.profiling.bbv import collect_region_bbv
from repro.profiling.ldv import NUM_LDV_BUCKETS, bucketize
from repro.profiling.mru import MRUTracker
from repro.profiling.kernels import make_distance_engine
from repro.profiling.stackdist import FLUSH_THRESHOLD
from repro.sim.warmup import MRUWarmupData
from repro.workloads.base import Workload


@dataclass(frozen=True)
class RegionProfile:
    """Signatures and sizes of one inter-barrier region.

    ``bbv`` has shape ``(threads, static_blocks)`` and counts instructions
    per block; ``ldv`` has shape ``(threads, NUM_LDV_BUCKETS)`` and counts
    accesses per power-of-two stack-distance bin.
    """

    region_index: int
    phase: str
    instructions: int
    per_thread_instructions: tuple[int, ...]
    bbv: np.ndarray
    ldv: np.ndarray

    @property
    def num_threads(self) -> int:
        """Thread count the profile was collected with."""
        return self.bbv.shape[0]

    def to_state(self) -> dict:
        """Serialize to a plain dict (artifact-store payload).

        Returns:
            A dict of scalars plus the BBV/LDV arrays, consumed by
            :meth:`from_state`.
        """
        return {
            "region_index": self.region_index,
            "phase": self.phase,
            "instructions": self.instructions,
            "per_thread_instructions": tuple(self.per_thread_instructions),
            "bbv": self.bbv,
            "ldv": self.ldv,
        }

    @classmethod
    def from_state(cls, state: dict) -> RegionProfile:
        """Rebuild a region profile from a :meth:`to_state` dict.

        Args:
            state: A dict produced by :meth:`to_state`.

        Returns:
            An equivalent :class:`RegionProfile` (arrays bit-identical).
        """
        return cls(
            region_index=state["region_index"],
            phase=state["phase"],
            instructions=state["instructions"],
            per_thread_instructions=tuple(state["per_thread_instructions"]),
            bbv=np.asarray(state["bbv"]),
            ldv=np.asarray(state["ldv"]),
        )


def profiles_digest(profiles: list[RegionProfile]) -> str:
    """Order-sensitive content digest of a profile list.

    Covers every region's identity, instruction counts, and the raw BBV
    and LDV array bytes, so two digests match exactly when the profiles
    are bit-identical — the check ``repro trace replay --verify`` and the
    conformance tests print/compare.

    Args:
        profiles: Region profiles in program order.

    Returns:
        A short hex digest.
    """
    digest = hashlib.sha256()
    for p in profiles:
        digest.update(
            f"{p.region_index}|{p.phase}|{p.instructions}|"
            f"{','.join(map(str, p.per_thread_instructions))}|"
            f"{p.bbv.dtype}{p.bbv.shape}|{p.ldv.dtype}{p.ldv.shape}|"
            .encode()
        )
        digest.update(np.ascontiguousarray(p.bbv).tobytes())
        digest.update(np.ascontiguousarray(p.ldv).tobytes())
    return digest.hexdigest()[:16]


class _LdvBatcher:
    """Per-thread LDV accumulation across region boundaries.

    Region streams are buffered and flushed through the exact-distance
    engine in ~:data:`FLUSH_THRESHOLD`-access batches; each flush splits
    its bucketized distances back to the originating regions, so the
    per-region histograms are identical to per-region observation while
    tiny regions stop paying the engine's fixed per-chunk cost.
    """

    __slots__ = ("engine", "hist", "_chunks", "_regions", "_pending")

    def __init__(self, num_regions: int) -> None:
        self.engine = make_distance_engine()
        self.hist = np.zeros((num_regions, NUM_LDV_BUCKETS), dtype=np.int64)
        self._chunks: list[np.ndarray] = []
        self._regions: list[int] = []
        self._pending = 0

    def add(self, region_index: int, lines: np.ndarray) -> None:
        """Buffer one region stream; flush when the batch is large enough.

        ``lines`` is held by reference until the flush — callers must not
        mutate it afterwards.
        """
        self._chunks.append(lines)
        self._regions.append(region_index)
        self._pending += int(lines.size)
        if self._pending >= FLUSH_THRESHOLD:
            self.flush()

    def flush(self) -> None:
        """Run the buffered batch through the engine, split per region."""
        chunks = self._chunks
        if not chunks:
            return
        lines = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
        sizes = [c.size for c in chunks]
        regions = self._regions
        self._chunks = []
        self._regions = []
        self._pending = 0
        buckets = bucketize(self.engine.observe(lines).distances)
        lo = regions[0]
        segments = np.repeat(np.asarray(regions, dtype=np.int64) - lo, sizes)
        span = regions[-1] - lo + 1
        counts = np.bincount(
            segments * NUM_LDV_BUCKETS + buckets,
            minlength=span * NUM_LDV_BUCKETS,
        )
        self.hist[lo:lo + span] += counts.reshape(span, NUM_LDV_BUCKETS)


class FunctionalProfiler:
    """Collects :class:`RegionProfile` s for a whole workload."""

    def __init__(self, workload: Workload) -> None:
        self.workload = workload

    def profile(self) -> list[RegionProfile]:
        """One functional pass over every region, in program order.

        LRU stacks persist across regions (the paper's Pintool behaviour),
        so first-touch iterations exhibit cold-dominated LDVs while later,
        code-identical iterations show finite reuse distances.
        """
        workload = self.workload
        num_blocks = workload.num_static_blocks
        num_regions = workload.num_regions
        batchers = [
            _LdvBatcher(num_regions) for _ in range(workload.num_threads)
        ]
        pending: list[tuple] = []
        for trace in workload.iter_regions():
            bbv = collect_region_bbv(trace, num_blocks)
            for thread in trace.threads:
                chunks = [e.lines for e in thread.blocks if e.lines.size]
                if chunks:
                    batchers[thread.thread_id].add(
                        trace.region_index,
                        chunks[0] if len(chunks) == 1
                        else np.concatenate(chunks),
                    )
            pending.append((
                trace.region_index,
                trace.phase,
                trace.instructions,
                tuple(t.instructions for t in trace.threads),
                bbv,
            ))
        for batcher in batchers:
            batcher.flush()
        profiles: list[RegionProfile] = []
        for region_index, phase, instructions, per_thread, bbv in pending:
            ldv = np.stack([
                b.hist[region_index].astype(np.float64) for b in batchers
            ])
            profiles.append(
                RegionProfile(
                    region_index=region_index,
                    phase=phase,
                    instructions=instructions,
                    per_thread_instructions=per_thread,
                    bbv=bbv,
                    ldv=ldv,
                )
            )
        return profiles

    def capture_warmup(
        self, barrierpoint_regions: set[int], llc_capacity_lines: int
    ) -> dict[int, MRUWarmupData]:
        """Second pass: snapshot MRU state at each selected barrierpoint.

        ``llc_capacity_lines`` should be the *largest* shared-LLC line count
        of any machine that will simulate the barrierpoints (section IV:
        one capture serves all configurations).
        """
        workload = self.workload
        if not barrierpoint_regions:
            return {}
        bad = {
            r for r in barrierpoint_regions
            if not 0 <= r < workload.num_regions
        }
        if bad:
            raise WorkloadError(f"barrierpoint regions out of range: {sorted(bad)}")
        tracker = MRUTracker(workload.num_threads, llc_capacity_lines)
        snapshots: dict[int, MRUWarmupData] = {}
        last_needed = max(barrierpoint_regions)
        for trace in workload.iter_regions():
            idx = trace.region_index
            if idx in barrierpoint_regions:
                snapshots[idx] = tracker.snapshot(idx)
            if idx >= last_needed:
                break
            for thread in trace.threads:
                chunks = [
                    (e.lines, e.writes) for e in thread.blocks
                    if e.lines.size
                ]
                if not chunks:
                    continue
                if len(chunks) == 1:
                    lines, writes = chunks[0]
                else:
                    lines = np.concatenate([c[0] for c in chunks])
                    writes = np.concatenate([c[1] for c in chunks])
                tracker.observe(thread.thread_id, lines, writes)
        return snapshots
