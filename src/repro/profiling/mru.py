"""Most-recently-used line capture for warmup (section IV).

During the profiling run, each core tracks its most recently used cache
lines — together with whether the latest access was a write — in an
LRU-ordered structure whose capacity equals the largest shared LLC (in
lines) that will be simulated.  Snapshots taken at barrierpoint entry
become :class:`~repro.sim.warmup.MRUWarmupData`.

Implementation: the capacity-``cap`` MRU table is, at every instant, the
``cap`` most-recently-used *distinct* lines — so a line is still tracked
at its next access exactly when its LRU stack distance is below ``cap``.
That lets the tracker ride the chunked exact-distance engine
(:mod:`repro.profiling.stackdist`) instead of a per-access dict loop: a
line's sticky dirty bit survives a chunk iff no access in the chunk
re-entered it fresh (cold, or distance >= capacity), and the per-line
"any write since the last fresh entry" reduction is a vectorized
group-by over the chunk.  Snapshots and occupancy come straight from the
engine's recency order.  Parity with the seed dict implementation is
enforced by randomized tests.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.profiling import kernels as _kernels
from repro.profiling.stackdist import FLUSH_THRESHOLD, StackDistanceEngine
from repro.sim.warmup import MRUWarmupData

_EMPTY_DIRTY = np.empty(0, dtype=bool)


class MRUTracker:
    """Per-core MRU line tracking with bounded capacity."""

    def __init__(self, num_cores: int, capacity_lines: int) -> None:
        if num_cores <= 0:
            raise WorkloadError("num_cores must be positive")
        if capacity_lines <= 0:
            raise WorkloadError("capacity_lines must be positive")
        self.capacity_lines = capacity_lines
        # Kernel tier (repro.util.jit): per-core flat-array MRU tables
        # that reproduce the seed dict semantics exactly, replacing the
        # stack-distance-engine reduction below.
        fns = _kernels.kernel_bundle()
        if fns is not None:
            self._kstates = [
                _kernels.MRUKernelState(capacity_lines, fns)
                for _ in range(num_cores)
            ]
            self._engines = []
        else:
            self._kstates = None
            self._engines = [StackDistanceEngine() for _ in range(num_cores)]
        # Dirty flag per line, aligned with each engine's line table.
        self._dirty: list[np.ndarray] = [
            _EMPTY_DIRTY for _ in range(num_cores)
        ]
        # Pending (lines, writes) chunks per core: small observes are
        # accumulated and flushed through the engine in large batches so
        # the vectorized path amortizes even on tiny per-block streams.
        self._pending: list[list[tuple[np.ndarray, np.ndarray]]] = [
            [] for _ in range(num_cores)
        ]
        self._pending_size = [0] * num_cores

    def observe(self, core: int, lines: np.ndarray, writes: np.ndarray) -> None:
        """Stream one block's references for ``core`` through the tracker.

        The arrays are buffered by reference until the next flush, so
        callers must not mutate them afterwards (trace arrays are
        immutable in this codebase; pass a copy when streaming from a
        reused scratch buffer).
        """
        n = int(lines.size)
        if n == 0:
            return
        self._pending[core].append((lines, writes))
        self._pending_size[core] += n
        if self._pending_size[core] >= FLUSH_THRESHOLD:
            self._flush(core)

    def _flush(self, core: int) -> None:
        """Run the buffered stream of one core through the engine."""
        pending = self._pending[core]
        if not pending:
            return
        if len(pending) == 1:
            lines, writes = pending[0]
        else:
            lines = np.concatenate([c[0] for c in pending])
            writes = np.concatenate([c[1] for c in pending])
        self._pending[core] = []
        self._pending_size[core] = 0
        if self._kstates is not None:
            self._kstates[core].observe(lines, writes)
            return
        n = int(lines.size)
        view = self._engines[core].observe(
            lines, distance_floor=self.capacity_lines
        )
        writes = np.ascontiguousarray(writes, dtype=bool)
        distances = view.distances
        if view.kept is not None:
            # The engine collapsed consecutive repeats; a repeat keeps the
            # line tracked (distance 0), so its write simply ORs into the
            # run's surviving access.
            writes = np.logical_or.reduceat(writes, view.kept)
            distances = distances[view.kept]
            n = int(view.kept.size)
        # A "fresh entry": the line was not in the table when accessed, so
        # it re-enters carrying only this access's write flag.
        fresh = (distances < 0) | (distances >= self.capacity_lines)

        starts = view.group_starts
        perm = view.order
        fresh_g = fresh[perm]
        writes_g = writes[perm]
        # Per element: number of fresh entries strictly later in its group.
        cum = np.cumsum(fresh_g)
        group_ends = np.concatenate([starts[1:], [n]])
        counts = group_ends - starts
        gid = np.repeat(np.arange(starts.size), counts)
        fresh_after = cum[group_ends - 1][gid] - cum
        # A write survives iff the line is never re-entered fresh afterwards.
        live_write = writes_g & (fresh_after == 0)
        dirty_new = np.logical_or.reduceat(live_write, starts)
        reentered = np.logical_or.reduceat(fresh_g, starts)

        dirty = self._dirty[core]
        if view.was_new.any():
            dirty = np.insert(dirty, view.insert_at, False)
        prev = dirty[view.positions]
        dirty[view.positions] = dirty_new | (prev & ~reentered)
        self._dirty[core] = dirty

        # Only the top ``capacity`` lines can ever appear in a snapshot,
        # and any deeper line re-enters fresh anyway, so the engine may
        # forget them; this bounds per-chunk maintenance cost on workloads
        # whose footprint far exceeds the LLC.
        engine = self._engines[core]
        if engine.unique_lines > 2 * self.capacity_lines:
            kept = engine.prune_to(self.capacity_lines)
            if kept is not None:
                self._dirty[core] = self._dirty[core][kept]

    def snapshot(self, region_index: int) -> MRUWarmupData:
        """Freeze current state as warmup data for ``region_index``."""
        per_core = []
        cap = self.capacity_lines
        if self._kstates is not None:
            for core in range(len(self._kstates)):
                self._flush(core)
            return MRUWarmupData(
                region_index=region_index,
                per_core=tuple(state.items() for state in self._kstates),
            )
        for core in range(len(self._engines)):
            self._flush(core)
        for engine, dirty in zip(self._engines, self._dirty):
            recency = engine.lines_by_recency()
            keep = recency[max(0, recency.size - cap):]
            lines = engine.line_table()[keep]
            per_core.append(
                tuple(zip(lines.tolist(), dirty[keep].tolist()))
            )
        return MRUWarmupData(
            region_index=region_index,
            per_core=tuple(per_core),
        )

    def occupancy(self, core: int) -> int:
        """Number of lines currently tracked for ``core``."""
        self._flush(core)
        if self._kstates is not None:
            return self._kstates[core].live
        return min(self._engines[core].unique_lines, self.capacity_lines)
