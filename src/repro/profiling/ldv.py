"""LRU stack-distance profiling (section III-A2).

The LRU stack distance of an access is the number of *distinct* lines
touched since the previous access to the same line.  The paper stores these
in a power-of-two histogram per inter-barrier region — the LRU stack
distance vector (LDV) — with the stack persisting across barriers, which is
what lets cold-start regions (all first touches, infinite distance) look
different from later, code-identical iterations.

Implementation: exact distances from the chunked Bennett–Kruskal/Olken
engine (:mod:`repro.profiling.stackdist`), bucketed with one vectorized
``log2`` + ``bincount`` per chunk.  This replaced the seed's bucketed
Mattson cascade, whose per-access Python loop walked O(log n) dict levels
per cold access — the dominant cost of the whole profiling pass on
streaming workloads.  The histograms are bit-identical to the cascade's
(both are exact at bucket granularity; the randomized parity tests check
all three implementations against each other).
"""

from __future__ import annotations

import numpy as np

from repro.profiling.kernels import make_distance_engine

#: Power-of-two distance bins 2^0 .. 2^22, plus one cold bin for first
#: touches (infinite distance).  2^22 lines = 256 MB of distinct data,
#: far beyond any workload here.
NUM_LDV_BUCKETS = 24
COLD_BUCKET = NUM_LDV_BUCKETS - 1


class LruStackProfiler:
    """Streaming stack-distance histogrammer for one thread.

    ``observe`` consumes a numpy array of line addresses and adds each
    access's distance bin to the *current* histogram; ``take_histogram``
    returns and resets the per-region histogram while keeping the stack
    itself intact across region boundaries.
    """

    __slots__ = ("_engine", "_hist")

    def __init__(self) -> None:
        self._engine = make_distance_engine()
        self._hist = np.zeros(NUM_LDV_BUCKETS, dtype=np.int64)

    @property
    def unique_lines(self) -> int:
        """Number of distinct lines ever observed (stack depth)."""
        return self._engine.unique_lines

    def observe(self, lines: np.ndarray) -> None:
        """Stream a batch of line accesses through the LRU stack."""
        if lines.size == 0:
            return
        distances = self._engine.observe(lines).distances
        self._hist += np.bincount(
            bucketize(distances), minlength=NUM_LDV_BUCKETS
        )

    def take_histogram(self) -> np.ndarray:
        """Return the histogram accumulated since the last call, and reset."""
        out = self._hist.astype(np.float64)
        self._hist = np.zeros(NUM_LDV_BUCKETS, dtype=np.int64)
        return out

    def reset(self) -> None:
        """Forget all stack state and the pending histogram."""
        self._engine.reset()
        self._hist = np.zeros(NUM_LDV_BUCKETS, dtype=np.int64)


def bucketize(distances: np.ndarray) -> np.ndarray:
    """Vectorized :func:`bucket_of` over an exact-distance array."""
    # floor(log2(d + 1)) via frexp: exact for d + 1 < 2^53.
    exponents = np.frexp((distances + 1).astype(np.float64))[1] - 1
    buckets = np.minimum(exponents, COLD_BUCKET - 1)
    return np.where(distances < 0, COLD_BUCKET, buckets)


def naive_stack_distances(lines: np.ndarray) -> list[int]:
    """Reference Mattson stack; returns -1 for cold accesses.

    O(n * depth) — for tests and documentation only.
    """
    stack: list[int] = []  # index 0 = MRU
    out: list[int] = []
    for line in lines.tolist():
        try:
            depth = stack.index(line)
        except ValueError:
            out.append(-1)
            stack.insert(0, line)
        else:
            out.append(depth)
            del stack[depth]
            stack.insert(0, line)
    return out


def bucket_of(distance: int) -> int:
    """Histogram bin of an exact stack distance (-1 = cold).

    Bucket ``b`` covers stack positions ``[2^b - 1, 2^{b+1} - 2]`` — the
    ranges induced by the power-of-two bin widths — so bin membership
    matches :class:`LruStackProfiler` exactly.
    """
    if distance < 0:
        return COLD_BUCKET
    return min((int(distance) + 1).bit_length() - 1, COLD_BUCKET - 1)
