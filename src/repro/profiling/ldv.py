"""LRU stack-distance profiling (section III-A2).

The LRU stack distance of an access is the number of *distinct* lines
touched since the previous access to the same line.  The paper stores these
in a power-of-two histogram per inter-barrier region — the LRU stack
distance vector (LDV) — with the stack persisting across barriers, which is
what lets cold-start regions (all first touches, infinite distance) look
different from later, code-identical iterations.

Implementation: a bucketed Mattson stack.  Bucket ``i`` holds the lines at
stack positions ``[2^i - 1, 2^{i+1} - 1)`` as an insertion-ordered dict;
an access removes the line from its bucket (that bucket index *is* the
power-of-two distance bin), reinserts at bucket 0 and cascades overflow
demotions.  All operations are O(1) amortized per bucket level, and the
result is exact at bucket granularity up to transient holes left by
mid-bucket removals (verified against a naive Mattson stack in the tests).
"""

from __future__ import annotations

import numpy as np

#: Power-of-two distance bins 2^0 .. 2^22, plus one cold bin for first
#: touches (infinite distance).  2^22 lines = 256 MB of distinct data,
#: far beyond any workload here.
NUM_LDV_BUCKETS = 24
COLD_BUCKET = NUM_LDV_BUCKETS - 1


class LruStackProfiler:
    """Streaming stack-distance histogrammer for one thread.

    ``observe`` consumes a numpy array of line addresses and adds each
    access's distance bin to the *current* histogram; ``take_histogram``
    returns and resets the per-region histogram while keeping the stack
    itself intact across region boundaries.
    """

    __slots__ = ("_buckets", "_pos", "_hist")

    def __init__(self) -> None:
        self._buckets: list[dict[int, None]] = [
            {} for _ in range(COLD_BUCKET)
        ]
        self._pos: dict[int, int] = {}
        self._hist = [0] * NUM_LDV_BUCKETS

    @property
    def unique_lines(self) -> int:
        """Number of distinct lines ever observed (stack depth)."""
        return len(self._pos)

    def observe(self, lines: np.ndarray) -> None:
        """Stream a batch of line accesses through the LRU stack."""
        buckets = self._buckets
        pos = self._pos
        hist = self._hist
        max_bucket = COLD_BUCKET - 1
        for line in lines.tolist():
            b = pos.get(line, -1)
            if b < 0:
                hist[COLD_BUCKET] += 1
            else:
                hist[b] += 1
                del buckets[b][line]
            bucket0 = buckets[0]
            bucket0[line] = None
            pos[line] = 0
            # Cascade overflow demotions; bucket i holds at most 2^i lines.
            i = 0
            cap = 1
            while len(buckets[i]) > cap and i < max_bucket:
                victim = next(iter(buckets[i]))
                del buckets[i][victim]
                nxt = i + 1
                buckets[nxt][victim] = None
                pos[victim] = nxt
                i = nxt
                cap <<= 1

    def take_histogram(self) -> np.ndarray:
        """Return the histogram accumulated since the last call, and reset."""
        out = np.asarray(self._hist, dtype=np.float64)
        self._hist = [0] * NUM_LDV_BUCKETS
        return out

    def reset(self) -> None:
        """Forget all stack state and the pending histogram."""
        for bucket in self._buckets:
            bucket.clear()
        self._pos.clear()
        self._hist = [0] * NUM_LDV_BUCKETS


def naive_stack_distances(lines: np.ndarray) -> list[int]:
    """Reference Mattson stack; returns -1 for cold accesses.

    O(n * depth) — for tests and documentation only.
    """
    stack: list[int] = []  # index 0 = MRU
    out: list[int] = []
    for line in lines.tolist():
        try:
            depth = stack.index(line)
        except ValueError:
            out.append(-1)
            stack.insert(0, line)
        else:
            out.append(depth)
            del stack[depth]
            stack.insert(0, line)
    return out


def bucket_of(distance: int) -> int:
    """Histogram bin of an exact stack distance (-1 = cold).

    Bucket ``b`` covers stack positions ``[2^b - 1, 2^{b+1} - 2]`` — the
    ranges induced by per-bucket capacities of ``2^b`` lines — so bin
    membership matches :class:`LruStackProfiler` exactly.
    """
    if distance < 0:
        return COLD_BUCKET
    return min((int(distance) + 1).bit_length() - 1, COLD_BUCKET - 1)
