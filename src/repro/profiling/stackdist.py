"""Exact LRU stack distances, computed chunk-at-a-time with numpy.

Two implementations of the same Bennett–Kruskal/Olken idea live here.
Both maintain, per distinct line, the *timestamp of its last access*; the
stack distance of an access is then the number of last-access timestamps
newer than the accessed line's own — an order-statistic query over the
active-timestamp set.

:class:`OlkenStackProfiler` is the textbook streaming form: a dict of
last-access times plus a :class:`~repro.util.fenwick.FenwickTree` holding
one bit per active timestamp, O(log n) per access.  It is exact and has no
batching requirements, but each access runs a Python-level tree walk.

:class:`StackDistanceEngine` is the hot-path form used by the profilers:
it consumes whole numpy chunks and keeps the order-statistic structure as
a flat *sorted array* of active timestamps (new timestamps only ever
append at the tail, so maintenance is a vectorized delete + append rather
than per-access tree updates).  Within a chunk, distances decompose into

* intra-chunk reuses, solved offline through the interval-crossing
  identity ``dist(i) = #{t in (prev_i, i) : next_t >= i}`` which reduces
  to one ``searchsorted`` plus a left-smaller-count over the reuse
  intervals (:func:`left_smaller_counts`), and
* first-in-chunk accesses of previously seen lines, solved as
  ``G + B - C``: ``G`` counts pre-chunk lines touched since the line's
  last access (one vectorized order-statistic query against the sorted
  timestamp array), ``B`` counts distinct chunk lines already touched
  (a cumulative sum), and ``C`` removes the overlap (another
  left-smaller-count, over the pre-chunk timestamps).

Every path is exact — parity with the naive Mattson stack is enforced by
randomized tests — so callers may bucket, threshold, or histogram the
returned distances however they like.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from repro.util.fenwick import FenwickTree

_EMPTY_I64 = np.empty(0, dtype=np.int64)

#: Block edge below which left_smaller_counts uses direct pairwise
#: comparison instead of merge counting (kills the 5 cheapest levels).
_LSC_BASE = 32
_LSC_TRIL = np.tril(np.ones((_LSC_BASE, _LSC_BASE), dtype=bool), k=-1)

#: Accesses to accumulate before a batched caller should flush a chunk
#: through the engine; tuned so per-chunk numpy overhead amortizes while
#: the offline merge counting stays cheap.
FLUSH_THRESHOLD = 32_768


def left_smaller_counts(values: np.ndarray) -> np.ndarray:
    """``out[i] = #{j < i : values[j] < values[i]}`` for distinct ints.

    Offline merge counting: a bottom-up mergesort in which, at each level,
    every right half-block counts its elements' ranks inside the matching
    sorted left half-block via one global ``searchsorted`` (block identity
    is encoded into the sort key, so one call serves all blocks).  All
    passes are vectorized; cost is O(n log^2 n) in C-speed operations.
    """
    n = int(values.size)
    out = np.zeros(n, dtype=np.int64)
    if n <= 1:
        return out
    dtype = np.int32 if n < 46_000 else np.int64  # keys bounded by n^2
    rank = np.empty(n, dtype=dtype)
    rank[np.argsort(values, kind="stable")] = np.arange(n, dtype=dtype)

    # Base case: exhaustive pairwise counts inside blocks of _LSC_BASE.
    pad = (-n) % _LSC_BASE
    r2 = np.concatenate([rank, np.full(pad, n, dtype=dtype)])
    r2 = r2.reshape(-1, _LSC_BASE)
    base = ((r2[:, :, None] > r2[:, None, :]) & _LSC_TRIL).sum(axis=2)
    out += base.reshape(-1)[:n]

    idx = np.arange(n, dtype=np.int64)
    half = _LSC_BASE
    while half < n:
        size = 2 * half
        left_mask = (idx & (size - 1)) < half
        if not left_mask.any() or left_mask.all():
            half = size
            continue
        shift = size.bit_length() - 1
        group = idx >> shift
        num_groups = int(group[-1]) + 1
        lkeys = np.sort(group[left_mask].astype(dtype) * n + rank[left_mask])
        starts = np.zeros(num_groups + 1, dtype=np.int64)
        np.cumsum(np.bincount(group[left_mask], minlength=num_groups),
                  out=starts[1:])
        right = ~left_mask
        gr = group[right]
        counts = np.searchsorted(lkeys, gr.astype(dtype) * n + rank[right])
        out[right] += counts - starts[gr]
        half = size
    return out


class ChunkView(NamedTuple):
    """Per-chunk byproducts of :meth:`StackDistanceEngine.observe`.

    Everything a caller needs to attach per-line state of its own (the MRU
    tracker keeps dirty bits) without recomputing the groupings.
    """

    #: Exact stack distance per access; -1 for first-ever touches.
    distances: np.ndarray
    #: Sorted distinct lines of the chunk.
    uniq: np.ndarray
    #: Index into ``uniq`` per access.
    inv: np.ndarray
    #: Access positions sorted by (line, position): group-major order.
    order: np.ndarray
    #: Start offset of each line's group inside ``order``.
    group_starts: np.ndarray
    #: Per ``uniq`` entry: True if the line was new to the engine.
    was_new: np.ndarray
    #: Insertion offsets of the new lines into the engine's *previous*
    #: line table (suitable for mirroring with ``np.insert``).
    insert_at: np.ndarray
    #: Per ``uniq`` entry: its index in the engine's *updated* line table.
    positions: np.ndarray
    #: Indices of the accesses the engine actually processed, or None when
    #: all were processed.  Consecutive repeats of the same line are
    #: collapsed away (their exact distance is 0); all index-valued fields
    #: above live in this compressed space.  ``distances`` is always
    #: full-size.
    kept: np.ndarray | None


class StackDistanceEngine:
    """Chunked exact stack-distance computation with persistent state."""

    __slots__ = ("_lines", "_times", "_sorted_times", "_clock")

    def __init__(self) -> None:
        self._lines = _EMPTY_I64       # sorted distinct lines ever seen
        self._times = _EMPTY_I64       # last-access time, aligned to _lines
        self._sorted_times = _EMPTY_I64  # same multiset as _times, sorted
        self._clock = 0

    @property
    def unique_lines(self) -> int:
        """Number of distinct lines ever observed."""
        return int(self._lines.size)

    def reset(self) -> None:
        """Forget all lines and restart the clock."""
        self._lines = _EMPTY_I64
        self._times = _EMPTY_I64
        self._sorted_times = _EMPTY_I64
        self._clock = 0

    def lines_by_recency(self) -> np.ndarray:
        """Indices into the line table, oldest last access first."""
        return np.argsort(self._times, kind="stable")

    def prune_to(self, keep: int) -> np.ndarray | None:
        """Drop all but the ``keep`` most recently used lines.

        A pruned line's next access reads as cold (-1) instead of its true
        (>= keep) distance, so this is only safe for callers that solely
        threshold distances at some cap <= ``keep`` — the MRU tracker's
        case.  Returns the sorted indices of the retained lines within the
        pre-prune table (for mirroring parallel arrays), or None if
        nothing was pruned.
        """
        total = self._lines.size
        if total <= keep:
            return None
        recency = np.argsort(self._times, kind="stable")
        kept_idx = np.sort(recency[total - keep:])
        self._lines = self._lines[kept_idx]
        self._times = self._times[kept_idx]
        self._sorted_times = np.sort(self._times)
        return kept_idx

    def line_table(self) -> np.ndarray:
        """The sorted distinct-line table (do not mutate)."""
        return self._lines

    def observe(
        self, chunk: np.ndarray, distance_floor: int | None = None
    ) -> ChunkView:
        """Stream one chunk of line addresses; returns exact distances.

        With ``distance_floor`` set, the caller promises to use distances
        only as a threshold test against some cap <= ``distance_floor``
        (the MRU tracker's case): returned distances are then merely
        guaranteed to land on the correct side of the floor, which lets
        whole chunks skip the offline merge-counting when their reuses
        cannot possibly reach it.  Cold accesses report -1 exactly in
        both modes, and the engine state update is identical.
        """
        n = int(chunk.size)
        if n == 0:
            empty = _EMPTY_I64
            return ChunkView(empty, empty, empty, empty, empty,
                             np.empty(0, dtype=bool), empty, empty, None)
        chunk = np.ascontiguousarray(chunk, dtype=np.int64)
        # Collapse consecutive repeats: an immediate reuse has distance 0
        # exactly, and dropping it changes no other access's distinct-line
        # window, so the heavy machinery only sees run starts.
        kept = None
        full_n = n
        if n > 1:
            keep_mask = np.empty(n, dtype=bool)
            keep_mask[0] = True
            np.not_equal(chunk[1:], chunk[:-1], out=keep_mask[1:])
            if not keep_mask.all():
                kept = np.flatnonzero(keep_mask)
                chunk = chunk[kept]
                n = int(kept.size)
        # One stable argsort yields both the distinct-line table and the
        # group-major access order (positions ascending within a line).
        order = np.argsort(chunk, kind="stable")
        sorted_chunk = chunk[order]
        new_group = np.empty(n, dtype=bool)
        new_group[0] = True
        same = sorted_chunk[1:] == sorted_chunk[:-1]
        new_group[1:] = ~same
        group_starts = np.flatnonzero(new_group)
        uniq = sorted_chunk[group_starts]
        inv = np.empty(n, dtype=np.int64)
        inv[order] = np.cumsum(new_group) - 1
        prev = np.full(n, -1, dtype=np.int64)
        prev[order[1:][same]] = order[:-1][same]
        nxt = np.full(n, n, dtype=np.int64)
        nxt[order[:-1][same]] = order[1:][same]
        first = prev < 0

        dist = np.full(n, -1, dtype=np.int64)

        # Intra-chunk reuses via the crossing identity.  In floor mode,
        # cheap bounds (distance < window size, distance >= crossing count
        # minus window start) classify almost every reuse without the
        # offline merge counting.
        if same.any():
            if distance_floor is not None and (
                n <= distance_floor or group_starts.size <= distance_floor
            ):
                # An intra-chunk distance is bounded by the number of
                # distinct chunk lines, so no reuse can reach the floor.
                dist[nxt[nxt < n]] = 0
            else:
                starts = np.flatnonzero(nxt < n)
                ends = nxt[starts]
                if distance_floor is not None:
                    upper = ends - starts - 1  # window-size bound
                    deep = upper >= distance_floor
                    if not deep.any():
                        dist[ends] = upper
                    else:
                        crossing = ends - np.searchsorted(
                            np.sort(ends), ends
                        )
                        lower = crossing - starts - 1
                        if (deep & (lower < distance_floor)).any():
                            lsc = left_smaller_counts(ends)
                            dist[ends] = lower + lsc
                        else:
                            dist[ends] = np.where(deep, lower, upper)
                else:
                    lsc = left_smaller_counts(ends)
                    crossing = ends - np.searchsorted(np.sort(ends), ends)
                    dist[ends] = crossing - starts - 1 + lsc

        # First-in-chunk accesses: look up pre-chunk last times.
        glines = self._lines
        pos = np.searchsorted(glines, uniq)
        found = pos < glines.size
        found[found] = glines[pos[found]] == uniq[found]
        tau_u = np.full(uniq.size, -1, dtype=np.int64)
        tau_u[found] = self._times[pos[found]]
        if found.any():
            fo = np.flatnonzero(first)
            taus = tau_u[inv[fo]]
            seen = taus >= 0
            sfo = fo[seen]
            staus = taus[seen]
            active = glines.size
            g_counts = active - np.searchsorted(
                self._sorted_times, staus, side="right"
            )
            cum_first = np.cumsum(first) - first
            b_counts = cum_first[sfo]
            if distance_floor is not None:
                # The true distance lies in [G, G + B]; only queries whose
                # band straddles the floor need the exact overlap term.
                ambiguous = (g_counts < distance_floor) & (
                    g_counts + b_counts >= distance_floor
                )
                if ambiguous.any():
                    overlap = left_smaller_counts(-staus)
                    dist[sfo] = g_counts + b_counts - overlap
                else:
                    dist[sfo] = g_counts
            else:
                overlap = left_smaller_counts(-staus)
                dist[sfo] = g_counts + b_counts - overlap

        # State update: per distinct line, retire the old timestamp and
        # record the line's last chunk position as the new one.
        last_in_group = np.concatenate([group_starts[1:] - 1, [n - 1]])
        new_times = self._clock + order[last_in_group]
        old = tau_u[found]
        if old.size:
            drop = np.searchsorted(self._sorted_times, old)
            surviving = np.delete(self._sorted_times, drop)
        else:
            surviving = self._sorted_times
        self._sorted_times = np.concatenate([surviving, np.sort(new_times)])

        was_new = ~found
        if was_new.any():
            insert_at = pos[was_new]
            self._times[pos[found]] = new_times[found]
            self._lines = np.insert(glines, insert_at, uniq[was_new])
            self._times = np.insert(self._times, insert_at,
                                    new_times[was_new])
            positions = np.searchsorted(self._lines, uniq)
        else:
            insert_at = _EMPTY_I64
            self._times[pos] = new_times
            positions = pos
        self._clock += n
        if kept is not None:
            full = np.zeros(full_n, dtype=np.int64)  # repeats: distance 0
            full[kept] = dist
            dist = full
        return ChunkView(dist, uniq, inv, order, group_starts,
                         was_new, insert_at, positions, kept)


class OlkenStackProfiler:
    """Streaming exact stack distances: dict + Fenwick, O(log n)/access.

    The reference formulation of the same algorithm the chunked engine
    vectorizes: slot ``t`` of the Fenwick tree holds 1 while the access at
    time ``t`` is the most recent access to its line, so the distance of
    an access is the count of set slots newer than the line's last one.
    The tree is rebuilt with compacted timestamps whenever the clock
    outgrows its capacity.
    """

    __slots__ = ("_last", "_tree", "_clock")

    def __init__(self, capacity: int = 1024) -> None:
        self._last: dict[int, int] = {}
        self._tree = FenwickTree(max(capacity, 16))
        self._clock = 0

    @property
    def unique_lines(self) -> int:
        """Number of distinct lines ever observed."""
        return len(self._last)

    def _compact(self) -> None:
        """Re-number active timestamps 0..n-1 and double the tree."""
        items = sorted(self._last.items(), key=lambda kv: kv[1])
        tree = FenwickTree(2 * max(len(items) + 1, self._tree.size))
        self._last = {}
        for t, (line, _) in enumerate(items):
            self._last[line] = t
            tree.add(t, 1)
        self._clock = len(items)
        self._tree = tree

    def observe_one(self, line: int) -> int:
        """Record one access; returns its exact distance (-1 if cold)."""
        if self._clock >= self._tree.size:
            self._compact()
        last = self._last
        tree = self._tree
        t = self._clock
        tau = last.get(line, -1)
        if tau < 0:
            distance = -1
        else:
            distance = len(last) - tree.prefix_sum(tau)
            tree.add(tau, -1)
        tree.add(t, 1)
        last[line] = t
        self._clock = t + 1
        return distance

    def observe(self, lines: np.ndarray) -> np.ndarray:
        """Record a batch of accesses; returns exact distances."""
        out = np.empty(lines.size, dtype=np.int64)
        observe_one = self.observe_one
        for i, line in enumerate(lines.tolist()):
            out[i] = observe_one(line)
        return out
